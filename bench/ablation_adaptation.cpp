// Ablation: adaptation period (heartbeats between checks) for HARS-E and
// the freezing-count length for MP-HARS-E — the two cadence knobs the
// thesis fixes but never sweeps.
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: adaptation cadence\n");

  ReportTable table("HARS-E adaptation period sweep (swaptions + fluidanimate GM)");
  table.set_columns({"adapt period (hb)", "GM perf/watt", "GM norm perf",
                     "manager CPU %"});
  for (int period : {2, 5, 10, 20}) {
    std::vector<double> pps;
    std::vector<double> nps;
    std::vector<double> utils;
    for (ParsecBenchmark bench :
         {ParsecBenchmark::kSwaptions, ParsecBenchmark::kFluidanimate}) {
      const ExperimentResult r = ExperimentBuilder()
                                     .app(bench)
                                     .variant("HARS-E")
                                     .adapt_period(period)
                                     .duration(90 * kUsPerSec)
                                     .build()
                                     .run();
      pps.push_back(r.app().metrics.perf_per_watt);
      nps.push_back(r.app().metrics.norm_perf);
      utils.push_back(r.app().metrics.manager_cpu_pct);
    }
    table.add_row(std::to_string(period),
                  {geomean(pps), geomean(nps), mean(utils)});
  }
  table.print(std::cout);
  std::puts("Shape check: very short periods adapt on noisy windows; very");
  std::puts("long periods track phased workloads (FL) sluggishly.");
  return 0;
}
