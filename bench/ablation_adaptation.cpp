// Ablation: adaptation period (heartbeats between checks) for HARS-E and
// the freezing-count length for MP-HARS-E — the two cadence knobs the
// thesis fixes but never sweeps. The period x bench grid runs through the
// SweepEngine; the per-period reductions through the Aggregator.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/aggregator.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: adaptation cadence\n");

  SweepSpec spec;
  spec.name("ablation_adaptation")
      .base([](ExperimentBuilder& b) {
        b.variant("HARS-E").duration(90 * kUsPerSec);
      })
      .values("period", {2, 5, 10, 20},
              [](ExperimentBuilder& b, double period) {
                b.adapt_period(static_cast<int>(period));
              })
      .benchmarks(
          {ParsecBenchmark::kSwaptions, ParsecBenchmark::kFluidanimate});

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  Aggregator agg;
  agg.group_by({"period"})
      .geomean("perf_per_watt")
      .geomean("norm_perf")
      .mean("manager_cpu_pct");
  const std::vector<Record> grouped = agg.apply(sink.rows());

  ReportTable table("HARS-E adaptation period sweep (swaptions + fluidanimate GM)");
  table.set_columns({"adapt period (hb)", "GM perf/watt", "GM norm perf",
                     "manager CPU %"});
  for (const Record& row : grouped) {
    table.add_row(std::string(row.text("period")),
                  {row.number("geomean_perf_per_watt"),
                   row.number("geomean_norm_perf"),
                   row.number("mean_manager_cpu_pct")});
  }
  table.print(std::cout);
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: very short periods adapt on noisy windows; very");
  std::puts("long periods track phased workloads (FL) sluggishly.");
  return 0;
}
