// Ablation: memory-bound workloads vs the estimator's linear-frequency
// assumption. The performance estimator (§3.1.1) assumes rate scales
// linearly with frequency; memory-bound code does not. This bench sweeps
// the memory sensitivity of a synthetic application and reports how well
// HARS-E still lands its target and what the misprediction costs.
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "core/hars.hpp"
#include "exp/metrics.hpp"
#include "exp/report.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace {

using namespace hars;

struct Outcome {
  double norm_perf = 0.0;
  double power = 0.0;
  double pp = 0.0;
  std::int64_t adaptations = 0;
};

Outcome run_mem(double mem_sensitivity) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelConfig cfg;
  cfg.threads = 8;
  cfg.speed = SpeedModel{3.0, 2.0, mem_sensitivity};
  cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
  DataParallelApp app("mem", cfg);
  const AppId id = engine.add_app(&app);

  // Calibrate the target against this app's own baseline max.
  engine.run_for(20 * kUsPerSec);
  const double max_rate = app.heartbeats().global_rate(engine.now());
  const PerfTarget target = PerfTarget::around(0.5 * max_rate);

  SimEngine engine2(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  DataParallelApp app2("mem", cfg);
  const AppId id2 = engine2.add_app(&app2);
  (void)id;
  auto manager = attach_hars(engine2, id2, target, HarsVariant::kHarsE);
  engine2.run_for(120 * kUsPerSec);

  Outcome out;
  const auto& history = app2.heartbeats().history();
  const TimeUs t0 = history.empty() ? 0 : history.front().time;
  out.norm_perf = time_weighted_norm_perf(history, target, t0, engine2.now());
  out.power = engine2.sensor().average_power_w(engine2.now());
  out.pp = out.power > 0.0 ? out.norm_perf / out.power : 0.0;
  out.adaptations = manager->adaptations();
  return out;
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("Ablation: memory-bound workloads vs the linear-frequency model\n");
  ReportTable table("HARS-E across memory sensitivity (target 50% of own max)");
  table.set_columns({"mem sensitivity", "norm perf", "avg power W", "perf/watt",
                     "adaptations"});
  for (double m : {0.0, 0.2, 0.4, 0.6}) {
    const Outcome o = run_mem(m);
    table.add_text_row({format_value(m), format_value(o.norm_perf),
                        format_value(o.power), format_value(o.pp),
                        std::to_string(o.adaptations)});
  }
  table.print(std::cout);
  std::puts("Shape check: HARS still reaches the target (the feedback loop");
  std::puts("absorbs the misprediction) but needs more adaptations as the");
  std::puts("estimator's frequency-scaling assumption degrades.");
  return 0;
}
