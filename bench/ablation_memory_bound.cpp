// Ablation: memory-bound workloads vs the estimator's linear-frequency
// assumption. The performance estimator (§3.1.1) assumes rate scales
// linearly with frequency; memory-bound code does not. This bench sweeps
// the memory sensitivity of a synthetic application and reports how well
// HARS-E still lands its target and what the misprediction costs.
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"

namespace {

using namespace hars;

struct Outcome {
  double norm_perf = 0.0;
  double power = 0.0;
  double pp = 0.0;
  std::int64_t adaptations = 0;
};

AppFactory mem_app(double mem_sensitivity) {
  return [mem_sensitivity](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{3.0, 2.0, mem_sensitivity};
    cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("mem", cfg);
  };
}

Outcome run_mem(double mem_sensitivity) {
  // Calibrate the target against this app's own baseline max: a short
  // cold-start baseline probe through the same pipeline.
  const ExperimentResult probe = ExperimentBuilder()
                                     .app("mem", mem_app(mem_sensitivity))
                                     .target(PerfTarget::around(1.0))
                                     .variant("Baseline")
                                     .protocol(RunProtocol::kColdStart)
                                     .duration(20 * kUsPerSec)
                                     .build()
                                     .run();
  const PerfTarget target =
      PerfTarget::around(0.5 * probe.app().metrics.avg_rate_hps);

  const ExperimentResult r = ExperimentBuilder()
                                 .app("mem", mem_app(mem_sensitivity))
                                 .target(target)
                                 .variant("HARS-E")
                                 .protocol(RunProtocol::kColdStart)
                                 .duration(120 * kUsPerSec)
                                 .build()
                                 .run();
  Outcome out;
  out.norm_perf = r.app().metrics.norm_perf;
  out.power = r.app().metrics.avg_power_w;
  out.pp = out.power > 0.0 ? out.norm_perf / out.power : 0.0;
  out.adaptations = r.adaptations;
  return out;
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("Ablation: memory-bound workloads vs the linear-frequency model\n");
  ReportTable table("HARS-E across memory sensitivity (target 50% of own max)");
  table.set_columns({"mem sensitivity", "norm perf", "avg power W", "perf/watt",
                     "adaptations"});
  for (double m : {0.0, 0.2, 0.4, 0.6}) {
    const Outcome o = run_mem(m);
    table.add_text_row({format_value(m), format_value(o.norm_perf),
                        format_value(o.power), format_value(o.pp),
                        std::to_string(o.adaptations)});
  }
  table.print(std::cout);
  std::puts("Shape check: HARS still reaches the target (the feedback loop");
  std::puts("absorbs the misprediction) but needs more adaptations as the");
  std::puts("estimator's frequency-scaling assumption degrades.");
  return 0;
}
