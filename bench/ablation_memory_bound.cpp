// Ablation: memory-bound workloads vs the estimator's linear-frequency
// assumption. The performance estimator (§3.1.1) assumes rate scales
// linearly with frequency; memory-bound code does not. This bench sweeps
// the memory sensitivity of a synthetic application and reports how well
// HARS-E still lands its target and what the misprediction costs. Each
// case is a two-stage protocol (baseline probe, then the managed run), so
// the sweep uses a custom case runner.
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

namespace {

using namespace hars;

AppFactory mem_app(double mem_sensitivity) {
  return [mem_sensitivity](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{3.0, 2.0, mem_sensitivity};
    cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("mem", cfg);
  };
}

std::vector<Record> run_mem_case(const SweepCase& sweep_case) {
  const double m = sweep_case.number("mem_sensitivity");
  // Calibrate the target against this app's own baseline max: a short
  // cold-start baseline probe through the same pipeline.
  const ExperimentResult probe = ExperimentBuilder()
                                     .app("mem", mem_app(m))
                                     .target(PerfTarget::around(1.0))
                                     .variant("Baseline")
                                     .protocol(RunProtocol::kColdStart)
                                     .duration(20 * kUsPerSec)
                                     .build()
                                     .run();
  const PerfTarget target =
      PerfTarget::around(0.5 * probe.app().metrics.avg_rate_hps);

  const ExperimentResult r = ExperimentBuilder()
                                 .app("mem", mem_app(m))
                                 .target(target)
                                 .variant("HARS-E")
                                 .protocol(RunProtocol::kColdStart)
                                 .duration(120 * kUsPerSec)
                                 .build()
                                 .run();
  Record out;
  out.set("norm_perf", r.app().metrics.norm_perf);
  out.set("avg_power_w", r.app().metrics.avg_power_w);
  out.set("perf_per_watt", r.app().metrics.avg_power_w > 0.0
                               ? r.app().metrics.norm_perf /
                                     r.app().metrics.avg_power_w
                               : 0.0);
  out.set("adaptations", r.adaptations);
  return {out};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: memory-bound workloads vs the linear-frequency model\n");

  SweepSpec spec;
  spec.name("ablation_memory_bound")
      .values("mem_sensitivity", {0.0, 0.2, 0.4, 0.6}, nullptr)
      .case_runner(run_mem_case);

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("HARS-E across memory sensitivity (target 50% of own max)");
  table.set_columns({"mem sensitivity", "norm perf", "avg power W", "perf/watt",
                     "adaptations"});
  for (const Record& row : sink.rows()) {
    table.add_text_row({format_value(row.number("mem_sensitivity")),
                        format_value(row.number("norm_perf")),
                        format_value(row.number("avg_power_w")),
                        format_value(row.number("perf_per_watt")),
                        std::string(row.text("adaptations"))});
  }
  table.print(std::cout);
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: HARS still reaches the target (the feedback loop");
  std::puts("absorbs the misprediction) but needs more adaptations as the");
  std::puts("estimator's frequency-scaling assumption degrades.");
  return 0;
}
