// Ablation (§3.1.4 option 3): stock GTS vs an EAS-style idle-pull
// scheduler as the OS substrate. Stock GTS strands the little cluster
// when every thread is hot — the inefficiency both the paper and HARS
// exploit; idle-pull closes part of that gap at the OS level.
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/parsec.hpp"
#include "exp/calibration.hpp"
#include "exp/metrics.hpp"
#include "exp/report.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace {

using namespace hars;

struct BaselineResult {
  double rate = 0.0;
  double power = 0.0;
};

BaselineResult run_baseline(ParsecBenchmark bench, bool idle_pull) {
  GtsConfig config;
  config.idle_pull = idle_pull;
  SimEngine engine(Machine::exynos5422(),
                   std::make_unique<GtsScheduler>(config));
  auto app = make_parsec_app(bench);
  engine.add_app(app.get());
  while (app->heartbeats().count() == 0 && engine.now() < 60 * kUsPerSec) {
    engine.run_for(100 * kUsPerMs);
  }
  const TimeUs t0 = engine.now();
  engine.sensor().reset();
  engine.run_for(60 * kUsPerSec);
  BaselineResult out;
  out.rate = average_rate(app->heartbeats().history(), t0, engine.now());
  out.power = engine.sensor().average_power_w(engine.now() - t0);
  return out;
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("Ablation: OS scheduler substrate at the max configuration\n");

  ReportTable table("stock GTS vs idle-pull (EAS-style)");
  table.set_columns({"bench", "GTS rate", "GTS W", "pull rate", "pull W",
                     "rate gain", "raw hb/J gain"});
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    const BaselineResult gts = run_baseline(bench, false);
    const BaselineResult pull = run_baseline(bench, true);
    const double rate_gain = gts.rate > 0.0 ? pull.rate / gts.rate : 0.0;
    const double hbj_gts = gts.power > 0.0 ? gts.rate / gts.power : 0.0;
    const double hbj_pull = pull.power > 0.0 ? pull.rate / pull.power : 0.0;
    table.add_row(parsec_code(bench),
                  {gts.rate, gts.power, pull.rate, pull.power, rate_gain,
                   hbj_gts > 0.0 ? hbj_pull / hbj_gts : 0.0});
  }
  table.print(std::cout);
  std::puts("Shape check: idle-pull raises raw throughput (little cores");
  std::puts("join in) and raw heartbeats-per-joule on most benchmarks —");
  std::puts("the §4.1.1 critique of stock GTS quantified.");
  return 0;
}
