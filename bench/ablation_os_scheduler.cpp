// Ablation (§3.1.4 option 3): stock GTS vs an EAS-style idle-pull
// scheduler as the OS substrate. Stock GTS strands the little cluster
// when every thread is hot — the inefficiency both the paper and HARS
// exploit; idle-pull closes part of that gap at the OS level. The
// bench x substrate grid is one SweepSpec.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: OS scheduler substrate at the max configuration\n");

  std::vector<AxisPoint> substrates;
  for (const bool idle_pull : {false, true}) {
    substrates.emplace_back(idle_pull ? "idle-pull" : "gts",
                            [idle_pull](ExperimentBuilder& b) {
                              GtsConfig config;
                              config.idle_pull = idle_pull;
                              b.os_scheduler(config);
                            });
  }

  SweepSpec spec;
  spec.name("ablation_os_scheduler")
      .base([](ExperimentBuilder& b) {
        // A dummy explicit target skips calibration: only the raw rate
        // and power of the maximum configuration matter here.
        b.variant("Baseline")
            .protocol(RunProtocol::kSteadyState)
            .duration(60 * kUsPerSec);
      })
      .benchmarks(all_parsec_benchmarks())
      .axis("substrate", std::move(substrates))
      .axis("target", {AxisPoint("max", [](ExperimentBuilder& b) {
               b.target(PerfTarget::around(1.0));
             })});

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("stock GTS vs idle-pull (EAS-style)");
  table.set_columns({"bench", "GTS rate", "GTS W", "pull rate", "pull W",
                     "rate gain", "raw hb/J gain"});
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    const std::string_view code = parsec_code(bench);
    const auto value = [&](std::string_view substrate,
                           std::string_view column) {
      return record_number(sink.rows(),
                           {{"bench", code}, {"substrate", substrate}},
                           column);
    };
    const double gts_rate = value("gts", "avg_rate_hps");
    const double gts_power = value("gts", "avg_power_w");
    const double pull_rate = value("idle-pull", "avg_rate_hps");
    const double pull_power = value("idle-pull", "avg_power_w");
    const double rate_gain = gts_rate > 0.0 ? pull_rate / gts_rate : 0.0;
    const double hbj_gts = gts_power > 0.0 ? gts_rate / gts_power : 0.0;
    const double hbj_pull = pull_power > 0.0 ? pull_rate / pull_power : 0.0;
    table.add_row(parsec_code(bench),
                  {gts_rate, gts_power, pull_rate, pull_power, rate_gain,
                   hbj_gts > 0.0 ? hbj_pull / hbj_gts : 0.0});
  }
  table.print(std::cout);
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: idle-pull raises raw throughput (little cores");
  std::puts("join in) and raw heartbeats-per-joule on most benchmarks —");
  std::puts("the §4.1.1 critique of stock GTS quantified.");
  return 0;
}
