// Ablation (§3.1.4 option 3): stock GTS vs an EAS-style idle-pull
// scheduler as the OS substrate. Stock GTS strands the little cluster
// when every thread is hot — the inefficiency both the paper and HARS
// exploit; idle-pull closes part of that gap at the OS level.
#include <cstdio>
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"

namespace {

using namespace hars;

struct BaselineResult {
  double rate = 0.0;
  double power = 0.0;
};

BaselineResult run_baseline(ParsecBenchmark bench, bool idle_pull) {
  GtsConfig config;
  config.idle_pull = idle_pull;
  // A dummy explicit target skips calibration: only the raw rate and
  // power of the maximum configuration matter here.
  const ExperimentResult r = ExperimentBuilder()
                                 .os_scheduler(config)
                                 .app(bench)
                                 .target(PerfTarget::around(1.0))
                                 .variant("Baseline")
                                 .protocol(RunProtocol::kSteadyState)
                                 .duration(60 * kUsPerSec)
                                 .build()
                                 .run();
  return BaselineResult{r.app().metrics.avg_rate_hps,
                        r.app().metrics.avg_power_w};
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("Ablation: OS scheduler substrate at the max configuration\n");

  ReportTable table("stock GTS vs idle-pull (EAS-style)");
  table.set_columns({"bench", "GTS rate", "GTS W", "pull rate", "pull W",
                     "rate gain", "raw hb/J gain"});
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    const BaselineResult gts = run_baseline(bench, false);
    const BaselineResult pull = run_baseline(bench, true);
    const double rate_gain = gts.rate > 0.0 ? pull.rate / gts.rate : 0.0;
    const double hbj_gts = gts.power > 0.0 ? gts.rate / gts.power : 0.0;
    const double hbj_pull = pull.power > 0.0 ? pull.rate / pull.power : 0.0;
    table.add_row(parsec_code(bench),
                  {gts.rate, gts.power, pull.rate, pull.power, rate_gain,
                   hbj_gts > 0.0 ? hbj_pull / hbj_gts : 0.0});
  }
  table.print(std::cout);
  std::puts("Shape check: idle-pull raises raw throughput (little cores");
  std::puts("join in) and raw heartbeats-per-joule on most benchmarks —");
  std::puts("the §4.1.1 critique of stock GTS quantified.");
  return 0;
}
