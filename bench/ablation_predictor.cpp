// Ablation (§3.1.4 option 1): the last-value workload predictor vs the
// Kalman-filter rate predictor, on the noisy (bodytrack) and phased
// (fluidanimate) benchmarks where windowed rates jitter the most.
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: rate predictor (HARS-E, default target)\n");

  ReportTable table("last-value vs Kalman predictor");
  table.set_columns({"bench", "predictor", "perf/watt", "norm perf",
                     "in-window %", "adaptations proxy (mgr CPU %)"});
  for (ParsecBenchmark bench :
       {ParsecBenchmark::kBodytrack, ParsecBenchmark::kFluidanimate,
        ParsecBenchmark::kSwaptions}) {
    for (PredictorKind predictor :
         {PredictorKind::kLastValue, PredictorKind::kKalman}) {
      const ExperimentResult r = ExperimentBuilder()
                                     .app(bench)
                                     .variant("HARS-E")
                                     .predictor(predictor)
                                     .duration(100 * kUsPerSec)
                                     .build()
                                     .run();
      table.add_text_row({parsec_code(bench), predictor_kind_name(predictor),
                          format_value(r.app().metrics.perf_per_watt),
                          format_value(r.app().metrics.norm_perf),
                          format_value(100.0 * r.app().metrics.in_window_fraction),
                          format_value(r.app().metrics.manager_cpu_pct)});
    }
  }
  table.print(std::cout);
  std::puts("Shape check: Kalman smooths window jitter, raising the");
  std::puts("in-window share on noisy/phased workloads without hurting");
  std::puts("the stable one.");
  return 0;
}
