// Ablation (§3.1.4 option 1): the last-value workload predictor vs the
// Kalman-filter rate predictor, on the noisy (bodytrack) and phased
// (fluidanimate) benchmarks where windowed rates jitter the most.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: rate predictor (HARS-E, default target)\n");

  ReportTable table("last-value vs Kalman predictor");
  table.set_columns({"bench", "predictor", "perf/watt", "norm perf",
                     "in-window %", "adaptations proxy (mgr CPU %)"});
  for (ParsecBenchmark bench :
       {ParsecBenchmark::kBodytrack, ParsecBenchmark::kFluidanimate,
        ParsecBenchmark::kSwaptions}) {
    for (int predictor : {0, 1}) {
      SingleRunOptions options;
      options.duration = 100 * kUsPerSec;
      options.override_predictor = predictor;
      const SingleRunResult r = run_single(bench, SingleVersion::kHarsE, options);
      table.add_text_row({parsec_code(bench),
                          predictor == 0 ? "last-value" : "kalman",
                          format_value(r.metrics.perf_per_watt),
                          format_value(r.metrics.norm_perf),
                          format_value(100.0 * r.metrics.in_window_fraction),
                          format_value(r.metrics.manager_cpu_pct)});
    }
  }
  table.print(std::cout);
  std::puts("Shape check: Kalman smooths window jitter, raising the");
  std::puts("in-window share on noisy/phased workloads without hurting");
  std::puts("the stable one.");
  return 0;
}
