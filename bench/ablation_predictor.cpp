// Ablation (§3.1.4 option 1): the last-value workload predictor vs the
// Kalman-filter rate predictor, on the noisy (bodytrack) and phased
// (fluidanimate) benchmarks where windowed rates jitter the most. The
// bench x predictor grid is one SweepSpec.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: rate predictor (HARS-E, default target)\n");

  std::vector<AxisPoint> predictors;
  for (PredictorKind kind : {PredictorKind::kLastValue, PredictorKind::kKalman}) {
    predictors.emplace_back(predictor_kind_name(kind),
                            [kind](ExperimentBuilder& b) { b.predictor(kind); });
  }

  SweepSpec spec;
  spec.name("ablation_predictor")
      .base([](ExperimentBuilder& b) {
        b.variant("HARS-E").duration(100 * kUsPerSec);
      })
      .benchmarks({ParsecBenchmark::kBodytrack, ParsecBenchmark::kFluidanimate,
                   ParsecBenchmark::kSwaptions})
      .axis("predictor", std::move(predictors));

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("last-value vs Kalman predictor");
  table.set_columns({"bench", "predictor", "perf/watt", "norm perf",
                     "in-window %", "adaptations proxy (mgr CPU %)"});
  for (const Record& row : sink.rows()) {
    table.add_text_row({std::string(row.text("bench")),
                        std::string(row.text("predictor")),
                        format_value(row.number("perf_per_watt")),
                        format_value(row.number("norm_perf")),
                        format_value(100.0 * row.number("in_window_fraction")),
                        format_value(row.number("manager_cpu_pct"))});
  }
  table.print(std::cout);
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: Kalman smooths window jitter, raising the");
  std::puts("in-window share on noisy/phased workloads without hurting");
  std::puts("the stable one.");
  return 0;
}
