// Ablation: sensitivity to the assumed big:little performance ratio r0.
// The paper observes blackscholes' true ratio is 1.0 while HARS assumes
// 1.5, driving it into a suboptimal state; feeding HARS the right ratio
// should recover the gap to the static optimal.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: assumed r0 vs achieved efficiency (blackscholes)\n");

  ReportTable table("HARS-E on blackscholes with different assumed r0");
  table.set_columns({"r0", "perf/watt", "norm perf", "avg power W"});
  for (double r0 : {1.0, 1.25, 1.5, 2.0}) {
    SingleRunOptions options;
    options.duration = 90 * kUsPerSec;
    options.override_r0 = r0;
    const SingleRunResult r =
        run_single(ParsecBenchmark::kBlackscholes, SingleVersion::kHarsE, options);
    table.add_row(format_value(r0),
                  {r.metrics.perf_per_watt, r.metrics.norm_perf,
                   r.metrics.avg_power_w});
  }
  {
    // §5.1.2 future work: learn the ratio online instead of fixing it.
    SingleRunOptions options;
    options.duration = 90 * kUsPerSec;
    options.learn_ratio = true;
    const SingleRunResult learned = run_single(ParsecBenchmark::kBlackscholes,
                                               SingleVersion::kHarsE, options);
    table.add_row("learned", {learned.metrics.perf_per_watt,
                              learned.metrics.norm_perf,
                              learned.metrics.avg_power_w});
  }
  const SingleRunResult so = run_single(ParsecBenchmark::kBlackscholes,
                                        SingleVersion::kStaticOptimal,
                                        SingleRunOptions{});
  table.add_row("SO", {so.metrics.perf_per_watt, so.metrics.norm_perf,
                       so.metrics.avg_power_w});
  table.print(std::cout);
  std::puts("Shape check: the assumed ratio moves achieved efficiency by");
  std::puts("tens of percent on BL; a strong overestimate (r0 = 2.0) is the");
  std::puts("costliest because it oversells the big cluster. The online");
  std::puts("learner stays in the efficient band without a per-benchmark");
  std::puts("prior; SO bounds what any fixed assumption can reach.");
  return 0;
}
