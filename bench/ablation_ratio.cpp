// Ablation: sensitivity to the assumed big:little performance ratio r0.
// The paper observes blackscholes' true ratio is 1.0 while HARS assumes
// 1.5, driving it into a suboptimal state; feeding HARS the right ratio
// should recover the gap to the static optimal.
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"

namespace {

using namespace hars;

ExperimentBuilder blackscholes_hars() {
  ExperimentBuilder builder;
  builder.app(ParsecBenchmark::kBlackscholes)
      .variant("HARS-E")
      .duration(90 * kUsPerSec);
  return builder;
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("Ablation: assumed r0 vs achieved efficiency (blackscholes)\n");

  ReportTable table("HARS-E on blackscholes with different assumed r0");
  table.set_columns({"r0", "perf/watt", "norm perf", "avg power W"});
  for (double r0 : {1.0, 1.25, 1.5, 2.0}) {
    const ExperimentResult r =
        blackscholes_hars().assumed_ratio(r0).build().run();
    table.add_row(format_value(r0),
                  {r.app().metrics.perf_per_watt, r.app().metrics.norm_perf,
                   r.app().metrics.avg_power_w});
  }
  {
    // §5.1.2 future work: learn the ratio online instead of fixing it.
    const ExperimentResult learned =
        blackscholes_hars().learn_ratio().build().run();
    table.add_row("learned", {learned.app().metrics.perf_per_watt,
                              learned.app().metrics.norm_perf,
                              learned.app().metrics.avg_power_w});
  }
  const ExperimentResult so = ExperimentBuilder()
                                  .app(ParsecBenchmark::kBlackscholes)
                                  .variant("SO")
                                  .build()
                                  .run();
  table.add_row("SO", {so.app().metrics.perf_per_watt,
                       so.app().metrics.norm_perf,
                       so.app().metrics.avg_power_w});
  table.print(std::cout);
  std::puts("Shape check: the assumed ratio moves achieved efficiency by");
  std::puts("tens of percent on BL; a strong overestimate (r0 = 2.0) is the");
  std::puts("costliest because it oversells the big cluster. The online");
  std::puts("learner stays in the efficient band without a per-benchmark");
  std::puts("prior; SO bounds what any fixed assumption can reach.");
  return 0;
}
