// Ablation: sensitivity to the assumed big:little performance ratio r0.
// The paper observes blackscholes' true ratio is 1.0 while HARS assumes
// 1.5, driving it into a suboptimal state; feeding HARS the right ratio
// should recover the gap to the static optimal. The heterogeneous axis
// (fixed ratios, the online learner, and the SO bound) is one SweepSpec.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: assumed r0 vs achieved efficiency (blackscholes)\n");

  std::vector<AxisPoint> configs;
  for (double r0 : {1.0, 1.25, 1.5, 2.0}) {
    configs.emplace_back(format_value(r0), r0, [r0](ExperimentBuilder& b) {
      b.variant("HARS-E").duration(90 * kUsPerSec).assumed_ratio(r0);
    });
  }
  // §5.1.2 future work: learn the ratio online instead of fixing it.
  configs.emplace_back("learned", [](ExperimentBuilder& b) {
    b.variant("HARS-E").duration(90 * kUsPerSec).learn_ratio();
  });
  configs.emplace_back("SO",
                       [](ExperimentBuilder& b) { b.variant("SO"); });

  SweepSpec spec;
  spec.name("ablation_ratio")
      .base([](ExperimentBuilder& b) {
        b.app(ParsecBenchmark::kBlackscholes);
      })
      .axis("r0", std::move(configs));

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("HARS-E on blackscholes with different assumed r0");
  table.set_columns({"r0", "perf/watt", "norm perf", "avg power W"});
  for (const Record& row : sink.rows()) {
    table.add_row(std::string(row.text("r0")),
                  {row.number("perf_per_watt"), row.number("norm_perf"),
                   row.number("avg_power_w")});
  }
  table.print(std::cout);
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: the assumed ratio moves achieved efficiency by");
  std::puts("tens of percent on BL; a strong overestimate (r0 = 2.0) is the");
  std::puts("costliest because it oversells the big cluster. The online");
  std::puts("learner stays in the efficient band without a per-benchmark");
  std::puts("prior; SO bounds what any fixed assumption can reach.");
  return 0;
}
