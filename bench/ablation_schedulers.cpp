// Ablation: the three HARS thread schedulers — chunk-based, interleaving
// (§3.1.3) and the hierarchy-aware extension (§3.1.4 option 2) — at both
// performance targets. The pipeline benchmark (ferret) is where the
// mapping matters: chunk can place whole stages on one cluster.
#include <iostream>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: HARS-E thread scheduler (chunk / interleaved / hierarchical)\n");

  for (double fraction : {0.50, 0.75}) {
    ReportTable table(fraction == 0.50 ? "Default target (50%)"
                                       : "High target (75%)");
    table.set_columns({"bench", "chunk pp", "inter pp", "hier pp",
                       "chunk norm", "inter norm", "hier norm"});
    for (ParsecBenchmark bench : all_parsec_benchmarks()) {
      std::vector<double> pp;
      std::vector<double> norm;
      for (ThreadSchedulerKind sched :
           {ThreadSchedulerKind::kChunk, ThreadSchedulerKind::kInterleaved,
            ThreadSchedulerKind::kHierarchical}) {
        const ExperimentResult r = ExperimentBuilder()
                                       .app(bench)
                                       .variant("HARS-E")
                                       .scheduler(sched)
                                       .target_fraction(fraction)
                                       .duration(90 * kUsPerSec)
                                       .build()
                                       .run();
        pp.push_back(r.app().metrics.perf_per_watt);
        norm.push_back(r.app().metrics.norm_perf);
      }
      table.add_row(parsec_code(bench),
                    {pp[0], pp[1], pp[2], norm[0], norm[1], norm[2]});
    }
    table.print(std::cout);
  }
  std::puts("Shape check: on FE (6-stage pipeline) the chunk mapping");
  std::puts("delivers the lowest normalized performance; interleaving and");
  std::puts("the hierarchy-aware scheduler recover it, most visibly when");
  std::puts("the target forces mixed big+little allocations.");
  return 0;
}
