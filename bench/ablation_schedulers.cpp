// Ablation: the three HARS thread schedulers — chunk-based, interleaving
// (§3.1.3) and the hierarchy-aware extension (§3.1.4 option 2) — at both
// performance targets. The pipeline benchmark (ferret) is where the
// mapping matters: chunk can place whole stages on one cluster. The
// fraction x bench x scheduler grid is one SweepSpec.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: HARS-E thread scheduler (chunk / interleaved / hierarchical)\n");

  const std::vector<std::pair<std::string, ThreadSchedulerKind>> scheds{
      {"chunk", ThreadSchedulerKind::kChunk},
      {"inter", ThreadSchedulerKind::kInterleaved},
      {"hier", ThreadSchedulerKind::kHierarchical}};
  std::vector<AxisPoint> sched_points;
  for (const auto& [label, kind] : scheds) {
    const ThreadSchedulerKind k = kind;
    sched_points.emplace_back(label,
                              [k](ExperimentBuilder& b) { b.scheduler(k); });
  }

  SweepSpec spec;
  spec.name("ablation_schedulers")
      .base([](ExperimentBuilder& b) {
        b.variant("HARS-E").duration(90 * kUsPerSec);
      })
      .target_fractions({0.50, 0.75})
      .benchmarks(all_parsec_benchmarks())
      .axis("sched", std::move(sched_points));

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  for (double fraction : {0.50, 0.75}) {
    ReportTable table(fraction == 0.50 ? "Default target (50%)"
                                       : "High target (75%)");
    table.set_columns({"bench", "chunk pp", "inter pp", "hier pp",
                       "chunk norm", "inter norm", "hier norm"});
    for (ParsecBenchmark bench : all_parsec_benchmarks()) {
      const std::string_view code = parsec_code(bench);
      const auto value = [&](const std::string& sched,
                             std::string_view column) {
        return record_number(sink.rows(),
                             {{"fraction", format_number(fraction)},
                              {"bench", code},
                              {"sched", sched}},
                             column);
      };
      table.add_row(parsec_code(bench),
                    {value("chunk", "perf_per_watt"),
                     value("inter", "perf_per_watt"),
                     value("hier", "perf_per_watt"),
                     value("chunk", "norm_perf"), value("inter", "norm_perf"),
                     value("hier", "norm_perf")});
    }
    table.print(std::cout);
  }
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: on FE (6-stage pipeline) the chunk mapping");
  std::puts("delivers the lowest normalized performance; interleaving and");
  std::puts("the hierarchy-aware scheduler recover it, most visibly when");
  std::puts("the target forces mixed big+little allocations.");
  return 0;
}
