// Ablation (§3.1.4 option 4): search algorithms — HARS-I's one-step
// incremental sweep, HARS-E's exhaustive neighbourhood, and the tabu-
// search trajectory proposed as the escape from local optima. The
// bench x policy grid is one SweepSpec; the per-policy GM one Aggregator.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/aggregator.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Ablation: search algorithm (default target)\n");

  const std::vector<SearchPolicy> policies{SearchPolicy::kIncremental,
                                           SearchPolicy::kExhaustive,
                                           SearchPolicy::kTabu};
  std::vector<AxisPoint> policy_points;
  for (SearchPolicy policy : policies) {
    policy_points.emplace_back(search_policy_name(policy),
                               [policy](ExperimentBuilder& b) {
                                 b.policy(policy);
                               });
  }

  SweepSpec spec;
  spec.name("ablation_search_algorithms")
      .base([](ExperimentBuilder& b) {
        b.variant("HARS-E").duration(100 * kUsPerSec);
      })
      .benchmarks(all_parsec_benchmarks())
      .axis("policy", std::move(policy_points));

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("incremental vs exhaustive vs tabu");
  table.set_columns({"bench", "policy", "perf/watt", "norm perf",
                     "mgr CPU %"});
  for (const Record& row : sink.rows()) {
    table.add_text_row({std::string(row.text("bench")),
                        std::string(row.text("policy")),
                        format_value(row.number("perf_per_watt")),
                        format_value(row.number("norm_perf")),
                        format_value(row.number("manager_cpu_pct"))});
  }
  Aggregator agg;
  agg.group_by({"policy"}).geomean("perf_per_watt");
  for (const Record& row : agg.apply(sink.rows())) {
    table.add_text_row({"GM", std::string(row.text("policy")),
                        format_value(row.number("geomean_perf_per_watt")), "",
                        ""});
  }
  table.print(std::cout);
  print_sweep_summary(std::cout, report);
  std::puts("Shape check: exhaustive and tabu clearly beat incremental;");
  std::puts("tabu is competitive with exhaustive at lower candidate cost.");
  return 0;
}
