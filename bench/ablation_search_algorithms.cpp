// Ablation (§3.1.4 option 4): search algorithms — HARS-I's one-step
// incremental sweep, HARS-E's exhaustive neighbourhood, and the tabu-
// search trajectory proposed as the escape from local optima.
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: search algorithm (default target)\n");

  const SearchPolicy policies[] = {SearchPolicy::kIncremental,
                                   SearchPolicy::kExhaustive,
                                   SearchPolicy::kTabu};
  ReportTable table("incremental vs exhaustive vs tabu");
  table.set_columns({"bench", "policy", "perf/watt", "norm perf",
                     "mgr CPU %"});
  std::vector<double> pp_by_policy[3];
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    for (int pi = 0; pi < 3; ++pi) {
      const ExperimentResult r = ExperimentBuilder()
                                     .app(bench)
                                     .variant("HARS-E")
                                     .policy(policies[pi])
                                     .duration(100 * kUsPerSec)
                                     .build()
                                     .run();
      table.add_text_row({parsec_code(bench), search_policy_name(policies[pi]),
                          format_value(r.app().metrics.perf_per_watt),
                          format_value(r.app().metrics.norm_perf),
                          format_value(r.app().metrics.manager_cpu_pct)});
      pp_by_policy[pi].push_back(r.app().metrics.perf_per_watt);
    }
  }
  for (int pi = 0; pi < 3; ++pi) {
    table.add_text_row({"GM", search_policy_name(policies[pi]),
                        format_value(geomean(pp_by_policy[pi])), "", ""});
  }
  table.print(std::cout);
  std::puts("Shape check: exhaustive and tabu clearly beat incremental;");
  std::puts("tabu is competitive with exhaustive at lower candidate cost.");
  return 0;
}
