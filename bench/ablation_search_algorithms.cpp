// Ablation (§3.1.4 option 4): search algorithms — HARS-I's one-step
// incremental sweep, HARS-E's exhaustive neighbourhood, and the tabu-
// search trajectory proposed as the escape from local optima.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Ablation: search algorithm (default target)\n");

  ReportTable table("incremental vs exhaustive vs tabu");
  table.set_columns({"bench", "policy", "perf/watt", "norm perf",
                     "mgr CPU %"});
  std::vector<double> pp_by_policy[3];
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    for (int policy : {0, 1, 2}) {
      SingleRunOptions options;
      options.duration = 100 * kUsPerSec;
      options.override_policy = policy;
      const SingleRunResult r = run_single(bench, SingleVersion::kHarsE, options);
      const char* name = policy == 0   ? "incremental"
                         : policy == 1 ? "exhaustive"
                                       : "tabu";
      table.add_text_row({parsec_code(bench), name,
                          format_value(r.metrics.perf_per_watt),
                          format_value(r.metrics.norm_perf),
                          format_value(r.metrics.manager_cpu_pct)});
      pp_by_policy[policy].push_back(r.metrics.perf_per_watt);
    }
  }
  table.add_text_row({"GM", "incremental", format_value(geomean(pp_by_policy[0])),
                      "", ""});
  table.add_text_row({"GM", "exhaustive", format_value(geomean(pp_by_policy[1])),
                      "", ""});
  table.add_text_row({"GM", "tabu", format_value(geomean(pp_by_policy[2])),
                      "", ""});
  table.print(std::cout);
  std::puts("Shape check: exhaustive and tabu clearly beat incremental;");
  std::puts("tabu is competitive with exhaustive at lower candidate cost.");
  return 0;
}
