// backend_bench: the Backend HAL interface-overhead campaign.
//
// The HAL put a virtual-dispatch boundary between the runtime managers
// and the simulator; this bench makes that boundary's cost a tracked,
// gated metric (BENCH_backend.json, merged by bench_report like the
// other BENCH artifacts). Three measurements:
//
//  1. Identity: the same HARS-E run constructed through the SimEngine&
//     compatibility ctor and through an explicit SimBackend must be
//     bit-identical (adaptations, heartbeats, final state, energy) and
//     comparably fast — min-of-reps wall clock for both.
//  2. Call census: a counting decorator over SimBackend tallies every
//     HAL call the manager run actually issues.
//  3. Dispatch micro: ns/call for a hot observe/actuate mix through the
//     concrete SimBackend (devirtualized) and through Backend& (vtable);
//     the delta times the call census, as a share of the run's wall
//     clock, is the interface overhead — gated at --budget percent
//     (default 2).
//
//   backend_bench [--duration SEC] [--reps N] [--budget PCT] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/data_parallel_app.hpp"
#include "backend/sim_backend.hpp"
#include "core/power_profiler.hpp"
#include "core/runtime_manager.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"
#include "sweep/result_sink.hpp"

namespace {

using namespace hars;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Forwards every Backend call to the wrapped backend, counting it.
class CountingBackend final : public Backend {
 public:
  CountingBackend(Backend& inner, long long& calls)
      : inner_(inner), calls_(calls) {}

  const char* name() const override { return inner_.name(); }
  BackendCaps caps() const override { return inner_.caps(); }
  const Machine& topology() const override {
    ++calls_;
    return inner_.topology();
  }
  double core_busy_fraction(CoreId core) const override {
    ++calls_;
    return inner_.core_busy_fraction(core);
  }
  TimeUs elapsed_work_us(AppId app, int tid) const override {
    ++calls_;
    return inner_.elapsed_work_us(app, tid);
  }
  double energy_j() const override {
    ++calls_;
    return inner_.energy_j();
  }
  int num_apps() const override {
    ++calls_;
    return inner_.num_apps();
  }
  bool app_alive(AppId app) const override {
    ++calls_;
    return inner_.app_alive(app);
  }
  int thread_count(AppId app) const override {
    ++calls_;
    return inner_.thread_count(app);
  }
  std::vector<int> thread_group_sizes(AppId app) const override {
    ++calls_;
    return inner_.thread_group_sizes(app);
  }
  HeartbeatMonitor& heartbeats(AppId app) override {
    ++calls_;
    return inner_.heartbeats(app);
  }
  void set_dvfs_level(ClusterId cluster, int level) override {
    ++calls_;
    inner_.set_dvfs_level(cluster, level);
  }
  int dvfs_level(ClusterId cluster) const override {
    ++calls_;
    return inner_.dvfs_level(cluster);
  }
  void place(AppId app, int tid, CpuMask mask) override {
    ++calls_;
    inner_.place(app, tid, mask);
  }
  void place_app(AppId app, CpuMask mask) override {
    ++calls_;
    inner_.place_app(app, mask);
  }
  CoreId thread_core(AppId app, int tid) const override {
    ++calls_;
    return inner_.thread_core(app, tid);
  }
  void set_online_mask(CpuMask mask) override {
    ++calls_;
    inner_.set_online_mask(mask);
  }
  TimeSource& time() override { return inner_.time(); }
  void attach_manager(ManagerHook* manager) override {
    inner_.attach_manager(manager);
  }
  void run_until(TimeUs t) override { inner_.run_until(t); }
  const PowerModel& profiling_model() const override {
    return inner_.profiling_model();
  }
  bool audit_enabled() const override { return inner_.audit_enabled(); }
  double manager_cpu_utilization_pct() const override {
    return inner_.manager_cpu_utilization_pct();
  }
  SimEngine* sim_engine() override { return inner_.sim_engine(); }

 private:
  Backend& inner_;
  long long& calls_;
};

struct RunOutcome {
  double wall_ms = 0.0;
  std::int64_t adaptations = 0;
  std::int64_t heartbeats = 0;
  double rate = 0.0;
  double energy_j = 0.0;
  SystemState final_state;
};

enum class CtorPath { kEngineCompat, kExplicitBackend, kCounting };

RunOutcome run_once(CtorPath path, double duration_sec,
                    long long* calls = nullptr) {
  SimEngine engine{Machine::exynos5422(), std::make_unique<GtsScheduler>()};
  DataParallelConfig cfg;
  cfg.threads = 8;
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.workload = {WorkloadShape::kStable, 4.0, 0.0, 0.0, 1};
  DataParallelApp app("bench", cfg);
  const AppId id = engine.add_app(&app);
  const PerfTarget target = PerfTarget::around(2.0);
  const PowerCoeffTable coeffs =
      profile_power(engine.machine(), engine.power_model());

  SimBackend sim_backend(engine);
  long long local_calls = 0;
  CountingBackend counting(sim_backend, local_calls);

  std::unique_ptr<RuntimeManager> manager;
  const auto t0 = Clock::now();
  switch (path) {
    case CtorPath::kEngineCompat:
      manager = std::make_unique<RuntimeManager>(engine, id, target, coeffs);
      break;
    case CtorPath::kExplicitBackend:
      manager =
          std::make_unique<RuntimeManager>(sim_backend, id, target, coeffs);
      break;
    case CtorPath::kCounting:
      manager = std::make_unique<RuntimeManager>(counting, id, target, coeffs);
      break;
  }
  engine.set_manager(manager.get());
  engine.run_for(static_cast<TimeUs>(duration_sec * kUsPerSec));

  RunOutcome out;
  out.wall_ms = ms_since(t0);
  out.adaptations = manager->adaptations();
  out.heartbeats = app.heartbeats().count();
  out.rate = app.heartbeats().rate();
  out.energy_j = engine.sensor().total_energy_j();
  out.final_state = manager->current_state();
  if (calls != nullptr) *calls = local_calls;
  return out;
}

bool identical(const RunOutcome& a, const RunOutcome& b) {
  return a.adaptations == b.adaptations && a.heartbeats == b.heartbeats &&
         a.rate == b.rate && a.energy_j == b.energy_j &&
         a.final_state == b.final_state;
}

/// The micro mix: the observe/actuate calls a manager tick leans on.
/// Templated on the static type, so the same code measures devirtualized
/// (SimBackend&) and vtable (Backend&) dispatch.
template <typename BackendRef>
double measure_mix_ns_per_call(BackendRef& backend, const Machine& m,
                               AppId id, int iters) {
  volatile double sink = 0.0;
  volatile int isink = 0;
  const ClusterId big = m.fastest_cluster();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink = sink + backend.heartbeats(id).rate();
    isink = isink + backend.dvfs_level(big);
    sink = sink + backend.core_busy_fraction(static_cast<CoreId>(i & 7));
    backend.set_dvfs_level(big, (i & 1) ? 2 : 3);
    isink = isink + backend.thread_count(id);
  }
  const double ns = ms_since(t0) * 1e6;
  (void)sink;
  (void)isink;
  return ns / (5.0 * iters);  // 5 HAL calls per iteration.
}

}  // namespace

int main(int argc, char** argv) {
  double duration_sec = 60.0;
  int reps = 3;
  double budget_pct = 2.0;
  std::string out_path = "BENCH_backend.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: backend_bench [--duration SEC] [--reps N] "
                   "[--budget PCT] [--out FILE]\n");
      return 2;
    }
  }

  // ---- 1. Identity + wall clock, both ctor paths ----------------------
  double compat_ms = 1e300;
  double hal_ms = 1e300;
  RunOutcome compat_out;
  RunOutcome hal_out;
  for (int r = 0; r < reps; ++r) {
    const RunOutcome a = run_once(CtorPath::kEngineCompat, duration_sec);
    const RunOutcome b = run_once(CtorPath::kExplicitBackend, duration_sec);
    compat_ms = std::min(compat_ms, a.wall_ms);
    hal_ms = std::min(hal_ms, b.wall_ms);
    compat_out = a;
    hal_out = b;
  }
  const bool runs_identical = identical(compat_out, hal_out);
  std::printf("identity         compat %.1f ms, explicit backend %.1f ms, "
              "records %s\n",
              compat_ms, hal_ms, runs_identical ? "identical" : "DIVERGENT");

  // ---- 2. Call census --------------------------------------------------
  long long hal_calls = 0;
  run_once(CtorPath::kCounting, duration_sec, &hal_calls);
  std::printf("call census      %lld HAL calls over %.0f sim-seconds\n",
              hal_calls, duration_sec);

  // ---- 3. Dispatch micro ----------------------------------------------
  SimEngine engine{Machine::exynos5422(), std::make_unique<GtsScheduler>()};
  DataParallelConfig cfg;
  cfg.threads = 8;
  DataParallelApp app("micro", cfg);
  const AppId id = engine.add_app(&app);
  SimBackend concrete(engine);
  Backend& virt = concrete;
  const int iters = 400000;
  // Warm both paths once, then min-of-3 each.
  double direct_ns = 1e300;
  double virtual_ns = 1e300;
  for (int r = 0; r < 3; ++r) {
    direct_ns = std::min(
        direct_ns,
        measure_mix_ns_per_call(concrete, engine.machine(), id, iters));
    virtual_ns = std::min(
        virtual_ns, measure_mix_ns_per_call(virt, engine.machine(), id, iters));
  }
  const double per_call_overhead_ns = std::max(0.0, virtual_ns - direct_ns);
  // The gated number: dispatch overhead across every HAL call the run
  // issues, as a share of the run's wall clock.
  const double overhead_pct =
      hal_ms > 0.0
          ? 100.0 * (static_cast<double>(hal_calls) * per_call_overhead_ns) /
                (hal_ms * 1e6)
          : 0.0;
  const bool within_budget = overhead_pct <= budget_pct;
  std::printf("dispatch micro   %.2f ns/call devirtualized, %.2f ns/call "
              "virtual (+%.2f ns)\n",
              direct_ns, virtual_ns, per_call_overhead_ns);
  std::printf("interface        %.4f%% of wall clock (budget %.1f%%): %s\n",
              overhead_pct, budget_pct, within_budget ? "ok" : "OVER BUDGET");

  std::ofstream out(out_path);
  out << "{\n  \"campaign\": \"backend_bench\",\n"
      << "  \"duration_sec\": " << format_number(duration_sec)
      << ",\n  \"reps\": " << reps
      << ",\n  \"compat_wall_ms\": " << format_number(compat_ms)
      << ",\n  \"hal_wall_ms\": " << format_number(hal_ms)
      << ",\n  \"records_identical\": "
      << (runs_identical ? "true" : "false")
      << ",\n  \"hal_calls\": " << hal_calls
      << ",\n  \"direct_ns_per_call\": " << format_number(direct_ns)
      << ",\n  \"virtual_ns_per_call\": " << format_number(virtual_ns)
      << ",\n  \"per_call_overhead_ns\": "
      << format_number(per_call_overhead_ns)
      << ",\n  \"overhead_pct\": " << format_number(overhead_pct)
      << ",\n  \"budget_pct\": " << format_number(budget_pct)
      << ",\n  \"within_budget\": " << (within_budget ? "true" : "false")
      << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  return (runs_identical && within_budget && out.good()) ? 0 : 1;
}
