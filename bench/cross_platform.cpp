// cross_platform: the platform-diversity smoke campaign.
//
// For every registered platform (or the --platform subset), runs the full
// catalogue of runtime versions on one benchmark as a SweepSpec — twice,
// serially and on the worker pool — verifies the two passes produced
// byte-identical sink records, and writes BENCH_platforms.json with the
// per-platform wall clocks so CI tracks how the engine scales across
// topologies (2-cluster big.LITTLE, tri-cluster mobile, symmetric server,
// many-core).
//
//   cross_platform [--jobs N] [--duration SEC] [--platform NAME]...
//                  [--out BENCH_platforms.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/variant_registry.hpp"
#include "hmp/platform_registry.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

namespace {

using namespace hars;

SweepSpec platform_spec(const std::string& platform, double duration_sec) {
  SweepSpec spec;
  spec.name("cross_platform_" + platform)
      .base([duration_sec](ExperimentBuilder& b) {
        b.duration_sec(duration_sec);
      })
      .platforms({platform})
      .benchmarks({ParsecBenchmark::kSwaptions})
      .variants(VariantRegistry::instance().names());
  return spec;
}

std::string records_fingerprint(const SweepReport& report) {
  std::ostringstream out;
  CsvSink csv(out);
  for (const CaseOutcome& outcome : report.outcomes) {
    for (const Record& record : outcome.records) csv.write(record);
  }
  return out.str();
}

struct PlatformRun {
  std::string platform;
  std::size_t cases = 0;
  std::size_t failures = 0;
  double serial_wall_ms = 0.0;
  double parallel_wall_ms = 0.0;
  bool records_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_platforms.json";
  double duration_sec = 20.0;
  int jobs = 0;  // 0 = hardware concurrency.
  std::vector<std::string> platforms;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--platform") == 0 && i + 1 < argc) {
      platforms.push_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: cross_platform [--jobs N] [--duration SEC] "
                   "[--platform NAME]... [--out FILE]\n");
      return 2;
    }
  }
  if (platforms.empty()) platforms = PlatformRegistry::instance().names();
  for (const std::string& platform : platforms) {
    if (PlatformRegistry::instance().find(platform) == nullptr) {
      std::fprintf(stderr, "unknown platform %s\n", platform.c_str());
      return 2;
    }
  }

  std::vector<PlatformRun> runs;
  for (const std::string& platform : platforms) {
    const SweepSpec spec = platform_spec(platform, duration_sec);

    // Untimed warm-up populates the calibration / static-optimal caches so
    // the timed passes compare engine behaviour, not cache state.
    SweepEngine warmup(SweepOptions{.jobs = 1, .keep_results = false});
    (void)warmup.run(spec);

    SweepEngine serial(SweepOptions{.jobs = 1, .keep_results = false});
    const SweepReport serial_report = serial.run(spec);
    SweepEngine parallel(SweepOptions{.jobs = jobs, .keep_results = false});
    const SweepReport parallel_report = parallel.run(spec);

    PlatformRun run;
    run.platform = platform;
    run.cases = serial_report.outcomes.size();
    run.failures = report_sweep_failures(std::cerr, serial_report) +
                   report_sweep_failures(std::cerr, parallel_report);
    run.serial_wall_ms = serial_report.wall_ms;
    run.parallel_wall_ms = parallel_report.wall_ms;
    run.records_identical =
        records_fingerprint(serial_report) == records_fingerprint(parallel_report);
    std::printf("%-14s %2zu cases  serial %8.1f ms  parallel %8.1f ms  %s\n",
                platform.c_str(), run.cases, run.serial_wall_ms,
                run.parallel_wall_ms,
                run.records_identical ? "records identical" : "DIVERGENT");
    runs.push_back(run);
  }

  bool all_identical = true;
  std::size_t total_failures = 0;
  std::ofstream out(out_path);
  out << "{\n  \"campaign\": \"cross_platform\",\n  \"platforms\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const PlatformRun& run = runs[i];
    all_identical &= run.records_identical;
    total_failures += run.failures;
    out << "    {\"platform\": \"" << run.platform
        << "\", \"cases\": " << run.cases
        << ", \"serial_wall_ms\": " << format_number(run.serial_wall_ms)
        << ", \"parallel_wall_ms\": " << format_number(run.parallel_wall_ms)
        << ", \"records_identical\": "
        << (run.records_identical ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu platforms, records %s)\n", out_path.c_str(),
              runs.size(), all_identical ? "identical" : "DIVERGENT");

  if (!all_identical || total_failures > 0) return 1;
  return 0;
}
