// Regenerates Figure 5.1: performance/watt of {Baseline, SO, HARS-I,
// HARS-E, HARS-EI} for the six PARSEC benchmarks at the default target
// (50% +/- 5% of max achievable performance), normalized to the baseline,
// with the geometric mean in the last row.
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Figure 5.1 reproduction: perf/watt, default target (50% +/- 5%)");
  std::puts("Values normalized to the Baseline version.\n");

  const std::vector<std::string> versions{"Baseline", "SO", "HARS-I",
                                          "HARS-E", "HARS-EI"};
  ReportTable table("Performance/Power (normalized to Baseline)");
  std::vector<std::string> cols{"bench"};
  for (const std::string& v : versions) cols.push_back(v);
  table.set_columns(cols);

  std::vector<std::vector<double>> normalized(versions.size());
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    double baseline_pp = 0.0;
    std::vector<double> row;
    for (std::size_t vi = 0; vi < versions.size(); ++vi) {
      const ExperimentResult r = ExperimentBuilder()
                                     .app(bench)
                                     .variant(versions[vi])
                                     .target_fraction(0.50)
                                     .build()
                                     .run();
      if (versions[vi] == "Baseline") {
        baseline_pp = r.app().metrics.perf_per_watt;
      }
      const double norm = baseline_pp > 0.0
                              ? r.app().metrics.perf_per_watt / baseline_pp
                              : 0.0;
      row.push_back(norm);
      normalized[vi].push_back(norm);
    }
    table.add_row(parsec_code(bench), row);
  }
  std::vector<double> gm_row;
  for (const auto& series : normalized) gm_row.push_back(geomean(series));
  table.add_row("GM", gm_row);
  table.print(std::cout);

  std::puts("Paper shape check: Baseline = 1.0 lowest; SO >> Baseline;");
  std::puts("HARS-I > Baseline; HARS-E ~ SO; HARS-EI best on GM.");
  return 0;
}
