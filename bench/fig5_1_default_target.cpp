// Regenerates Figure 5.1: performance/watt of {Baseline, SO, HARS-I,
// HARS-E, HARS-EI} for the six PARSEC benchmarks at the default target
// (50% +/- 5% of max achievable performance), normalized to the baseline,
// with the geometric mean in the last row.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Figure 5.1 reproduction: perf/watt, default target (50% +/- 5%)");
  std::puts("Values normalized to the Baseline version.\n");

  const auto versions = all_single_versions();
  ReportTable table("Performance/Power (normalized to Baseline)");
  std::vector<std::string> cols{"bench"};
  for (SingleVersion v : versions) cols.push_back(single_version_name(v));
  table.set_columns(cols);

  std::vector<std::vector<double>> normalized(versions.size());
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    SingleRunOptions options;
    options.target_fraction = 0.50;
    double baseline_pp = 0.0;
    std::vector<double> row;
    for (std::size_t vi = 0; vi < versions.size(); ++vi) {
      const SingleRunResult r = run_single(bench, versions[vi], options);
      if (versions[vi] == SingleVersion::kBaseline) {
        baseline_pp = r.metrics.perf_per_watt;
      }
      const double norm = baseline_pp > 0.0
                              ? r.metrics.perf_per_watt / baseline_pp
                              : 0.0;
      row.push_back(norm);
      normalized[vi].push_back(norm);
    }
    table.add_row(parsec_code(bench), row);
  }
  std::vector<double> gm_row;
  for (const auto& series : normalized) gm_row.push_back(geomean(series));
  table.add_row("GM", gm_row);
  table.print(std::cout);

  std::puts("Paper shape check: Baseline = 1.0 lowest; SO >> Baseline;");
  std::puts("HARS-I > Baseline; HARS-E ~ SO; HARS-EI best on GM.");
  return 0;
}
