// Regenerates Figure 5.2: performance/watt at the high target
// (75% +/- 5% of max achievable performance), normalized to baseline.
// Expected difference vs. Figure 5.1: smaller efficiency gains (less
// energy slack below the maximum configuration). The bench x version grid
// runs through the SweepEngine (--jobs N parallelizes it).
#include <iostream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Figure 5.2 reproduction: perf/watt, high target (75% +/- 5%)");
  std::puts("Values normalized to the Baseline version.\n");

  const std::vector<std::string> versions{"Baseline", "SO", "HARS-I",
                                          "HARS-E", "HARS-EI"};
  SweepSpec spec;
  spec.name("fig5_2")
      .base([](ExperimentBuilder& b) { b.target_fraction(0.75); })
      .benchmarks(all_parsec_benchmarks())
      .variants(versions);

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("Performance/Power (normalized to Baseline)");
  std::vector<std::string> cols{"bench"};
  for (const std::string& v : versions) cols.push_back(v);
  table.set_columns(cols);

  std::vector<std::vector<double>> normalized(versions.size());
  for (ParsecBenchmark bench : all_parsec_benchmarks()) {
    const std::string_view code = parsec_code(bench);
    const double baseline_pp = record_number(
        sink.rows(), {{"bench", code}, {"variant", "Baseline"}},
        "perf_per_watt");
    std::vector<double> row;
    for (std::size_t vi = 0; vi < versions.size(); ++vi) {
      const double pp = record_number(
          sink.rows(), {{"bench", code}, {"variant", versions[vi]}},
          "perf_per_watt");
      const double norm = baseline_pp > 0.0 ? pp / baseline_pp : 0.0;
      row.push_back(norm);
      normalized[vi].push_back(norm);
    }
    table.add_row(parsec_code(bench), row);
  }
  std::vector<double> gm_row;
  for (const auto& series : normalized) gm_row.push_back(geomean(series));
  table.add_row("GM", gm_row);
  table.print(std::cout);

  print_sweep_summary(std::cout, report);
  std::puts("Paper shape check: gains over Baseline smaller than Fig 5.1;");
  std::puts("HARS versions remain comparable to SO.");
  return 0;
}
