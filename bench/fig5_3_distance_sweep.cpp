// Regenerates Figure 5.3: (a) geometric-mean normalized perf/watt and
// (b) runtime-manager CPU utilization of HARS-EI as the search distance d
// sweeps 1..9 (step 2), for both targets. Perf/watt is normalized to d=1,
// as in the paper.
#include <iostream>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Figure 5.3 reproduction: efficiency & overhead vs distance d");
  std::puts("HARS-EI, all six benchmarks, geometric mean; d in {1,3,5,7,9}.\n");

  const std::vector<int> distances{1, 3, 5, 7, 9};
  const std::vector<double> fractions{0.50, 0.75};

  std::vector<std::vector<double>> pp(fractions.size());      // [target][d]
  std::vector<std::vector<double>> util(fractions.size());

  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    for (int d : distances) {
      std::vector<double> pps;
      std::vector<double> utils;
      for (ParsecBenchmark bench : all_parsec_benchmarks()) {
        const ExperimentResult r = ExperimentBuilder()
                                       .app(bench)
                                       .variant("HARS-EI")
                                       .target_fraction(fractions[fi])
                                       .search_distance(d)
                                       .duration(90 * kUsPerSec)
                                       .build()
                                       .run();
        pps.push_back(r.app().metrics.perf_per_watt);
        utils.push_back(r.app().metrics.manager_cpu_pct);
      }
      pp[fi].push_back(geomean(pps));
      util[fi].push_back(mean(utils));
    }
  }

  ReportTable table_a("(a) Normalized perf/watt vs distance (normalized to d=1)");
  table_a.set_columns({"d", "Default Perf. Target", "High Perf. Target"});
  for (std::size_t di = 0; di < distances.size(); ++di) {
    table_a.add_row(std::to_string(distances[di]),
                    {pp[0][di] / pp[0][0], pp[1][di] / pp[1][0]});
  }
  table_a.print(std::cout);

  ReportTable table_b("(b) HARS CPU utilization (%) vs distance");
  table_b.set_columns({"d", "Default Perf. Target", "High Perf. Target"});
  for (std::size_t di = 0; di < distances.size(); ++di) {
    table_b.add_row(std::to_string(distances[di]), {util[0][di], util[1][di]});
  }
  table_b.print(std::cout);

  std::puts("Paper shape check: efficiency rises with d and flattens around");
  std::puts("d ~ 5-7; CPU utilization grows with d but stays small (< ~6%).");
  return 0;
}
