// Regenerates Figure 5.3: (a) geometric-mean normalized perf/watt and
// (b) runtime-manager CPU utilization of HARS-EI as the search distance d
// sweeps 1..9 (step 2), for both targets. Perf/watt is normalized to d=1,
// as in the paper. The fraction x distance x bench grid is one SweepSpec;
// the per-(fraction, distance) geomean/mean reductions run through the
// Aggregator.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "sweep/aggregator.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Figure 5.3 reproduction: efficiency & overhead vs distance d");
  std::puts("HARS-EI, all six benchmarks, geometric mean; d in {1,3,5,7,9}.\n");

  const std::vector<int> distances{1, 3, 5, 7, 9};
  const std::vector<double> fractions{0.50, 0.75};

  SweepSpec spec;
  spec.name("fig5_3")
      .base([](ExperimentBuilder& b) {
        b.variant("HARS-EI").duration(90 * kUsPerSec);
      })
      .target_fractions(fractions)
      .search_distances(distances)
      .benchmarks(all_parsec_benchmarks());

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  Aggregator agg;
  agg.group_by({"fraction", "distance"})
      .geomean("perf_per_watt")
      .mean("manager_cpu_pct");
  const std::vector<Record> grouped = agg.apply(sink.rows());

  const auto grouped_value = [&](double fraction, int d,
                                 std::string_view column) {
    return record_number(grouped,
                         {{"fraction", format_number(fraction)},
                          {"distance", std::to_string(d)}},
                         column);
  };

  ReportTable table_a("(a) Normalized perf/watt vs distance (normalized to d=1)");
  table_a.set_columns({"d", "Default Perf. Target", "High Perf. Target"});
  for (int d : distances) {
    std::vector<double> row;
    for (double fraction : fractions) {
      const double at_d1 = grouped_value(fraction, 1, "geomean_perf_per_watt");
      row.push_back(grouped_value(fraction, d, "geomean_perf_per_watt") /
                    at_d1);
    }
    table_a.add_row(std::to_string(d), row);
  }
  table_a.print(std::cout);

  ReportTable table_b("(b) HARS CPU utilization (%) vs distance");
  table_b.set_columns({"d", "Default Perf. Target", "High Perf. Target"});
  for (int d : distances) {
    std::vector<double> row;
    for (double fraction : fractions) {
      row.push_back(grouped_value(fraction, d, "mean_manager_cpu_pct"));
    }
    table_b.add_row(std::to_string(d), row);
  }
  table_b.print(std::cout);

  print_sweep_summary(std::cout, report);
  std::puts("Paper shape check: efficiency rises with d and flattens around");
  std::puts("d ~ 5-7; CPU utilization grows with d but stays small (< ~6%).");
  return 0;
}
