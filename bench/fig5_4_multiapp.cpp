// Regenerates Figure 5.4: performance/watt of {Baseline, CONS-I,
// MP-HARS-I, MP-HARS-E} on the six two-application cases (targets at
// 50% +/- 5% of each benchmark's standalone maximum), normalized to the
// baseline, with the geometric mean over all per-app bars.
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hars;
  std::puts("Figure 5.4 reproduction: multi-application perf/watt");
  std::puts("Values normalized to the Baseline version of the same app/case.\n");

  const std::vector<std::string> versions{"Baseline", "CONS-I", "MP-HARS-I",
                                          "MP-HARS-E"};
  const auto cases = multiapp_cases();

  ReportTable table("Performance/Power (normalized to Baseline)");
  std::vector<std::string> cols{"case", "app"};
  for (const std::string& v : versions) cols.push_back(v);
  table.set_columns(cols);

  std::vector<std::vector<double>> normalized(versions.size());
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::vector<ExperimentResult> results;
    results.reserve(versions.size());
    for (const std::string& v : versions) {
      results.push_back(ExperimentBuilder()
                            .apps(cases[ci])
                            .variant(v)
                            .duration(150 * kUsPerSec)
                            .build()
                            .run());
    }
    const ExperimentResult& base = results.front();
    for (std::size_t ai = 0; ai < cases[ci].size(); ++ai) {
      std::vector<std::string> row{"Case " + std::to_string(ci + 1),
                                   parsec_code(cases[ci][ai])};
      for (std::size_t vi = 0; vi < versions.size(); ++vi) {
        const double b = base.apps[ai].metrics.perf_per_watt;
        const double norm =
            b > 0.0 ? results[vi].apps[ai].metrics.perf_per_watt / b : 0.0;
        row.push_back(format_value(norm));
        normalized[vi].push_back(norm);
      }
      table.add_text_row(row);
    }
  }
  std::vector<std::string> gm_row{"GM", ""};
  for (const auto& series : normalized) gm_row.push_back(format_value(geomean(series)));
  table.add_text_row(gm_row);
  table.print(std::cout);

  std::puts("Paper shape check: MP-HARS-E > CONS-I > Baseline on GM");
  std::puts("(paper: +217% over baseline, +46% over CONS-I); CONS-I wins");
  std::puts("case 6 (BO+BL) because BL's heartbeats start late.");
  return 0;
}
