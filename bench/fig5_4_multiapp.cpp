// Regenerates Figure 5.4: performance/watt of {Baseline, CONS-I,
// MP-HARS-I, MP-HARS-E} on the six two-application cases (targets at
// 50% +/- 5% of each benchmark's standalone maximum), normalized to the
// baseline, with the geometric mean over all per-app bars. The six cases
// form an explicit case axis crossed with the version axis.
#include <iostream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Figure 5.4 reproduction: multi-application perf/watt");
  std::puts("Values normalized to the Baseline version of the same app/case.\n");

  const std::vector<std::string> versions{"Baseline", "CONS-I", "MP-HARS-I",
                                          "MP-HARS-E"};
  const auto cases = multiapp_cases();

  std::vector<AxisPoint> case_points;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const std::vector<ParsecBenchmark> benches = cases[ci];
    case_points.emplace_back(
        "Case " + std::to_string(ci + 1), static_cast<double>(ci + 1),
        [benches](ExperimentBuilder& b) { b.apps(benches); });
  }

  SweepSpec spec;
  spec.name("fig5_4")
      .base([](ExperimentBuilder& b) { b.duration(150 * kUsPerSec); })
      .axis("mcase", std::move(case_points))
      .variants(versions);

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("Performance/Power (normalized to Baseline)");
  std::vector<std::string> cols{"case", "app"};
  for (const std::string& v : versions) cols.push_back(v);
  table.set_columns(cols);

  const auto pp_of = [&](std::size_t ci, const std::string& version,
                         std::size_t app_index) {
    return record_number(sink.rows(),
                         {{"mcase", format_number(static_cast<double>(ci + 1))},
                          {"variant", version},
                          {"app_index", std::to_string(app_index)}},
                         "perf_per_watt");
  };

  std::vector<std::vector<double>> normalized(versions.size());
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    for (std::size_t ai = 0; ai < cases[ci].size(); ++ai) {
      std::vector<std::string> row{"Case " + std::to_string(ci + 1),
                                   parsec_code(cases[ci][ai])};
      const double base = pp_of(ci, "Baseline", ai);
      for (std::size_t vi = 0; vi < versions.size(); ++vi) {
        const double norm =
            base > 0.0 ? pp_of(ci, versions[vi], ai) / base : 0.0;
        row.push_back(format_value(norm));
        normalized[vi].push_back(norm);
      }
      table.add_text_row(row);
    }
  }
  std::vector<std::string> gm_row{"GM", ""};
  for (const auto& series : normalized) {
    gm_row.push_back(format_value(geomean(series)));
  }
  table.add_text_row(gm_row);
  table.print(std::cout);

  print_sweep_summary(std::cout, report);
  std::puts("Paper shape check: MP-HARS-E > CONS-I > Baseline on GM");
  std::puts("(paper: +217% over baseline, +46% over CONS-I); CONS-I wins");
  std::puts("case 6 (BO+BL) because BL's heartbeats start late.");
  return 0;
}
