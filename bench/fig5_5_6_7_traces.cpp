// Regenerates Figures 5.5 / 5.6 / 5.7: behaviour graphs of case 4 (BO+FL)
// under CONS-I, MP-HARS-I and MP-HARS-E. For each app the trace records
// HPS, allocated big/little core count, target window and cluster
// frequencies per heartbeat. The three versions run as one SweepSpec
// (keep_results retains the full traces); summaries are printed and the
// full series are written to CSV next to the binary.
#include <cstdio>
#include <iostream>
#include <string>

#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using namespace hars;

void dump_trace(const std::string& fig, const std::string& version,
                const std::vector<ParsecBenchmark>& benches,
                const ExperimentResult& result) {
  for (std::size_t ai = 0; ai < benches.size(); ++ai) {
    const std::string path =
        fig + "_" + version + "_" + parsec_code(benches[ai]) + ".csv";
    CsvWriter csv(path);
    csv.header({"hb_index", "hps", "b_core", "l_core", "target_min",
                "target_max", "b_freq_ghz", "l_freq_ghz"});
    for (const TracePoint& p : result.apps[ai].trace) {
      csv.row({static_cast<double>(p.hb_index), p.hps,
               static_cast<double>(p.big_cores),
               static_cast<double>(p.little_cores), result.apps[ai].target.min,
               result.apps[ai].target.max, p.big_freq_ghz, p.little_freq_ghz});
    }
    std::printf("  wrote %s (%zu points)\n", path.c_str(),
                result.apps[ai].trace.size());
  }
}

void summarize(const std::string& label,
               const std::vector<ParsecBenchmark>& benches,
               const ExperimentResult& result) {
  ReportTable table(label);
  table.set_columns({"app", "avg HPS", "target", "in-window %", "avg B_Core",
                     "avg L_Core", "avg B_Freq", "avg L_Freq"});
  for (std::size_t ai = 0; ai < benches.size(); ++ai) {
    OnlineStats hps, bc, lc, bf, lf;
    for (const TracePoint& p : result.apps[ai].trace) {
      hps.add(p.hps);
      bc.add(p.big_cores);
      lc.add(p.little_cores);
      bf.add(p.big_freq_ghz);
      lf.add(p.little_freq_ghz);
    }
    table.add_text_row(
        {parsec_code(benches[ai]), format_value(hps.mean()),
         format_value(result.apps[ai].target.avg()),
         format_value(100.0 * result.apps[ai].metrics.in_window_fraction),
         format_value(bc.mean()), format_value(lc.mean()),
         format_value(bf.mean()), format_value(lf.mean())});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Figures 5.5-5.7 reproduction: behaviour of case 4 (BO+FL)\n");
  const std::vector<ParsecBenchmark> benches = multiapp_cases()[3];

  const std::vector<std::pair<std::string, std::string>> figures{
      {"fig5_5", "CONS-I"}, {"fig5_6", "MP-HARS-I"}, {"fig5_7", "MP-HARS-E"}};

  SweepSpec spec;
  spec.name("fig5_5_6_7")
      .base([benches](ExperimentBuilder& b) {
        b.apps(benches).duration(150 * kUsPerSec);
      })
      .variants({"CONS-I", "MP-HARS-I", "MP-HARS-E"});

  SweepOptions options = sweep_options_from_cli(argc, argv);
  options.keep_results = true;  // The figures need the full traces.
  SweepEngine engine(options);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  for (std::size_t i = 0; i < figures.size(); ++i) {
    const auto& [fig, version] = figures[i];
    const ExperimentResult& result = report.outcome(i).result;
    summarize("Figure 5." + std::to_string(5 + i) + ": " + version, benches,
              result);
    dump_trace(fig, version, benches, result);
  }

  print_sweep_summary(std::cout, report);
  std::puts("Paper shape check: under CONS-I, FL overshoots its target while");
  std::puts("BO achieves it (shared state cannot decrease); MP-HARS keeps");
  std::puts("both apps near their windows; MP-HARS-E settles on a cheaper");
  std::puts("configuration than MP-HARS-I.");
  return 0;
}
