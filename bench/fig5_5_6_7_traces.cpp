// Regenerates Figures 5.5 / 5.6 / 5.7: behaviour graphs of case 4 (BO+FL)
// under CONS-I, MP-HARS-I and MP-HARS-E. For each app the trace records
// HPS, allocated big/little core count, target window and cluster
// frequencies per heartbeat. Summaries are printed and the full series are
// written to CSV next to the binary.
#include <cstdio>
#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using namespace hars;

void dump_trace(const std::string& fig, const std::string& version,
                const std::vector<ParsecBenchmark>& benches,
                const ExperimentResult& result) {
  for (std::size_t ai = 0; ai < benches.size(); ++ai) {
    const std::string path =
        fig + "_" + version + "_" + parsec_code(benches[ai]) + ".csv";
    CsvWriter csv(path);
    csv.header({"hb_index", "hps", "b_core", "l_core", "target_min",
                "target_max", "b_freq_ghz", "l_freq_ghz"});
    for (const TracePoint& p : result.apps[ai].trace) {
      csv.row({static_cast<double>(p.hb_index), p.hps,
               static_cast<double>(p.big_cores),
               static_cast<double>(p.little_cores), result.apps[ai].target.min,
               result.apps[ai].target.max, p.big_freq_ghz, p.little_freq_ghz});
    }
    std::printf("  wrote %s (%zu points)\n", path.c_str(),
                result.apps[ai].trace.size());
  }
}

void summarize(const char* label, const std::vector<ParsecBenchmark>& benches,
               const ExperimentResult& result) {
  ReportTable table(label);
  table.set_columns({"app", "avg HPS", "target", "in-window %", "avg B_Core",
                     "avg L_Core", "avg B_Freq", "avg L_Freq"});
  for (std::size_t ai = 0; ai < benches.size(); ++ai) {
    OnlineStats hps, bc, lc, bf, lf;
    for (const TracePoint& p : result.apps[ai].trace) {
      hps.add(p.hps);
      bc.add(p.big_cores);
      lc.add(p.little_cores);
      bf.add(p.big_freq_ghz);
      lf.add(p.little_freq_ghz);
    }
    table.add_text_row(
        {parsec_code(benches[ai]), format_value(hps.mean()),
         format_value(result.apps[ai].target.avg()),
         format_value(100.0 * result.apps[ai].metrics.in_window_fraction),
         format_value(bc.mean()), format_value(lc.mean()),
         format_value(bf.mean()), format_value(lf.mean())});
  }
  table.print(std::cout);
}

ExperimentResult run_case(const std::vector<ParsecBenchmark>& benches,
                          const std::string& version) {
  return ExperimentBuilder()
      .apps(benches)
      .variant(version)
      .duration(150 * kUsPerSec)
      .build()
      .run();
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("Figures 5.5-5.7 reproduction: behaviour of case 4 (BO+FL)\n");
  const auto benches = multiapp_cases()[3];

  const ExperimentResult cons = run_case(benches, "CONS-I");
  summarize("Figure 5.5: CONS-I", benches, cons);
  dump_trace("fig5_5", "CONS-I", benches, cons);

  const ExperimentResult mpi = run_case(benches, "MP-HARS-I");
  summarize("Figure 5.6: MP-HARS-I", benches, mpi);
  dump_trace("fig5_6", "MP-HARS-I", benches, mpi);

  const ExperimentResult mpe = run_case(benches, "MP-HARS-E");
  summarize("Figure 5.7: MP-HARS-E", benches, mpe);
  dump_trace("fig5_7", "MP-HARS-E", benches, mpe);

  std::puts("Paper shape check: under CONS-I, FL overshoots its target while");
  std::puts("BO achieves it (shared state cannot decrease); MP-HARS keeps");
  std::puts("both apps near their windows; MP-HARS-E settles on a cheaper");
  std::puts("configuration than MP-HARS-I.");
  return 0;
}
