// fuzz_suite: throughput of the generative fuzzing pipeline.
//
// Three phases, each reported in BENCH_fuzz.json for CI's perf
// trajectory (bench_report folds it into the summary table):
//   * generate — scenarios/sec of ScenarioGenerator across all profiles
//     (spec parse + draw + validate + DSL serialization);
//   * oracle   — oracle runs/sec of run_fuzz_case with audits forced on
//     and the differential reference check enabled;
//   * shrink   — shrink attempts and final event counts for seeded
//     known-bug fixtures (injected oracles), i.e. the cost of producing
//     one minimal corpus repro.
//
//   fuzz_suite [--generate N] [--oracle N] [--shrink N] [--duration SEC]
//              [--seed S] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/fuzz_harness.hpp"
#include "scenario/generator.hpp"
#include "scenario/repro.hpp"
#include "scenario/shrink.hpp"
#include "sweep/result_sink.hpp"
#include "util/rng.hpp"

namespace {

using namespace hars;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int generate_count = 2000;
  int oracle_count = 24;
  int shrink_count = 5;
  double duration_sec = 10.0;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--generate") == 0 && i + 1 < argc) {
      generate_count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--oracle") == 0 && i + 1 < argc) {
      oracle_count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shrink") == 0 && i + 1 < argc) {
      shrink_count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::vector<std::string> profiles = ScenarioGenerator::profiles();

  // --- Phase 1: generation throughput.
  std::size_t events_total = 0;
  const auto gen_start = std::chrono::steady_clock::now();
  for (int i = 0; i < generate_count; ++i) {
    GeneratorSpec spec =
        ScenarioGenerator::profile(profiles[static_cast<std::size_t>(i) %
                                            profiles.size()]);
    spec.seed = seed + static_cast<std::uint64_t>(i);
    const Scenario s = ScenarioGenerator(spec).generate();
    events_total += s.events.size();
    // The DSL round-trip is part of the fuzz loop (corpus writes).
    events_total += s.to_dsl().empty() ? 1 : 0;
  }
  const double gen_ms = ms_since(gen_start);
  const double gen_per_sec = generate_count / (gen_ms / 1e3);
  std::printf("generate  %d scenarios (%zu events) in %.1f ms  (%.0f/s)\n",
              generate_count, events_total, gen_ms, gen_per_sec);

  // --- Phase 2: oracle throughput (audits + differential).
  const std::vector<std::string> oracle_variants{"Baseline", "HARS-E",
                                                 "MP-HARS-E"};
  int oracle_failures = 0;
  const auto oracle_start = std::chrono::steady_clock::now();
  for (int i = 0; i < oracle_count; ++i) {
    GeneratorSpec spec =
        ScenarioGenerator::profile(profiles[static_cast<std::size_t>(i) %
                                            profiles.size()]);
    spec.seed = seed + 1000 + static_cast<std::uint64_t>(i);
    spec.horizon_s = duration_sec;
    ReproCase repro;
    repro.scenario = ScenarioGenerator(spec).generate();
    repro.variant = oracle_variants[static_cast<std::size_t>(i) %
                                    oracle_variants.size()];
    repro.seed = seed;
    repro.duration_sec = duration_sec;
    if (run_fuzz_case(repro, /*differential=*/true).failed) ++oracle_failures;
  }
  const double oracle_ms = ms_since(oracle_start);
  const double oracle_per_sec = oracle_count / (oracle_ms / 1e3);
  std::printf("oracle    %d runs in %.1f ms  (%.1f/s, %d failures)\n",
              oracle_count, oracle_ms, oracle_per_sec, oracle_failures);

  // --- Phase 3: shrink cost on seeded known-bug fixtures.
  int shrink_attempts_total = 0;
  std::size_t shrunk_events_total = 0;
  std::size_t shrunk_events_max = 0;
  int repros = 0;
  const auto shrink_start = std::chrono::steady_clock::now();
  for (int i = 0; i < shrink_count; ++i) {
    GeneratorSpec spec = ScenarioGenerator::profile("storm");
    spec.seed = seed + 2000 + static_cast<std::uint64_t>(i);
    spec.phase_min = 2.2;  // Guarantee a phase_gt2 violation to shrink.
    spec.phase_max = 3.5;
    const Scenario full = ScenarioGenerator(spec).generate();
    if (!injected_failure(full, "phase_gt2")) continue;
    ShrinkStats stats;
    const Scenario minimal = shrink_scenario(
        full,
        [](const Scenario& candidate) {
          return injected_failure(candidate, "phase_gt2").has_value();
        },
        ShrinkOptions{}, &stats);
    ++repros;
    shrink_attempts_total += stats.attempts;
    shrunk_events_total += minimal.events.size();
    shrunk_events_max = std::max(shrunk_events_max, minimal.events.size());
    std::printf("shrink    seed %llu: %zu -> %zu events in %d attempts\n",
                static_cast<unsigned long long>(spec.seed), full.events.size(),
                minimal.events.size(), stats.attempts);
  }
  const double shrink_ms = ms_since(shrink_start);
  const double mean_attempts =
      repros > 0 ? static_cast<double>(shrink_attempts_total) / repros : 0.0;
  const double mean_events =
      repros > 0 ? static_cast<double>(shrunk_events_total) / repros : 0.0;

  std::ofstream out(out_path);
  out << "{\n  \"campaign\": \"fuzz_suite\",\n"
      << "  \"generated\": " << generate_count << ",\n"
      << "  \"generated_events\": " << events_total << ",\n"
      << "  \"gen_wall_ms\": " << format_number(gen_ms) << ",\n"
      << "  \"gen_per_sec\": " << format_number(gen_per_sec) << ",\n"
      << "  \"oracle_runs\": " << oracle_count << ",\n"
      << "  \"oracle_wall_ms\": " << format_number(oracle_ms) << ",\n"
      << "  \"oracle_per_sec\": " << format_number(oracle_per_sec) << ",\n"
      << "  \"oracle_failures\": " << oracle_failures << ",\n"
      << "  \"shrink_repros\": " << repros << ",\n"
      << "  \"shrink_wall_ms\": " << format_number(shrink_ms) << ",\n"
      << "  \"shrink_mean_attempts\": " << format_number(mean_attempts) << ",\n"
      << "  \"shrink_mean_events\": " << format_number(mean_events) << ",\n"
      << "  \"shrink_max_events\": " << shrunk_events_max << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  // The suite doubles as a smoke gate: clean scenarios must pass the
  // oracles, and fixtures must shrink to tiny repros.
  if (oracle_failures != 0) return 1;
  if (repros > 0 && shrunk_events_max > 8) return 1;
  return out.good() ? 0 : 1;
}
