// Micro-benchmarks (google-benchmark) for the hot paths of the runtime:
// the estimators and the Algorithm-2 search at several distances. These
// back the overhead model behind Figure 5.3(b).
#include <benchmark/benchmark.h>

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/power_profiler.hpp"
#include "core/search.hpp"
#include "core/thread_assignment.hpp"

namespace {

using namespace hars;

const Machine& machine() {
  static const Machine m = Machine::exynos5422();
  return m;
}

const PowerEstimator& power_estimator() {
  static const PowerEstimator est(
      profile_power(machine(), PowerModel{machine()}));
  return est;
}

void BM_ThreadAssignment(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign_threads(t, 4, 4, 1.5));
  }
}
BENCHMARK(BM_ThreadAssignment)->Arg(4)->Arg(8)->Arg(64);

void BM_PerfEstimateRate(benchmark::State& state) {
  const PerfEstimator est(machine(), 1.5);
  const SystemState cur{4, 4, 8, 5};
  const SystemState cand{2, 3, 4, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate_rate(cand, cur, 3.0, 8));
  }
}
BENCHMARK(BM_PerfEstimateRate);

void BM_PowerEstimate(benchmark::State& state) {
  const PerfEstimator perf(machine(), 1.5);
  const SystemState s{3, 2, 5, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(power_estimator().estimate(s, 8, perf));
  }
}
BENCHMARK(BM_PowerEstimate);

// The production search path: a manager-owned SearchScratch with one
// memoization epoch per search, exactly as RuntimeManager drives it
// (begin_tick is inside the timed loop — it is part of every real tick).
void BM_SearchByDistance(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const PerfEstimator perf(machine(), 1.5);
  const StateSpace space = StateSpace::from_machine(machine());
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  SearchScratch scratch;
  int candidates = 0;
  for (auto _ : state) {
    scratch.begin_tick(space);
    const SearchResult r = get_next_sys_state(
        3.0, cur, target, SearchParams{4, 4, d}, space, perf,
        power_estimator(), 8, {}, &scratch);
    candidates = r.candidates;
    benchmark::DoNotOptimize(r);
  }
  state.counters["candidates"] = candidates;
}
BENCHMARK(BM_SearchByDistance)->Arg(1)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

// The retained reference implementation, for the memoization-win
// trajectory next to BM_SearchByDistance.
void BM_SearchByDistanceReference(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const PerfEstimator perf(machine(), 1.5);
  const StateSpace space = StateSpace::from_machine(machine());
  const SystemState cur{2, 2, 4, 3};
  const PerfTarget target = PerfTarget::around(2.0);
  int candidates = 0;
  for (auto _ : state) {
    const SearchResult r = get_next_sys_state_reference(
        3.0, cur, target, SearchParams{4, 4, d}, space, perf,
        power_estimator(), 8);
    candidates = r.candidates;
    benchmark::DoNotOptimize(r);
  }
  state.counters["candidates"] = candidates;
}
BENCHMARK(BM_SearchByDistanceReference)->Arg(1)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

void BM_PowerProfiling(benchmark::State& state) {
  const PowerModel model(machine());
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile_power(machine(), model));
  }
}
BENCHMARK(BM_PowerProfiling);

}  // namespace

BENCHMARK_MAIN();
