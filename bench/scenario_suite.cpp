// scenario_suite: the dynamic-scenario perf & adaptation campaign.
//
// Runs every registered scenario preset under a representative single-app
// and multi-app runtime (HARS-E, MP-HARS-E) with trace capture on, and
// reports per (scenario, variant):
//   * wall-clock of the simulated run (the scenario engine's overhead
//     trajectory, tracked by CI like BENCH_sweep.json), and
//   * the adaptation-latency metric: for every mid-run event, the
//     simulated time from the event until every live app's windowed
//     heartbeat rate is back inside its target window ("target
//     reacquired"), averaged over events. Runs that never reacquire
//     before the run ends count the remaining span (censored).
//
//   scenario_suite [--duration SEC] [--sample-ticks N] [--out FILE]
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/trace_sink.hpp"
#include "sweep/result_sink.hpp"

namespace {

using namespace hars;

struct SuiteRow {
  std::string scenario;
  std::string variant;
  double wall_ms = 0.0;
  double mean_adapt_latency_s = 0.0;  ///< 0 when the scenario has no events.
  int events = 0;
  std::size_t samples = 0;
};

/// Mean time-to-reacquire over the scenario's mid-run events, from the
/// capture's sample stream. A tick sample counts as "reacquired" when
/// every app present in it beats inside its target window.
double mean_adapt_latency_s(const Scenario& scenario, const TraceSink& sink,
                            TimeUs run_end, int* events_out) {
  // Bucket samples by time, preserving order.
  std::vector<std::pair<TimeUs, bool>> in_window_at;  // (t, all-in-window)
  TimeUs current = -1;
  bool all_in = true;
  for (const Record& r : sink.samples()) {
    const auto t = static_cast<TimeUs>(r.number("t_us"));
    if (t != current) {
      if (current >= 0) in_window_at.emplace_back(current, all_in);
      current = t;
      all_in = true;
    }
    const double hps = r.number("hps");
    all_in = all_in && hps >= r.number("target_min") &&
             hps <= r.number("target_max");
  }
  if (current >= 0) in_window_at.emplace_back(current, all_in);

  double total_s = 0.0;
  int events = 0;
  for (const ScenarioEvent& event : scenario.events) {
    if (event.time <= 0 || event.time >= run_end) continue;
    ++events;
    TimeUs reacquired = run_end;
    for (const auto& [t, in] : in_window_at) {
      if (t < event.time) continue;
      if (in) {
        reacquired = t;
        break;
      }
    }
    total_s += us_to_sec(reacquired - event.time);
  }
  *events_out = events;
  return events > 0 ? total_s / events : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_sec = 60.0;
  int sample_ticks = 10;
  std::string out_path = "BENCH_scenarios.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--sample-ticks") == 0 && i + 1 < argc) {
      sample_ticks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // Accepted for CI symmetry; the suite times runs serially.
    }
  }

  const std::vector<std::string> variants{"HARS-E", "MP-HARS-E"};
  std::vector<SuiteRow> rows;
  const auto suite_start = std::chrono::steady_clock::now();

  for (const std::string& name : ScenarioRegistry::instance().names()) {
    const Scenario scenario = ScenarioRegistry::instance().get(name);
    for (const std::string& variant : variants) {
      TraceSink sink(sample_ticks);
      ExperimentBuilder builder;
      builder.scenario(scenario)
          .variant(variant)
          .duration_sec(duration_sec)
          .capture(sink);
      const auto start = std::chrono::steady_clock::now();
      const ExperimentResult result = builder.build().run();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      (void)result;
      SuiteRow row;
      row.scenario = name;
      row.variant = variant;
      row.wall_ms = wall_ms;
      row.mean_adapt_latency_s = mean_adapt_latency_s(
          scenario, sink, sec_to_us(duration_sec), &row.events);
      row.samples = sink.samples().size();
      rows.push_back(row);
      std::printf("%-14s %-10s wall %7.1f ms  events %d  "
                  "adapt-latency %.2f s  samples %zu\n",
                  name.c_str(), variant.c_str(), row.wall_ms, row.events,
                  row.mean_adapt_latency_s, row.samples);
    }
  }

  const double suite_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - suite_start)
          .count();

  std::ofstream out(out_path);
  out << "{\n  \"campaign\": \"scenario_suite\",\n"
      << "  \"duration_sec\": " << format_number(duration_sec) << ",\n"
      << "  \"sample_ticks\": " << sample_ticks << ",\n"
      << "  \"wall_ms\": " << format_number(suite_wall_ms) << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SuiteRow& row = rows[i];
    out << "    {\"scenario\": \"" << json_escape(row.scenario)
        << "\", \"variant\": \"" << json_escape(row.variant)
        << "\", \"wall_ms\": " << format_number(row.wall_ms)
        << ", \"events\": " << row.events
        << ", \"mean_adapt_latency_s\": "
        << format_number(row.mean_adapt_latency_s)
        << ", \"samples\": " << row.samples << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu runs, %.1f ms)\n", out_path.c_str(), rows.size(),
              suite_wall_ms);
  return out.good() ? 0 : 1;
}
