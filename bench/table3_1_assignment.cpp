// Regenerates Table 3.1: thread assignment to the big and little clusters
// across the four regimes, for the Exynos-like machine and r = 1.5.
#include <cstdio>
#include <iostream>

#include "core/thread_assignment.hpp"
#include "exp/report.hpp"

int main() {
  using namespace hars;
  std::puts("Table 3.1 reproduction: thread assignment (r >= 1)");
  std::puts("Rows show (T_B, T_L, C_B,U, C_L,U) per regime for C_B=C_L=4.\n");

  ReportTable table("Thread assignment, C_B = C_L = 4, r = 1.5");
  table.set_columns({"T", "regime", "T_B", "T_L", "C_B,U", "C_L,U"});
  const int cb = 4;
  const int cl = 4;
  const double r = 1.5;
  for (int t = 1; t <= 16; ++t) {
    const ThreadAssignment a = assign_threads(t, cb, cl, r);
    const double rcb = r * cb;
    const char* regime = t <= cb                          ? "0<T<=CB"
                         : static_cast<double>(t) <= rcb  ? "CB<T<=rCB"
                         : static_cast<double>(t) <= rcb + cl ? "rCB<T<=rCB+CL"
                                                              : "rCB+CL<T";
    table.add_text_row({std::to_string(t), regime, std::to_string(a.tb),
                        std::to_string(a.tl), std::to_string(a.cb_used),
                        std::to_string(a.cl_used)});
  }
  table.print(std::cout);

  ReportTable sweep("Assignment sweep over r (T = 8, C_B = C_L = 4)");
  sweep.set_columns({"r", "T_B", "T_L", "C_B,U", "C_L,U"});
  for (double r_val : {0.5, 0.8, 1.0, 1.2, 1.5, 1.85, 2.0, 3.0}) {
    const ThreadAssignment a = assign_threads(8, cb, cl, r_val);
    sweep.add_text_row({format_value(r_val), std::to_string(a.tb),
                        std::to_string(a.tl), std::to_string(a.cb_used),
                        std::to_string(a.cl_used)});
  }
  sweep.print(std::cout);
  return 0;
}
