// Regenerates Table 3.1: thread assignment to the big and little clusters
// across the four regimes, for the Exynos-like machine and r = 1.5. The
// two parameter sweeps (thread count at fixed r, then r at fixed thread
// count) are pure-parameter SweepSpecs with a custom case runner — no
// simulation involved.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/thread_assignment.hpp"
#include "exp/report.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

namespace {

using namespace hars;

constexpr int kBigCores = 4;
constexpr int kLittleCores = 4;

std::vector<Record> run_assignment_case(const SweepCase& sweep_case) {
  const int t = static_cast<int>(sweep_case.number("t"));
  const double r = sweep_case.number("r");
  const ThreadAssignment a = assign_threads(t, kBigCores, kLittleCores, r);
  const double rcb = r * kBigCores;
  const char* regime = t <= kBigCores                   ? "0<T<=CB"
                       : static_cast<double>(t) <= rcb  ? "CB<T<=rCB"
                       : static_cast<double>(t) <= rcb + kLittleCores
                           ? "rCB<T<=rCB+CL"
                           : "rCB+CL<T";
  Record out;
  out.set("regime", regime);
  out.set("tb", static_cast<std::int64_t>(a.tb));
  out.set("tl", static_cast<std::int64_t>(a.tl));
  out.set("cb_used", static_cast<std::int64_t>(a.cb_used));
  out.set("cl_used", static_cast<std::int64_t>(a.cl_used));
  return {out};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hars;
  std::puts("Table 3.1 reproduction: thread assignment (r >= 1)");
  std::puts("Rows show (T_B, T_L, C_B,U, C_L,U) per regime for C_B=C_L=4.\n");

  SweepSpec by_threads;
  std::vector<double> thread_counts;
  for (int t = 1; t <= 16; ++t) thread_counts.push_back(t);
  by_threads.name("table3_1_threads")
      .values("t", thread_counts, nullptr)
      .values("r", {1.5}, nullptr)
      .case_runner(run_assignment_case);

  TableSink threads_sink;
  SweepEngine threads_engine(sweep_options_from_cli(argc, argv));
  threads_engine.add_sink(threads_sink);
  const SweepReport threads_report = threads_engine.run(by_threads);
  if (report_sweep_failures(std::cerr, threads_report) > 0) return 1;

  ReportTable table("Thread assignment, C_B = C_L = 4, r = 1.5");
  table.set_columns({"T", "regime", "T_B", "T_L", "C_B,U", "C_L,U"});
  for (const Record& row : threads_sink.rows()) {
    table.add_text_row({std::string(row.text("t")),
                        std::string(row.text("regime")),
                        std::string(row.text("tb")),
                        std::string(row.text("tl")),
                        std::string(row.text("cb_used")),
                        std::string(row.text("cl_used"))});
  }
  table.print(std::cout);

  SweepSpec by_ratio;
  by_ratio.name("table3_1_ratio")
      .values("t", {8.0}, nullptr)
      .values("r", {0.5, 0.8, 1.0, 1.2, 1.5, 1.85, 2.0, 3.0}, nullptr)
      .case_runner(run_assignment_case);

  TableSink ratio_sink;
  SweepEngine ratio_engine(sweep_options_from_cli(argc, argv));
  ratio_engine.add_sink(ratio_sink);
  const SweepReport ratio_report = ratio_engine.run(by_ratio);
  if (report_sweep_failures(std::cerr, ratio_report) > 0) return 1;

  ReportTable sweep("Assignment sweep over r (T = 8, C_B = C_L = 4)");
  sweep.set_columns({"r", "T_B", "T_L", "C_B,U", "C_L,U"});
  for (const Record& row : ratio_sink.rows()) {
    sweep.add_text_row({format_value(row.number("r")),
                        std::string(row.text("tb")),
                        std::string(row.text("tl")),
                        std::string(row.text("cb_used")),
                        std::string(row.text("cl_used"))});
  }
  sweep.print(std::cout);
  return 0;
}
