// Regenerates Table 4.3: the state & freeze decision table of the
// interference-aware adaptation policy. The status x status x frozen grid
// is a pure-parameter SweepSpec with a custom case runner.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "mphars/freeze_policy.hpp"
#include "sweep/sweep_cli.hpp"
#include "sweep/sweep_engine.hpp"

namespace {

using namespace hars;

const std::vector<PerfStatus> kStatuses{
    PerfStatus::kUnderperf, PerfStatus::kAchieve, PerfStatus::kOverperf};

PerfStatus status_from_label(std::string_view label) {
  for (PerfStatus s : kStatuses) {
    if (label == perf_status_name(s)) return s;
  }
  return PerfStatus::kAchieve;
}

std::vector<AxisPoint> status_axis() {
  std::vector<AxisPoint> points;
  for (PerfStatus s : kStatuses) points.emplace_back(perf_status_name(s));
  return points;
}

std::vector<Record> run_decision_case(const SweepCase& sweep_case) {
  const PerfStatus app = status_from_label(sweep_case.label("app"));
  const PerfStatus others = status_from_label(sweep_case.label("others"));
  const bool frozen = sweep_case.label("frozen") == "FREEZE";
  const InterferenceDecision d = decide_interference(app, others, frozen);
  Record out;
  out.set("state_decision", state_decision_name(d.state));
  out.set("freeze_decision", freeze_decision_name(d.freeze));
  return {out};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hars;

  SweepSpec spec;
  spec.name("table4_3")
      .axis("app", status_axis())
      .axis("others", status_axis())
      .axis("frozen", {AxisPoint("FREEZE"), AxisPoint("UNFREEZE")})
      .case_runner(run_decision_case);

  TableSink sink;
  SweepEngine engine(sweep_options_from_cli(argc, argv));
  engine.add_sink(sink);
  const SweepReport report = engine.run(spec);
  if (report_sweep_failures(std::cerr, report) > 0) return 1;

  ReportTable table("Table 4.3 reproduction: state & freeze decisions");
  table.set_columns(
      {"AppInPeriod", "TheOthers", "FrozenState", "StateDecision", "FreezeDecision"});
  for (const Record& row : sink.rows()) {
    table.add_text_row({std::string(row.text("app")),
                        std::string(row.text("others")),
                        std::string(row.text("frozen")),
                        std::string(row.text("state_decision")),
                        std::string(row.text("freeze_decision"))});
  }
  table.print(std::cout);
  return 0;
}
