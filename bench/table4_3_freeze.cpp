// Regenerates Table 4.3: the state & freeze decision table of the
// interference-aware adaptation policy.
#include <iostream>

#include "exp/report.hpp"
#include "mphars/freeze_policy.hpp"

int main() {
  using namespace hars;
  ReportTable table("Table 4.3 reproduction: state & freeze decisions");
  table.set_columns(
      {"AppInPeriod", "TheOthers", "FrozenState", "StateDecision", "FreezeDecision"});
  for (PerfStatus app : {PerfStatus::kUnderperf, PerfStatus::kAchieve,
                         PerfStatus::kOverperf}) {
    for (PerfStatus others : {PerfStatus::kUnderperf, PerfStatus::kAchieve,
                              PerfStatus::kOverperf}) {
      for (bool frozen : {true, false}) {
        const InterferenceDecision d = decide_interference(app, others, frozen);
        table.add_text_row({perf_status_name(app), perf_status_name(others),
                            frozen ? "FREEZE" : "UNFREEZE",
                            state_decision_name(d.state),
                            freeze_decision_name(d.freeze)});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
