// tick_bench: the simulation tick-throughput campaign.
//
// The per-tick simulation cost is the dominant wall-clock term of every
// sweep, so this bench makes it a tracked first-class metric
// (BENCH_tick.json, uploaded by CI like the other BENCH artifacts). It
// reports:
//
//  1. Grid: ticks/sec for every valid (platform x variant x app-count)
//     combination, measured serially, then re-run on a work-stealing
//     pool (--jobs N) with a byte-identical-records assertion — the
//     engine must produce the same metrics at any parallelism.
//  2. Speedup: the staggered scenario on exynos5422 under all eight
//     runtime versions, run on the optimized tick/search path and on the
//     retained reference path (--reference semantics of
//     ExperimentBuilder::reference_impl), median of --reps repetitions.
//     Asserts (a) records are bit-identical between the two paths and
//     (b) the optimized path is at least as fast (perf smoke).
//
//  3. Telemetry overhead: the staggered scenario with the metrics
//     registry + phase timers off and on (min-of-reps each). Asserts
//     records are bit-identical and the enabled-path slowdown stays
//     under --telemetry-budget percent (default 3; the observability
//     layer's zero-cost contract, gated in CI). The ON pass's phase
//     timer percentiles are emitted under "telemetry".
//
//   tick_bench [--duration SEC] [--grid-duration SEC] [--reps N]
//              [--jobs N] [--out FILE] [--reference]
//              [--telemetry-budget PCT]
//
// --reference additionally runs the *grid* on the reference path (the
// speedup section always measures both paths).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/variant_registry.hpp"
#include "hmp/platform_registry.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/work_stealing_pool.hpp"
#include "util/stats.hpp"

namespace {

using namespace hars;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct GridCase {
  std::string platform;
  std::string variant;
  int apps = 1;
};

// No blackscholes here: its ~10 s serial warm-up emits no heartbeats
// within a short probe, which the derived-target validation now rejects
// (it used to silently derive a {0, 0} target).
const std::vector<ParsecBenchmark>& grid_benchmarks() {
  static const std::vector<ParsecBenchmark> k = {
      ParsecBenchmark::kSwaptions, ParsecBenchmark::kBodytrack,
      ParsecBenchmark::kFluidanimate, ParsecBenchmark::kFacesim};
  return k;
}

Experiment build_case(const GridCase& c, double duration_sec, bool reference) {
  ExperimentBuilder b;
  b.platform(std::string_view(c.platform)).variant(c.variant);
  for (int i = 0; i < c.apps; ++i) {
    // Explicit targets: the grid measures tick throughput, and short
    // measured spans could not support a derived-target baseline probe.
    b.app(grid_benchmarks()[static_cast<std::size_t>(i)])
        .target(PerfTarget::around(1.0 + 0.2 * i));
  }
  b.duration_sec(duration_sec).reference_impl(reference);
  return b.build();
}

/// One flat record of everything metric-bearing in a result, used for the
/// byte-identical comparisons (format_number round-trips doubles).
Record result_record(const ExperimentResult& r) {
  Record rec;
  rec.set("avg_power_w", r.avg_power_w);
  rec.set("adaptations", r.adaptations);
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    const AppRunResult& app = r.apps[i];
    const std::string p = "app" + std::to_string(i) + "_";
    rec.set(p + "label", app.label);
    rec.set(p + "heartbeats", app.metrics.heartbeats);
    rec.set(p + "norm_perf", app.metrics.norm_perf);
    rec.set(p + "avg_rate_hps", app.metrics.avg_rate_hps);
    rec.set(p + "perf_per_watt", app.metrics.perf_per_watt);
    rec.set(p + "in_window", app.metrics.in_window_fraction);
    rec.set(p + "energy_j", app.metrics.energy_j);
    rec.set(p + "manager_cpu_pct", app.metrics.manager_cpu_pct);
    rec.set(p + "trace_points", static_cast<std::int64_t>(app.trace.size()));
  }
  return rec;
}

std::string fingerprint(const std::vector<Record>& records) {
  std::ostringstream out;
  JsonlSink sink(out);
  for (const Record& r : records) sink.write(r);
  return out.str();
}

struct GridOutcome {
  GridCase c;
  double wall_ms = 0.0;
  double ticks = 0.0;
  Record record;
};

}  // namespace

int main(int argc, char** argv) {
  double speedup_duration_sec = 40.0;
  double grid_duration_sec = 5.0;
  int reps = 3;
  int jobs = 0;  // 0 = hardware concurrency.
  bool reference_grid = false;
  double telemetry_budget_pct = 3.0;
  std::string out_path = "BENCH_tick.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      speedup_duration_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--grid-duration") == 0 && i + 1 < argc) {
      grid_duration_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reference") == 0) {
      reference_grid = true;
    } else if (std::strcmp(argv[i], "--telemetry-budget") == 0 &&
               i + 1 < argc) {
      telemetry_budget_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (jobs <= 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  const double tick_sec = us_to_sec(SimConfig{}.tick_us);

  // ---- Part 1: the throughput grid -------------------------------------
  std::vector<GridCase> cases;
  for (const char* platform : {"exynos5422", "sd855"}) {
    for (const std::string& variant : VariantRegistry::instance().names()) {
      const VariantEntry* entry = VariantRegistry::instance().find(variant);
      for (int apps : {1, 2, 4}) {
        if (apps < entry->traits.min_apps || apps > entry->traits.max_apps) {
          continue;
        }
        cases.push_back(GridCase{platform, variant, apps});
      }
    }
  }

  // Untimed warm-up: populate the calibration / baseline-probe caches so
  // neither timed pass (nor the parallel pass) pays them.
  for (const GridCase& c : cases) {
    (void)build_case(c, grid_duration_sec, reference_grid).run();
  }

  std::vector<GridOutcome> grid(cases.size());
  const auto grid_start = Clock::now();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    GridOutcome& out = grid[i];
    out.c = cases[i];
    out.ticks = grid_duration_sec / tick_sec;
    const auto start = Clock::now();
    const ExperimentResult r =
        build_case(cases[i], grid_duration_sec, reference_grid).run();
    out.wall_ms = ms_since(start);
    out.record = result_record(r);
  }
  const double grid_serial_ms = ms_since(grid_start);

  // Parallel pass over the same grid: same records, any worker count.
  std::vector<Record> parallel_records(cases.size());
  const auto par_start = Clock::now();
  {
    WorkStealingPool pool(jobs);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      pool.submit([&, i] {
        const ExperimentResult r =
            build_case(cases[i], grid_duration_sec, reference_grid).run();
        parallel_records[i] = result_record(r);
      });
    }
    pool.wait_idle();
  }
  const double grid_parallel_ms = ms_since(par_start);

  std::vector<Record> serial_records;
  serial_records.reserve(grid.size());
  for (const GridOutcome& o : grid) serial_records.push_back(o.record);
  const bool grid_identical =
      fingerprint(serial_records) == fingerprint(parallel_records);

  for (const GridOutcome& o : grid) {
    std::printf("grid %-11s %-10s apps=%d  %8.1f kticks/s\n",
                o.c.platform.c_str(), o.c.variant.c_str(), o.c.apps,
                o.ticks / (o.wall_ms / 1000.0) / 1000.0);
  }
  std::printf("grid: %zu cases, serial %.1f ms, parallel(%d) %.1f ms, "
              "records %s\n",
              grid.size(), grid_serial_ms, jobs, grid_parallel_ms,
              grid_identical ? "identical" : "DIVERGENT");

  // ---- Part 2: optimized vs reference on the staggered scenario --------
  struct SpeedupRow {
    std::string variant;
    double opt_tps = 0.0;
    double ref_tps = 0.0;
    bool identical = false;
  };
  const double speedup_ticks = speedup_duration_sec / tick_sec;
  std::vector<SpeedupRow> speedups;
  auto run_staggered = [&](const std::string& variant, bool reference,
                           double* wall_ms) {
    ExperimentBuilder b;
    b.platform(std::string_view("exynos5422"))
        .scenario(std::string_view("staggered"))
        .variant(variant)
        .duration_sec(speedup_duration_sec)
        .reference_impl(reference);
    const Experiment experiment = b.build();
    const auto start = Clock::now();
    const ExperimentResult r = experiment.run();
    *wall_ms = ms_since(start);
    return result_record(r);
  };

  for (const std::string& variant : VariantRegistry::instance().names()) {
    // Warm calibration caches for this variant's scenario targets.
    {
      double ignored = 0.0;
      (void)run_staggered(variant, false, &ignored);
    }
    std::vector<double> opt_ms;
    std::vector<double> ref_ms;
    Record opt_record;
    Record ref_record;
    for (int rep = 0; rep < reps; ++rep) {
      double w = 0.0;
      opt_record = run_staggered(variant, false, &w);
      opt_ms.push_back(w);
      ref_record = run_staggered(variant, true, &w);
      ref_ms.push_back(w);
    }
    // Min-of-reps: the least-interfered repetition is the standard
    // noise-robust wall-clock estimator for both paths.
    std::sort(opt_ms.begin(), opt_ms.end());
    std::sort(ref_ms.begin(), ref_ms.end());
    SpeedupRow row;
    row.variant = variant;
    row.opt_tps = speedup_ticks / (opt_ms.front() / 1000.0);
    row.ref_tps = speedup_ticks / (ref_ms.front() / 1000.0);
    row.identical = fingerprint({opt_record}) == fingerprint({ref_record});
    speedups.push_back(row);
    std::printf("speedup %-10s opt %8.1f kticks/s  ref %8.1f kticks/s  "
                "%.2fx  records %s\n",
                row.variant.c_str(), row.opt_tps / 1000.0,
                row.ref_tps / 1000.0, row.opt_tps / row.ref_tps,
                row.identical ? "identical" : "DIVERGENT");
  }

  std::vector<double> ratios;
  ratios.reserve(speedups.size());
  for (const SpeedupRow& row : speedups) {
    ratios.push_back(row.opt_tps / row.ref_tps);
  }
  const double geomean_speedup = geomean(ratios);

  // ---- Part 3: telemetry overhead --------------------------------------
  // The zero-cost contract, measured: the staggered scenario with
  // telemetry fully off vs fully on (phase timers at the default
  // sampling shift, no file sinks — this isolates instrumentation cost
  // from I/O). OFF reps all run first so the ON passes can't warm
  // anything for them.
  const int tel_reps = std::max(reps, 5);
  struct PhaseRow {
    const char* phase;
    std::uint64_t count = 0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  auto run_telemetry = [&](bool telemetry, double* wall_ms) {
    ExperimentBuilder b;
    b.platform(std::string_view("exynos5422"))
        .scenario(std::string_view("staggered"))
        .variant("HARS-E")
        .duration_sec(speedup_duration_sec);
    if (telemetry) {
      obs::TelemetryConfig cfg;
      cfg.enabled = true;
      b.telemetry(cfg);
    }
    const Experiment experiment = b.build();
    const auto start = Clock::now();
    const ExperimentResult r = experiment.run();
    *wall_ms = ms_since(start);
    return result_record(r);
  };

  std::vector<double> tel_off_ms;
  std::vector<double> tel_on_ms;
  Record tel_off_record;
  Record tel_on_record;
  for (int rep = 0; rep < tel_reps; ++rep) {
    double w = 0.0;
    tel_off_record = run_telemetry(false, &w);
    tel_off_ms.push_back(w);
  }
  for (int rep = 0; rep < tel_reps; ++rep) {
    double w = 0.0;
    tel_on_record = run_telemetry(true, &w);
    tel_on_ms.push_back(w);
  }
  std::sort(tel_off_ms.begin(), tel_off_ms.end());
  std::sort(tel_on_ms.begin(), tel_on_ms.end());
  const double tel_off_tps = speedup_ticks / (tel_off_ms.front() / 1000.0);
  const double tel_on_tps = speedup_ticks / (tel_on_ms.front() / 1000.0);
  const double tel_overhead_pct =
      (tel_on_ms.front() / tel_off_ms.front() - 1.0) * 100.0;
  const bool tel_identical =
      fingerprint({tel_off_record}) == fingerprint({tel_on_record});
  const bool tel_within_budget = tel_overhead_pct <= telemetry_budget_pct;

  // Phase percentiles of the last enabled run (its session disabled the
  // registry at finish but the accumulated shards survive).
  std::vector<PhaseRow> phase_rows;
  {
    obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().take_snapshot();
    for (int p = 0; p < static_cast<int>(obs::TickPhase::kCount); ++p) {
      const obs::TickPhase phase = static_cast<obs::TickPhase>(p);
      std::string name = "engine.phase.";
      name += obs::tick_phase_name(phase);
      name += "_ns";
      const obs::MetricValue* v = snap.find(name);
      if (v == nullptr || v->count == 0) continue;
      PhaseRow row;
      row.phase = obs::tick_phase_name(phase);
      row.count = v->count;
      row.p50 = obs::histogram_quantile(*v, 0.50);
      row.p90 = obs::histogram_quantile(*v, 0.90);
      row.p99 = obs::histogram_quantile(*v, 0.99);
      phase_rows.push_back(row);
    }
  }

  std::printf("telemetry off %8.1f kticks/s  on %8.1f kticks/s  "
              "overhead %+.2f%% (budget %.1f%%)  records %s\n",
              tel_off_tps / 1000.0, tel_on_tps / 1000.0, tel_overhead_pct,
              telemetry_budget_pct, tel_identical ? "identical" : "DIVERGENT");
  for (const PhaseRow& row : phase_rows) {
    std::printf("  phase %-18s n=%-8llu p50 %7.0f ns  p90 %7.0f ns  "
                "p99 %7.0f ns\n",
                row.phase, static_cast<unsigned long long>(row.count), row.p50,
                row.p90, row.p99);
  }

  // ---- Emit BENCH_tick.json --------------------------------------------
  std::ofstream out(out_path);
  out << "{\n  \"campaign\": \"tick_bench\",\n"
      << "  \"grid_duration_sec\": " << format_number(grid_duration_sec)
      << ",\n  \"speedup_duration_sec\": "
      << format_number(speedup_duration_sec) << ",\n  \"reps\": " << reps
      << ",\n  \"jobs\": " << jobs << ",\n  \"reference_grid\": "
      << (reference_grid ? "true" : "false")
      << ",\n  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"grid_serial_ms\": " << format_number(grid_serial_ms)
      << ",\n  \"grid_parallel_ms\": " << format_number(grid_parallel_ms)
      << ",\n  \"grid_records_identical\": "
      << (grid_identical ? "true" : "false") << ",\n  \"grid\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const GridOutcome& o = grid[i];
    out << "    {\"platform\": \"" << json_escape(o.c.platform)
        << "\", \"variant\": \"" << json_escape(o.c.variant)
        << "\", \"apps\": " << o.c.apps
        << ", \"wall_ms\": " << format_number(o.wall_ms)
        << ", \"ticks_per_sec\": "
        << format_number(o.ticks / (o.wall_ms / 1000.0)) << "}"
        << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup\": {\n    \"scenario\": \"staggered\",\n"
      << "    \"platform\": \"exynos5422\",\n    \"variants\": [\n";
  bool all_identical = grid_identical;
  bool all_at_least_ref = true;
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    const SpeedupRow& row = speedups[i];
    all_identical = all_identical && row.identical;
    all_at_least_ref = all_at_least_ref && row.opt_tps >= row.ref_tps;
    out << "      {\"variant\": \"" << json_escape(row.variant)
        << "\", \"opt_ticks_per_sec\": " << format_number(row.opt_tps)
        << ", \"ref_ticks_per_sec\": " << format_number(row.ref_tps)
        << ", \"speedup\": " << format_number(row.opt_tps / row.ref_tps)
        << ", \"records_identical\": " << (row.identical ? "true" : "false")
        << "}" << (i + 1 < speedups.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"geomean_speedup\": " << format_number(geomean_speedup)
      << "\n  },\n  \"telemetry\": {\n    \"scenario\": \"staggered\",\n"
      << "    \"platform\": \"exynos5422\",\n    \"variant\": \"HARS-E\",\n"
      << "    \"reps\": " << tel_reps
      << ",\n    \"off_ticks_per_sec\": " << format_number(tel_off_tps)
      << ",\n    \"on_ticks_per_sec\": " << format_number(tel_on_tps)
      << ",\n    \"overhead_pct\": " << format_number(tel_overhead_pct)
      << ",\n    \"budget_pct\": " << format_number(telemetry_budget_pct)
      << ",\n    \"records_identical\": "
      << (tel_identical ? "true" : "false") << ",\n    \"phases\": [\n";
  for (std::size_t i = 0; i < phase_rows.size(); ++i) {
    const PhaseRow& row = phase_rows[i];
    out << "      {\"phase\": \"" << row.phase
        << "\", \"samples\": " << row.count
        << ", \"p50_ns\": " << format_number(row.p50)
        << ", \"p90_ns\": " << format_number(row.p90)
        << ", \"p99_ns\": " << format_number(row.p99) << "}"
        << (i + 1 < phase_rows.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }\n}\n";
  all_identical = all_identical && tel_identical;
  std::printf("wrote %s (geomean speedup %.2fx, telemetry %+.2f%%, "
              "records %s)\n",
              out_path.c_str(), geomean_speedup, tel_overhead_pct,
              all_identical ? "identical" : "DIVERGENT");

  // Records must match everywhere; the optimized path must not regress
  // below the reference path (perf smoke); enabling telemetry must stay
  // within its overhead budget.
  if (!all_identical || !all_at_least_ref || !tel_within_budget ||
      !out.good()) {
    return 1;
  }
  return 0;
}
