// Bring-your-own-platform: HARS is not tied to the Exynos 5422 preset.
// This example defines a modern laptop-like 2-big + 6-little part, runs
// the same self-adaptive application on it, and lets HARS find an
// efficient state (cf. the reproduction note: modern P/E-core parts are
// the natural target for this runtime today).
//
//   $ ./custom_platform
#include <cstdio>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace hars;

  // A P/E-core-style machine: 2 fast wide cores + 6 efficiency cores.
  MachineSpec spec;
  spec.name = "laptop-2P6E";
  ClusterSpec e_cores;
  e_cores.type = CoreType::kLittle;
  e_cores.core_count = 6;
  e_cores.ipc = 2.0;
  for (double f = 0.8; f < 2.01; f += 0.2) e_cores.freqs_ghz.push_back(f);
  ClusterSpec p_cores;
  p_cores.type = CoreType::kBig;
  p_cores.core_count = 2;
  p_cores.ipc = 4.0;
  for (double f = 1.0; f < 3.61; f += 0.2) p_cores.freqs_ghz.push_back(f);
  spec.clusters = {e_cores, p_cores};

  const Machine machine(spec);
  std::printf("machine: %s, %d cores (%d P + %d E), P up to %.1f GHz\n\n",
              machine.spec().name.c_str(), machine.num_cores(),
              machine.cluster_core_count(machine.big_cluster()),
              machine.cluster_core_count(machine.little_cluster()),
              machine.freq_ghz_at_level(
                  machine.big_cluster(),
                  machine.max_freq_level(machine.big_cluster())));

  const AppFactory render_app = [](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{4.0, 2.0};  // r = 2 on this part.
    cfg.workload = {WorkloadShape::kPhased, 8.0, 0.05, 0.15, 50};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("render", cfg);
  };

  const ExperimentResult result =
      ExperimentBuilder()
          .platform(machine)
          .app("render", render_app)
          .target(PerfTarget::around(2.5))
          .variant("HARS-EI")
          .assumed_ratio(2.0)  // Match the platform's width ratio.
          .protocol(RunProtocol::kColdStart)
          .duration(100 * kUsPerSec)
          .sample_every(10 * kUsPerSec,
                        [](const RunView& view) {
                          const SystemState state =
                              view.variant.current_state().value_or(
                                  SystemState{});
                          std::printf(
                              "t=%3llds  rate %.2f hb/s  state %s  power %.2f W\n",
                              static_cast<long long>(view.now / kUsPerSec),
                              view.apps.front()->heartbeats().rate(),
                              state.to_string().c_str(),
                              view.engine.sensor().instantaneous_power_w());
                        })
          .build()
          .run();

  std::printf("\navg power %.2f W over %.0fs; %lld adaptations\n",
              result.avg_power_w, us_to_sec(100 * kUsPerSec),
              static_cast<long long>(result.adaptations));
  return 0;
}
