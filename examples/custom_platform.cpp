// Bring-your-own-platform: HARS is not tied to the Exynos 5422 preset.
// This example declares a modern laptop-like 2-big + 6-little part as a
// PlatformSpec (topology + power parameters + calibration default in one
// value), registers it so sweeps can reference it by name, and lets HARS
// find an efficient state (cf. the reproduction note: modern P/E-core
// parts are the natural target for this runtime today).
//
//   $ ./custom_platform
#include <cstdio>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "exp/experiment.hpp"
#include "hmp/platform_registry.hpp"

int main() {
  using namespace hars;

  // A P/E-core-style machine: 2 fast wide cores + 6 efficiency cores.
  // The builder attaches per-core-type default power parameters; override
  // any cluster's with .power(...).
  const PlatformSpec laptop = PlatformBuilder()
                                  .name("laptop-2P6E")
                                  .cluster(CoreType::kLittle, 6, 2.0)
                                  .freq_range_ghz(0.8, 2.01, 0.2)
                                  .cluster(CoreType::kBig, 2, 4.0)
                                  .freq_range_ghz(1.0, 3.61, 0.2)
                                  .base_watts(0.9)
                                  .build();

  // Optional: register it so `.platform("laptop-2P6E")` and sweep
  // `platforms({...})` axes resolve the name anywhere in the process.
  PlatformRegistry::instance().register_platform(laptop);

  const Machine machine = laptop.make_machine();
  std::printf("machine: %s, %d cores (%d P + %d E), P up to %.1f GHz\n\n",
              machine.spec().name.c_str(), machine.num_cores(),
              machine.cluster_core_count(machine.fastest_cluster()),
              machine.cluster_core_count(machine.slowest_cluster()),
              machine.freq_ghz_at_level(
                  machine.fastest_cluster(),
                  machine.max_freq_level(machine.fastest_cluster())));

  const AppFactory render_app = [](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{4.0, 2.0};  // r = 2 on this part.
    cfg.workload = {WorkloadShape::kPhased, 8.0, 0.05, 0.15, 50};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("render", cfg);
  };

  const ExperimentResult result =
      ExperimentBuilder()
          .platform("laptop-2P6E")
          .app("render", render_app)
          .target(PerfTarget::around(2.5))
          .variant("HARS-EI")
          .assumed_ratio(2.0)  // Match the platform's width ratio.
          .protocol(RunProtocol::kColdStart)
          .duration(100 * kUsPerSec)
          .sample_every(10 * kUsPerSec,
                        [](const RunView& view) {
                          const SystemState state =
                              view.variant.current_state().value_or(
                                  SystemState{});
                          std::printf(
                              "t=%3llds  rate %.2f hb/s  state %s  power %.2f W\n",
                              static_cast<long long>(view.now / kUsPerSec),
                              view.apps.front()->heartbeats().rate(),
                              state.to_string().c_str(),
                              view.engine.sensor().instantaneous_power_w());
                        })
          .build()
          .run();

  std::printf("\navg power %.2f W over %.0fs; %lld adaptations\n",
              result.avg_power_w, us_to_sec(100 * kUsPerSec),
              static_cast<long long>(result.adaptations));
  return 0;
}
