// Bring-your-own-platform: HARS is not tied to the Exynos 5422 preset.
// This example defines a modern laptop-like 2-big + 6-little part, runs
// the same self-adaptive application on it, and lets HARS find an
// efficient state (cf. the reproduction note: modern P/E-core parts are
// the natural target for this runtime today).
//
//   $ ./custom_platform
#include <cstdio>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "core/hars.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

int main() {
  using namespace hars;

  // A P/E-core-style machine: 2 fast wide cores + 6 efficiency cores.
  MachineSpec spec;
  spec.name = "laptop-2P6E";
  ClusterSpec e_cores;
  e_cores.type = CoreType::kLittle;
  e_cores.core_count = 6;
  e_cores.ipc = 2.0;
  for (double f = 0.8; f < 2.01; f += 0.2) e_cores.freqs_ghz.push_back(f);
  ClusterSpec p_cores;
  p_cores.type = CoreType::kBig;
  p_cores.core_count = 2;
  p_cores.ipc = 4.0;
  for (double f = 1.0; f < 3.61; f += 0.2) p_cores.freqs_ghz.push_back(f);
  spec.clusters = {e_cores, p_cores};

  SimEngine engine(Machine(spec), std::make_unique<GtsScheduler>());
  std::printf("machine: %s, %d cores (%d P + %d E), P up to %.1f GHz\n\n",
              engine.machine().spec().name.c_str(), engine.machine().num_cores(),
              engine.machine().cluster_core_count(engine.machine().big_cluster()),
              engine.machine().cluster_core_count(engine.machine().little_cluster()),
              engine.machine().freq_ghz_at_level(
                  engine.machine().big_cluster(),
                  engine.machine().max_freq_level(engine.machine().big_cluster())));

  DataParallelConfig cfg;
  cfg.threads = 8;
  cfg.speed = SpeedModel{4.0, 2.0};  // r = 2 on this part.
  cfg.workload = {WorkloadShape::kPhased, 8.0, 0.05, 0.15, 50};
  DataParallelApp app("render", cfg);
  const AppId id = engine.add_app(&app);

  RuntimeManagerConfig config = config_for_variant(HarsVariant::kHarsEI);
  config.r0 = 2.0;  // Match the platform's width ratio.
  auto manager = attach_hars(engine, id, PerfTarget::around(2.5),
                             HarsVariant::kHarsEI, &config);

  for (int chunk = 0; chunk < 10; ++chunk) {
    engine.run_for(10 * kUsPerSec);
    std::printf("t=%3llds  rate %.2f hb/s  state %s  power %.2f W\n",
                static_cast<long long>(engine.now() / kUsPerSec),
                app.heartbeats().rate(),
                manager->current_state().to_string().c_str(),
                engine.sensor().instantaneous_power_w());
  }
  std::printf("\navg power %.2f W over %llds; %lld adaptations\n",
              engine.sensor().average_power_w(engine.now()),
              static_cast<long long>(engine.now() / kUsPerSec),
              static_cast<long long>(manager->adaptations()));
  return 0;
}
