// Multi-tenant scenario: two self-adaptive applications with independent
// SLOs share one big.LITTLE machine under MP-HARS. Shows resource
// partitioning (disjoint core sets) and interference-aware frequency
// control in action. The experiment runs through the builder API; the
// sampling callback reaches past the uniform surface (dynamic_cast on
// VariantInstance::hook()) for the manager's per-app core registry.
//
//   $ ./multi_tenant
#include <cstdio>
#include <memory>
#include <string>

#include "apps/data_parallel_app.hpp"
#include "exp/experiment.hpp"
#include "mphars/mphars_manager.hpp"

int main() {
  using namespace hars;

  const AppFactory video_app = [](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.workload = {WorkloadShape::kNoisy, 5.0, 0.08, 0.0, 1};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("video-encoder", cfg);
  };
  const AppFactory analytics_app = [](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{2.4, 2.4};  // Memory-bound: no big-core win.
    cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("analytics", cfg);
  };

  // The manager (and its registry) lives only for the duration of run();
  // the callback snapshots the final core sets for the summary below.
  std::string video_cores, analytics_cores;
  std::puts("time(s)  video hb/s  analytics hb/s  video cores  analytics cores");
  const ExperimentResult result =
      ExperimentBuilder()
          .app("video-encoder", video_app)
          .target(PerfTarget::around(2.0))
          .app("analytics", analytics_app)
          .target(PerfTarget::around(1.5))
          .variant("MP-HARS-E")
          .seed(11)
          .duration(150 * kUsPerSec)
          .sample_every(
              10 * kUsPerSec,
              [&](const RunView& view) {
                const auto* manager =
                    dynamic_cast<const MpHarsManager*>(view.variant.hook());
                if (manager == nullptr) return;  // Not an MP-HARS variant.
                const AppNode* v = manager->registry().find(view.app_ids[0]);
                const AppNode* a = manager->registry().find(view.app_ids[1]);
                std::printf("%6lld  %10.2f  %14.2f  %4dB + %dL    %4dB + %dL\n",
                            static_cast<long long>(view.now / kUsPerSec),
                            view.apps[0]->heartbeats().rate(),
                            view.apps[1]->heartbeats().rate(), v->nprocs_b,
                            v->nprocs_l, a->nprocs_b, a->nprocs_l);
                video_cores = owned_big_mask(*v, 4).to_string() + "+" +
                              owned_little_mask(*v).to_string();
                analytics_cores = owned_big_mask(*a, 4).to_string() + "+" +
                                  owned_little_mask(*a).to_string();
              })
          .build()
          .run();

  std::printf("\ncore sets: video %s, analytics %s (always disjoint)\n",
              video_cores.c_str(), analytics_cores.c_str());
  std::printf("avg power: %.2f W, adaptations: %lld\n", result.avg_power_w,
              static_cast<long long>(result.adaptations));
  return 0;
}
