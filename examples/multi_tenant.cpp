// Multi-tenant scenario: two self-adaptive applications with independent
// SLOs share one big.LITTLE machine under MP-HARS. Shows resource
// partitioning (disjoint core sets) and interference-aware frequency
// control in action.
//
//   $ ./multi_tenant
#include <cstdio>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "core/power_profiler.hpp"
#include "hmp/sim_engine.hpp"
#include "mphars/mphars_manager.hpp"
#include "sched/gts.hpp"

int main() {
  using namespace hars;

  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());

  DataParallelConfig video;
  video.threads = 8;
  video.speed = SpeedModel{3.0, 2.0};
  video.workload = {WorkloadShape::kNoisy, 5.0, 0.08, 0.0, 1};
  video.seed = 11;
  DataParallelApp video_app("video-encoder", video);
  const AppId video_id = engine.add_app(&video_app);

  DataParallelConfig analytics;
  analytics.threads = 8;
  analytics.speed = SpeedModel{2.4, 2.4};  // Memory-bound: no big-core win.
  analytics.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
  analytics.seed = 13;
  DataParallelApp analytics_app("analytics", analytics);
  const AppId analytics_id = engine.add_app(&analytics_app);

  MpHarsManager manager(engine,
                        profile_power(engine.machine(), engine.power_model()),
                        MpHarsConfig{});
  manager.register_app(video_id, MpHarsAppConfig{PerfTarget::around(2.0), 5});
  manager.register_app(analytics_id, MpHarsAppConfig{PerfTarget::around(1.5), 5});
  engine.set_manager(&manager);

  std::puts("time(s)  video hb/s  analytics hb/s  video cores  analytics cores");
  for (int chunk = 0; chunk < 15; ++chunk) {
    engine.run_for(10 * kUsPerSec);
    const AppNode* v = manager.registry().find(video_id);
    const AppNode* a = manager.registry().find(analytics_id);
    std::printf("%6lld  %10.2f  %14.2f  %4dB + %dL    %4dB + %dL\n",
                static_cast<long long>(engine.now() / kUsPerSec),
                video_app.heartbeats().rate(), analytics_app.heartbeats().rate(),
                v->nprocs_b, v->nprocs_l, a->nprocs_b, a->nprocs_l);
  }

  const AppNode* v = manager.registry().find(video_id);
  const AppNode* a = manager.registry().find(analytics_id);
  std::printf("\ncore sets: video %s+%s, analytics %s+%s (always disjoint)\n",
              owned_big_mask(*v, 4).to_string().c_str(),
              owned_little_mask(*v).to_string().c_str(),
              owned_big_mask(*a, 4).to_string().c_str(),
              owned_little_mask(*a).to_string().c_str());
  std::printf("avg power: %.2f W, adaptations: %lld\n",
              engine.sensor().average_power_w(engine.now()),
              static_cast<long long>(manager.adaptations()));
  return 0;
}
