// A ferret-like 6-stage pipeline service (e.g. an image-similarity query
// engine) with a throughput SLO. Demonstrates why the interleaving
// scheduler exists: the chunk-based scheduler can map whole pipeline
// stages onto the little cluster and bottleneck the service (Figure 3.2).
//
//   $ ./pipeline_service
#include <cstdio>
#include <memory>

#include "apps/pipeline_app.hpp"
#include "core/hars.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

namespace {

using namespace hars;

void run_with(ThreadSchedulerKind scheduler, double target_hps) {
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());

  PipelineConfig cfg;
  cfg.stages = {{1, 0.20}, {1, 0.60}, {2, 1.60},
                {2, 1.60}, {1, 0.60}, {1, 0.20}};
  cfg.speed = SpeedModel{3.0, 2.0};
  cfg.work_noise = 0.05;
  PipelineApp app("query-pipeline", cfg);
  const AppId id = engine.add_app(&app);

  RuntimeManagerConfig config = config_for_variant(HarsVariant::kHarsE);
  config.scheduler = scheduler;
  const PerfTarget target = PerfTarget::around(target_hps);
  auto manager = attach_hars(engine, id, target, HarsVariant::kHarsE, &config);

  engine.run_for(120 * kUsPerSec);
  const double rate = app.heartbeats().rate();
  const double norm = std::min(target.avg(), rate) / target.avg();
  std::printf("  %-12s  rate %.2f hb/s (target %.2f, SLO %.0f%%)  "
              "power %.2f W  state %s\n",
              thread_scheduler_name(scheduler), rate, target_hps, 100.0 * norm,
              engine.sensor().average_power_w(engine.now()),
              manager->current_state().to_string().c_str());
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("A ferret-like 6-stage pipeline service under HARS-E, with the");
  std::puts("three thread schedulers (target 3.0 queries/s +/- 5%):\n");
  const double target = 3.0;
  run_with(ThreadSchedulerKind::kChunk, target);
  run_with(ThreadSchedulerKind::kInterleaved, target);
  run_with(ThreadSchedulerKind::kHierarchical, target);
  std::puts("\nThe chunk mapping can place whole pipeline stages on the");
  std::puts("little cluster and bottleneck the service; interleaving");
  std::puts("spreads each stage across clusters, and the hierarchy-aware");
  std::puts("scheduler apportions big cores per stage explicitly.");
  return 0;
}
