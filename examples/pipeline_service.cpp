// A ferret-like 6-stage pipeline service (e.g. an image-similarity query
// engine) with a throughput SLO. Demonstrates why the interleaving
// scheduler exists: the chunk-based scheduler can map whole pipeline
// stages onto the little cluster and bottleneck the service (Figure 3.2).
//
//   $ ./pipeline_service
#include <algorithm>
#include <cstdio>
#include <memory>

#include "apps/pipeline_app.hpp"
#include "exp/experiment.hpp"

namespace {

using namespace hars;

AppFactory query_pipeline() {
  return [](int, std::uint64_t seed) {
    PipelineConfig cfg;
    cfg.stages = {{1, 0.20}, {1, 0.60}, {2, 1.60},
                  {2, 1.60}, {1, 0.60}, {1, 0.20}};
    cfg.speed = SpeedModel{3.0, 2.0};
    cfg.work_noise = 0.05;
    cfg.seed = seed;
    return std::make_unique<PipelineApp>("query-pipeline", cfg);
  };
}

void run_with(ThreadSchedulerKind scheduler, double target_hps) {
  const PerfTarget target = PerfTarget::around(target_hps);
  const ExperimentResult result = ExperimentBuilder()
                                      .app("query-pipeline", query_pipeline())
                                      .target(target)
                                      .variant("HARS-E")
                                      .scheduler(scheduler)
                                      .protocol(RunProtocol::kColdStart)
                                      .duration(120 * kUsPerSec)
                                      .build()
                                      .run();
  const double rate = result.app().metrics.avg_rate_hps;
  const double norm = std::min(target.avg(), rate) / target.avg();
  std::printf("  %-12s  rate %.2f hb/s (target %.2f, SLO %.0f%%)  "
              "power %.2f W  state %s\n",
              thread_scheduler_name(scheduler), rate, target_hps, 100.0 * norm,
              result.app().metrics.avg_power_w,
              result.final_state.value_or(SystemState{}).to_string().c_str());
}

}  // namespace

int main() {
  using namespace hars;
  std::puts("A ferret-like 6-stage pipeline service under HARS-E, with the");
  std::puts("three thread schedulers (target 3.0 queries/s +/- 5%):\n");
  const double target = 3.0;
  run_with(ThreadSchedulerKind::kChunk, target);
  run_with(ThreadSchedulerKind::kInterleaved, target);
  run_with(ThreadSchedulerKind::kHierarchical, target);
  std::puts("\nThe chunk mapping can place whole pipeline stages on the");
  std::puts("little cluster and bottleneck the service; interleaving");
  std::puts("spreads each stage across clusters, and the hierarchy-aware");
  std::puts("scheduler apportions big cores per stage explicitly.");
  return 0;
}
