// Quickstart: run one self-adaptive application under HARS on the
// simulated big.LITTLE platform and watch it settle into its target
// window at a fraction of the baseline power.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "core/hars.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"

int main() {
  using namespace hars;

  // 1. A simulated ODROID-XU3-like machine under the Linux GTS scheduler.
  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());

  // 2. A self-adaptive multithreaded application: 8 worker threads, one
  //    heartbeat per parallel iteration.
  DataParallelConfig cfg;
  cfg.threads = 8;
  cfg.speed = SpeedModel{3.0, 2.0};  // big : little = 1.5 at equal frequency.
  cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
  DataParallelApp app("myapp", cfg);
  const AppId id = engine.add_app(&app);

  // 3. Attach HARS-EI with a 2 heartbeats/second target (+/- 5%).
  auto manager = attach_hars(engine, id, PerfTarget::around(2.0),
                             HarsVariant::kHarsEI);

  // 4. Run for two simulated minutes, reporting every 10 seconds.
  std::puts("time(s)  rate(hb/s)  state               power(W)");
  for (int chunk = 0; chunk < 12; ++chunk) {
    engine.run_for(10 * kUsPerSec);
    std::printf("%6lld  %9.2f  %-18s  %7.2f\n",
                static_cast<long long>(engine.now() / kUsPerSec),
                app.heartbeats().rate(),
                manager->current_state().to_string().c_str(),
                engine.sensor().instantaneous_power_w());
  }

  std::printf("\nheartbeats: %lld, adaptations: %lld, avg power: %.2f W, "
              "manager overhead: %.2f%% of one CPU\n",
              static_cast<long long>(app.heartbeats().count()),
              static_cast<long long>(manager->adaptations()),
              engine.sensor().average_power_w(engine.now()),
              engine.manager_cpu_utilization_pct());
  return 0;
}
