// Quickstart: run one self-adaptive application under HARS on the
// simulated big.LITTLE platform and watch it settle into its target
// window at a fraction of the baseline power — all through the unified
// ExperimentBuilder API.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "apps/data_parallel_app.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace hars;

  // 1. A self-adaptive multithreaded application: 8 worker threads, one
  //    heartbeat per parallel iteration.
  const AppFactory my_app = [](int threads, std::uint64_t seed) {
    DataParallelConfig cfg;
    cfg.threads = threads;
    cfg.speed = SpeedModel{3.0, 2.0};  // big : little = 1.5 at equal freq.
    cfg.workload = {WorkloadShape::kStable, 4.0, 0.02, 0.0, 1};
    cfg.seed = seed;
    return std::make_unique<DataParallelApp>("myapp", cfg);
  };

  // 2. Configure the experiment: the ODROID-XU3-like default platform,
  //    HARS-EI, and a 2 heartbeats/second target (+/- 5%). The sampling
  //    callback reports every 10 simulated seconds.
  std::puts("time(s)  rate(hb/s)  state               power(W)");
  const ExperimentResult result =
      ExperimentBuilder()
          .app("myapp", my_app)
          .target(PerfTarget::around(2.0))
          .variant("HARS-EI")
          .protocol(RunProtocol::kColdStart)
          .duration(120 * kUsPerSec)
          .sample_every(10 * kUsPerSec,
                        [](const RunView& view) {
                          const SystemState state =
                              view.variant.current_state().value_or(
                                  SystemState{});
                          std::printf(
                              "%6lld  %9.2f  %-18s  %7.2f\n",
                              static_cast<long long>(view.now / kUsPerSec),
                              view.apps.front()->heartbeats().rate(),
                              state.to_string().c_str(),
                              view.engine.sensor().instantaneous_power_w());
                        })
          .build()
          .run();

  // 3. The run's metrics: heartbeat count, adaptations, power, overhead.
  const RunMetrics& m = result.app().metrics;
  std::printf("\nheartbeats: %lld, adaptations: %lld, avg power: %.2f W, "
              "manager overhead: %.2f%% of one CPU\n",
              static_cast<long long>(m.heartbeats),
              static_cast<long long>(result.adaptations), m.avg_power_w,
              m.manager_cpu_pct);
  return 0;
}
