#include "apps/app.hpp"

#include <stdexcept>

namespace hars {

App::App(std::string name, int thread_count, SpeedModel speed,
         std::size_t heartbeat_window)
    : name_(std::move(name)),
      thread_count_(thread_count),
      speed_(speed),
      heartbeats_(heartbeat_window) {
  if (thread_count <= 0) {
    throw std::invalid_argument("App requires at least one thread");
  }
}

}  // namespace hars
