// Base class for simulated self-adaptive multithreaded applications.
//
// An App owns its heartbeat monitor and a speed model (how fast one of its
// threads retires work on each core type). The SimEngine drives it through
// begin_tick / execute / end_tick; heartbeats are emitted from end_tick
// when a unit of work completes.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "hmp/machine.hpp"
#include "heartbeats/heartbeat.hpp"
#include "util/common.hpp"

namespace hars {

/// Per-application execution speed model. `ipc_big` / `ipc_little` are
/// effective work-units per second per GHz on each core type; their ratio
/// (at equal frequency) is the benchmark's true big:little performance
/// ratio r — e.g. blackscholes measures r ~= 1.0 in the paper even though
/// the architectural width ratio is 1.5.
///
/// `mem_sensitivity` models the memory wall: a fraction of execution time
/// that does not scale with core frequency (0 = fully compute-bound, the
/// paper's implicit assumption; 1 = fully memory-bound). Effective speed
/// is ipc * f^(1 - mem_sensitivity) with f in GHz, so CPU-frequency
/// scaling buys less on memory-bound code — a known failure mode of the
/// performance estimator's linearity assumption.
struct SpeedModel {
  double ipc_big = 3.0;
  double ipc_little = 2.0;
  double mem_sensitivity = 0.0;

  double speed(CoreType type, double freq_ghz) const {
    const double ipc = type == CoreType::kBig ? ipc_big : ipc_little;
    if (mem_sensitivity <= 0.0) return ipc * freq_ghz;
    return ipc * std::pow(freq_ghz, 1.0 - mem_sensitivity);
  }
};

class App {
 public:
  App(std::string name, int thread_count, SpeedModel speed,
      std::size_t heartbeat_window = 10);
  virtual ~App() = default;

  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const std::string& name() const { return name_; }
  int thread_count() const { return thread_count_; }
  const SpeedModel& speed_model() const { return speed_; }

  HeartbeatMonitor& heartbeats() { return heartbeats_; }
  const HeartbeatMonitor& heartbeats() const { return heartbeats_; }

  /// Does thread `local_tid` want CPU this tick?
  virtual bool runnable(int local_tid) const = 0;

  /// Batch form of runnable() for the engine's tick hot path: writes one
  /// flag per thread into `out` (which has room for thread_count()
  /// entries). Must produce exactly runnable(i) for every i — the default
  /// does literally that; subclasses override to answer for all threads
  /// with one virtual dispatch.
  virtual void refresh_runnable(bool* out) const {
    for (int i = 0; i < thread_count(); ++i) out[i] = runnable(i);
  }

  /// Gives thread `local_tid` up to `share_us` of CPU on a core of `type`
  /// at `freq_ghz`. Returns the CPU time actually consumed (a thread that
  /// completes its pending work mid-share yields the rest).
  virtual TimeUs execute(int local_tid, TimeUs share_us, CoreType type,
                         double freq_ghz) = 0;

  /// Called before scheduling each tick (source-stage item generation...).
  virtual void begin_tick(TimeUs /*now*/) {}

  /// True when the app's begin_tick must run each tick. The engine
  /// caches this per app slot and skips the virtual begin_tick dispatch
  /// for apps that answer false. Defaults to true so a subclass that
  /// overrides begin_tick but not this query merely loses the skipped
  /// dispatch — never its begin_tick work; only apps whose begin_tick is
  /// the base no-op should opt out.
  virtual bool needs_begin_tick() const { return true; }

  /// Called after all threads executed; barrier/heartbeat logic lives here.
  virtual void end_tick(TimeUs now) = 0;

  /// True once the application has retired all its input (simulations
  /// normally end on time instead).
  virtual bool finished() const { return false; }

  /// Workload-phase multiplier (scenario `set_phase` events): the app's
  /// work appears `scale`× heavier — effective per-thread speed is divided
  /// by it, which is equivalent to multiplying every iteration's work.
  /// 1.0 = nominal; must be > 0.
  void set_phase_scale(double scale) {
    if (scale > 0.0) phase_scale_ = scale;
  }
  double phase_scale() const { return phase_scale_; }

  /// Thread-hierarchy information (thesis §3.1.4, option 2): sizes of the
  /// application's thread groups in thread-ID order. Data-parallel apps
  /// are one flat group; pipeline apps report one group per stage so a
  /// hierarchy-aware scheduler can give every stage its fair share of big
  /// cores. Sizes must sum to thread_count().
  virtual std::vector<int> thread_group_sizes() const {
    return {thread_count()};
  }

 protected:
  double thread_speed(CoreType type, double freq_ghz) const {
    const double s = speed_.speed(type, freq_ghz);
    // IEEE division by exactly 1.0 is the identity, so skipping it at the
    // nominal phase is bit-identical and saves a divide on the hot path.
    return phase_scale_ == 1.0 ? s : s / phase_scale_;
  }

 private:
  std::string name_;
  int thread_count_;
  SpeedModel speed_;
  HeartbeatMonitor heartbeats_;
  double phase_scale_ = 1.0;
};

}  // namespace hars
