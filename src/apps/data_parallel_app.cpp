#include "apps/data_parallel_app.hpp"

#include <algorithm>
#include <cassert>

namespace hars {

DataParallelApp::DataParallelApp(std::string name, const DataParallelConfig& config)
    : App(std::move(name), config.threads, config.speed, config.heartbeat_window),
      config_(config),
      workload_(config.workload, Rng(config.seed)),
      rng_(Rng(config.seed).fork(0xDA7A)),
      remaining_(static_cast<std::size_t>(config.threads), 0.0),
      warmup_remaining_(config.warmup_work) {
  if (warmup_remaining_ <= 0.0) start_iteration();
}

void DataParallelApp::start_iteration() {
  if (config_.max_iterations >= 0 && iteration_ >= config_.max_iterations) {
    iteration_open_ = false;
    return;
  }
  const WorkUnits total = workload_.next(iteration_);
  const WorkUnits equal_share = total / config_.threads;
  open_threads_ = 0;
  for (auto& r : remaining_) {
    double jitter = 1.0;
    if (config_.imbalance > 0.0) {
      jitter = std::max(0.1, 1.0 + rng_.normal(0.0, config_.imbalance));
    }
    r = equal_share * jitter;
    if (r > 0.0) ++open_threads_;
  }
  iteration_open_ = true;
}

bool DataParallelApp::runnable(int local_tid) const {
  if (warmup_remaining_ > 0.0) return local_tid == 0;  // Serial input phase.
  if (!iteration_open_) return false;
  return remaining_[static_cast<std::size_t>(local_tid)] > 0.0;
}

void DataParallelApp::refresh_runnable(bool* out) const {
  // One virtual dispatch answers for all threads (engine hot path);
  // flag i equals runnable(i) exactly.
  if (warmup_remaining_ > 0.0) {
    out[0] = true;  // Serial input phase.
    std::fill(out + 1, out + thread_count(), false);
    return;
  }
  if (!iteration_open_) {
    std::fill(out, out + thread_count(), false);
    return;
  }
  for (std::size_t i = 0; i < remaining_.size(); ++i) out[i] = remaining_[i] > 0.0;
}

TimeUs DataParallelApp::execute(int local_tid, TimeUs share_us, CoreType type,
                                double freq_ghz) {
  const double speed = thread_speed(type, freq_ghz);  // work-units / sec
  if (speed <= 0.0 || share_us <= 0) return 0;

  // us_to_sec is a genuine FP division; the share repeats across the
  // threads of a tick (equal per-core shares), so one cached conversion
  // serves the whole barrier. Bit-identical: the cached value is the
  // division's result.
  if (share_us != cached_share_us_) {
    cached_share_us_ = share_us;
    cached_share_sec_ = us_to_sec(share_us);
    cached_speed_ = -1.0;  // cached_used_ depends on the share too.
  }

  if (warmup_remaining_ > 0.0) {
    assert(local_tid == 0);
    const WorkUnits can_do = speed * cached_share_sec_;
    const WorkUnits done = std::min(can_do, warmup_remaining_);
    warmup_remaining_ -= done;
    return static_cast<TimeUs>(done / speed * kUsPerSec);
  }

  WorkUnits& rem = remaining_[static_cast<std::size_t>(local_tid)];
  if (rem <= 0.0) return 0;
  const WorkUnits can_do = speed * cached_share_sec_;
  if (rem > can_do) {
    // Full-share case (the bulk of a barrier's ticks): done == can_do, so
    // the used-time division has the same operands for every thread at
    // this (speed, share) — cache its result.
    rem -= can_do;
    if (speed != cached_speed_) {
      cached_speed_ = speed;
      cached_used_ = static_cast<TimeUs>(can_do / speed * kUsPerSec);
    }
    return cached_used_;
  }
  const WorkUnits done = rem;  // == std::min(can_do, rem) with rem <= can_do.
  rem = 0.0;
  --open_threads_;  // Thread reached the barrier.
  return static_cast<TimeUs>(done / speed * kUsPerSec);
}

void DataParallelApp::end_tick(TimeUs now) {
  if (warmup_remaining_ > 0.0) return;
  if (warmup_remaining_ <= 0.0 && !iteration_open_ && iteration_ == 0 &&
      config_.warmup_work > 0.0) {
    // Warm-up finished this tick; open the first iteration.
    start_iteration();
    return;
  }
  if (!iteration_open_) return;
  // open_threads_ counts remaining_ entries > 0 (maintained by execute),
  // so the barrier check is O(1) instead of a scan.
  if (open_threads_ > 0) return;  // Barrier not yet reached.
  heartbeats().emit(now);
  ++iteration_;
  start_iteration();
}

bool DataParallelApp::finished() const {
  return config_.max_iterations >= 0 && iteration_ >= config_.max_iterations &&
         !iteration_open_;
}

}  // namespace hars
