#include "apps/data_parallel_app.hpp"

#include <algorithm>
#include <cassert>

namespace hars {

DataParallelApp::DataParallelApp(std::string name, const DataParallelConfig& config)
    : App(std::move(name), config.threads, config.speed, config.heartbeat_window),
      config_(config),
      workload_(config.workload, Rng(config.seed)),
      rng_(Rng(config.seed).fork(0xDA7A)),
      remaining_(static_cast<std::size_t>(config.threads), 0.0),
      warmup_remaining_(config.warmup_work) {
  if (warmup_remaining_ <= 0.0) start_iteration();
}

void DataParallelApp::start_iteration() {
  if (config_.max_iterations >= 0 && iteration_ >= config_.max_iterations) {
    iteration_open_ = false;
    return;
  }
  const WorkUnits total = workload_.next(iteration_);
  const WorkUnits equal_share = total / config_.threads;
  for (auto& r : remaining_) {
    double jitter = 1.0;
    if (config_.imbalance > 0.0) {
      jitter = std::max(0.1, 1.0 + rng_.normal(0.0, config_.imbalance));
    }
    r = equal_share * jitter;
  }
  iteration_open_ = true;
}

bool DataParallelApp::runnable(int local_tid) const {
  if (warmup_remaining_ > 0.0) return local_tid == 0;  // Serial input phase.
  if (!iteration_open_) return false;
  return remaining_[static_cast<std::size_t>(local_tid)] > 0.0;
}

TimeUs DataParallelApp::execute(int local_tid, TimeUs share_us, CoreType type,
                                double freq_ghz) {
  const double speed = thread_speed(type, freq_ghz);  // work-units / sec
  if (speed <= 0.0 || share_us <= 0) return 0;

  if (warmup_remaining_ > 0.0) {
    assert(local_tid == 0);
    const WorkUnits can_do = speed * us_to_sec(share_us);
    const WorkUnits done = std::min(can_do, warmup_remaining_);
    warmup_remaining_ -= done;
    return static_cast<TimeUs>(done / speed * kUsPerSec);
  }

  WorkUnits& rem = remaining_[static_cast<std::size_t>(local_tid)];
  if (rem <= 0.0) return 0;
  const WorkUnits can_do = speed * us_to_sec(share_us);
  const WorkUnits done = std::min(can_do, rem);
  rem -= done;
  return static_cast<TimeUs>(done / speed * kUsPerSec);
}

void DataParallelApp::end_tick(TimeUs now) {
  if (warmup_remaining_ > 0.0) return;
  if (warmup_remaining_ <= 0.0 && !iteration_open_ && iteration_ == 0 &&
      config_.warmup_work > 0.0) {
    // Warm-up finished this tick; open the first iteration.
    start_iteration();
    return;
  }
  if (!iteration_open_) return;
  for (const auto& r : remaining_) {
    if (r > 0.0) return;  // Barrier not yet reached.
  }
  heartbeats().emit(now);
  ++iteration_;
  start_iteration();
}

bool DataParallelApp::finished() const {
  return config_.max_iterations >= 0 && iteration_ >= config_.max_iterations &&
         !iteration_open_;
}

}  // namespace hars
