// Data-parallel application model: every iteration, the total work is split
// across the worker threads (with optional imbalance jitter); threads meet
// at a barrier and one heartbeat is emitted per iteration. Models the
// loop-parallel PARSEC benchmarks (blackscholes, swaptions, bodytrack,
// facesim, fluidanimate).
//
// An optional *serial warm-up phase* executes on thread 0 before any
// heartbeat is emitted — blackscholes' input-parsing phase, which drives
// the paper's case-6 (BO+BL) discussion in §5.2.2.
#pragma once

#include <vector>

#include "apps/app.hpp"
#include "apps/workload.hpp"
#include "util/rng.hpp"

namespace hars {

struct DataParallelConfig {
  int threads = 8;
  SpeedModel speed;
  WorkloadConfig workload;
  double imbalance = 0.0;      ///< Relative stddev of per-thread share jitter.
  WorkUnits warmup_work = 0.0; ///< Serial work before the first iteration.
  std::int64_t max_iterations = -1;  ///< <0: unbounded (run until sim end).
  std::uint64_t seed = 1;
  std::size_t heartbeat_window = 10;
};

class DataParallelApp final : public App {
 public:
  DataParallelApp(std::string name, const DataParallelConfig& config);

  bool runnable(int local_tid) const override;
  void refresh_runnable(bool* out) const override;
  /// begin_tick is the base no-op: iterations open in end_tick.
  bool needs_begin_tick() const override { return false; }
  TimeUs execute(int local_tid, TimeUs share_us, CoreType type,
                 double freq_ghz) override;
  void end_tick(TimeUs now) override;
  bool finished() const override;

  std::int64_t iterations_completed() const { return iteration_; }
  bool in_warmup() const { return warmup_remaining_ > 0.0; }

  /// Mean total work of one iteration (used by calibration).
  WorkUnits base_iteration_work() const { return config_.workload.base_work; }

 private:
  void start_iteration();

  DataParallelConfig config_;
  WorkloadGenerator workload_;
  Rng rng_;
  std::vector<WorkUnits> remaining_;  ///< Per-thread work left this iteration.
  TimeUs cached_share_us_ = -1;    ///< Last CPU share converted to seconds.
  double cached_share_sec_ = 0.0;  ///< us_to_sec(cached_share_us_).
  double cached_speed_ = -1.0;     ///< Speed the used-time cache is for.
  TimeUs cached_used_ = 0;         ///< Full-share used time at that speed.
  WorkUnits warmup_remaining_ = 0.0;
  std::int64_t iteration_ = 0;
  int open_threads_ = 0;  ///< remaining_ entries > 0 (barrier countdown).
  bool iteration_open_ = false;
};

}  // namespace hars
