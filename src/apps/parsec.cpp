#include "apps/parsec.hpp"

#include <stdexcept>

#include "apps/data_parallel_app.hpp"
#include "apps/pipeline_app.hpp"

namespace hars {

const char* parsec_code(ParsecBenchmark bench) {
  switch (bench) {
    case ParsecBenchmark::kBlackscholes: return "BL";
    case ParsecBenchmark::kBodytrack: return "BO";
    case ParsecBenchmark::kFacesim: return "FA";
    case ParsecBenchmark::kFerret: return "FE";
    case ParsecBenchmark::kFluidanimate: return "FL";
    case ParsecBenchmark::kSwaptions: return "SW";
  }
  return "??";
}

const char* parsec_name(ParsecBenchmark bench) {
  switch (bench) {
    case ParsecBenchmark::kBlackscholes: return "blackscholes";
    case ParsecBenchmark::kBodytrack: return "bodytrack";
    case ParsecBenchmark::kFacesim: return "facesim";
    case ParsecBenchmark::kFerret: return "ferret";
    case ParsecBenchmark::kFluidanimate: return "fluidanimate";
    case ParsecBenchmark::kSwaptions: return "swaptions";
  }
  return "unknown";
}

std::vector<ParsecBenchmark> all_parsec_benchmarks() {
  return {ParsecBenchmark::kBlackscholes, ParsecBenchmark::kBodytrack,
          ParsecBenchmark::kFacesim,      ParsecBenchmark::kFerret,
          ParsecBenchmark::kFluidanimate, ParsecBenchmark::kSwaptions};
}

std::vector<ParsecBenchmark> multiapp_parsec_benchmarks() {
  return {ParsecBenchmark::kBlackscholes, ParsecBenchmark::kBodytrack,
          ParsecBenchmark::kFluidanimate, ParsecBenchmark::kSwaptions};
}

double parsec_true_ratio(ParsecBenchmark bench) {
  return bench == ParsecBenchmark::kBlackscholes ? 1.0 : 1.5;
}

std::unique_ptr<App> make_parsec_app(ParsecBenchmark bench, int threads,
                                     std::uint64_t seed) {
  switch (bench) {
    case ParsecBenchmark::kBlackscholes: {
      DataParallelConfig cfg;
      cfg.threads = threads;
      cfg.speed = SpeedModel{2.4, 2.4};  // r = 1.0: no out-of-order win.
      cfg.workload = {WorkloadShape::kStable, 4.0, 0.01, 0.0, 1};
      cfg.imbalance = 0.01;
      cfg.warmup_work = 40.0;  // Serial option-file parsing, no heartbeats.
      cfg.seed = seed;
      return std::make_unique<DataParallelApp>("blackscholes", cfg);
    }
    case ParsecBenchmark::kBodytrack: {
      DataParallelConfig cfg;
      cfg.threads = threads;
      cfg.speed = SpeedModel{3.0, 2.0};
      cfg.workload = {WorkloadShape::kNoisy, 5.0, 0.10, 0.0, 1};
      cfg.imbalance = 0.05;
      cfg.seed = seed;
      return std::make_unique<DataParallelApp>("bodytrack", cfg);
    }
    case ParsecBenchmark::kFacesim: {
      DataParallelConfig cfg;
      cfg.threads = threads;
      cfg.speed = SpeedModel{3.0, 2.0};
      cfg.workload = {WorkloadShape::kPhased, 10.0, 0.05, 0.15, 40};
      cfg.imbalance = 0.04;
      cfg.seed = seed;
      return std::make_unique<DataParallelApp>("facesim", cfg);
    }
    case ParsecBenchmark::kFerret: {
      PipelineConfig cfg;
      // load -> seg -> extract -> vec -> rank -> out; middle stages carry
      // the compute, serial endpoints are light I/O.
      cfg.stages = {{1, 0.20}, {1, 0.60}, {2, 1.60},
                    {2, 1.60}, {1, 0.60}, {1, 0.20}};
      cfg.speed = SpeedModel{3.0, 2.0};
      cfg.max_in_flight = 32;
      cfg.work_noise = 0.05;
      cfg.seed = seed;
      return std::make_unique<PipelineApp>("ferret", cfg);
    }
    case ParsecBenchmark::kFluidanimate: {
      DataParallelConfig cfg;
      cfg.threads = threads;
      cfg.speed = SpeedModel{3.0, 2.0};
      cfg.workload = {WorkloadShape::kPhased, 6.0, 0.08, 0.20, 60};
      cfg.imbalance = 0.05;
      cfg.seed = seed;
      return std::make_unique<DataParallelApp>("fluidanimate", cfg);
    }
    case ParsecBenchmark::kSwaptions: {
      DataParallelConfig cfg;
      cfg.threads = threads;
      cfg.speed = SpeedModel{3.0, 2.0};
      cfg.workload = {WorkloadShape::kStable, 6.0, 0.005, 0.0, 1};
      cfg.imbalance = 0.01;
      cfg.seed = seed;
      return std::make_unique<DataParallelApp>("swaptions", cfg);
    }
  }
  throw std::invalid_argument("unknown ParsecBenchmark");
}

}  // namespace hars
