// Synthetic stand-ins for the six heartbeat-instrumented PARSEC benchmarks
// the paper evaluates (§5.1.1): blackscholes (BL), bodytrack (BO), facesim
// (FA), ferret (FE), fluidanimate (FL) and swaptions (SW).
//
// Each profile encodes the properties the paper's narrative depends on:
//   BL  - data-parallel, *same* speed on big and little cores (measured
//         r = 1.0, vs. HARS's assumed r0 = 1.5 — the source of its
//         suboptimal BL adaptation), very stable workload, and a serial
//         no-heartbeat input-parsing phase (drives the case-6 story).
//   BO  - data-parallel per frame, noisy workload.
//   FA  - data-parallel, heavy frames, slow phases.
//   FE  - 6-stage pipeline (load / 4 work stages / out); vulnerable to the
//         chunk scheduler mapping whole stages onto the little cluster.
//   FL  - data-parallel per frame, pronounced phase behaviour.
//   SW  - data-parallel, extremely regular (paper shrinks the swaption
//         count per heartbeat to increase heartbeat frequency).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"

namespace hars {

enum class ParsecBenchmark { kBlackscholes, kBodytrack, kFacesim, kFerret, kFluidanimate, kSwaptions };

/// Two-letter code used in the paper's figures (BL, BO, FA, FE, FL, SW).
const char* parsec_code(ParsecBenchmark bench);
const char* parsec_name(ParsecBenchmark bench);

/// All six benchmarks in figure order.
std::vector<ParsecBenchmark> all_parsec_benchmarks();

/// The four benchmarks used in the multi-application evaluation (§5.2.1).
std::vector<ParsecBenchmark> multiapp_parsec_benchmarks();

/// Instantiates the benchmark with `threads` worker threads (the paper runs
/// every benchmark with n = total core count = 8) and a deterministic seed.
std::unique_ptr<App> make_parsec_app(ParsecBenchmark bench, int threads = 8,
                                     std::uint64_t seed = 1);

/// True big:little performance ratio of the benchmark at equal frequency
/// (blackscholes: 1.0; others: 1.5). Used by tests and the r-sensitivity
/// ablation; HARS itself assumes r0 = 1.5 for everything, as in the paper.
double parsec_true_ratio(ParsecBenchmark bench);

}  // namespace hars
