#include "apps/pipeline_app.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/alloc_guard.hpp"

namespace hars {

int PipelineApp::total_threads(const PipelineConfig& config) {
  int n = 0;
  for (const auto& s : config.stages) n += s.threads;
  return n;
}

PipelineApp::PipelineApp(std::string name, const PipelineConfig& config)
    : App(std::move(name), total_threads(config), config.speed,
          config.heartbeat_window),
      config_(config),
      rng_(config.seed) {
  if (config_.stages.empty()) {
    throw std::invalid_argument("PipelineApp requires at least one stage");
  }
  for (int s = 0; s < num_stages(); ++s) {
    for (int t = 0; t < config_.stages[static_cast<std::size_t>(s)].threads; ++t) {
      workers_.push_back(Worker{s, false, 0.0});
    }
  }
  queues_.resize(static_cast<std::size_t>(num_stages()));
}

int PipelineApp::stage_of_thread(int local_tid) const {
  return workers_[static_cast<std::size_t>(local_tid)].stage;
}

std::vector<int> PipelineApp::thread_group_sizes() const {
  std::vector<int> sizes;
  sizes.reserve(config_.stages.size());
  for (const auto& s : config_.stages) sizes.push_back(s.threads);
  return sizes;
}

bool PipelineApp::try_acquire(Worker& worker) {
  auto& queue = queues_[static_cast<std::size_t>(worker.stage)];
  if (queue.empty()) return false;
  queue.pop_front();
  worker.has_item = true;
  double jitter = 1.0;
  if (config_.work_noise > 0.0) {
    jitter = std::max(0.1, 1.0 + rng_.normal(0.0, config_.work_noise));
  }
  worker.remaining =
      config_.stages[static_cast<std::size_t>(worker.stage)].work_per_item * jitter;
  return true;
}

void PipelineApp::begin_tick(TimeUs /*now*/) {
  // Queue nodes are workload-model state, not engine mechanics: deque
  // chunk growth is bounded by max_in_flight and declared amortized.
  allocg::AllowScope allow("pipeline admission queue");
  // Admission control: keep the pipeline primed up to max_in_flight.
  while (in_flight_ < config_.max_in_flight &&
         (config_.max_items < 0 || items_admitted_ < config_.max_items)) {
    queues_.front().push_back(1);
    ++items_admitted_;
    ++in_flight_;
  }
}

bool PipelineApp::runnable(int local_tid) const {
  const Worker& w = workers_[static_cast<std::size_t>(local_tid)];
  if (w.has_item) return true;
  return !queues_[static_cast<std::size_t>(w.stage)].empty();
}

TimeUs PipelineApp::execute(int local_tid, TimeUs share_us, CoreType type,
                            double freq_ghz) {
  Worker& w = workers_[static_cast<std::size_t>(local_tid)];
  const double speed = thread_speed(type, freq_ghz);
  if (speed <= 0.0 || share_us <= 0) return 0;

  TimeUs used = 0;
  while (used < share_us) {
    if (!w.has_item && !try_acquire(w)) break;
    const TimeUs left_us = share_us - used;
    const WorkUnits can_do = speed * us_to_sec(left_us);
    const WorkUnits done = std::min(can_do, w.remaining);
    w.remaining -= done;
    used += static_cast<TimeUs>(done / speed * kUsPerSec);
    if (w.remaining <= 1e-12) {
      // Item hand-off touches inter-stage queues (workload-model state,
      // amortized by retained deque chunks and vector capacity).
      allocg::AllowScope allow("pipeline item hand-off");
      w.has_item = false;
      const int next_stage = w.stage + 1;
      if (next_stage < num_stages()) {
        queues_[static_cast<std::size_t>(next_stage)].push_back(1);
      } else {
        retired_this_tick_.push_back(0);
        ++items_retired_;
        --in_flight_;
      }
    }
  }
  return used;
}

void PipelineApp::end_tick(TimeUs now) {
  for (std::size_t i = 0; i < retired_this_tick_.size(); ++i) {
    heartbeats().emit(now);
  }
  retired_this_tick_.clear();
}

bool PipelineApp::finished() const {
  return config_.max_items >= 0 && items_retired_ >= config_.max_items;
}

}  // namespace hars
