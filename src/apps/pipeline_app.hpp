// Pipeline application model (PARSEC ferret: a 6-stage pipeline).
//
// Items flow through a chain of stages; each stage has its own threads and
// per-item work. A heartbeat is emitted each time an item leaves the last
// stage. Threads are numbered stage by stage (stage 0's threads first),
// which is what makes the chunk-based scheduler map whole stages onto one
// cluster and bottleneck the pipeline (paper §3.1.3 / Figure 3.2) while
// the interleaving scheduler spreads each stage across both clusters.
#pragma once

#include <deque>
#include <vector>

#include "apps/app.hpp"
#include "apps/workload.hpp"
#include "util/rng.hpp"

namespace hars {

struct PipelineStageSpec {
  int threads = 1;
  WorkUnits work_per_item = 1.0;
};

struct PipelineConfig {
  std::vector<PipelineStageSpec> stages;
  SpeedModel speed;
  int max_in_flight = 32;  ///< Items admitted but not yet retired.
  double work_noise = 0.0; ///< Relative jitter on per-item stage work.
  std::int64_t max_items = -1;  ///< <0: unbounded input.
  std::uint64_t seed = 1;
  std::size_t heartbeat_window = 10;
};

class PipelineApp final : public App {
 public:
  PipelineApp(std::string name, const PipelineConfig& config);

  bool runnable(int local_tid) const override;
  TimeUs execute(int local_tid, TimeUs share_us, CoreType type,
                 double freq_ghz) override;
  void begin_tick(TimeUs now) override;
  void end_tick(TimeUs now) override;
  bool finished() const override;

  int num_stages() const { return static_cast<int>(config_.stages.size()); }
  int stage_of_thread(int local_tid) const;

  /// One thread group per pipeline stage (§3.1.4's thread hierarchy).
  std::vector<int> thread_group_sizes() const override;
  std::int64_t items_retired() const { return items_retired_; }

  const PipelineConfig& config() const { return config_; }

 private:
  static int total_threads(const PipelineConfig& config);

  struct Worker {
    int stage = 0;
    bool has_item = false;
    WorkUnits remaining = 0.0;  ///< Work left on the held item.
  };

  /// Tries to hand `worker` a new item from its stage's input queue.
  bool try_acquire(Worker& worker);

  PipelineConfig config_;
  Rng rng_;
  std::vector<Worker> workers_;
  /// queue_[s]: items waiting to *enter* stage s. queue_[0] is fed by the
  /// admission control in begin_tick.
  std::vector<std::deque<int>> queues_;
  std::vector<TimeUs> retired_this_tick_;
  std::int64_t items_admitted_ = 0;
  std::int64_t items_retired_ = 0;
  int in_flight_ = 0;
};

}  // namespace hars
