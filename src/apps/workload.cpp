#include "apps/workload.hpp"

#include <algorithm>
#include <cmath>

namespace hars {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, Rng rng)
    : config_(config), rng_(rng) {}

WorkUnits WorkloadGenerator::next(std::int64_t index) {
  double factor = 1.0;
  switch (config_.shape) {
    case WorkloadShape::kStable:
      break;
    case WorkloadShape::kNoisy:
      factor += rng_.normal(0.0, config_.noise);
      break;
    case WorkloadShape::kPhased: {
      const double two_pi = 6.283185307179586;
      const double phase =
          two_pi * static_cast<double>(index) / std::max(1, config_.phase_period);
      factor += config_.phase_amplitude * std::sin(phase);
      factor += rng_.normal(0.0, config_.noise);
      break;
    }
  }
  // Keep iterations meaningfully sized even under heavy noise.
  factor = std::max(0.2, factor);
  return config_.base_work * factor;
}

}  // namespace hars
