// Workload generators: per-iteration total work for the synthetic
// benchmark applications. Profiles encode the behaviours the paper's
// evaluation narrative relies on (stable vs. noisy vs. phased workloads).
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace hars {

enum class WorkloadShape {
  kStable,  ///< Constant work per iteration (swaptions, blackscholes).
  kNoisy,   ///< Lognormal-ish jitter around the base (bodytrack).
  kPhased,  ///< Slow sinusoidal phases plus jitter (fluidanimate, facesim).
};

struct WorkloadConfig {
  WorkloadShape shape = WorkloadShape::kStable;
  WorkUnits base_work = 1.0;   ///< Mean total work per iteration.
  double noise = 0.0;          ///< Relative stddev of the jitter.
  double phase_amplitude = 0.0;///< Relative amplitude of the phase swing.
  int phase_period = 100;      ///< Iterations per full phase cycle.
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, Rng rng);

  /// Total work of iteration `index` (deterministic in seed + index order).
  WorkUnits next(std::int64_t index);

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace hars
