#include "backend/backend.hpp"

#include <stdexcept>
#include <string>

namespace hars {

AppId Backend::add_workload(const WorkloadDesc& desc) {
  throw std::logic_error(
      "backend '" + std::string(name()) + "' does not execute workloads (" +
      desc.label +
      "); simulated apps are added to the SimEngine via Experiment/"
      "ExperimentBuilder instead");
}

void Backend::place_app(AppId app, CpuMask mask) {
  const int n = thread_count(app);
  for (int i = 0; i < n; ++i) place(app, i, mask);
}

}  // namespace hars
