// Backend: the hardware-abstraction boundary under the runtime managers.
//
// The paper's HARS daemon manages real big.LITTLE silicon through a small
// "syscall surface": read per-core load and per-thread elapsed work, set
// per-cluster DVFS levels (cpufreq), place/affine threads
// (sched_setaffinity), toggle cores on/offline (cpu hotplug) and read
// energy (INA231 / RAPL). This interface is exactly that surface — no
// more — so the same managers (RuntimeManager, MpHarsManager,
// ConsIManager) drive either the discrete-time simulator or real
// hardware:
//
//   * SimBackend    — stateless forwarder over SimEngine. The default
//                     behind ExperimentBuilder::backend("sim"); keeps the
//                     simulated path bit-identical to pre-HAL builds.
//   * MockLinuxBackend — a Linux backend over a fixture sysfs tree
//                     (FakeSysfs) with modeled threads and injectable
//                     counter streams; every sysfs write and affinity
//                     call is recorded, so CI asserts exact sequences.
//   * LinuxBackend  — the real thing: cpufreq sysfs writes,
//                     sched_setaffinity, /sys/.../online hotplug, RAPL
//                     energy, graceful capability probing. Shipped as the
//                     tools/hars_agentd daemon.
//
// Topology is exposed as a `Machine` mirror: for the simulator it IS the
// simulated machine; live backends keep a probed mirror in sync with the
// writes they issue, so manager-side reads (freq_level, online_mask,
// masks) cost no syscalls. Time comes from a TimeSource so tick loops run
// on simulated or wall-clock time with the same code.
#pragma once

#include <vector>

#include "heartbeats/heartbeat.hpp"
#include "hmp/cpu_mask.hpp"
#include "hmp/machine.hpp"
#include "util/common.hpp"

namespace hars {

class PowerModel;  // hmp/power_model.hpp
class SimEngine;   // hmp/sim_engine.hpp

/// Runtime managers (HARS, MP-HARS, CONS-I) attach to a backend through
/// this hook. `on_tick` returns the CPU time (us) the manager consumed so
/// the simulator can charge it as overhead (live backends pay it for
/// real and ignore the return value).
class ManagerHook {
 public:
  virtual ~ManagerHook() = default;
  virtual TimeUs on_tick(TimeUs now) = 0;
};

/// What a backend can actually do on its platform; probed at
/// construction for live backends (a server without cpufreq still runs,
/// it just reports dvfs = false and set_dvfs_level only moves the
/// mirror).
struct BackendCaps {
  bool dvfs = false;       ///< Per-cluster frequency writes reach hardware.
  bool placement = false;  ///< place() reaches sched_setaffinity.
  bool hotplug = false;    ///< set_online_mask() reaches /sys .../online.
  bool energy = false;     ///< energy_j() reads a real meter (else modeled).
  bool core_stats = false; ///< core_busy_fraction() reads real counters.
  bool simulated = false;  ///< Time and execution are simulated.
};

/// Tick clock: simulated backends advance it inside run_until;
/// wall-clock backends sleep on it.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  /// Monotonic microseconds since the backend's epoch (t = 0 at start).
  virtual TimeUs now_us() = 0;
  /// Blocks until now_us() >= t (no-op where time is driven, i.e. sim).
  virtual void sleep_until(TimeUs t) = 0;
};

/// Workload registration for live backends: the backend executes the
/// workload natively (mock: modeled threads; linux: real spinning
/// threads) and feeds its heartbeat monitor. Simulated apps do not go
/// through this — they are App objects added to the SimEngine.
struct WorkloadDesc {
  std::string label;
  int threads = 4;
  /// Pipeline-stage sizes for the hierarchical scheduler; empty means one
  /// group of `threads`.
  std::vector<int> group_sizes;
  /// Work units per heartbeat (live backends emit a beat whenever the
  /// workload completes this much work; work accrues at core_speed).
  double work_per_beat = 1.0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;
  virtual BackendCaps caps() const = 0;

  /// The machine mirror: topology plus the current DVFS/online state as
  /// of the last accepted set_* call (probed ground truth at startup for
  /// live backends). Reference stays valid for the backend's lifetime.
  virtual const Machine& topology() const = 0;

  // --- Observation ---
  /// Lifetime busy fraction of one core (busy time / elapsed).
  virtual double core_busy_fraction(CoreId core) const = 0;
  /// CPU time one thread has consumed so far (us).
  virtual TimeUs elapsed_work_us(AppId app, int local_tid) const = 0;
  /// Cumulative energy since the backend's epoch (J).
  virtual double energy_j() const = 0;

  // --- Managed applications ---
  /// Number of app slots ever registered (removed apps keep their slot).
  virtual int num_apps() const = 0;
  virtual bool app_alive(AppId app) const = 0;
  virtual int thread_count(AppId app) const = 0;
  /// Pipeline-stage sizes (hierarchical scheduler); one group by default.
  virtual std::vector<int> thread_group_sizes(AppId app) const = 0;
  /// The app's heartbeat channel (managers read rate/window, install
  /// targets; live backends pump emissions into it each tick).
  virtual HeartbeatMonitor& heartbeats(AppId app) = 0;
  const HeartbeatMonitor& heartbeats(AppId app) const {
    return const_cast<Backend*>(this)->heartbeats(app);
  }
  /// Registers a backend-executed workload (live backends only; the
  /// default throws std::logic_error pointing at the SimEngine path).
  virtual AppId add_workload(const WorkloadDesc& desc);

  // --- Actuation ---
  /// Sets a cluster's DVFS level, clamped to [0, max_freq_level] exactly
  /// like Machine::set_freq_level (cpufreq clamps out-of-range
  /// frequencies the same way).
  virtual void set_dvfs_level(ClusterId cluster, int level) = 0;
  virtual int dvfs_level(ClusterId cluster) const {
    return topology().freq_level(cluster);
  }
  /// sched_setaffinity for one thread of one app.
  virtual void place(AppId app, int local_tid, CpuMask mask) = 0;
  /// Applies `mask` to every thread of the app (cluster-level pinning).
  virtual void place_app(AppId app, CpuMask mask);
  /// Core the thread currently runs on (-1 while unplaced/unknown).
  virtual CoreId thread_core(AppId app, int local_tid) const = 0;
  /// Hotplug: the desired online set. Cores the platform cannot offline
  /// (the boot core; cores without an `online` file) stay online — the
  /// accepted mask is readable back via topology().online_mask().
  virtual void set_online_mask(CpuMask mask) = 0;

  // --- Tick loop ---
  virtual TimeSource& time() = 0;
  TimeUs now() { return time().now_us(); }
  /// Installs (or, with nullptr, detaches) the manager driven by
  /// run_until. The caller keeps it alive.
  virtual void attach_manager(ManagerHook* manager) = 0;
  /// Advances to absolute time `t`, driving the per-tick lifecycle
  /// (observe -> manager -> actuate for live backends; the full 6+1-step
  /// simulation for SimBackend).
  virtual void run_until(TimeUs t) = 0;
  void run_for(TimeUs dt) { run_until(now() + dt); }

  // --- Estimator support ---
  /// Power model the profiling campaign (profile_power) trains the power
  /// estimator against: the simulator's ground-truth model, or a
  /// platform-parameter model of the probed topology for live backends
  /// (real coefficient tables can be loaded from file instead;
  /// core/coeff_io.hpp).
  virtual const PowerModel& profiling_model() const = 0;

  /// Whether managers should run their (expensive) result audits.
  virtual bool audit_enabled() const { return false; }

  /// Wall-clock CPU share the manager consumed, as a percentage of one
  /// core (the simulator charges modeled costs; live backends measure).
  virtual double manager_cpu_utilization_pct() const { return 0.0; }

  /// Escape hatch for sim-only features (offline oracles, bit-identity
  /// suites). Null for every non-simulated backend.
  virtual SimEngine* sim_engine() { return nullptr; }
};

}  // namespace hars
