#include "backend/backend_registry.hpp"

#include <stdexcept>
#include <utility>

#include "backend/linux_backend.hpp"
#include "backend/mock_linux_backend.hpp"

namespace hars {

namespace {

LinuxBackendConfig config_from(const BackendOptions& options,
                               LinuxBackendConfig config) {
  if (options.tick_us > 0) config.tick_us = options.tick_us;
  config.dry_run = options.dry_run;
  config.platform = options.platform;
  config.audit = options.audit;
  return config;
}

std::unique_ptr<Backend> make_mock_linux(const BackendOptions& options) {
  FakeSysfs fixture = options.fixture.empty()
                          ? FakeSysfs::exynos5422()
                          : FakeSysfs::from_file(options.fixture);
  return std::make_unique<MockLinuxBackend>(
      std::move(fixture),
      config_from(options, MockLinuxBackend::mock_config()));
}

std::unique_ptr<Backend> make_linux(const BackendOptions& options) {
  LinuxBackendConfig config = config_from(options, LinuxBackendConfig{});
  return std::make_unique<LinuxBackend>(
      std::make_unique<RealSysfs>(options.sysfs_root.empty()
                                      ? std::string("/")
                                      : options.sysfs_root),
      std::make_unique<RealThreadOps>(), std::make_unique<WallTimeSource>(),
      std::move(config));
}

std::string known_names_list(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

BackendRegistry::BackendRegistry() {
  entries_.push_back(
      {"sim",
       "discrete-time simulator (the default; SimBackend over SimEngine)",
       nullptr});
  entries_.push_back({"mock_linux",
                      "fixture sysfs tree + modeled threads (CI-testable "
                      "Linux backend)",
                      &make_mock_linux});
  entries_.push_back({"linux",
                      "real hardware: cpufreq/hotplug sysfs writes, "
                      "sched_setaffinity, powercap energy",
                      &make_linux});
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(BackendEntry entry, bool replace) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (BackendEntry& existing : entries_) {
    if (existing.name == entry.name) {
      if (!replace) {
        throw std::invalid_argument("backend '" + entry.name +
                                    "' is already registered");
      }
      existing = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

const BackendEntry* BackendRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const BackendEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::unique_ptr<Backend> BackendRegistry::get_live(
    std::string_view name, const BackendOptions& options) const {
  const BackendEntry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown backend '" + std::string(name) +
                                "'; known backends: " +
                                known_names_list(names()));
  }
  if (!entry->factory) {
    throw std::invalid_argument(
        "backend '" + std::string(name) +
        "' is not a live backend; the simulator is driven through "
        "Experiment::run() / ExperimentBuilder::backend(\"sim\")");
  }
  return entry->factory(options);
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const BackendEntry& entry : entries_) out.push_back(entry.name);
  return out;
}

std::vector<BackendEntry> BackendRegistry::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

}  // namespace hars
