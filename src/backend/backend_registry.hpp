// BackendRegistry: the string-keyed catalogue of backends, modeled on
// the Platform/Scenario/Variant registries. Built-ins register at
// construction:
//
//   sim          the discrete-time simulator (SimBackend) — the default;
//                resolved inside Experiment::run(), which owns the
//                engine, so its factory is null here
//   mock_linux   LinuxBackend over the exynos5422 fixture tree with
//                modeled threads (MockLinuxBackend)
//   linux        the real machine's sysfs + sched_setaffinity
//                (LinuxBackend; probe-only with options.dry_run)
//
// Every accessor locks, so concurrent resolution from sweep workers is
// safe; malformed names are rejected up front by get()/get_live() with
// the known-name list in the error, mirroring the other registries.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "backend/backend.hpp"
#include "hmp/platform_spec.hpp"
#include "util/common.hpp"

namespace hars {

/// Construction options live backends accept (ignored field-by-field
/// where a backend has no use for one).
struct BackendOptions {
  /// Manager epoch for live tick loops; 0 = the backend's default.
  TimeUs tick_us = 0;
  /// Probe-only: never write sysfs, never call sched_setaffinity.
  bool dry_run = false;
  /// Sysfs fixture file for mock_linux (FakeSysfs::from_file format);
  /// empty = the built-in exynos5422 tree.
  std::string fixture;
  /// Sysfs root for linux (RealSysfs); empty = "/".
  std::string sysfs_root;
  /// Platform carrying power parameters to graft onto the probed
  /// topology (profiling model + modeled-energy fallback).
  std::optional<PlatformSpec> platform;
  bool audit = false;
};

struct BackendEntry {
  std::string name;
  std::string description;
  /// Null for "sim": the simulated backend wraps an engine the caller
  /// owns, so it cannot be built from options alone.
  std::function<std::unique_ptr<Backend>(const BackendOptions&)> factory;
};

class BackendRegistry {
 public:
  static BackendRegistry& instance();

  /// Registers an entry. Throws std::invalid_argument when the name is
  /// already registered and `replace` is false.
  void register_backend(BackendEntry entry, bool replace = false);

  /// Null when `name` is unknown. Valid across later registrations
  /// (deque storage), not across a replace of the same name.
  const BackendEntry* find(std::string_view name) const;

  /// True when `name` resolves (the up-front validation hook for
  /// ExperimentBuilder / CLI flag parsing).
  bool known(std::string_view name) const { return find(name) != nullptr; }

  /// Builds the named live backend. Throws std::invalid_argument listing
  /// the known names on an unknown name, and a pointed error for "sim"
  /// (which is resolved by Experiment::run(), not built from options).
  std::unique_ptr<Backend> get_live(std::string_view name,
                                    const BackendOptions& options) const;

  /// All registered names, in registration order.
  std::vector<std::string> names() const;
  /// Name + description pairs for --list-backends.
  std::vector<BackendEntry> entries() const;

 private:
  BackendRegistry();
  mutable std::mutex mutex_;
  std::deque<BackendEntry> entries_;
};

/// RAII registration helper, mirroring the other registries:
///   static BackendRegistrar reg({"my_backend", "…", factory});
struct BackendRegistrar {
  explicit BackendRegistrar(BackendEntry entry, bool replace = false) {
    BackendRegistry::instance().register_backend(std::move(entry), replace);
  }
};

}  // namespace hars
