#include "backend/linux_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

#ifdef __linux__
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hars {

namespace {

constexpr const char* kCpuRoot = "sys/devices/system/cpu";

std::string cpu_dir(int cpu) {
  return std::string(kCpuRoot) + "/cpu" + std::to_string(cpu);
}

struct CpuStat {
  double busy = 0.0;
  double total = 0.0;
};

/// Parses /proc/stat per-cpu lines (USER_HZ). Busy = total - idle -
/// iowait, matching the usual userspace convention (top, mpstat).
std::map<int, CpuStat> parse_proc_stat(const std::string& text) {
  std::map<int, CpuStat> stats;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 3, "cpu") != 0 || line.size() < 4 ||
        !std::isdigit(static_cast<unsigned char>(line[3]))) {
      continue;
    }
    std::istringstream fields(line);
    std::string label;
    fields >> label;
    const int cpu = std::stoi(label.substr(3));
    double v = 0.0, total = 0.0, idle_like = 0.0;
    for (int i = 0; fields >> v; ++i) {
      total += v;
      if (i == 3 || i == 4) idle_like += v;  // idle, iowait
    }
    stats[cpu] = {total - idle_like, total};
  }
  return stats;
}

}  // namespace

// --- WallTimeSource ---------------------------------------------------

WallTimeSource::WallTimeSource()
    : epoch_ns_(std::chrono::steady_clock::now().time_since_epoch().count()) {}

TimeUs WallTimeSource::now_us() {
  const auto now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<TimeUs>((now_ns - epoch_ns_) / 1000);
}

void WallTimeSource::sleep_until(TimeUs t) {
  while (true) {
    const TimeUs now = now_us();
    if (now >= t) return;
    std::this_thread::sleep_for(std::chrono::microseconds(t - now));
  }
}

// --- RealThreadOps ----------------------------------------------------

namespace {
/// One work unit for the spinning workers: 1M iterations of dependent
/// arithmetic, roughly a millisecond on current cores.
constexpr std::uint64_t kSpinsPerWorkUnit = 1'000'000;
}  // namespace

struct RealThreadOps::Impl {
  struct Worker {
    std::thread thread;
    std::atomic<std::uint64_t> work_units{0};
    std::atomic<long> tid{0};
    std::atomic<bool> stop{false};
  };
  // Worker addresses must be stable across spawns: one deque-like vector
  // of unique_ptrs per app.
  std::vector<std::vector<std::unique_ptr<Worker>>> apps;

  Worker& worker(AppId app, int local_tid) {
    return *apps.at(static_cast<std::size_t>(app))
                .at(static_cast<std::size_t>(local_tid));
  }
  const Worker& worker(AppId app, int local_tid) const {
    return const_cast<Impl*>(this)->worker(app, local_tid);
  }
};

RealThreadOps::RealThreadOps() : impl_(std::make_unique<Impl>()) {}

RealThreadOps::~RealThreadOps() { stop_all(); }

void RealThreadOps::stop_all() {
  for (auto& workers : impl_->apps) {
    for (auto& w : workers) w->stop.store(true, std::memory_order_relaxed);
  }
  for (auto& workers : impl_->apps) {
    for (auto& w : workers) {
      if (w->thread.joinable()) w->thread.join();
    }
  }
}

#ifdef __linux__

int RealThreadOps::spawn(AppId app, const WorkloadDesc& desc) {
  impl_->apps.resize(
      std::max(impl_->apps.size(), static_cast<std::size_t>(app) + 1));
  auto& workers = impl_->apps[static_cast<std::size_t>(app)];
  for (int i = 0; i < desc.threads; ++i) {
    auto w = std::make_unique<Impl::Worker>();
    Impl::Worker* worker = w.get();
    worker->thread = std::thread([worker] {
      worker->tid.store(static_cast<long>(::syscall(SYS_gettid)),
                        std::memory_order_release);
      volatile double sink = 1.0;
      while (!worker->stop.load(std::memory_order_relaxed)) {
        for (std::uint64_t s = 0; s < kSpinsPerWorkUnit; ++s) {
          sink = sink * 1.000000001 + 1e-9;
        }
        worker->work_units.fetch_add(1, std::memory_order_relaxed);
      }
    });
    workers.push_back(std::move(w));
  }
  return desc.threads;
}

namespace {
/// Blocks (bounded) until the worker has published its kernel tid.
long wait_for_tid(const std::atomic<long>& tid_atomic) {
  for (int spin = 0; spin < 10'000; ++spin) {
    const long tid = tid_atomic.load(std::memory_order_acquire);
    if (tid != 0) return tid;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return 0;
}

/// /proc/self/task/<tid>/stat fields after the comm field: utime is
/// field 14, stime 15, processor 39 (1-based over the whole line).
bool read_task_stat(long tid, TimeUs* cpu_us, int* cpu) {
  std::ifstream in("/proc/self/task/" + std::to_string(tid) + "/stat");
  if (!in) return false;
  std::string line;
  std::getline(in, line);
  const auto close = line.rfind(')');
  if (close == std::string::npos) return false;
  std::istringstream fields(line.substr(close + 1));
  std::string tok;
  double utime = 0.0, stime = 0.0;
  int processor = -1;
  for (int i = 3; fields >> tok; ++i) {  // first token after ')' = field 3
    if (i == 14) utime = std::atof(tok.c_str());
    if (i == 15) stime = std::atof(tok.c_str());
    if (i == 39) processor = std::atoi(tok.c_str());
  }
  static const double us_per_tick = 1e6 / static_cast<double>(
      ::sysconf(_SC_CLK_TCK) > 0 ? ::sysconf(_SC_CLK_TCK) : 100);
  if (cpu_us != nullptr) {
    *cpu_us = static_cast<TimeUs>((utime + stime) * us_per_tick);
  }
  if (cpu != nullptr) *cpu = processor;
  return true;
}
}  // namespace

void RealThreadOps::set_affinity(AppId app, int local_tid,
                                 const std::vector<int>& cpus) {
  if (cpus.empty()) return;
  const long tid = wait_for_tid(impl_->worker(app, local_tid).tid);
  if (tid == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) CPU_SET(static_cast<unsigned>(cpu), &set);
  ::sched_setaffinity(static_cast<pid_t>(tid), sizeof(set), &set);
}

int RealThreadOps::current_cpu(AppId app, int local_tid) const {
  const long tid = impl_->worker(app, local_tid).tid.load();
  int cpu = -1;
  if (tid != 0) read_task_stat(tid, nullptr, &cpu);
  return cpu;
}

TimeUs RealThreadOps::cpu_time_us(AppId app, int local_tid) const {
  const long tid = impl_->worker(app, local_tid).tid.load();
  TimeUs us = 0;
  if (tid != 0) read_task_stat(tid, &us, nullptr);
  return us;
}

bool RealThreadOps::can_place() const { return true; }

#else  // !__linux__

int RealThreadOps::spawn(AppId, const WorkloadDesc&) {
  throw std::runtime_error("RealThreadOps requires Linux");
}
void RealThreadOps::set_affinity(AppId, int, const std::vector<int>&) {}
int RealThreadOps::current_cpu(AppId, int) const { return -1; }
TimeUs RealThreadOps::cpu_time_us(AppId, int) const { return 0; }
bool RealThreadOps::can_place() const { return false; }

#endif  // __linux__

double RealThreadOps::work_done(AppId app, int local_tid) const {
  return static_cast<double>(
      impl_->worker(app, local_tid).work_units.load(std::memory_order_relaxed));
}

// --- LinuxBackend -----------------------------------------------------

namespace {

/// The probed spec, with the power parameters (and base draw) of an
/// explicitly-supplied platform grafted on when its shape matches.
PlatformSpec make_spec(const SysfsIo& sysfs, const LinuxBackendConfig& config) {
  PlatformSpec spec = PlatformSpec::from_sysfs(sysfs, config.name + "-probe");
  if (config.platform) {
    const PlatformSpec& given = *config.platform;
    if (given.clusters.size() == spec.clusters.size()) {
      for (std::size_t i = 0; i < spec.clusters.size(); ++i) {
        spec.clusters[i].power = given.clusters[i].power;
      }
      spec.base_watts = given.base_watts;
      spec.default_r0 = given.default_r0;
      spec.name = given.name + "@" + config.name;
    }
  }
  return spec;
}

}  // namespace

LinuxBackend::LinuxBackend(std::unique_ptr<SysfsIo> sysfs,
                           std::unique_ptr<ThreadOps> threads,
                           std::unique_ptr<TimeSource> time,
                           LinuxBackendConfig config)
    : sysfs_(std::move(sysfs)),
      threads_(std::move(threads)),
      time_(std::move(time)),
      config_(std::move(config)),
      topo_(probe_topology(*sysfs_)),
      spec_(make_spec(*sysfs_, config_)),
      machine_(spec_.make_machine()),
      power_model_(machine_, spec_.cluster_power()) {
  power_model_.set_base_watts(spec_.base_watts);
  if (config_.tick_us <= 0) {
    throw std::invalid_argument("LinuxBackend tick must be positive");
  }
  for (const auto& cluster : topo_.clusters) {
    for (const int cpu : cluster.cpus) core_to_cpu_.push_back(cpu);
  }
  threads_->attach(&machine_, &core_to_cpu_);
  governor_set_.assign(static_cast<std::size_t>(machine_.num_clusters()), 0);
  tick_busy_.assign(static_cast<std::size_t>(machine_.num_cores()), 0.0);
  probe_caps();
  probe_energy_meters();
  sync_mirror_from_sysfs();

  const auto n = static_cast<std::size_t>(machine_.num_cores());
  busy0_.assign(n, 0.0);
  total0_.assign(n, 0.0);
  if (const auto text = sysfs_->read("proc/stat")) {
    const auto stats = parse_proc_stat(*text);
    for (std::size_t c = 0; c < n; ++c) {
      const auto it = stats.find(core_to_cpu_[c]);
      if (it == stats.end()) continue;
      busy0_[c] = it->second.busy;
      total0_[c] = it->second.total;
    }
  }
  prev_busy_ = busy0_;
  prev_total_ = total0_;
  last_sample_us_ = time_->now_us();
  next_tick_ = last_sample_us_ + config_.tick_us;
}

LinuxBackend::~LinuxBackend() { threads_->stop_all(); }

std::string LinuxBackend::policy_dir(ClusterId cluster) const {
  return cpu_dir(topo_.clusters[static_cast<std::size_t>(cluster)].policy_cpu) +
         "/cpufreq";
}

CoreId LinuxBackend::core_of_cpu(int cpu) const {
  for (std::size_t c = 0; c < core_to_cpu_.size(); ++c) {
    if (core_to_cpu_[c] == cpu) return static_cast<CoreId>(c);
  }
  return -1;
}

void LinuxBackend::probe_caps() {
  caps_.simulated = false;
  const std::string p = policy_dir(0);
  caps_.dvfs = sysfs_->exists(p + "/scaling_setspeed") ||
               sysfs_->exists(p + "/scaling_min_freq");
  caps_.placement = threads_->can_place();
  caps_.hotplug = false;
  for (const int cpu : core_to_cpu_) {
    if (sysfs_->exists(cpu_dir(cpu) + "/online")) {
      caps_.hotplug = true;
      break;
    }
  }
  const auto stat = sysfs_->read("proc/stat");
  caps_.core_stats = stat && !parse_proc_stat(*stat).empty();
}

void LinuxBackend::probe_energy_meters() {
  for (const std::string& root : {std::string("sys/class/powercap")}) {
    for (const std::string& child : sysfs_->list(root)) {
      const std::string dir = root + "/" + child;
      // Skip powercap subzones (intel-rapl:0:0) so package energy is not
      // double-counted; top-level domains have at most one ':'.
      if (std::count(child.begin(), child.end(), ':') > 1) continue;
      const auto cur = sysfs_->read(dir + "/energy_uj");
      if (!cur) continue;
      EnergyMeter meter;
      meter.path = dir + "/energy_uj";
      meter.last_uj = std::atoll(cur->c_str());
      if (const auto range = sysfs_->read(dir + "/max_energy_range_uj")) {
        meter.range_uj = std::atoll(range->c_str());
      }
      meters_.push_back(std::move(meter));
    }
  }
  caps_.energy = !meters_.empty();
}

void LinuxBackend::sync_mirror_from_sysfs() {
  for (ClusterId cl = 0; cl < machine_.num_clusters(); ++cl) {
    const auto cur = sysfs_->read(policy_dir(cl) + "/scaling_cur_freq");
    if (!cur) continue;
    const double ghz = std::atof(cur->c_str()) * 1e-6;
    const auto& ladder =
        spec_.clusters[static_cast<std::size_t>(cl)].topology.freqs_ghz;
    int best = static_cast<int>(ladder.size()) - 1;
    for (int i = 0; i < static_cast<int>(ladder.size()); ++i) {
      if (std::abs(ladder[static_cast<std::size_t>(i)] - ghz) <
          std::abs(ladder[static_cast<std::size_t>(best)] - ghz)) {
        best = i;
      }
    }
    machine_.set_freq_level(cl, best);
  }
  CpuMask online;
  for (CoreId c = 0; c < machine_.num_cores(); ++c) {
    const auto state = sysfs_->read(cpu_dir(core_to_cpu_[c]) + "/online");
    if (!state || *state != "0") online = online | CpuMask::single(c);
  }
  machine_.set_online_mask(online);
}

double LinuxBackend::core_busy_fraction(CoreId core) const {
  const auto c = static_cast<std::size_t>(core);
  const auto text = sysfs_->read("proc/stat");
  if (!text) return 0.0;
  const auto stats = parse_proc_stat(*text);
  const auto it = stats.find(core_to_cpu_[c]);
  if (it == stats.end()) return 0.0;
  const double dt = it->second.total - total0_[c];
  if (dt <= 0.0) return 0.0;
  return std::clamp((it->second.busy - busy0_[c]) / dt, 0.0, 1.0);
}

void LinuxBackend::poll_energy_meters() const {
  for (const EnergyMeter& meter : meters_) {
    const auto cur_text = sysfs_->read(meter.path);
    if (!cur_text) continue;
    const long long cur = std::atoll(cur_text->c_str());
    if (cur >= meter.last_uj) {
      energy_accum_uj_ += static_cast<double>(cur - meter.last_uj);
    } else if (meter.range_uj > 0) {
      // Counter wrapped at max_energy_range_uj.
      energy_accum_uj_ +=
          static_cast<double>(meter.range_uj - meter.last_uj + cur);
    } else {
      energy_accum_uj_ += static_cast<double>(cur);
    }
    meter.last_uj = cur;
  }
}

double LinuxBackend::energy_j() const {
  obs::counter_add(obs::catalog().backend_energy_reads);
  if (!meters_.empty()) {
    poll_energy_meters();
    return energy_accum_uj_ * 1e-6;
  }
  return modeled_energy_j_;
}

std::vector<int> LinuxBackend::thread_group_sizes(AppId app) const {
  const Workload& w = workloads_[static_cast<std::size_t>(app)];
  if (!w.desc.group_sizes.empty()) return w.desc.group_sizes;
  return {w.desc.threads};
}

AppId LinuxBackend::add_workload(const WorkloadDesc& desc) {
  if (desc.threads <= 0) {
    throw std::invalid_argument("workload needs at least one thread");
  }
  if (desc.work_per_beat <= 0.0) {
    throw std::invalid_argument("work_per_beat must be positive");
  }
  const AppId id = static_cast<AppId>(workloads_.size());
  Workload w;
  w.desc = desc;
  w.desc.threads = threads_->spawn(id, desc);
  workloads_.push_back(std::move(w));
  return id;
}

void LinuxBackend::set_dvfs_level(ClusterId cluster, int level) {
  obs::counter_add(obs::catalog().backend_dvfs_writes);
  machine_.set_freq_level(cluster, level);  // Clamps like cpufreq does.
  const int applied = machine_.freq_level(cluster);
  const long long khz = std::llround(
      machine_.freq_ghz_at_level(cluster, applied) * 1e6);
  if (config_.dry_run) return;
  const std::string dir = policy_dir(cluster);
  const std::string value = std::to_string(khz);
  if (sysfs_->exists(dir + "/scaling_setspeed")) {
    if (governor_set_[static_cast<std::size_t>(cluster)] == 0) {
      sysfs_->write(dir + "/scaling_governor", "userspace");
      governor_set_[static_cast<std::size_t>(cluster)] = 1;
    }
    sysfs_->write(dir + "/scaling_setspeed", value);
  } else {
    // No userspace governor: pin the policy bounds to the target.
    sysfs_->write(dir + "/scaling_min_freq", value);
    sysfs_->write(dir + "/scaling_max_freq", value);
  }
}

void LinuxBackend::place(AppId app, int local_tid, CpuMask mask) {
  obs::counter_add(obs::catalog().backend_placements);
  std::vector<int> cpus;
  for (CoreId c = mask.first(); c >= 0; c = mask.next(c)) {
    cpus.push_back(core_to_cpu_[static_cast<std::size_t>(c)]);
  }
  if (config_.dry_run) return;
  threads_->set_affinity(app, local_tid, cpus);
}

CoreId LinuxBackend::thread_core(AppId app, int local_tid) const {
  return core_of_cpu(threads_->current_cpu(app, local_tid));
}

void LinuxBackend::set_online_mask(CpuMask mask) {
  obs::counter_add(obs::catalog().backend_hotplug_writes);
  CpuMask accepted;
  for (CoreId c = 0; c < machine_.num_cores(); ++c) {
    const bool want = mask.test(c);
    const std::string path =
        cpu_dir(core_to_cpu_[static_cast<std::size_t>(c)]) + "/online";
    if (!sysfs_->exists(path)) {
      // Untoggleable core (the boot cpu): stays online whatever is asked.
      accepted = accepted | CpuMask::single(c);
      continue;
    }
    if (want != machine_.is_online(c) && !config_.dry_run) {
      sysfs_->write(path, want ? "1" : "0");
    }
    if (want) accepted = accepted | CpuMask::single(c);
  }
  machine_.set_online_mask(accepted);
  threads_->on_topology_change();
}

void LinuxBackend::sample_counters(TimeUs now) {
  const auto n = static_cast<std::size_t>(machine_.num_cores());
  if (const auto text = sysfs_->read("proc/stat")) {
    const auto stats = parse_proc_stat(*text);
    for (std::size_t c = 0; c < n; ++c) {
      const auto it = stats.find(core_to_cpu_[c]);
      if (it == stats.end()) continue;
      const double db = it->second.busy - prev_busy_[c];
      const double dt = it->second.total - prev_total_[c];
      tick_busy_[c] = dt > 0.0 ? std::clamp(db / dt, 0.0, 1.0) : 0.0;
      prev_busy_[c] = it->second.busy;
      prev_total_[c] = it->second.total;
    }
  }
  if (meters_.empty()) {
    // No meter: integrate the platform-parameter model over the probed
    // busy fractions, so perf-per-watt metrics stay defined.
    const double dt_s = static_cast<double>(now - last_sample_us_) * 1e-6;
    if (dt_s > 0.0) {
      modeled_energy_j_ += power_model_.total_power(tick_busy_) * dt_s;
    }
  }
  last_sample_us_ = now;
}

void LinuxBackend::tick(TimeUs now) {
  const auto t0 = std::chrono::steady_clock::now();
  threads_->advance_to(now);
  sample_counters(now);
  for (Workload& w : workloads_) {
    if (!w.alive) continue;
    double work = 0.0;
    for (int i = 0; i < w.desc.threads; ++i) {
      work += threads_->work_done(static_cast<AppId>(&w - workloads_.data()), i);
    }
    const auto beats = static_cast<std::int64_t>(work / w.desc.work_per_beat);
    for (; w.beats_emitted < beats; ++w.beats_emitted) w.monitor.emit(now);
  }
  if (manager_ != nullptr) {
    const auto m0 = std::chrono::steady_clock::now();
    manager_->on_tick(now);
    manager_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - m0)
                       .count();
  }
  ++ticks_;
  obs::counter_add(obs::catalog().backend_ticks);
  obs::hist_observe(obs::catalog().backend_tick_ns,
                   static_cast<double>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count()));
}

void LinuxBackend::run_until(TimeUs t) {
  while (time_->now_us() < t) {
    const TimeUs target = std::min(t, next_tick_);
    time_->sleep_until(target);
    if (target == next_tick_) {
      tick(target);
      next_tick_ += config_.tick_us;
    }
  }
}

double LinuxBackend::manager_cpu_utilization_pct() const {
  const TimeUs elapsed = const_cast<TimeSource&>(*time_).now_us();
  if (elapsed <= 0) return 0.0;
  const double manager_us = static_cast<double>(manager_ns_) * 1e-3;
  return 100.0 * manager_us / static_cast<double>(elapsed);
}

}  // namespace hars
