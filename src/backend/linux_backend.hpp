// LinuxBackend: the Backend over a Linux sysfs tree.
//
// The paper's deployment target: a userspace daemon (tools/hars_agentd)
// driving cpufreq, sched_setaffinity, cpu hotplug and an energy meter on
// real big.LITTLE silicon. Every kernel interaction goes through two
// seams so the same class is CI-testable:
//   * SysfsIo   — cpufreq / hotplug / energy / stat files
//                 (RealSysfs on hardware, FakeSysfs in tests),
//   * ThreadOps — workload threads + affinity + per-thread counters
//                 (RealThreadOps spawns spinning threads and calls
//                 sched_setaffinity; FakeThreadOps models placement with
//                 the GTS scheduler model).
// Capabilities are probed, never assumed: a tree without cpufreq still
// runs (caps().dvfs = false, writes only move the mirror), which is what
// `hars_agentd --dry-run` relies on to probe arbitrary machines
// read-only.
//
// Topology mirror: the probed PlatformSpec materializes a dense Machine
// (cluster 0 core 0, ...) that tracks every accepted DVFS/hotplug write,
// while ProbedTopology keeps the kernel's actual cpu numbers for
// actuation. Managers read the mirror (topology()); the kernel sees
// translated cpu ids.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/sysfs.hpp"
#include "backend/sysfs_probe.hpp"
#include "hmp/platform_spec.hpp"
#include "hmp/power_model.hpp"

namespace hars {

/// Wall-clock TimeSource: steady_clock microseconds since construction.
class WallTimeSource final : public TimeSource {
 public:
  WallTimeSource();
  TimeUs now_us() override;
  void sleep_until(TimeUs t) override;

 private:
  std::int64_t epoch_ns_;
};

/// Workload execution + thread placement seam (the non-sysfs half of the
/// Linux syscall surface). One "work unit" is the currency heartbeats
/// are derived from: beats = total work / WorkloadDesc::work_per_beat.
class ThreadOps {
 public:
  virtual ~ThreadOps() = default;

  /// Called once by LinuxBackend before any other method: the dense
  /// topology mirror and the dense-core -> kernel-cpu map. Both outlive
  /// this object.
  virtual void attach(const Machine* mirror,
                      const std::vector<int>* core_to_cpu) {
    mirror_ = mirror;
    core_to_cpu_ = core_to_cpu;
  }

  /// Starts the workload's threads; returns the count actually started.
  virtual int spawn(AppId app, const WorkloadDesc& desc) = 0;
  /// Binds one thread to a set of kernel cpu numbers.
  virtual void set_affinity(AppId app, int local_tid,
                            const std::vector<int>& cpus) = 0;
  /// Kernel cpu the thread last ran on; -1 when unknown.
  virtual int current_cpu(AppId app, int local_tid) const = 0;
  /// CPU time the thread has consumed (us).
  virtual TimeUs cpu_time_us(AppId app, int local_tid) const = 0;
  /// Cumulative work units the thread has completed.
  virtual double work_done(AppId app, int local_tid) const = 0;
  /// Can placement reach a real scheduler? (caps().placement)
  virtual bool can_place() const = 0;

  /// Modeled implementations advance execution to `now` here; real
  /// threads run in real time, so the default is a no-op.
  virtual void advance_to(TimeUs now) { (void)now; }
  /// The online kernel-cpu set changed (hotplug): migrate off offlined
  /// cpus where the implementation models placement.
  virtual void on_topology_change() {}
  virtual void stop_all() {}

 protected:
  const Machine* mirror_ = nullptr;
  const std::vector<int>* core_to_cpu_ = nullptr;
};

/// Real threads: spinning workers (one work unit = 1M spin iterations,
/// roughly a millisecond of work on current cores — size work_per_beat
/// accordingly), sched_setaffinity placement, /proc/self/task counters.
/// On non-Linux builds spawn() throws and can_place() is false.
class RealThreadOps final : public ThreadOps {
 public:
  RealThreadOps();
  ~RealThreadOps() override;

  int spawn(AppId app, const WorkloadDesc& desc) override;
  void set_affinity(AppId app, int local_tid,
                    const std::vector<int>& cpus) override;
  int current_cpu(AppId app, int local_tid) const override;
  TimeUs cpu_time_us(AppId app, int local_tid) const override;
  double work_done(AppId app, int local_tid) const override;
  bool can_place() const override;
  void stop_all() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct LinuxBackendConfig {
  /// Manager epoch; the paper's deployment uses 100 ms.
  TimeUs tick_us = 100 * kUsPerMs;
  /// Probe-only mode: no sysfs write and no affinity call ever happens;
  /// actuation still updates the mirror so control flow is exercised.
  bool dry_run = false;
  /// Platform carrying real power parameters for the modeled-energy
  /// fallback and profiling model; when unset the probed topology gets
  /// per-core-type defaults (PlatformSpec::from_sysfs).
  std::optional<PlatformSpec> platform;
  bool audit = false;
  std::string name = "linux";
};

class LinuxBackend : public Backend {
 public:
  LinuxBackend(std::unique_ptr<SysfsIo> sysfs,
               std::unique_ptr<ThreadOps> threads,
               std::unique_ptr<TimeSource> time, LinuxBackendConfig config);
  ~LinuxBackend() override;

  const char* name() const override { return config_.name.c_str(); }
  BackendCaps caps() const override { return caps_; }
  const Machine& topology() const override { return machine_; }

  double core_busy_fraction(CoreId core) const override;
  TimeUs elapsed_work_us(AppId app, int local_tid) const override {
    return threads_->cpu_time_us(app, local_tid);
  }
  double energy_j() const override;

  int num_apps() const override { return static_cast<int>(workloads_.size()); }
  bool app_alive(AppId app) const override {
    return app >= 0 && app < num_apps() &&
           workloads_[static_cast<std::size_t>(app)].alive;
  }
  int thread_count(AppId app) const override {
    return workloads_[static_cast<std::size_t>(app)].desc.threads;
  }
  std::vector<int> thread_group_sizes(AppId app) const override;
  HeartbeatMonitor& heartbeats(AppId app) override {
    return workloads_[static_cast<std::size_t>(app)].monitor;
  }
  AppId add_workload(const WorkloadDesc& desc) override;

  void set_dvfs_level(ClusterId cluster, int level) override;
  void place(AppId app, int local_tid, CpuMask mask) override;
  CoreId thread_core(AppId app, int local_tid) const override;
  void set_online_mask(CpuMask mask) override;

  TimeSource& time() override { return *time_; }
  void attach_manager(ManagerHook* manager) override { manager_ = manager; }
  void run_until(TimeUs t) override;

  const PowerModel& profiling_model() const override { return power_model_; }
  bool audit_enabled() const override { return config_.audit; }
  double manager_cpu_utilization_pct() const override;

  /// The probed platform (fixture or live machine) and cpu numbering.
  const PlatformSpec& platform() const { return spec_; }
  const ProbedTopology& probed() const { return topo_; }
  /// Dense core id for a kernel cpu number (-1 when not present).
  CoreId core_of_cpu(int cpu) const;

 protected:
  /// One live tick, at time `now`: advance/sample counters, pump
  /// heartbeats, then invoke the manager. sample_counters() is the
  /// subclass seam (MockLinuxBackend models busy/energy there).
  void tick(TimeUs now);
  virtual void sample_counters(TimeUs now);

  SysfsIo& sysfs() { return *sysfs_; }
  ThreadOps& thread_ops() { return *threads_; }
  const LinuxBackendConfig& config() const { return config_; }
  Machine& mirror() { return machine_; }

 private:
  struct Workload {
    WorkloadDesc desc;
    HeartbeatMonitor monitor;
    bool alive = true;
    std::int64_t beats_emitted = 0;
  };

  std::string policy_dir(ClusterId cluster) const;
  void probe_caps();
  void probe_energy_meters();
  void sync_mirror_from_sysfs();
  /// Accumulates meter deltas (wrap-aware) into energy_accum_uj_.
  void poll_energy_meters() const;

  std::unique_ptr<SysfsIo> sysfs_;
  std::unique_ptr<ThreadOps> threads_;
  std::unique_ptr<TimeSource> time_;
  LinuxBackendConfig config_;

  ProbedTopology topo_;
  PlatformSpec spec_;
  Machine machine_;  ///< Dense mirror of probed topology + accepted writes.
  PowerModel power_model_;
  std::vector<int> core_to_cpu_;  ///< Dense core -> kernel cpu.
  BackendCaps caps_;

  std::vector<Workload> workloads_;
  ManagerHook* manager_ = nullptr;
  TimeUs next_tick_ = 0;
  std::int64_t ticks_ = 0;
  std::int64_t manager_ns_ = 0;

  /// Userspace governor installed (once per cluster, lazily).
  std::vector<char> governor_set_;

  /// Energy meters (powercap-shaped nodes with energy_uj); mutable so
  /// energy_j() can poll for wraps.
  struct EnergyMeter {
    std::string path;             ///< .../energy_uj
    long long range_uj = 0;       ///< max_energy_range_uj (0 = no wrap info)
    mutable long long last_uj = 0;
  };
  std::vector<EnergyMeter> meters_;
  mutable double energy_accum_uj_ = 0.0;
  /// Modeled fallback (no meter): integrated from the mirror + power
  /// model each tick using proc/stat busy deltas.
  double modeled_energy_j_ = 0.0;
  TimeUs last_sample_us_ = 0;

  /// proc/stat baselines (USER_HZ), per kernel cpu, from construction.
  std::vector<double> busy0_, total0_;
  /// Busy fraction over the last tick, per dense core (modeled fallback
  /// input; refreshed in sample_counters).
  std::vector<double> tick_busy_;
  std::vector<double> prev_busy_, prev_total_;
};

}  // namespace hars
