#include "backend/mock_linux_backend.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace hars {

// --- FakeThreadOps ----------------------------------------------------

FakeThreadOps::ModeledThread& FakeThreadOps::thread_of(AppId app,
                                                       int local_tid) {
  return threads_.at(static_cast<std::size_t>(
      app_base_.at(static_cast<std::size_t>(app)) + local_tid));
}

const FakeThreadOps::ModeledThread& FakeThreadOps::thread_of(
    AppId app, int local_tid) const {
  return const_cast<FakeThreadOps*>(this)->thread_of(app, local_tid);
}

int FakeThreadOps::spawn(AppId app, const WorkloadDesc& desc) {
  app_base_.resize(
      std::max(app_base_.size(), static_cast<std::size_t>(app) + 1), -1);
  app_base_[static_cast<std::size_t>(app)] = static_cast<int>(threads_.size());
  for (int i = 0; i < desc.threads; ++i) {
    ModeledThread mt;
    mt.record.affinity = mirror_->all_mask();
    mt.record.runnable = true;  // Spinning workload: always wants CPU.
    mt.record.app = app;
    mt.record.local_index = i;
    mt.record.id = next_id_++;
    threads_.push_back(std::move(mt));
  }
  reschedule();
  return desc.threads;
}

void FakeThreadOps::set_affinity(AppId app, int local_tid,
                                 const std::vector<int>& cpus) {
  calls_.push_back({app, local_tid, cpus});
  CpuMask mask;
  for (const int cpu : cpus) {
    for (std::size_t c = 0; c < core_to_cpu_->size(); ++c) {
      if ((*core_to_cpu_)[c] == cpu) {
        mask = mask | CpuMask::single(static_cast<CoreId>(c));
      }
    }
  }
  thread_of(app, local_tid).record.affinity = mask;
  // The kernel migrates an affine thread immediately; so does the model.
  reschedule();
}

int FakeThreadOps::current_cpu(AppId app, int local_tid) const {
  const CoreId core = thread_of(app, local_tid).record.core;
  if (core < 0) return -1;
  return (*core_to_cpu_)[static_cast<std::size_t>(core)];
}

TimeUs FakeThreadOps::cpu_time_us(AppId app, int local_tid) const {
  return thread_of(app, local_tid).record.cpu_time_us;
}

double FakeThreadOps::work_done(AppId app, int local_tid) const {
  return thread_of(app, local_tid).work;
}

void FakeThreadOps::reschedule() {
  if (threads_.empty()) return;
  assign_scratch_.clear();
  for (const ModeledThread& mt : threads_) {
    assign_scratch_.push_back(mt.record);
  }
  gts_.assign(*mirror_, assign_scratch_);
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    threads_[i].record = assign_scratch_[i];
  }
}

void FakeThreadOps::on_topology_change() { reschedule(); }

double FakeThreadOps::core_busy_us(CoreId core) const {
  const auto c = static_cast<std::size_t>(core);
  return c < core_busy_us_.size() ? core_busy_us_[c] : 0.0;
}

void FakeThreadOps::advance_to(TimeUs now) {
  const TimeUs dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0 || mirror_ == nullptr) return;
  const auto n = static_cast<std::size_t>(mirror_->num_cores());
  core_busy_us_.resize(n, 0.0);
  tick_busy_.assign(n, 0.0);
  if (threads_.empty()) return;
  reschedule();
  std::vector<int> sharers(n, 0);
  for (const ModeledThread& mt : threads_) {
    if (mt.record.runnable && mt.record.core >= 0) {
      ++sharers[static_cast<std::size_t>(mt.record.core)];
    }
  }
  const double decay = threads_.front().record.load.decay_for(dt);
  for (ModeledThread& mt : threads_) {
    const bool running = mt.record.runnable && mt.record.core >= 0;
    mt.record.load.update_with_decay(running, decay);
    if (!running) continue;
    const auto core = static_cast<std::size_t>(mt.record.core);
    const double share_us = static_cast<double>(dt) / sharers[core];
    mt.record.cpu_time_us += static_cast<TimeUs>(share_us);
    mt.work += mirror_->core_speed(mt.record.core) * share_us * 1e-6;
    core_busy_us_[core] += share_us;
    tick_busy_[core] =
        std::min(1.0, tick_busy_[core] + share_us / static_cast<double>(dt));
  }
}

// --- MockLinuxBackend -------------------------------------------------

LinuxBackendConfig MockLinuxBackend::mock_config() {
  LinuxBackendConfig config;
  config.name = "mock_linux";
  return config;
}

MockLinuxBackend::MockLinuxBackend(FakeSysfs fixture, LinuxBackendConfig config)
    : MockLinuxBackend(std::make_unique<FakeSysfs>(std::move(fixture)),
                       std::make_unique<FakeThreadOps>(),
                       std::make_unique<FakeTimeSource>(), std::move(config)) {}

MockLinuxBackend::MockLinuxBackend(std::unique_ptr<FakeSysfs> sysfs,
                                   std::unique_ptr<FakeThreadOps> threads,
                                   std::unique_ptr<FakeTimeSource> time,
                                   LinuxBackendConfig config)
    : LinuxBackend(std::move(sysfs), std::move(threads), std::move(time),
                   std::move(config)) {
  fake_sysfs_ = static_cast<FakeSysfs*>(&this->sysfs());
  fake_threads_ = static_cast<FakeThreadOps*>(&this->thread_ops());
  fake_time_ = static_cast<FakeTimeSource*>(&this->time());
}

double MockLinuxBackend::core_busy_fraction(CoreId core) const {
  const TimeUs elapsed = fake_time_->now_us();
  if (elapsed <= 0) return 0.0;
  return std::clamp(
      fake_threads_->core_busy_us(core) / static_cast<double>(elapsed), 0.0,
      1.0);
}

void MockLinuxBackend::sample_counters(TimeUs now) {
  // Busy comes from the thread model; energy integrates the profiling
  // model over it and lands in the fixture's powercap counter via set()
  // (not write(), so the actuation log stays clean), wrapping at the
  // advertised range like a real energy_uj does.
  const TimeUs dt = now - last_energy_us_;
  last_energy_us_ = now;
  if (dt <= 0) return;
  std::vector<double> busy = fake_threads_->tick_busy();
  busy.resize(static_cast<std::size_t>(topology().num_cores()), 0.0);
  const double watts = profiling_model().total_power(busy);
  energy_uj_ += watts * static_cast<double>(dt);  // 1 W*us = 1 uJ.
  for (const std::string& child : fake_sysfs_->list("sys/class/powercap")) {
    const std::string dir = "sys/class/powercap/" + child;
    if (!fake_sysfs_->exists(dir + "/energy_uj")) continue;
    double value = energy_uj_;
    if (const auto range = fake_sysfs_->read(dir + "/max_energy_range_uj")) {
      const double range_uj = std::atof(range->c_str());
      if (range_uj > 0.0) value = std::fmod(value, range_uj);
    }
    fake_sysfs_->set(dir + "/energy_uj",
                     std::to_string(static_cast<long long>(value)));
    break;  // One meter models the board sensor.
  }
}

}  // namespace hars
