// MockLinuxBackend: LinuxBackend over a fixture sysfs tree.
//
// The CI stand-in for real hardware: the exact LinuxBackend control flow
// (cpufreq writes, hotplug writes, capability probing, heartbeat
// pumping) runs against FakeSysfs — every sysfs write lands in a log the
// conformance suite asserts against — while FakeThreadOps models the
// kernel side of placement with the same GTS scheduler model the
// simulator uses: affinity calls are honored, threads collect on the
// cores GTS would pick, work accrues at the mirror machine's core speed
// (so heartbeat rates respond to DVFS and placement like a real
// CPU-bound workload). FakeTimeSource makes ticks instantaneous and
// deterministic, so whole variant runs execute in microseconds.
#pragma once

#include <memory>
#include <vector>

#include "backend/linux_backend.hpp"
#include "sched/gts.hpp"

namespace hars {

/// Deterministic driven clock: sleep_until is what advances it.
class FakeTimeSource final : public TimeSource {
 public:
  TimeUs now_us() override { return now_; }
  void sleep_until(TimeUs t) override { now_ = std::max(now_, t); }

 private:
  TimeUs now_ = 0;
};

/// One recorded affinity call (kernel cpu numbers), in call order.
struct AffinityCall {
  AppId app = 0;
  int local_tid = 0;
  std::vector<int> cpus;
};

/// Models the kernel scheduler side: SimThread records placed by the GTS
/// model over the mirror machine; execution shares split per core and
/// accrue work at core_speed.
class FakeThreadOps final : public ThreadOps {
 public:
  FakeThreadOps() = default;

  int spawn(AppId app, const WorkloadDesc& desc) override;
  void set_affinity(AppId app, int local_tid,
                    const std::vector<int>& cpus) override;
  int current_cpu(AppId app, int local_tid) const override;
  TimeUs cpu_time_us(AppId app, int local_tid) const override;
  double work_done(AppId app, int local_tid) const override;
  bool can_place() const override { return true; }
  void advance_to(TimeUs now) override;
  void on_topology_change() override;

  const std::vector<AffinityCall>& affinity_calls() const { return calls_; }
  void clear_affinity_calls() { calls_.clear(); }

  /// Modeled lifetime busy time of one dense core (us).
  double core_busy_us(CoreId core) const;
  /// Busy fraction per dense core over the last advance_to interval.
  const std::vector<double>& tick_busy() const { return tick_busy_; }

 private:
  struct ModeledThread {
    SimThread record;   ///< What GTS places; work trackers ride along.
    double work = 0.0;  ///< Cumulative work units.
  };
  ModeledThread& thread_of(AppId app, int local_tid);
  const ModeledThread& thread_of(AppId app, int local_tid) const;
  /// Re-places all threads through the GTS model (affinity change,
  /// hotplug, or the per-advance schedule).
  void reschedule();

  GtsScheduler gts_;
  std::vector<ModeledThread> threads_;
  std::vector<int> app_base_;  ///< threads_ index of each app's thread 0.
  std::vector<AffinityCall> calls_;
  std::vector<double> core_busy_us_;
  std::vector<double> tick_busy_;
  TimeUs last_advance_ = 0;
  ThreadId next_id_ = 0;
  /// Scratch for assign(): SimThread records GTS mutates in place.
  std::vector<SimThread> assign_scratch_;
};

class MockLinuxBackend final : public LinuxBackend {
 public:
  /// Runs over `fixture` (default: the exynos5422 tree). The fixture must
  /// describe at least one cpu.
  explicit MockLinuxBackend(FakeSysfs fixture = FakeSysfs::exynos5422(),
                            LinuxBackendConfig config = mock_config());

  /// The LinuxBackendConfig defaults for mock runs: name "mock_linux",
  /// the paper's 100 ms tick.
  static LinuxBackendConfig mock_config();

  /// The fixture tree: inject counter streams with set(), assert the
  /// write log with writes().
  FakeSysfs& fake_sysfs() { return *fake_sysfs_; }
  /// The modeled kernel: assert affinity sequences, read modeled busy.
  FakeThreadOps& fake_threads() { return *fake_threads_; }
  FakeTimeSource& fake_time() { return *fake_time_; }

  double core_busy_fraction(CoreId core) const override;

 protected:
  /// Busy comes from the thread model, energy from the profiling model
  /// integrated over it — pushed into the fixture's powercap counter so
  /// the read path (and its wrap handling) is the real one.
  void sample_counters(TimeUs now) override;

 private:
  MockLinuxBackend(std::unique_ptr<FakeSysfs> sysfs,
                   std::unique_ptr<FakeThreadOps> threads,
                   std::unique_ptr<FakeTimeSource> time,
                   LinuxBackendConfig config);

  FakeSysfs* fake_sysfs_;
  FakeThreadOps* fake_threads_;
  FakeTimeSource* fake_time_;
  double energy_uj_ = 0.0;
  TimeUs last_energy_us_ = 0;
};

}  // namespace hars
