#include "backend/sim_backend.hpp"

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace hars {

// The mutating forwarders live out of line so the obs counter bumps
// (alloc-free, relaxed) stay off the header.

double SimBackend::energy_j() const {
  obs::counter_add(obs::catalog().backend_energy_reads);
  return engine_.sensor().total_energy_j();
}

void SimBackend::set_dvfs_level(ClusterId cluster, int level) {
  obs::counter_add(obs::catalog().backend_dvfs_writes);
  engine_.machine().set_freq_level(cluster, level);
}

void SimBackend::place(AppId app, int local_tid, CpuMask mask) {
  obs::counter_add(obs::catalog().backend_placements);
  engine_.set_thread_affinity(app, local_tid, mask);
}

void SimBackend::place_app(AppId app, CpuMask mask) {
  obs::counter_add(obs::catalog().backend_placements);
  engine_.set_app_affinity(app, mask);
}

void SimBackend::set_online_mask(CpuMask mask) {
  obs::counter_add(obs::catalog().backend_hotplug_writes);
  engine_.machine().set_online_mask(mask);
}

}  // namespace hars
