// SimBackend: the Backend over the discrete-time simulator.
//
// A stateless forwarder — every call maps 1:1 onto the SimEngine method
// the managers used to call directly, so a manager driven through
// SimBackend produces bit-identical simulations to one holding
// SimEngine& (the golden/replay/differential suites gate on this). The
// engine stays caller-owned: SimBackend is cheap to construct on the
// stack wherever a Backend view of an engine is needed.
#pragma once

#include "backend/backend.hpp"
#include "hmp/sim_engine.hpp"

namespace hars {

/// TimeSource over the engine clock. Simulated time is driven by
/// SimEngine::run_until, so sleep_until is a no-op.
class SimTimeSource final : public TimeSource {
 public:
  explicit SimTimeSource(const SimEngine& engine) : engine_(engine) {}
  TimeUs now_us() override { return engine_.now(); }
  void sleep_until(TimeUs) override {}

 private:
  const SimEngine& engine_;
};

class SimBackend final : public Backend {
 public:
  explicit SimBackend(SimEngine& engine)
      : engine_(engine), time_(engine) {}

  const char* name() const override { return "sim"; }
  BackendCaps caps() const override {
    BackendCaps caps;
    caps.dvfs = true;
    caps.placement = true;
    caps.hotplug = true;
    caps.energy = true;
    caps.core_stats = true;
    caps.simulated = true;
    return caps;
  }

  const Machine& topology() const override { return engine_.machine(); }

  double core_busy_fraction(CoreId core) const override {
    return engine_.core_busy_fraction(core);
  }
  TimeUs elapsed_work_us(AppId app, int local_tid) const override {
    return engine_.thread_cpu_time_us(app, local_tid);
  }
  double energy_j() const override;

  int num_apps() const override { return engine_.num_apps(); }
  bool app_alive(AppId app) const override { return engine_.app_alive(app); }
  int thread_count(AppId app) const override {
    return engine_.app(app).thread_count();
  }
  std::vector<int> thread_group_sizes(AppId app) const override {
    return engine_.app(app).thread_group_sizes();
  }
  HeartbeatMonitor& heartbeats(AppId app) override {
    return engine_.app(app).heartbeats();
  }

  void set_dvfs_level(ClusterId cluster, int level) override;
  void place(AppId app, int local_tid, CpuMask mask) override;
  void place_app(AppId app, CpuMask mask) override;
  CoreId thread_core(AppId app, int local_tid) const override {
    return engine_.thread_core(app, local_tid);
  }
  void set_online_mask(CpuMask mask) override;

  TimeSource& time() override { return time_; }
  void attach_manager(ManagerHook* manager) override {
    engine_.set_manager(manager);
  }
  void run_until(TimeUs t) override { engine_.run_until(t); }

  const PowerModel& profiling_model() const override {
    return engine_.power_model();
  }
  bool audit_enabled() const override { return engine_.audit_enabled(); }
  double manager_cpu_utilization_pct() const override {
    return engine_.manager_cpu_utilization_pct();
  }

  SimEngine* sim_engine() override { return &engine_; }

 private:
  SimEngine& engine_;
  SimTimeSource time_;
};

}  // namespace hars
