#include "backend/sysfs.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hars {

namespace fs = std::filesystem;

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

}  // namespace

// --- RealSysfs --------------------------------------------------------

RealSysfs::RealSysfs(std::string root) : root_(std::move(root)) {
  if (root_.empty() || root_.back() != '/') root_.push_back('/');
}

std::string RealSysfs::full(const std::string& path) const {
  return root_ + path;
}

bool RealSysfs::exists(const std::string& path) const {
  std::error_code ec;
  return fs::exists(full(path), ec);
}

std::optional<std::string> RealSysfs::read(const std::string& path) const {
  std::ifstream in(full(path));
  if (!in) return std::nullopt;
  std::ostringstream content;
  content << in.rdbuf();
  // Sysfs attribute reads can fail after open (e.g. EIO on an offline
  // cpufreq node); badbit catches that, eof after rdbuf is normal.
  if (in.bad()) return std::nullopt;
  return trim(content.str());
}

bool RealSysfs::write(const std::string& path, const std::string& value) {
  // C stdio instead of ofstream: sysfs attributes want a single short
  // write and report rejection through the write() result itself.
  std::FILE* f = std::fopen(full(path).c_str(), "w");
  if (f == nullptr) return false;
  const std::string payload = value + "\n";
  const bool ok =
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  return (std::fclose(f) == 0) && ok;
}

std::vector<std::string> RealSysfs::list(const std::string& path) const {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(full(path), ec), end; !ec && it != end;
       it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

// --- FakeSysfs --------------------------------------------------------

FakeSysfs FakeSysfs::from_text(const std::string& text) {
  FakeSysfs fake;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto space = stripped.find_first_of(" \t");
    const std::string path =
        space == std::string::npos ? stripped : stripped.substr(0, space);
    const std::string value =
        space == std::string::npos ? "" : trim(stripped.substr(space + 1));
    if (path.empty() || path.front() == '/' || path.back() == '/') {
      throw std::runtime_error("sysfs fixture line " + std::to_string(lineno) +
                               ": path must be relative with no trailing "
                               "slash: '" +
                               path + "'");
    }
    fake.set(path, value);
  }
  return fake;
}

FakeSysfs FakeSysfs::from_file(const std::string& filename) {
  std::ifstream in(filename);
  if (!in) {
    throw std::runtime_error("cannot open sysfs fixture: " + filename);
  }
  std::ostringstream content;
  content << in.rdbuf();
  return from_text(content.str());
}

void FakeSysfs::set(const std::string& path, const std::string& value) {
  files_[path] = value;
}

void FakeSysfs::remove(const std::string& path) { files_.erase(path); }

bool FakeSysfs::exists(const std::string& path) const {
  if (files_.count(path) != 0) return true;
  // Directories exist implicitly when any file lives under them.
  const std::string prefix = path + "/";
  const auto it = files_.lower_bound(prefix);
  return it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

std::optional<std::string> FakeSysfs::read(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool FakeSysfs::write(const std::string& path, const std::string& value) {
  const auto it = files_.find(path);
  if (it == files_.end()) return false;  // ENOENT: knob absent on this tree.
  it->second = value;
  writes_.push_back({path, value});
  return true;
}

std::vector<std::string> FakeSysfs::list(const std::string& path) const {
  std::vector<std::string> names;
  const std::string prefix = path + "/";
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    const std::string rest = it->first.substr(prefix.size());
    const std::string child = rest.substr(0, rest.find('/'));
    if (names.empty() || names.back() != child) names.push_back(child);
  }
  // Map order is lexicographic already; dedup handled by the back check.
  return names;
}

// --- The exynos5422 fixture ------------------------------------------
// ODROID-XU3 shape: cpu0-3 Cortex-A7 (LITTLE, 0.2-1.4 GHz), cpu4-7
// Cortex-A15 (big, 0.2-2.0 GHz), per-cluster cpufreq policies, cpu0 not
// hotpluggable (no online file), one powercap energy meter. Content is
// mirrored in examples/exynos5422.sysfs (docs_check keeps them in sync).
const char* const kExynos5422Fixture = R"(# exynos5422-shaped sysfs fixture (ODROID-XU3: 4x Cortex-A7 + 4x Cortex-A15)
sys/devices/system/cpu/present 0-7

# --- LITTLE cluster: cpu0-3, Cortex-A7, 200-1400 MHz ---
sys/devices/system/cpu/cpu0/cpufreq/related_cpus 0 1 2 3
sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies 200000 400000 600000 800000 1000000 1200000 1400000
sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_min_freq 200000
sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq 1400000
sys/devices/system/cpu/cpu0/cpufreq/scaling_min_freq 200000
sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq 1400000
sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq 1400000
sys/devices/system/cpu/cpu0/cpufreq/scaling_governor performance
sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed <unsupported>
sys/devices/system/cpu/cpu0/cpu_capacity 448
sys/devices/system/cpu/cpu1/cpufreq/related_cpus 0 1 2 3
sys/devices/system/cpu/cpu1/cpu_capacity 448
sys/devices/system/cpu/cpu1/online 1
sys/devices/system/cpu/cpu2/cpufreq/related_cpus 0 1 2 3
sys/devices/system/cpu/cpu2/cpu_capacity 448
sys/devices/system/cpu/cpu2/online 1
sys/devices/system/cpu/cpu3/cpufreq/related_cpus 0 1 2 3
sys/devices/system/cpu/cpu3/cpu_capacity 448
sys/devices/system/cpu/cpu3/online 1

# --- big cluster: cpu4-7, Cortex-A15, 200-2000 MHz ---
sys/devices/system/cpu/cpu4/cpufreq/related_cpus 4 5 6 7
sys/devices/system/cpu/cpu4/cpufreq/scaling_available_frequencies 200000 400000 600000 800000 1000000 1200000 1400000 1600000 1800000 2000000
sys/devices/system/cpu/cpu4/cpufreq/cpuinfo_min_freq 200000
sys/devices/system/cpu/cpu4/cpufreq/cpuinfo_max_freq 2000000
sys/devices/system/cpu/cpu4/cpufreq/scaling_min_freq 200000
sys/devices/system/cpu/cpu4/cpufreq/scaling_max_freq 2000000
sys/devices/system/cpu/cpu4/cpufreq/scaling_cur_freq 2000000
sys/devices/system/cpu/cpu4/cpufreq/scaling_governor performance
sys/devices/system/cpu/cpu4/cpufreq/scaling_setspeed <unsupported>
sys/devices/system/cpu/cpu4/cpu_capacity 1024
sys/devices/system/cpu/cpu4/online 1
sys/devices/system/cpu/cpu5/cpufreq/related_cpus 4 5 6 7
sys/devices/system/cpu/cpu5/cpu_capacity 1024
sys/devices/system/cpu/cpu5/online 1
sys/devices/system/cpu/cpu6/cpufreq/related_cpus 4 5 6 7
sys/devices/system/cpu/cpu6/cpu_capacity 1024
sys/devices/system/cpu/cpu6/online 1
sys/devices/system/cpu/cpu7/cpufreq/related_cpus 4 5 6 7
sys/devices/system/cpu/cpu7/cpu_capacity 1024
sys/devices/system/cpu/cpu7/online 1

# --- Energy meter (INA231-style, exposed powercap-shaped) ---
sys/class/powercap/energy-meter/name odroid-ina231
sys/class/powercap/energy-meter/energy_uj 0
sys/class/powercap/energy-meter/max_energy_range_uj 1000000000000

# --- /proc/stat (USER_HZ ticks; tests inject busy deltas via set()) ---
proc/stat cpu0 0 0 0 10000 0 0 0 0 0 0
)";

FakeSysfs FakeSysfs::exynos5422() { return from_text(kExynos5422Fixture); }

}  // namespace hars
