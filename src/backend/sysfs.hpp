// Sysfs access seam for the Linux backends.
//
// LinuxBackend talks to the kernel exclusively through SysfsIo, with
// paths relative to a root ("sys/devices/system/cpu/cpu0/online",
// "proc/stat"). Two implementations:
//   * RealSysfs — reads/writes the live filesystem under a root
//     (default "/"; point it at a copied tree for offline debugging).
//   * FakeSysfs — an in-memory path -> content map loaded from fixture
//     text (docs/FILE_FORMATS.md, "Sysfs fixtures"), recording every
//     write so tests assert exact actuation sequences. Writes to paths
//     the fixture does not declare fail, mirroring ENOENT on a kernel
//     without that knob.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hars {

class SysfsIo {
 public:
  virtual ~SysfsIo() = default;

  /// Does the node exist (file or directory)?
  virtual bool exists(const std::string& path) const = 0;
  /// File contents with trailing whitespace/newline trimmed; nullopt when
  /// missing or unreadable.
  virtual std::optional<std::string> read(const std::string& path) const = 0;
  /// Writes `value` (no newline needed); false when missing/read-only.
  virtual bool write(const std::string& path, const std::string& value) = 0;
  /// Names of the direct children of a directory (sorted); empty when
  /// missing. Used to enumerate cpu[0-9]+ nodes.
  virtual std::vector<std::string> list(const std::string& path) const = 0;
};

/// The live filesystem, rooted at `root` (default "/").
class RealSysfs final : public SysfsIo {
 public:
  explicit RealSysfs(std::string root = "/");

  bool exists(const std::string& path) const override;
  std::optional<std::string> read(const std::string& path) const override;
  bool write(const std::string& path, const std::string& value) override;
  std::vector<std::string> list(const std::string& path) const override;

 private:
  std::string full(const std::string& path) const;
  std::string root_;
};

/// One recorded FakeSysfs write, in call order.
struct SysfsWrite {
  std::string path;
  std::string value;
};

class FakeSysfs final : public SysfsIo {
 public:
  FakeSysfs() = default;

  /// Parses fixture text: one `path value...` pair per line (value runs
  /// to end of line and may be empty = empty file), '#' comments and
  /// blank lines skipped. Throws std::runtime_error with the line number
  /// on malformed input.
  static FakeSysfs from_text(const std::string& text);
  static FakeSysfs from_file(const std::string& filename);

  /// Built-in exynos5422-shaped tree (ODROID-XU3: 4x A7 + 4x A15), the
  /// same content as examples/exynos5422.sysfs.
  static FakeSysfs exynos5422();

  /// Creates or replaces a node — fixture setup and injectable counter
  /// streams (tests advance proc/stat, energy_uj, beat counters, ...).
  void set(const std::string& path, const std::string& value);
  /// Removes a node, so tests model a kernel without that knob.
  void remove(const std::string& path);

  /// Every accepted write, in order. Tests assert exact sequences.
  const std::vector<SysfsWrite>& writes() const { return writes_; }
  void clear_writes() { writes_.clear(); }

  bool exists(const std::string& path) const override;
  std::optional<std::string> read(const std::string& path) const override;
  bool write(const std::string& path, const std::string& value) override;
  std::vector<std::string> list(const std::string& path) const override;

 private:
  std::map<std::string, std::string> files_;
  std::vector<SysfsWrite> writes_;
};

/// The fixture text FakeSysfs::exynos5422() parses; also the content of
/// examples/exynos5422.sysfs (docs_check asserts the two stay in sync).
extern const char* const kExynos5422Fixture;

}  // namespace hars
