#include "backend/sysfs_probe.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "hmp/platform_spec.hpp"

namespace hars {

namespace {

constexpr const char* kCpuRoot = "sys/devices/system/cpu";

std::string cpu_dir(int cpu) {
  return std::string(kCpuRoot) + "/cpu" + std::to_string(cpu);
}

std::optional<long long> read_ll(const SysfsIo& sysfs,
                                 const std::string& path) {
  const auto text = sysfs.read(path);
  if (!text) return std::nullopt;
  try {
    std::size_t used = 0;
    const long long v = std::stoll(*text, &used);
    if (used == 0) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Present cpus: the "present" cpulist, else the cpuN directory scan.
std::vector<int> present_cpus(const SysfsIo& sysfs) {
  if (const auto text = sysfs.read(std::string(kCpuRoot) + "/present")) {
    const std::vector<int> cpus = parse_cpulist(*text);
    if (!cpus.empty()) return cpus;
  }
  std::vector<int> cpus;
  for (const std::string& name : sysfs.list(kCpuRoot)) {
    if (name.size() < 4 || name.compare(0, 3, "cpu") != 0) continue;
    const std::string digits = name.substr(3);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    cpus.push_back(std::stoi(digits));
  }
  std::sort(cpus.begin(), cpus.end());
  return cpus;
}

/// DVFS ladder of one policy, ascending GHz. scaling_available_frequencies
/// (kHz, any order, duplicates possible) when exposed; else the cpuinfo
/// min/max pair; else a single 1.0 GHz level (no cpufreq at all).
std::vector<double> probe_ladder(const SysfsIo& sysfs, int policy_cpu) {
  const std::string dir = cpu_dir(policy_cpu) + "/cpufreq";
  std::vector<long long> khz;
  if (const auto text = sysfs.read(dir + "/scaling_available_frequencies")) {
    std::istringstream in(*text);
    long long f = 0;
    while (in >> f) {
      if (f > 0) khz.push_back(f);
    }
  }
  if (khz.empty()) {
    const auto lo = read_ll(sysfs, dir + "/cpuinfo_min_freq");
    const auto hi = read_ll(sysfs, dir + "/cpuinfo_max_freq");
    if (lo && *lo > 0) khz.push_back(*lo);
    if (hi && *hi > 0) khz.push_back(*hi);
  }
  std::sort(khz.begin(), khz.end());
  khz.erase(std::unique(khz.begin(), khz.end()), khz.end());
  std::vector<double> ghz;
  for (const long long f : khz) ghz.push_back(static_cast<double>(f) * 1e-6);
  if (ghz.empty()) ghz.push_back(1.0);
  return ghz;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::istringstream in(text);
  std::string chunk;
  while (std::getline(in, chunk, ',')) {
    const auto dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (const std::exception&) {
      // Malformed chunk; skip.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

ProbedTopology probe_topology(const SysfsIo& sysfs) {
  const std::vector<int> cpus = present_cpus(sysfs);
  if (cpus.empty()) {
    throw PlatformConfigError(
        "sysfs probe found no cpus (no 'present' cpulist and no cpuN "
        "directories under sys/devices/system/cpu)");
  }

  // Group by related_cpus, keyed by the group's first cpu. Cpus without a
  // cpufreq policy fall back to a singleton group keyed by themselves —
  // then merged into one fixed-frequency cluster when their capacities
  // match (common on servers without cpufreq: one flat cluster).
  std::map<int, ProbedCluster> groups;
  std::set<int> policy_backed;
  for (const int cpu : cpus) {
    int key = cpu;
    if (const auto related =
            sysfs.read(cpu_dir(cpu) + "/cpufreq/related_cpus")) {
      const std::vector<int> members = parse_cpulist(*related);
      if (!members.empty()) {
        key = members.front();
        policy_backed.insert(key);
      }
    }
    groups[key].cpus.push_back(cpu);
  }

  ProbedTopology topo;
  for (auto& [key, cluster] : groups) {
    cluster.policy_cpu = key;
    cluster.freqs_ghz = probe_ladder(sysfs, key);
    const auto capacity =
        read_ll(sysfs, cpu_dir(cluster.cpus.front()) + "/cpu_capacity");
    cluster.capacity =
        (capacity && *capacity > 0) ? static_cast<double>(*capacity) : 512.0;
    // Fold policy-less singletons with matching ladder + capacity into
    // the previous such cluster (map order = ascending first cpu), so a
    // flat server probes as one cluster, not one per cpu.
    if (policy_backed.count(key) == 0 && !topo.clusters.empty()) {
      ProbedCluster& prev = topo.clusters.back();
      if (policy_backed.count(prev.policy_cpu) == 0 &&
          prev.freqs_ghz == cluster.freqs_ghz &&
          prev.capacity == cluster.capacity) {
        prev.cpus.insert(prev.cpus.end(), cluster.cpus.begin(),
                         cluster.cpus.end());
        continue;
      }
    }
    topo.clusters.push_back(std::move(cluster));
  }
  // std::map iteration ordered clusters (and merged cpus) by first cpu.
  return topo;
}

PlatformSpec PlatformSpec::from_sysfs(const SysfsIo& sysfs,
                                      const std::string& name) {
  const ProbedTopology topo = probe_topology(sysfs);
  if (topo.clusters.size() < 2) {
    throw PlatformConfigError(
        "sysfs probe found a homogeneous machine (one cluster); the "
        "runtime manages heterogeneous big.LITTLE platforms and needs a "
        "fast and a slow pool");
  }

  // Peak capability (capacity-scaled top frequency) splits big from
  // little: the top cluster(s) are big, everything else little.
  double peak = 0.0;
  for (const auto& c : topo.clusters) {
    peak = std::max(peak, c.capacity * c.freqs_ghz.back());
  }

  PlatformSpec spec;
  spec.name = name;
  for (const auto& c : topo.clusters) {
    const bool is_big =
        c.capacity * c.freqs_ghz.back() >= peak * (1.0 - 1e-9);
    PlatformCluster cluster;
    cluster.topology.type = is_big ? CoreType::kBig : CoreType::kLittle;
    cluster.topology.core_count = static_cast<int>(c.cpus.size());
    cluster.topology.freqs_ghz = c.freqs_ghz;
    // cpu_capacity is normalized to 1024 = the fastest core at its top
    // frequency; de-rate by frequency to recover an architectural ipc on
    // the simulator's work-units scale (1024 capacity ~ ipc 2.0).
    cluster.topology.ipc = c.capacity / 512.0;
    // Sysfs carries no power model: attach the per-core-type defaults
    // (callers override with a real platform when coefficients matter).
    cluster.power = PowerParams::for_type(cluster.topology.type);
    spec.clusters.push_back(std::move(cluster));
  }
  spec.validate();
  return spec;
}

}  // namespace hars
