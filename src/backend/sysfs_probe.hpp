// Topology probing over a sysfs tree (real or fixture).
//
// probe_topology() turns `/sys/devices/system/cpu` into cluster groups
// keyed by cpufreq `related_cpus`; PlatformSpec::from_sysfs (declared in
// hmp/platform_spec.hpp, defined here in the backend layer) folds that
// into a simulatable platform. LinuxBackend keeps the ProbedTopology
// around because the PlatformSpec is dense (cluster 0 core 0, ...) while
// actuation needs the kernel's actual cpu numbers.
#pragma once

#include <string>
#include <vector>

#include "backend/sysfs.hpp"

namespace hars {

struct ProbedCluster {
  std::vector<int> cpus;           ///< Kernel cpu numbers, ascending.
  std::vector<double> freqs_ghz;   ///< DVFS ladder, ascending GHz.
  double capacity = 512.0;         ///< cpu_capacity (1024 = fastest).
  /// The cpufreq policy holder: first cpu of the group; its cpufreq dir
  /// is where frequency writes go.
  int policy_cpu = 0;
};

struct ProbedTopology {
  /// Clusters ordered by first cpu number. Never empty (probe throws).
  std::vector<ProbedCluster> clusters;

  int num_cpus() const {
    int n = 0;
    for (const auto& c : clusters) n += static_cast<int>(c.cpus.size());
    return n;
  }
};

/// Enumerates present cpus ("present" cpulist, else cpuN directories),
/// groups them by `related_cpus` (cpus without a cpufreq policy fall
/// into one fixed-frequency group), reads ladders and capacities with
/// per-attribute fallbacks. Throws PlatformConfigError (see
/// hmp/platform_spec.hpp) when no cpu is found.
ProbedTopology probe_topology(const SysfsIo& sysfs);

/// Parses a kernel cpulist ("0-3,5,7-8") into ascending cpu numbers;
/// malformed chunks are skipped.
std::vector<int> parse_cpulist(const std::string& text);

}  // namespace hars
