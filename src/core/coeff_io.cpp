#include "core/coeff_io.hpp"

#include <fstream>
#include <sstream>

namespace hars {

namespace {

void write_cluster(std::ofstream& out, const char* name,
                   const ClusterPowerCoeffs& coeffs) {
  for (std::size_t level = 0; level < coeffs.alpha.size(); ++level) {
    out << name << ',' << level << ',' << coeffs.alpha[level] << ','
        << coeffs.beta[level] << ','
        << (level < coeffs.r_squared.size() ? coeffs.r_squared[level] : 0.0)
        << '\n';
  }
}

}  // namespace

bool save_power_coeffs(const std::string& path, const PowerCoeffTable& table) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << "cluster,level,alpha,beta,r_squared\n";
  write_cluster(out, "big", table.big);
  write_cluster(out, "little", table.little);
  return out.good();
}

std::optional<PowerCoeffTable> load_power_coeffs(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;  // Header.

  PowerCoeffTable table;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cluster;
    std::string field;
    if (!std::getline(row, cluster, ',')) return std::nullopt;
    std::size_t level = 0;
    double alpha = 0.0;
    double beta = 0.0;
    double r2 = 0.0;
    try {
      if (!std::getline(row, field, ',')) return std::nullopt;
      level = static_cast<std::size_t>(std::stoul(field));
      if (!std::getline(row, field, ',')) return std::nullopt;
      alpha = std::stod(field);
      if (!std::getline(row, field, ',')) return std::nullopt;
      beta = std::stod(field);
      if (!std::getline(row, field, ',')) return std::nullopt;
      r2 = std::stod(field);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    ClusterPowerCoeffs* coeffs = nullptr;
    if (cluster == "big") {
      coeffs = &table.big;
    } else if (cluster == "little") {
      coeffs = &table.little;
    } else {
      return std::nullopt;
    }
    if (level != coeffs->alpha.size()) return std::nullopt;  // Must be dense.
    coeffs->alpha.push_back(alpha);
    coeffs->beta.push_back(beta);
    coeffs->r_squared.push_back(r2);
  }
  if (table.big.alpha.empty() || table.little.alpha.empty()) return std::nullopt;
  return table;
}

}  // namespace hars
