// Persistence for the profiled power-model coefficients.
//
// On a real board the profiling campaign (§3.1.2's microbenchmark sweep)
// takes minutes of wall time; a deployed runtime profiles once per device
// and reloads the coefficient tables afterwards. Format is plain CSV:
//   cluster,level,alpha,beta,r_squared
// with cluster in {big, little} and levels in ascending order.
#pragma once

#include <optional>
#include <string>

#include "core/power_profiler.hpp"

namespace hars {

/// Writes the table; returns false on I/O failure.
bool save_power_coeffs(const std::string& path, const PowerCoeffTable& table);

/// Reads a table previously written by save_power_coeffs. Returns nullopt
/// on I/O failure, malformed rows, or missing levels.
std::optional<PowerCoeffTable> load_power_coeffs(const std::string& path);

}  // namespace hars
