#include "core/hars.hpp"

namespace hars {

const char* hars_variant_name(HarsVariant variant) {
  switch (variant) {
    case HarsVariant::kHarsI: return "HARS-I";
    case HarsVariant::kHarsE: return "HARS-E";
    case HarsVariant::kHarsEI: return "HARS-EI";
  }
  return "?";
}

std::optional<HarsVariant> parse_hars_variant(std::string_view name) {
  for (HarsVariant variant :
       {HarsVariant::kHarsI, HarsVariant::kHarsE, HarsVariant::kHarsEI}) {
    if (name == hars_variant_name(variant)) return variant;
  }
  return std::nullopt;
}

RuntimeManagerConfig config_for_variant(HarsVariant variant) {
  RuntimeManagerConfig config;
  switch (variant) {
    case HarsVariant::kHarsI:
      config.policy = SearchPolicy::kIncremental;
      config.scheduler = ThreadSchedulerKind::kChunk;
      break;
    case HarsVariant::kHarsE:
      config.policy = SearchPolicy::kExhaustive;
      config.scheduler = ThreadSchedulerKind::kChunk;
      break;
    case HarsVariant::kHarsEI:
      config.policy = SearchPolicy::kExhaustive;
      config.scheduler = ThreadSchedulerKind::kInterleaved;
      break;
  }
  return config;
}

std::unique_ptr<RuntimeManager> attach_hars(SimEngine& engine, AppId app,
                                            PerfTarget target,
                                            HarsVariant variant,
                                            RuntimeManagerConfig* override_config) {
  const PowerCoeffTable coeffs =
      profile_power(engine.machine(), engine.power_model());
  const RuntimeManagerConfig config =
      override_config != nullptr ? *override_config : config_for_variant(variant);
  auto manager = std::make_unique<RuntimeManager>(engine, app, target,
                                                  coeffs, config);
  engine.set_manager(manager.get());
  return manager;
}

}  // namespace hars
