// Facade: the evaluated HARS variants (thesis §5.1.1) and a convenience
// constructor that wires an application, the profiled power models and a
// runtime manager onto a simulation engine.
//
//   HARS-I  - incremental search (m/n/d = 1 toward the needed direction),
//             chunk-based scheduler;
//   HARS-E  - exhaustive search (m = n = 4, d = 7), chunk-based scheduler;
//   HARS-EI - exhaustive search with the interleaving scheduler.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "core/power_profiler.hpp"
#include "core/runtime_manager.hpp"

namespace hars {

enum class HarsVariant { kHarsI, kHarsE, kHarsEI };

const char* hars_variant_name(HarsVariant variant);

/// Inverse of hars_variant_name; nullopt for unknown names.
std::optional<HarsVariant> parse_hars_variant(std::string_view name);

/// The manager configuration the paper uses for each variant.
RuntimeManagerConfig config_for_variant(HarsVariant variant);

/// Profiles the engine's platform and attaches a RuntimeManager for `app`.
/// The returned manager is installed as the engine's manager hook.
std::unique_ptr<RuntimeManager> attach_hars(SimEngine& engine, AppId app,
                                            PerfTarget target,
                                            HarsVariant variant,
                                            RuntimeManagerConfig* override_config
                                            = nullptr);

}  // namespace hars
