#include "core/perf_estimator.hpp"

#include <cmath>
#include <limits>

#include "util/hot_path.hpp"

namespace hars {

PerfEstimator::PerfEstimator(const Machine& machine, double r0, double f0_ghz)
    : machine_(&machine), r0_(r0), f0_ghz_(f0_ghz) {}

HARS_HOT double PerfEstimator::big_speed(const SystemState& s) const {
  const double f = machine_->freq_ghz_at_level(machine_->fastest_cluster(), s.big_freq);
  return r0_ * f / f0_ghz_;  // S_B,f0 = r0, S_L,f0 = 1.
}

HARS_HOT double PerfEstimator::little_speed(const SystemState& s) const {
  const double f =
      machine_->freq_ghz_at_level(machine_->slowest_cluster(), s.little_freq);
  return 1.0 * f / f0_ghz_;
}

double PerfEstimator::ratio(const SystemState& s) const {
  return big_speed(s) / little_speed(s);
}

HARS_HOT ThreadAssignment PerfEstimator::assignment(const SystemState& s,
                                                    int t) const {
  if (s.big_cores + s.little_cores < 1 || t <= 0) return {};
  return assign_threads(t, s.big_cores, s.little_cores, ratio(s));
}

HARS_HOT double PerfEstimator::unit_time(const SystemState& s, int t) const {
  if (t <= 0) return 0.0;
  if (s.big_cores + s.little_cores < 1) {
    return std::numeric_limits<double>::infinity();
  }
  const ThreadAssignment a = assignment(s, t);
  return unit_completion_time(a, t, /*total_work=*/t, s.big_cores,
                              s.little_cores, big_speed(s), little_speed(s));
}

HARS_HOT double PerfEstimator::estimate_rate(const SystemState& candidate,
                                             const SystemState& current,
                                             double current_rate,
                                             int t) const {
  const double t_cur = unit_time(current, t);
  const double t_cand = unit_time(candidate, t);
  if (!std::isfinite(t_cand) || t_cand <= 0.0) return 0.0;
  if (!std::isfinite(t_cur) || t_cur <= 0.0) return 0.0;
  return current_rate * t_cur / t_cand;
}

ClusterUtilization PerfEstimator::utilization(const SystemState& s, int t) const {
  const ThreadAssignment a = assignment(s, t);
  return estimate_utilization(a, t, s.big_cores, s.little_cores, big_speed(s),
                              little_speed(s));
}

}  // namespace hars
