// Performance estimator (thesis §3.1.1).
//
// Assumes application performance is proportional to allocated cores and
// frequency, with per-core speeds S_B = (f_B / f_0) * S_B,f0 and
// S_L = (f_L / f_0) * S_L,f0 and the assumed ratio r_0 = S_B,f0 / S_L,f0.
// The paper (and this reproduction) uses r_0 = 3/2 from the instruction
// width of the Cortex-A15 (3) vs. A7 (2) — deliberately *wrong* for
// blackscholes, whose measured ratio is 1.0 (§5.1.2).
//
// Workload inference: the estimator never sees W directly. It assumes the
// work per heartbeat observed at the current state repeats (simple
// prediction model, §3.1.4), so a candidate's rate is
//   rate_cand = rate_now * t_f(current) / t_f(candidate).
#pragma once

#include "core/system_state.hpp"
#include "core/thread_assignment.hpp"
#include "hmp/machine.hpp"

namespace hars {

class PerfEstimator {
 public:
  /// `r0` is the assumed big:little per-core speed ratio at the baseline
  /// frequency `f0_ghz`.
  PerfEstimator(const Machine& machine, double r0 = 1.5, double f0_ghz = 1.0);

  /// Per-core speeds (arbitrary units; only ratios matter).
  double big_speed(const SystemState& s) const;
  double little_speed(const SystemState& s) const;

  /// Effective ratio r = S_B / S_L at the state's frequencies.
  double ratio(const SystemState& s) const;

  /// Best thread assignment for `t` threads under state `s` (Table 3.1).
  ThreadAssignment assignment(const SystemState& s, int t) const;

  /// t_f for one unit of work W = t (so per-thread share = 1) under `s`.
  /// +inf for states that cannot run the threads.
  double unit_time(const SystemState& s, int t) const;

  /// Predicted heartbeat rate at `candidate` given the observed rate at
  /// `current`.
  double estimate_rate(const SystemState& candidate, const SystemState& current,
                       double current_rate, int t) const;

  /// Estimated utilizations of the used cores (inputs to Eq. 3.1/3.2).
  ClusterUtilization utilization(const SystemState& s, int t) const;

  double r0() const { return r0_; }
  void set_r0(double r0) { r0_ = r0; }

 private:
  const Machine* machine_;
  double r0_;
  double f0_ghz_;
};

}  // namespace hars
