#include "core/power_estimator.hpp"

#include <algorithm>
#include <cassert>

#include "util/hot_path.hpp"

namespace hars {

PowerEstimator::PowerEstimator(PowerCoeffTable coeffs)
    : coeffs_(std::move(coeffs)) {}

namespace {
double eval(const ClusterPowerCoeffs& c, int level, double cores_times_util) {
  const int clamped =
      std::clamp(level, 0, static_cast<int>(c.alpha.size()) - 1);
  const auto i = static_cast<std::size_t>(clamped);
  return c.alpha[i] * cores_times_util + c.beta[i];
}
}  // namespace

HARS_HOT double PowerEstimator::big_power(const SystemState& s, int cb_used,
                                          double util) const {
  return eval(coeffs_.big, s.big_freq, cb_used * util);
}

HARS_HOT double PowerEstimator::little_power(const SystemState& s, int cl_used,
                                             double util) const {
  return eval(coeffs_.little, s.little_freq, cl_used * util);
}

HARS_HOT double PowerEstimator::estimate(const SystemState& s, int t,
                                         const PerfEstimator& perf) const {
  const ThreadAssignment a = perf.assignment(s, t);
  const ClusterUtilization u = perf.utilization(s, t);
  return big_power(s, a.cb_used, u.big) + little_power(s, a.cl_used, u.little);
}

}  // namespace hars
