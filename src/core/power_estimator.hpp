// Power estimator (thesis §3.1.2, Eq. 3.1 / 3.2):
//
//   P_B = alpha_B,fB * C_B,U * U_B,U + beta_B,fB
//   P_L = alpha_L,fL * C_L,U * U_L,U + beta_L,fL
//
// with the coefficients taken from the profiled linear-regression tables
// and (C_*,U, U_*,U) from the performance estimator's thread assignment.
#pragma once

#include "core/perf_estimator.hpp"
#include "core/power_profiler.hpp"
#include "core/system_state.hpp"

namespace hars {

class PowerEstimator {
 public:
  explicit PowerEstimator(PowerCoeffTable coeffs);

  /// Estimated big-cluster power at the state with the given used-core
  /// count and utilization.
  double big_power(const SystemState& s, int cb_used, double util) const;
  double little_power(const SystemState& s, int cl_used, double util) const;

  /// Total estimated power for `t` application threads at state `s`,
  /// using `perf` for the assignment and utilization model.
  double estimate(const SystemState& s, int t, const PerfEstimator& perf) const;

  const PowerCoeffTable& coeffs() const { return coeffs_; }

 private:
  PowerCoeffTable coeffs_;
};

}  // namespace hars
