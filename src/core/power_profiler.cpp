#include "core/power_profiler.hpp"

#include "util/rng.hpp"

namespace hars {

namespace {

ClusterPowerCoeffs profile_cluster(const Machine& machine,
                                   const PowerModel& model, ClusterId cluster,
                                   const ProfilerConfig& config, Rng& rng) {
  ClusterPowerCoeffs coeffs;
  const int levels = machine.num_freq_levels(cluster);
  const int cores = machine.cluster_core_count(cluster);
  // The microbenchmark owns the machine while profiling; we emulate its
  // frequency control on a scratch copy so the caller's machine state is
  // untouched.
  Machine scratch = machine;
  std::vector<PowerParams> params;
  params.reserve(static_cast<std::size_t>(machine.num_clusters()));
  for (int c = 0; c < machine.num_clusters(); ++c) params.push_back(model.params(c));
  for (int level = 0; level < levels; ++level) {
    scratch.set_freq_level(cluster, level);
    PowerModel scratch_model(scratch, params);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int c = 1; c <= cores; ++c) {
      for (int u = 1; u <= config.utilization_steps; ++u) {
        const double util =
            static_cast<double>(u) / static_cast<double>(config.utilization_steps);
        const double busy_sum = c * util;
        for (int rep = 0; rep < config.repeats; ++rep) {
          const double truth = scratch_model.cluster_power(cluster, busy_sum);
          const double measured =
              truth * (1.0 + rng.normal(0.0, config.sensor_noise));
          xs.push_back(busy_sum);
          ys.push_back(measured);
        }
      }
    }
    const RegressionFit fit = fit_linear_1d(xs, ys);
    coeffs.alpha.push_back(fit.coeffs.empty() ? 0.0 : fit.coeffs.front());
    coeffs.beta.push_back(fit.intercept);
    coeffs.r_squared.push_back(fit.r_squared);
  }
  return coeffs;
}

}  // namespace

PowerCoeffTable profile_power(const Machine& machine, const PowerModel& model,
                              const ProfilerConfig& config) {
  Rng rng(config.seed);
  PowerCoeffTable table;
  table.big = profile_cluster(machine, model, machine.fastest_cluster(), config, rng);
  table.little =
      profile_cluster(machine, model, machine.slowest_cluster(), config, rng);
  return table;
}

}  // namespace hars
