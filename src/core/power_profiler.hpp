// Power profiling (thesis §3.1.2).
//
// The paper constructs the power estimator's linear-regression models from
// data collected by a microbenchmark that stresses the cores while sweeping
// the number of cores, the frequency level and the CPU utilization, reading
// the board's power sensors. We reproduce that procedure against the
// simulated platform: for every (cluster, frequency level) we "run" the
// microbenchmark at a grid of (cores, utilization) operating points, read
// noisy sensor values, and fit
//     P = alpha * (C_used * U) + beta
// per level. The resulting coefficient tables are what PowerEstimator uses.
#pragma once

#include <vector>

#include "hmp/machine.hpp"
#include "hmp/power_model.hpp"
#include "util/stats.hpp"

namespace hars {

/// alpha/beta per DVFS level for one cluster.
struct ClusterPowerCoeffs {
  std::vector<double> alpha;  ///< Indexed by frequency level.
  std::vector<double> beta;
  std::vector<double> r_squared;  ///< Fit quality per level (diagnostics).
};

struct PowerCoeffTable {
  ClusterPowerCoeffs big;
  ClusterPowerCoeffs little;
};

struct ProfilerConfig {
  int utilization_steps = 4;   ///< Grid of U in (0, 1].
  int repeats = 3;             ///< Sensor readings per operating point.
  double sensor_noise = 0.01;  ///< Matches the power sensor's noise.
  std::uint64_t seed = 2024;
};

/// Runs the profiling campaign and fits the per-level models.
PowerCoeffTable profile_power(const Machine& machine, const PowerModel& model,
                              const ProfilerConfig& config = {});

}  // namespace hars
