#include "core/ratio_learner.hpp"

#include <cmath>
#include <limits>

namespace hars {

RatioLearner::RatioLearner(const Machine& machine, int threads,
                           RatioLearnerConfig config)
    : machine_(&machine),
      threads_(threads),
      config_(config),
      best_r_(config.prior_r0) {}

void RatioLearner::observe(const SystemState& state, double rate) {
  if (rate <= 0.0) return;
  // Enforce the per-mix cap: evict the oldest observation of the same
  // (C_B, C_L) mix so exploration evidence from other mixes survives a
  // long-settled phase.
  std::size_t same_mix = 0;
  for (const Observation& o : history_) {
    if (o.state.big_cores == state.big_cores &&
        o.state.little_cores == state.little_cores) {
      ++same_mix;
    }
  }
  if (same_mix >= config_.per_mix_cap) {
    for (auto it = history_.begin(); it != history_.end(); ++it) {
      if (it->state.big_cores == state.big_cores &&
          it->state.little_cores == state.little_cores) {
        history_.erase(it);
        break;
      }
    }
  }
  history_.push_back(Observation{state, std::log(rate)});
  while (history_.size() > config_.history) history_.pop_front();
  refit();
}

bool RatioLearner::identifiable() const {
  // Two states have different mixes when the big-vs-little balance of
  // their capacity differs; compare (C_B, C_L) pairs for simplicity.
  for (std::size_t i = 1; i < history_.size(); ++i) {
    const auto& a = history_[0].state;
    const auto& b = history_[i].state;
    if (a.big_cores != b.big_cores || a.little_cores != b.little_cores) {
      return true;
    }
  }
  return false;
}

void RatioLearner::refit() {
  if (history_.size() < config_.min_samples || !identifiable()) {
    best_r_ = config_.prior_r0;
    best_residual_ = 0.0;
    return;
  }
  double best_r = config_.prior_r0;
  double best_res = std::numeric_limits<double>::infinity();
  for (double r = config_.r_min; r <= config_.r_max + 1e-9;
       r += config_.r_step) {
    PerfEstimator est(*machine_, r);
    // c_i = log rate_i + log t_f_i should be constant (= log k) if r is
    // right; score by its variance.
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t n = 0;
    bool valid = true;
    for (std::size_t i = 0; i < history_.size(); ++i) {
      const double tf = est.unit_time(history_[i].state, threads_);
      if (!std::isfinite(tf) || tf <= 0.0) {
        valid = false;
        break;
      }
      const double c = history_[i].log_rate + std::log(tf);
      sum += c;
      sum_sq += c * c;
      ++n;
    }
    if (!valid || n == 0) continue;
    const double mean = sum / static_cast<double>(n);
    const double variance = sum_sq / static_cast<double>(n) - mean * mean;
    if (variance < best_res) {
      best_res = variance;
      best_r = r;
    }
  }
  best_r_ = best_r;
  best_residual_ = best_res;
}

double RatioLearner::estimate() const { return best_r_; }

void RatioLearner::reset() {
  history_.clear();
  best_r_ = config_.prior_r0;
  best_residual_ = 0.0;
}

// std::deque indexing keeps refit() oblivious to the eviction policy; the
// loop bodies below only read history_[i].

}  // namespace hars
