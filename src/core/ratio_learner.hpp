// Online big:little performance-ratio learning.
//
// The thesis' blackscholes result (§5.1.2) shows what a wrong assumed
// ratio costs: HARS assumes r0 = 1.5 everywhere, but BL measures 1.0, and
// HARS settles in a suboptimal state. The stated future work is to
// "update the performance ratio in real time". This learner does that:
// it keeps the recent (system state, measured rate) history and picks the
// ratio whose Table-3.1 performance model best explains it.
//
// Model: rate_i ~= k / t_f(state_i; r) for an unknown per-application
// constant k. For a candidate r, the best k in log-space is
// exp(mean(log rate_i + log t_f_i)), and the residual is the variance of
// (log rate_i + log t_f_i). We grid-search r; the argmin is the estimate.
// Identification requires observations from states with *different*
// big/little mixes — exactly what the exhaustive search's exploration
// provides.
#pragma once

#include <deque>
#include <vector>

#include "core/perf_estimator.hpp"
#include "core/system_state.hpp"

namespace hars {

struct RatioLearnerConfig {
  std::size_t history = 32;     ///< Observations retained in total.
  /// Observations retained per (C_B, C_L) core mix. Without this cap, a
  /// settled runtime floods the history with one state and the ratio
  /// becomes unidentifiable again — the exploration evidence must survive.
  std::size_t per_mix_cap = 4;
  double r_min = 0.8;           ///< Grid bounds for the ratio search.
  double r_max = 3.0;
  double r_step = 0.05;
  std::size_t min_samples = 6;  ///< Below this, keep the prior.
  double prior_r0 = 1.5;        ///< Returned until identified.
};

class RatioLearner {
 public:
  RatioLearner(const Machine& machine, int threads,
               RatioLearnerConfig config = {});

  /// Records one (state, measured windowed rate) observation.
  void observe(const SystemState& state, double rate);

  /// Current best ratio estimate (the prior until enough diverse samples).
  double estimate() const;

  /// Residual (log-space variance) of the best fit; large values signal a
  /// workload the Table-3.1 model does not explain (e.g. pipelines).
  double fit_residual() const { return best_residual_; }

  std::size_t samples() const { return history_.size(); }

  void reset();

 private:
  struct Observation {
    SystemState state;
    double log_rate = 0.0;
  };

  /// True when the history covers at least two distinct big:little mixes
  /// (otherwise r is unidentifiable and we keep the prior).
  bool identifiable() const;

  void refit();

  const Machine* machine_;
  int threads_;
  RatioLearnerConfig config_;
  std::deque<Observation> history_;
  double best_r_;
  double best_residual_ = 0.0;
};

}  // namespace hars
