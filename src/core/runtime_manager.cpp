#include "core/runtime_manager.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "backend/sim_backend.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/alloc_guard.hpp"
#include "util/audit.hpp"

namespace hars {

RuntimeManager::RuntimeManager(Backend& backend, AppId app, PerfTarget target,
                               PowerCoeffTable coeffs,
                               RuntimeManagerConfig config)
    : RuntimeManager(nullptr, &backend, app, std::move(target),
                     std::move(coeffs), std::move(config)) {}

RuntimeManager::RuntimeManager(SimEngine& engine, AppId app, PerfTarget target,
                               PowerCoeffTable coeffs,
                               RuntimeManagerConfig config)
    : RuntimeManager(std::make_unique<SimBackend>(engine), nullptr, app,
                     std::move(target), std::move(coeffs), std::move(config)) {}

RuntimeManager::RuntimeManager(std::unique_ptr<Backend> owned,
                               Backend* backend, AppId app, PerfTarget target,
                               PowerCoeffTable coeffs,
                               RuntimeManagerConfig config)
    : owned_backend_(std::move(owned)),
      backend_(backend != nullptr ? *backend : *owned_backend_),
      app_(app),
      perf_est_(backend_.topology(), config.r0),
      power_est_(std::move(coeffs)),
      config_(config),
      space_(StateSpace::from_machine(backend_.topology())),
      predictor_(make_predictor(config.predictor)) {
  if (!target.is_valid_window()) {
    throw std::invalid_argument(
        "RuntimeManager: target window must be positive (0 <= min <= max, "
        "max > 0); a non-positive average zeroes every normalized-perf "
        "score and the search would pick arbitrarily");
  }
  if (config_.learn_ratio) {
    RatioLearnerConfig learner_config;
    learner_config.prior_r0 = config_.r0;
    ratio_learner_.emplace(backend_.topology(), backend_.thread_count(app_),
                           learner_config);
  }
  backend_.heartbeats(app_).set_target(target);
  state_ = config_.start_at_max ? space_.max_state() : SystemState{
      space_.max_big_cores, space_.max_little_cores, 0, 0};
  apply_state(state_);
}

CpuMask RuntimeManager::big_set(const SystemState& s) const {
  const Machine& m = backend_.topology();
  const CoreId first = m.fastest_mask().first();
  return CpuMask::range(first, s.big_cores);
}

CpuMask RuntimeManager::little_set(const SystemState& s) const {
  const Machine& m = backend_.topology();
  const CoreId first = m.slowest_mask().first();
  return CpuMask::range(first, s.little_cores);
}

void RuntimeManager::apply_state(const SystemState& state) {
  state_ = state;
  const Machine& m = backend_.topology();
  backend_.set_dvfs_level(m.fastest_cluster(), state.big_freq);
  backend_.set_dvfs_level(m.slowest_cluster(), state.little_freq);
  const int t = backend_.thread_count(app_);
  const ThreadAssignment a = perf_est_.assignment(state, t);
  apply_thread_schedule(backend_, app_, config_.scheduler, a, big_set(state),
                        little_set(state));
}

TimeUs RuntimeManager::on_tick(TimeUs now) {
  if (now < next_poll_) return 0;
  // Manager bookkeeping (trace growth, predictor state, schedule
  // changes) is a declared amortized allocator inside the engine's
  // guarded tick; the candidate searches below re-tighten the contract
  // with their own AllocGuard for the duration of each sweep.
  allocg::AllowScope allow("runtime-manager bookkeeping");
  next_poll_ = now + config_.poll_period_us;
  TimeUs cost = config_.poll_cost_us;

  const HeartbeatMonitor& hb = backend_.heartbeats(app_);
  const std::int64_t idx = hb.last_index();
  if (idx < 0 || idx == last_seen_hb_) return cost;
  last_seen_hb_ = idx;

  const double measured_rate = hb.rate();
  const double rate = predictor_->observe(measured_rate);
  if (ratio_learner_ && measured_rate > 0.0 &&
      (last_change_hb_ < 0 || idx - last_change_hb_ >= config_.settle_beats)) {
    // Only settled rates are attributable to the current state.
    ratio_learner_->observe(state_, measured_rate);
    perf_est_.set_r0(ratio_learner_->estimate());
  }
  const Machine& m = backend_.topology();
  trace_.push_back(TracePoint{
      idx, measured_rate, state_.big_cores, state_.little_cores,
      m.freq_ghz_at_level(m.fastest_cluster(), state_.big_freq),
      m.freq_ghz_at_level(m.slowest_cluster(), state_.little_freq)});

  if (idx % config_.adapt_period != 0) return cost;  // isAdaptPeriod
  if (rate <= 0.0) return cost;  // Not enough beats for a windowed rate yet.
  if (last_change_hb_ >= 0 && idx - last_change_hb_ < config_.settle_beats) {
    return cost;  // Window still mixes pre-change rates.
  }

  const PerfTarget& target = hb.target();
  if (std::abs(rate - target.avg()) <= 0.5 * (target.max - target.min)) {
    return cost;  // Inside the window: nothing to do.
  }

  const bool overperforming = rate > target.avg();
  const int threads = backend_.thread_count(app_);
  // One memoization epoch per adaptation: r0 may have moved (ratio
  // learner) since the last search, so prior entries are stale.
  SearchScratch* scratch = nullptr;
  if (!config_.reference_search) {
    scratch_.begin_tick(space_);
    scratch = &scratch_;
  }
  SearchResult result;
  if (config_.policy == SearchPolicy::kTabu) {
    result = tabu_get_next_sys_state(rate, state_, target, config_.tabu,
                                     space_, perf_est_, power_est_, threads,
                                     {}, scratch);
  } else {
    const SearchParams params =
        params_for_policy(config_.policy, overperforming,
                          config_.exhaustive_window, config_.exhaustive_d);
    result = get_next_sys_state(rate, state_, target, params, space_,
                                perf_est_, power_est_, threads, {}, scratch);
  }
  {
    const obs::Catalog& cat = obs::catalog();
    obs::counter_add(config_.policy == SearchPolicy::kTabu
                         ? cat.candidates_tabu
                         : config_.policy == SearchPolicy::kExhaustive
                               ? cat.candidates_exhaustive
                               : cat.candidates_incremental,
                     static_cast<std::uint64_t>(result.candidates));
  }
  if (backend_.audit_enabled()) {
    // The sweep only considers space_-valid candidates, so a violation
    // here means the search itself (or a memo table) corrupted a state.
    const std::string why = result.state.check_invariants(space_);
    if (!why.empty()) {
      throw AuditError("RuntimeManager: search returned invalid state: " +
                       why);
    }
  }
  cost += config_.adapt_fixed_cost_us +
          config_.cost_per_candidate_us * result.candidates;
  if (result.moved) {
    const double t_old = perf_est_.unit_time(state_, threads);
    const double t_new = perf_est_.unit_time(result.state, threads);
    apply_state(result.state);
    ++adaptations_;
    last_change_hb_ = idx;
    if (t_new > 0.0 && std::isfinite(t_old) && std::isfinite(t_new)) {
      predictor_->on_state_change(t_old / t_new);
    }
  }
  return cost;
}

}  // namespace hars
