// The HARS runtime manager (thesis Algorithm 1).
//
// A user-level daemon: it polls the application's heartbeat channel, and on
// every adaptation period checks whether the windowed heartbeat rate sits
// inside the target window. When |rate - t.avg| > (t.max - t.min)/2 it runs
// the search function and applies the chosen system state — setting cluster
// frequencies, picking the core set, and pinning threads through the chunk
// or interleaving scheduler.
//
// Overhead model: the manager's polling and per-candidate estimation costs
// are reported to the SimEngine, which charges them to the manager core
// (they both consume capacity and burn power) — this is what Figure 5.3(b)
// measures as HARS's CPU utilization.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/ratio_learner.hpp"
#include "core/search.hpp"
#include "core/system_state.hpp"
#include "core/tabu_search.hpp"
#include "core/thread_scheduler.hpp"
#include "core/workload_predictor.hpp"
#include "hmp/sim_engine.hpp"

namespace hars {

/// One point of the behaviour traces in Figures 5.5-5.7.
struct TracePoint {
  std::int64_t hb_index = 0;
  double hps = 0.0;      ///< Windowed heartbeat rate.
  int big_cores = 0;     ///< Allocated big cores.
  int little_cores = 0;  ///< Allocated little cores.
  double big_freq_ghz = 0.0;
  double little_freq_ghz = 0.0;
};

struct RuntimeManagerConfig {
  SearchPolicy policy = SearchPolicy::kExhaustive;
  ThreadSchedulerKind scheduler = ThreadSchedulerKind::kChunk;
  int exhaustive_window = 4;  ///< m = n for HARS-E.
  int exhaustive_d = 7;       ///< d for HARS-E.
  int adapt_period = 5;       ///< Heartbeats between adaptation checks.
  /// After a state change the heartbeat window mixes old- and new-state
  /// rates; adapting on that stale signal oscillates (§3.1.3 discusses
  /// HARS-E's oscillation risk). Wait this many fresh heartbeats after a
  /// move before adapting again (matches the monitor window).
  int settle_beats = 10;
  double r0 = 1.5;            ///< Assumed big:little speed ratio.

  // --- §3.1.4 / §5.1.2 extensions (all off by default: paper behaviour) ---
  /// Rate prediction model; kKalman smooths noisy heartbeat windows.
  PredictorKind predictor = PredictorKind::kLastValue;
  /// Learn the big:little ratio online instead of trusting r0 (fixes the
  /// blackscholes misprediction).
  bool learn_ratio = false;
  /// Trajectory parameters when policy == SearchPolicy::kTabu.
  TabuParams tabu;

  // Overhead model (calibrated so Figure 5.3(b) lands in the paper's
  // "under 6% at d = 9" envelope).
  TimeUs poll_period_us = 5 * kUsPerMs;
  TimeUs poll_cost_us = 60;
  TimeUs cost_per_candidate_us = 400;
  TimeUs adapt_fixed_cost_us = 500;

  bool start_at_max = true;  ///< Initial state = full machine (baseline-like).

  /// Runs the retained reference search implementations instead of the
  /// memoized SearchScratch path. Decisions are bit-identical either way;
  /// the flag is the baseline of bench/tick_bench's speedup trajectory.
  bool reference_search = false;
};

class RuntimeManager : public ManagerHook {
 public:
  /// `target` is installed on the app's heartbeat monitor. The coefficient
  /// table comes from a profiling campaign (profile_power). The manager
  /// talks to the platform exclusively through `backend` (DVFS, placement,
  /// heartbeats) — simulated and live backends are interchangeable here.
  RuntimeManager(Backend& backend, AppId app, PerfTarget target,
                 PowerCoeffTable coeffs, RuntimeManagerConfig config = {});

  /// Compatibility overload: wraps `engine` in an owned SimBackend.
  /// Behaviour is identical to pre-HAL construction (SimBackend forwards
  /// 1:1 to the engine).
  RuntimeManager(SimEngine& engine, AppId app, PerfTarget target,
                 PowerCoeffTable coeffs, RuntimeManagerConfig config = {});

  TimeUs on_tick(TimeUs now) override;

  const SystemState& current_state() const { return state_; }
  const std::vector<TracePoint>& trace() const { return trace_; }
  std::int64_t adaptations() const { return adaptations_; }

  /// The ratio currently used by the performance estimator (changes over
  /// time when learn_ratio is on).
  double current_r0() const { return perf_est_.r0(); }

  /// Applies a state immediately (also used by the static-optimal runner).
  void apply_state(const SystemState& state);

 private:
  /// Delegation target of both public constructors: exactly one of
  /// `owned` / `backend` is set. `owned_backend_` is declared before
  /// `backend_` so the reference can bind to it during initialization.
  RuntimeManager(std::unique_ptr<Backend> owned, Backend* backend, AppId app,
                 PerfTarget target, PowerCoeffTable coeffs,
                 RuntimeManagerConfig config);

  /// Core sets for a state: the first C_L little cores and first C_B big
  /// cores of the machine (single-application HARS owns the machine).
  CpuMask big_set(const SystemState& s) const;
  CpuMask little_set(const SystemState& s) const;

  std::unique_ptr<Backend> owned_backend_;  ///< Only for the SimEngine ctor.
  Backend& backend_;
  AppId app_;
  PerfEstimator perf_est_;
  PowerEstimator power_est_;
  RuntimeManagerConfig config_;
  StateSpace space_;

  SystemState state_;
  SearchScratch scratch_;  ///< Per-tick search memoization (search_scratch.hpp).
  TimeUs next_poll_ = 0;
  std::int64_t last_seen_hb_ = -1;
  std::int64_t last_change_hb_ = -1;
  std::int64_t adaptations_ = 0;
  std::vector<TracePoint> trace_;
  std::unique_ptr<RatePredictor> predictor_;
  std::optional<RatioLearner> ratio_learner_;
};

}  // namespace hars
