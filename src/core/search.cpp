#include "core/search.hpp"

#include <algorithm>
#include <cmath>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/alloc_guard.hpp"
#include "util/hot_path.hpp"

namespace hars {

double normalized_perf(double rate, const PerfTarget& target) {
  const double g = target.avg();
  // Defensive only: a non-positive target average would make every
  // candidate tie at 0 and the search pick arbitrarily, so targets are
  // validated upstream (PerfTarget::is_valid_window — builder, scenario
  // validator, manager constructors) and this guard should be
  // unreachable through those paths.
  if (g <= 0.0) return 0.0;
  return std::min(g, rate) / g;
}

const char* search_policy_name(SearchPolicy policy) {
  switch (policy) {
    case SearchPolicy::kIncremental: return "incremental";
    case SearchPolicy::kExhaustive: return "exhaustive";
    case SearchPolicy::kTabu: return "tabu";
  }
  return "?";
}

std::optional<SearchPolicy> parse_search_policy(std::string_view name) {
  for (SearchPolicy policy : {SearchPolicy::kIncremental,
                              SearchPolicy::kExhaustive, SearchPolicy::kTabu}) {
    if (name == search_policy_name(policy)) return policy;
  }
  return std::nullopt;
}

SearchParams params_for_policy(SearchPolicy policy, bool overperforming,
                               int exhaustive_window, int exhaustive_d) {
  if (policy != SearchPolicy::kIncremental) {
    // HARS-E's window is symmetric by definition (§3.1.3: m = n = 4,
    // d = 7): the sweep may shrink and grow every knob by the same
    // amount regardless of the performance direction, and the current
    // state competing via getBetterState keeps "no move" available.
    // Using `exhaustive_window` for both m and n is therefore correct,
    // not an accidental aliasing of two independent bounds.
    return SearchParams{exhaustive_window, exhaustive_window, exhaustive_d};
  }
  // HARS-I: step one component down when overperforming, up otherwise.
  return overperforming ? SearchParams{1, 0, 1} : SearchParams{0, 1, 1};
}

namespace {

/// Best-so-far candidate and the Algorithm 2 selection rules, shared by
/// the memoized and reference sweeps so the two cannot diverge.
struct Best {
  SystemState state;
  double perf = -1.0;
  double power = 0.0;
  double pp = -1.0;
  bool set = false;
};

HARS_HOT void consider(Best& ns, const PerfTarget& target, const SystemState& s,
                       double perf, double power, double pp) {
  // Selection rules of Algorithm 2, lines 13-22.
  if (perf >= target.min) {
    if (ns.set && ns.perf >= target.min) {
      if (pp > ns.pp) ns = Best{s, perf, power, pp, true};
    } else {
      ns = Best{s, perf, power, pp, true};
    }
  } else {
    if (!ns.set || ns.perf < target.min) {
      if (!ns.set || perf > ns.perf) ns = Best{s, perf, power, pp, true};
    }
  }
}

/// The m/n/d neighbourhood sweep with a pluggable per-candidate
/// evaluator. `evaluate(s, perf, power, pp)` must produce the Algorithm 2
/// scores for one state.
template <typename EvalFn>
HARS_HOT SearchResult neighbourhood_sweep(const SystemState& current,
                                          const PerfTarget& target,
                                          const SearchParams& params,
                                          const StateSpace& space,
                                          const CandidateFilter& filter,
                                          EvalFn&& evaluate) {
  Best ns;
  SearchResult result;
  for (int i = current.big_cores - params.m; i <= current.big_cores + params.n;
       ++i) {
    for (int j = current.little_cores - params.m;
         j <= current.little_cores + params.n; ++j) {
      for (int k = current.big_freq - params.m; k <= current.big_freq + params.n;
           ++k) {
        for (int l = current.little_freq - params.m;
             l <= current.little_freq + params.n; ++l) {
          const SystemState cand{i, j, k, l};
          if (!space.valid(cand)) continue;
          if (manhattan_distance(cand, current) > params.d) continue;
          if (cand == current) continue;  // getBetterState handles it below.
          if (filter && !filter(cand)) continue;
          double perf = 0.0;
          double power = 0.0;
          double pp = 0.0;
          evaluate(cand, perf, power, pp);
          ++result.candidates;
          consider(ns, target, cand, perf, power, pp);
        }
      }
    }
  }

  // getBetterState: the current state competes under the same criteria.
  {
    double perf = 0.0;
    double power = 0.0;
    double pp = 0.0;
    evaluate(current, perf, power, pp);
    ++result.candidates;
    consider(ns, target, current, perf, power, pp);
  }

  result.state = ns.set ? ns.state : current;
  result.est_perf = ns.perf;
  result.est_power = ns.power;
  result.est_pp = ns.pp;
  result.moved = !(result.state == current);
  return result;
}

}  // namespace

SearchResult get_next_sys_state_reference(
    double hb_rate, const SystemState& current, const PerfTarget& target,
    const SearchParams& params, const StateSpace& space,
    const PerfEstimator& perf_est, const PowerEstimator& power_est,
    int threads, const CandidateFilter& filter) {
  return neighbourhood_sweep(
      current, target, params, space, filter,
      [&](const SystemState& s, double& perf_out, double& power_out,
          double& pp_out) {
        perf_out = perf_est.estimate_rate(s, current, hb_rate, threads);
        power_out = power_est.estimate(s, threads, perf_est);
        const double norm = normalized_perf(perf_out, target);
        pp_out = power_out > 0.0 ? norm / power_out : 0.0;
      });
}

HARS_HOT SearchResult get_next_sys_state(
    double hb_rate, const SystemState& current, const PerfTarget& target,
    const SearchParams& params, const StateSpace& space,
    const PerfEstimator& perf_est, const PowerEstimator& power_est, int threads,
    const CandidateFilter& filter, SearchScratch* scratch) {
  if (scratch == nullptr) {
    return get_next_sys_state_reference(hb_rate, current, target, params,
                                        space, perf_est, power_est, threads,
                                        filter);
  }
  // The memoized sweep is strictly allocation-free: memo tables were
  // pre-sized by SearchScratch::begin_tick, so lookups and fills touch
  // only existing slots. The guard re-tightens any enclosing manager
  // AllowScope for the duration of the sweep.
  AllocGuard guard("get_next_sys_state(scratch)");
  // Memoized sweep: t_f(current) is one lookup for the whole call, and
  // each candidate costs one unit-time and one power lookup. The rate
  // expression and its guards mirror PerfEstimator::estimate_rate
  // exactly, so scores are bit-identical to the reference path.
  const double ut_cur = scratch->unit_time(current, threads, perf_est);
  const bool cur_ok = std::isfinite(ut_cur) && ut_cur > 0.0;
  const SearchResult result = neighbourhood_sweep(
      current, target, params, space, filter,
      [&](const SystemState& s, double& perf_out, double& power_out,
          double& pp_out) {
        const double ut = scratch->unit_time(s, threads, perf_est);
        perf_out = (std::isfinite(ut) && ut > 0.0 && cur_ok)
                       ? hb_rate * ut_cur / ut
                       : 0.0;
        power_out = scratch->power(s, threads, perf_est, power_est);
        const double norm = normalized_perf(perf_out, target);
        pp_out = power_out > 0.0 ? norm / power_out : 0.0;
      });
  obs::counter_add(obs::catalog().search_calls);
  if (result.moved) obs::counter_add(obs::catalog().search_moves);
  return result;
}

}  // namespace hars
