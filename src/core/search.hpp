// The search function (thesis Algorithm 2, GetNextSysState).
//
// Sweeps the neighbourhood [C_B - m, C_B + n] x [C_L - m, C_L + n] x
// [f_B - m, f_B + n] x [f_L - m, f_L + n], skipping candidates whose
// Manhattan distance from the current state exceeds d, estimates each
// candidate's performance and power, and selects:
//   * among target-satisfying candidates, the best normalized-perf/power;
//   * if none satisfies the target, the candidate with the highest
//     estimated performance (get as close to the target as possible).
// Finally the current state competes under the same criteria
// (getBetterState), so the search never proposes a pointless move.
//
// Presets (§3.1.3): HARS-I (m=1,n=0,d=1 when overperforming; m=0,n=1,d=1
// when underperforming) and HARS-E (m=4,n=4,d=7).
#pragma once

#include <optional>
#include <string_view>

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/search_scratch.hpp"
#include "core/system_state.hpp"
#include "heartbeats/heartbeat.hpp"
#include "util/function_ref.hpp"

namespace hars {

struct SearchParams {
  int m = 4;  ///< How far each dimension may decrease.
  int n = 4;  ///< How far each dimension may increase.
  int d = 7;  ///< Manhattan-distance budget.
};

enum class SearchPolicy {
  kIncremental,  ///< HARS-I: one knob, one step, toward the needed direction.
  kExhaustive,   ///< HARS-E: the full m/n/d neighbourhood sweep.
  kTabu,         ///< §3.1.4 extension: tabu-search trajectory (tabu_search.hpp).
};

const char* search_policy_name(SearchPolicy policy);

/// Inverse of search_policy_name; nullopt for unknown names.
std::optional<SearchPolicy> parse_search_policy(std::string_view name);

/// Builds the effective SearchParams for a policy given whether the
/// application currently overperforms its target.
///
/// Non-incremental policies get the paper's *symmetric* exhaustive window
/// (§3.1.3 defines HARS-E as m = n = 4 with d = 7): `exhaustive_window`
/// is deliberately used for both the decrease bound m and the increase
/// bound n, independent of the over/underperforming direction — only
/// HARS-I is direction-asymmetric. Golden-tested by
/// tests/core/search_test.cpp (ExhaustiveWindowIsSymmetric,
/// HarsEDecisionGolden).
SearchParams params_for_policy(SearchPolicy policy, bool overperforming,
                               int exhaustive_window = 4, int exhaustive_d = 7);

/// Optional per-candidate constraint (MP-HARS narrows the space by free
/// cores and frequency controllability). Return false to skip a
/// candidate. A non-owning reference: bind it to an lvalue callable (or
/// pass a lambda directly in the call expression); never store it past
/// the callable's lifetime. See util/function_ref.hpp.
using CandidateFilter = FunctionRef<bool(const SystemState&)>;

struct SearchResult {
  SystemState state;          ///< Chosen next state (== current if no better).
  double est_perf = 0.0;      ///< Estimated heartbeat rate at `state`.
  double est_power = 0.0;     ///< Estimated power at `state`.
  double est_pp = 0.0;        ///< Normalized-perf / power at `state`.
  int candidates = 0;         ///< Candidates evaluated (overhead model input).
  bool moved = false;         ///< True when `state` differs from current.
};

/// With a non-null `scratch` the estimator calls are memoized per
/// (state, threads) within the scratch's current epoch
/// (SearchScratch::begin_tick) and the enumeration performs no
/// allocations; without one it falls back to the reference
/// implementation. Both return bit-identical SearchResults.
SearchResult get_next_sys_state(double hb_rate, const SystemState& current,
                                const PerfTarget& target,
                                const SearchParams& params,
                                const StateSpace& space,
                                const PerfEstimator& perf_est,
                                const PowerEstimator& power_est, int threads,
                                const CandidateFilter& filter = {},
                                SearchScratch* scratch = nullptr);

/// The retained pre-memoization implementation (recomputes every
/// estimate from scratch). Kept as the golden reference the optimized
/// path is property-tested against, and as bench/tick_bench's
/// `--reference` baseline.
SearchResult get_next_sys_state_reference(
    double hb_rate, const SystemState& current, const PerfTarget& target,
    const SearchParams& params, const StateSpace& space,
    const PerfEstimator& perf_est, const PowerEstimator& power_est,
    int threads, const CandidateFilter& filter = {});

/// min(g, h) / g with g = target average (no credit for overperformance).
double normalized_perf(double rate, const PerfTarget& target);

}  // namespace hars
