#include "core/search_scratch.hpp"

#include <cassert>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/alloc_guard.hpp"
#include "util/hot_path.hpp"

namespace hars {

void SearchScratch::begin_tick(const StateSpace& space) {
  const int nb = space.max_big_cores + 1;
  const int nl = space.max_little_cores + 1;
  const int nbf = space.num_big_freqs;
  const int nlf = space.num_little_freqs;
  assert(nb > 0 && nl > 0 && nbf > 0 && nlf > 0);
  const auto slots =
      static_cast<std::size_t>(nb) * static_cast<std::size_t>(nl) *
      static_cast<std::size_t>(nbf) * static_cast<std::size_t>(nlf);
  if (slots > unit_time_.size() || nl != stride_l_ || nbf != stride_bf_ ||
      nlf != stride_lf_) {
    // One-time (per state-space shape) growth of the memo tables.
    allocg::AllowScope allow("SearchScratch memo-table growth");
    stride_l_ = nl;
    stride_bf_ = nbf;
    stride_lf_ = nlf;
    unit_time_.assign(slots, Entry{});
    power_.assign(slots, Entry{});
    gen_ = 0;
  }
  if (++gen_ == 0) {
    // Generation wrap (after ~4G epochs): wipe the stamps so no stale
    // entry can alias the restarted counter.
    unit_time_.assign(unit_time_.size(), Entry{});
    power_.assign(power_.size(), Entry{});
    gen_ = 1;
  }
}

HARS_HOT double SearchScratch::unit_time(const SystemState& s, int threads,
                                         const PerfEstimator& perf) {
  assert(gen_ != 0 && "begin_tick() must run before lookups");
  Entry& entry = unit_time_[index_of(s)];
  if (entry.gen != gen_ || entry.threads != threads) {
    entry.value = perf.unit_time(s, threads);
    entry.gen = gen_;
    entry.threads = threads;
    obs::counter_add(obs::catalog().memo_unit_time_misses);
  } else {
    obs::counter_add(obs::catalog().memo_unit_time_hits);
  }
  return entry.value;
}

HARS_HOT double SearchScratch::power(const SystemState& s, int threads,
                                     const PerfEstimator& perf,
                                     const PowerEstimator& power_est) {
  assert(gen_ != 0 && "begin_tick() must run before lookups");
  Entry& entry = power_[index_of(s)];
  if (entry.gen != gen_ || entry.threads != threads) {
    entry.value = power_est.estimate(s, threads, perf);
    entry.gen = gen_;
    entry.threads = threads;
    obs::counter_add(obs::catalog().memo_power_misses);
  } else {
    obs::counter_add(obs::catalog().memo_power_hits);
  }
  return entry.value;
}

}  // namespace hars
