// SearchScratch: reusable keyed scratch for the search hot path.
//
// The search functions (Algorithm 2's neighbourhood sweep and the tabu
// trajectory) spend their time in two pure computations per candidate:
// the performance estimator's unit completion time t_f(s, T) and the
// power estimate P(s, T). Both depend only on (state, threads) plus
// configuration that is constant within one manager tick (the machine's
// frequency tables, the assumed ratio r0, the profiled coefficients) —
// so within a tick every value can be computed once and reused, both
// across candidates of one search call and across the per-app searches
// MP-HARS runs in the same tick.
//
// The scratch holds dense generation-stamped tables over the state space
// (one slot per valid SystemState); begin_tick() opens a new epoch by
// bumping the generation, which invalidates every entry in O(1) without
// deallocating. Steady-state lookups therefore never allocate.
//
// Bit-identity: a memoized value is the result of the exact expression
// the unmemoized path evaluates, so searches through the scratch return
// bit-identical SearchResults to the retained reference implementations
// (get_next_sys_state_reference / tabu_get_next_sys_state_reference),
// which tests/core/search_identity_test.cpp asserts over randomized
// cases for all three SearchPolicy values.
#pragma once

#include <cstdint>
#include <vector>

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/system_state.hpp"

namespace hars {

class SearchScratch {
 public:
  /// Opens a new memoization epoch sized for `space`: every previously
  /// memoized value is invalidated (estimator configuration — r0, the
  /// machine — may have changed between ticks), and the dense tables are
  /// grown if the space outgrew them. Call once per manager tick, before
  /// any search that passes this scratch.
  void begin_tick(const StateSpace& space);

  /// Memoized PerfEstimator::unit_time(s, threads); `s` must be valid in
  /// the begin_tick space.
  double unit_time(const SystemState& s, int threads,
                   const PerfEstimator& perf);

  /// Memoized PowerEstimator::estimate(s, threads, perf).
  double power(const SystemState& s, int threads, const PerfEstimator& perf,
               const PowerEstimator& power_est);

  /// Reusable bounded-FIFO backing store for the tabu list (cleared by the
  /// caller; capacity persists across searches so pushes do not allocate
  /// in steady state).
  std::vector<SystemState>& tabu_ring() { return tabu_ring_; }

 private:
  struct Entry {
    std::uint32_t gen = 0;  ///< Epoch stamp; 0 is never a live epoch.
    int threads = -1;       ///< Thread count the value was computed for.
    double value = 0.0;
  };

  std::size_t index_of(const SystemState& s) const {
    return static_cast<std::size_t>(
        ((s.big_cores * stride_l_ + s.little_cores) * stride_bf_ +
         s.big_freq) *
            stride_lf_ +
        s.little_freq);
  }

  int stride_l_ = 0;   ///< max_little_cores + 1.
  int stride_bf_ = 0;  ///< num_big_freqs.
  int stride_lf_ = 0;  ///< num_little_freqs.
  std::uint32_t gen_ = 0;
  std::vector<Entry> unit_time_;
  std::vector<Entry> power_;
  std::vector<SystemState> tabu_ring_;
};

}  // namespace hars
