#include "core/system_state.hpp"

#include <cmath>
#include <cstdio>

namespace hars {

std::string SystemState::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(CB=%d CL=%d fB=%d fL=%d)", big_cores,
                little_cores, big_freq, little_freq);
  return buf;
}

std::string SystemState::check_invariants(const StateSpace& space) const {
  std::string violations;
  const auto fail = [&](const char* what) {
    if (!violations.empty()) violations += "; ";
    violations += what;
  };
  if (big_cores < space.min_big_cores || big_cores > space.max_big_cores) {
    fail("big_cores outside [min_big_cores, max_big_cores]");
  }
  if (little_cores < space.min_little_cores ||
      little_cores > space.max_little_cores) {
    fail("little_cores outside [min_little_cores, max_little_cores]");
  }
  if (big_freq < space.min_big_freq || big_freq >= space.num_big_freqs) {
    fail("big_freq outside [min_big_freq, num_big_freqs)");
  }
  if (little_freq < space.min_little_freq ||
      little_freq >= space.num_little_freqs) {
    fail("little_freq outside [min_little_freq, num_little_freqs)");
  }
  if (big_cores + little_cores < 1) {
    fail("no cores allocated (big_cores + little_cores < 1)");
  }
  if (!violations.empty()) violations += " in " + to_string();
  return violations;
}

int manhattan_distance(const SystemState& a, const SystemState& b) {
  return std::abs(a.big_cores - b.big_cores) +
         std::abs(a.little_cores - b.little_cores) +
         std::abs(a.big_freq - b.big_freq) +
         std::abs(a.little_freq - b.little_freq);
}

StateSpace StateSpace::from_machine(const Machine& machine) {
  StateSpace space;
  space.max_big_cores = machine.cluster_core_count(machine.fastest_cluster());
  space.max_little_cores = machine.cluster_core_count(machine.slowest_cluster());
  space.num_big_freqs = machine.num_freq_levels(machine.fastest_cluster());
  space.num_little_freqs = machine.num_freq_levels(machine.slowest_cluster());
  return space;
}

bool StateSpace::valid(const SystemState& s) const {
  if (s.big_cores < min_big_cores || s.big_cores > max_big_cores) return false;
  if (s.little_cores < min_little_cores || s.little_cores > max_little_cores)
    return false;
  if (s.big_freq < min_big_freq || s.big_freq >= num_big_freqs) return false;
  if (s.little_freq < min_little_freq || s.little_freq >= num_little_freqs)
    return false;
  return s.big_cores + s.little_cores >= 1;
}

SystemState StateSpace::max_state() const {
  return SystemState{max_big_cores, max_little_cores, num_big_freqs - 1,
                     num_little_freqs - 1};
}

}  // namespace hars
