// The system state HARS controls (thesis §3.1): the number of big and
// little cores allocated to the application and the DVFS level of each
// cluster. The search function (Algorithm 2) walks this 4-dimensional
// space under a Manhattan-distance budget.
#pragma once

#include <string>

#include "hmp/machine.hpp"

namespace hars {

struct StateSpace;

struct SystemState {
  int big_cores = 0;      ///< C_B: big cores allocated to the app.
  int little_cores = 0;   ///< C_L: little cores allocated to the app.
  int big_freq = 0;       ///< f_B as a DVFS *level* index (ascending).
  int little_freq = 0;    ///< f_L as a DVFS level index.

  friend bool operator==(const SystemState&, const SystemState&) = default;

  std::string to_string() const;

  /// HARS_AUDIT hook: names every invariant this state violates against
  /// `space` (per-dimension bounds and the at-least-one-core rule), one
  /// clause per violation. Empty string when the state is valid — the
  /// predicate form of StateSpace::valid with a diagnosis attached; the
  /// runtime managers call it on every search result when audits are on.
  std::string check_invariants(const StateSpace& space) const;
};

/// Manhattan distance in the 4-D state space (Algorithm 2's getDistance).
int manhattan_distance(const SystemState& a, const SystemState& b);

/// Inclusive bounds of the explorable space. For single-application HARS
/// these are the machine limits; MP-HARS narrows the core bounds to
/// "own cores + free cores" (§4.1.2). On N-cluster machines the "big"
/// dimensions map onto the fastest cluster and the "little" dimensions
/// onto the slowest (Machine's perf-ranked capability API); middle
/// clusters stay under OS-scheduler control.
struct StateSpace {
  int max_big_cores = 4;
  int max_little_cores = 4;
  int min_big_cores = 0;
  int min_little_cores = 0;
  int num_big_freqs = 9;
  int num_little_freqs = 6;
  int min_big_freq = 0;
  int min_little_freq = 0;

  /// Machine-wide space for a two-cluster big.LITTLE machine.
  static StateSpace from_machine(const Machine& machine);

  /// A state is valid when inside all bounds and at least one core is
  /// allocated (an app cannot run on zero cores).
  bool valid(const SystemState& s) const;

  /// The maximum state: all cores, top frequencies.
  SystemState max_state() const;
};

}  // namespace hars
