#include "core/tabu_search.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace hars {

namespace {

struct Scored {
  SystemState state;
  double perf = 0.0;
  double power = 0.0;
  double pp = -1.0;
  bool satisfies = false;
};

/// Algorithm-2-compatible "is a better than b" ordering: target
/// satisfaction first, then normalized-perf/power, then raw perf.
bool better(const Scored& a, const Scored& b) {
  if (a.satisfies != b.satisfies) return a.satisfies;
  if (a.satisfies) return a.pp > b.pp;
  return a.perf > b.perf;
}

}  // namespace

SearchResult tabu_get_next_sys_state(double hb_rate, const SystemState& current,
                                     const PerfTarget& target,
                                     const TabuParams& params,
                                     const StateSpace& space,
                                     const PerfEstimator& perf_est,
                                     const PowerEstimator& power_est,
                                     int threads, const CandidateFilter& filter) {
  SearchResult result;

  auto score = [&](const SystemState& s) {
    Scored scored;
    scored.state = s;
    scored.perf = perf_est.estimate_rate(s, current, hb_rate, threads);
    scored.power = power_est.estimate(s, threads, perf_est);
    scored.pp = scored.power > 0.0
                    ? normalized_perf(scored.perf, target) / scored.power
                    : 0.0;
    scored.satisfies = scored.perf >= target.min;
    ++result.candidates;
    return scored;
  };

  std::deque<SystemState> tabu;
  auto is_tabu = [&](const SystemState& s) {
    return std::find(tabu.begin(), tabu.end(), s) != tabu.end();
  };
  auto push_tabu = [&](const SystemState& s) {
    tabu.push_back(s);
    while (static_cast<int>(tabu.size()) > params.tenure) tabu.pop_front();
  };

  Scored here = score(current);
  Scored best = here;
  push_tabu(current);

  for (int iter = 0; iter < params.iterations; ++iter) {
    // Enumerate the +/-step neighbourhood of the trajectory head.
    Scored best_move;
    bool found = false;
    for (int di = -params.step; di <= params.step; ++di) {
      for (int dj = -params.step; dj <= params.step; ++dj) {
        for (int dk = -params.step; dk <= params.step; ++dk) {
          for (int dl = -params.step; dl <= params.step; ++dl) {
            if (di == 0 && dj == 0 && dk == 0 && dl == 0) continue;
            if (std::abs(di) + std::abs(dj) + std::abs(dk) + std::abs(dl) >
                params.step) {
              continue;
            }
            const SystemState cand{here.state.big_cores + di,
                                   here.state.little_cores + dj,
                                   here.state.big_freq + dk,
                                   here.state.little_freq + dl};
            if (!space.valid(cand)) continue;
            if (filter && !filter(cand)) continue;
            const Scored scored = score(cand);
            // Tabu unless it aspires (beats the global best).
            if (is_tabu(cand) && !better(scored, best)) continue;
            if (!found || better(scored, best_move)) {
              best_move = scored;
              found = true;
            }
          }
        }
      }
    }
    if (!found) break;  // Entire neighbourhood tabu: stop the trajectory.
    here = best_move;   // Move even if worse than the current head.
    push_tabu(here.state);
    if (better(here, best)) best = here;
  }

  result.state = best.state;
  result.est_perf = best.perf;
  result.est_power = best.power;
  result.est_pp = best.pp;
  result.moved = !(best.state == current);
  return result;
}

}  // namespace hars
