#include "core/tabu_search.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/alloc_guard.hpp"
#include "util/hot_path.hpp"

namespace hars {

namespace {

struct Scored {
  SystemState state;
  double perf = 0.0;
  double power = 0.0;
  double pp = -1.0;
  bool satisfies = false;
};

/// Algorithm-2-compatible "is a better than b" ordering: target
/// satisfaction first, then normalized-perf/power, then raw perf.
HARS_HOT bool better(const Scored& a, const Scored& b) {
  if (a.satisfies != b.satisfies) return a.satisfies;
  if (a.satisfies) return a.pp > b.pp;
  return a.perf > b.perf;
}

/// The trajectory loop, shared by the memoized and reference paths so the
/// two cannot diverge. `score(s)` produces the Algorithm 2 scores for one
/// state (and counts it); `tabu` is any container with FIFO push capped
/// at the tenure via `push_tabu`.
template <typename ScoreFn, typename TabuList, typename PushFn>
HARS_HOT SearchResult tabu_trajectory(const SystemState& current,
                             const TabuParams& params, const StateSpace& space,
                             const CandidateFilter& filter, ScoreFn&& score,
                             TabuList& tabu, PushFn&& push_tabu,
                             SearchResult& result) {
  auto is_tabu = [&](const SystemState& s) {
    return std::find(tabu.begin(), tabu.end(), s) != tabu.end();
  };

  Scored here = score(current);
  Scored best = here;
  push_tabu(current);

  for (int iter = 0; iter < params.iterations; ++iter) {
    // Enumerate the +/-step neighbourhood of the trajectory head.
    Scored best_move;
    bool found = false;
    for (int di = -params.step; di <= params.step; ++di) {
      for (int dj = -params.step; dj <= params.step; ++dj) {
        for (int dk = -params.step; dk <= params.step; ++dk) {
          for (int dl = -params.step; dl <= params.step; ++dl) {
            if (di == 0 && dj == 0 && dk == 0 && dl == 0) continue;
            if (std::abs(di) + std::abs(dj) + std::abs(dk) + std::abs(dl) >
                params.step) {
              continue;
            }
            const SystemState cand{here.state.big_cores + di,
                                   here.state.little_cores + dj,
                                   here.state.big_freq + dk,
                                   here.state.little_freq + dl};
            if (!space.valid(cand)) continue;
            if (filter && !filter(cand)) continue;
            const Scored scored = score(cand);
            // Tabu unless it aspires (beats the global best).
            if (is_tabu(cand) && !better(scored, best)) continue;
            if (!found || better(scored, best_move)) {
              best_move = scored;
              found = true;
            }
          }
        }
      }
    }
    if (!found) break;  // Entire neighbourhood tabu: stop the trajectory.
    here = best_move;   // Move even if worse than the current head.
    push_tabu(here.state);
    if (better(here, best)) best = here;
  }

  result.state = best.state;
  result.est_perf = best.perf;
  result.est_power = best.power;
  result.est_pp = best.pp;
  result.moved = !(best.state == current);
  return result;
}

}  // namespace

SearchResult tabu_get_next_sys_state_reference(
    double hb_rate, const SystemState& current, const PerfTarget& target,
    const TabuParams& params, const StateSpace& space,
    const PerfEstimator& perf_est, const PowerEstimator& power_est,
    int threads, const CandidateFilter& filter) {
  SearchResult result;

  auto score = [&](const SystemState& s) {
    Scored scored;
    scored.state = s;
    scored.perf = perf_est.estimate_rate(s, current, hb_rate, threads);
    scored.power = power_est.estimate(s, threads, perf_est);
    scored.pp = scored.power > 0.0
                    ? normalized_perf(scored.perf, target) / scored.power
                    : 0.0;
    scored.satisfies = scored.perf >= target.min;
    ++result.candidates;
    return scored;
  };

  std::deque<SystemState> tabu;
  auto push_tabu = [&](const SystemState& s) {
    tabu.push_back(s);
    while (static_cast<int>(tabu.size()) > params.tenure) tabu.pop_front();
  };

  return tabu_trajectory(current, params, space, filter, score, tabu,
                         push_tabu, result);
}

HARS_HOT SearchResult tabu_get_next_sys_state(
    double hb_rate, const SystemState& current, const PerfTarget& target,
    const TabuParams& params, const StateSpace& space,
    const PerfEstimator& perf_est, const PowerEstimator& power_est, int threads,
    const CandidateFilter& filter, SearchScratch* scratch) {
  if (scratch == nullptr) {
    return tabu_get_next_sys_state_reference(hb_rate, current, target, params,
                                             space, perf_est, power_est,
                                             threads, filter);
  }
  SearchResult result;

  // Memoized scoring, mirroring PerfEstimator::estimate_rate's guards
  // exactly (see get_next_sys_state). `candidates` still counts every
  // logical evaluation so the overhead model — and the SearchResult —
  // stay bit-identical to the reference path.
  const double ut_cur = scratch->unit_time(current, threads, perf_est);
  const bool cur_ok = std::isfinite(ut_cur) && ut_cur > 0.0;
  auto score = [&](const SystemState& s) {
    Scored scored;
    scored.state = s;
    const double ut = scratch->unit_time(s, threads, perf_est);
    scored.perf = (std::isfinite(ut) && ut > 0.0 && cur_ok)
                      ? hb_rate * ut_cur / ut
                      : 0.0;
    scored.power = scratch->power(s, threads, perf_est, power_est);
    scored.pp = scored.power > 0.0
                    ? normalized_perf(scored.perf, target) / scored.power
                    : 0.0;
    scored.satisfies = scored.perf >= target.min;
    ++result.candidates;
    return scored;
  };

  // Bounded FIFO over the scratch's reusable ring: erase-at-front on a
  // <= tenure-sized vector is a few moves, with capacity retained across
  // searches so pushes never allocate in steady state.
  std::vector<SystemState>& tabu = scratch->tabu_ring();
  tabu.clear();
  // Pre-size the ring before arming the guard: after the first search at
  // this tenure the capacity is retained and the reserve is a no-op, so
  // the trajectory's pushes below can never allocate in steady state.
  tabu.reserve(static_cast<std::size_t>(params.tenure) + 1);  // hars-lint: allow(no-alloc): capacity retained across searches
  AllocGuard guard("tabu_get_next_sys_state(scratch)");
  auto push_tabu = [&](const SystemState& s) {
    tabu.push_back(s);  // hars-lint: allow(no-alloc): bounded ring, reserved above
    while (static_cast<int>(tabu.size()) > params.tenure) {
      tabu.erase(tabu.begin());
    }
  };

  const SearchResult out = tabu_trajectory(current, params, space, filter,
                                           score, tabu, push_tabu, result);
  // Ring occupancy after the trajectory: how much tabu memory the walk
  // actually used versus the configured tenure.
  obs::hist_observe(obs::catalog().tabu_ring_occupancy,
                    static_cast<double>(tabu.size()));
  obs::counter_add(obs::catalog().search_calls);
  if (out.moved) obs::counter_add(obs::catalog().search_moves);
  return out;
}

}  // namespace hars
