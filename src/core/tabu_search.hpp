// Tabu search over the system-state space (thesis §3.1.4, option 4).
//
// HARS's one-shot neighbourhood sweep (Algorithm 2) can settle in a local
// optimum — the thesis proposes Tabu search (Glover & Laguna) as the
// escape hatch. This implementation runs a short trajectory of best-
// neighbour moves from the current state, where recently visited states
// are tabu (revisiting them is forbidden even if they look best), and an
// aspiration rule admits a tabu state that beats the best seen so far.
// The best target-satisfying state encountered anywhere on the trajectory
// wins; estimation cost is reported like Algorithm 2's candidate count so
// the overhead model covers it.
#pragma once

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/search.hpp"
#include "core/system_state.hpp"
#include "heartbeats/heartbeat.hpp"

namespace hars {

struct TabuParams {
  int iterations = 12;    ///< Trajectory length.
  int tenure = 8;         ///< States kept tabu.
  int step = 1;           ///< Neighbourhood radius per move (Manhattan).
};

/// With a non-null `scratch`, per-state estimates are memoized for the
/// scratch's epoch (revisited trajectory states cost one lookup) and the
/// tabu list reuses the scratch's ring storage, making the search
/// allocation-free in steady state; without one it falls back to the
/// reference implementation. Both return bit-identical SearchResults
/// (including `candidates`, which counts logical evaluations, not cache
/// misses).
SearchResult tabu_get_next_sys_state(double hb_rate, const SystemState& current,
                                     const PerfTarget& target,
                                     const TabuParams& params,
                                     const StateSpace& space,
                                     const PerfEstimator& perf_est,
                                     const PowerEstimator& power_est,
                                     int threads,
                                     const CandidateFilter& filter = {},
                                     SearchScratch* scratch = nullptr);

/// The retained pre-memoization implementation (std::deque tabu list,
/// every estimate recomputed); the golden reference for the property
/// tests and bench/tick_bench's `--reference` baseline.
SearchResult tabu_get_next_sys_state_reference(
    double hb_rate, const SystemState& current, const PerfTarget& target,
    const TabuParams& params, const StateSpace& space,
    const PerfEstimator& perf_est, const PowerEstimator& power_est,
    int threads, const CandidateFilter& filter = {});

}  // namespace hars
