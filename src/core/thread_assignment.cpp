#include "core/thread_assignment.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/hot_path.hpp"

namespace hars {

namespace {

// Table 3.1 with the "fast" cluster first: cf cores at relative speed
// r >= 1, cs cores at speed 1. Returns {threads_fast, threads_slow,
// used_fast, used_slow}.
struct FastSlow {
  int tf = 0, ts = 0, cf_used = 0, cs_used = 0;
};

HARS_HOT FastSlow assign_fast_slow(int t, int cf, int cs, double r) {
  assert(r >= 1.0);
  FastSlow out;
  if (t <= 0) return out;
  if (cf == 0) {  // Degenerate: only the slow cluster exists.
    out.ts = t;
    out.cs_used = std::min(t, cs);
    return out;
  }
  const double rcf = r * cf;
  if (t <= cf) {
    // Row 1: one fast core per thread.
    out.tf = t;
    out.cf_used = t;
  } else if (static_cast<double>(t) <= rcf || cs == 0) {
    // Row 2: time-sharing the fast cluster still beats the slow one.
    out.tf = t;
    out.cf_used = cf;
  } else if (static_cast<double>(t) <= rcf + cs) {
    // Row 3: fill the fast cluster to its break-even thread count, put the
    // remainder on dedicated slow cores.
    out.tf = static_cast<int>(std::floor(rcf));
    out.ts = t - out.tf;
    out.cf_used = cf;
    out.cs_used = out.ts;
  } else {
    // Row 4: both clusters saturated; split in proportion to capacity.
    out.tf = static_cast<int>(std::ceil(rcf / (rcf + cs) * t));
    out.ts = t - out.tf;
    out.cf_used = cf;
    out.cs_used = cs;
  }
  return out;
}

}  // namespace

HARS_HOT ThreadAssignment assign_threads(int t, int cb, int cl, double r) {
  assert(r > 0.0);
  ThreadAssignment a;
  if (t <= 0) return a;
  assert(cb + cl >= 1);
  if (r >= 1.0) {
    const FastSlow fs = assign_fast_slow(t, cb, cl, r);
    a.tb = fs.tf;
    a.tl = fs.ts;
    a.cb_used = fs.cf_used;
    a.cl_used = fs.cs_used;
  } else {
    // Little is the faster cluster; mirror the table with r' = 1/r.
    const FastSlow fs = assign_fast_slow(t, cl, cb, 1.0 / r);
    a.tl = fs.tf;
    a.tb = fs.ts;
    a.cl_used = fs.cf_used;
    a.cb_used = fs.cs_used;
  }
  return a;
}

HARS_HOT double unit_completion_time(const ThreadAssignment& a, int t,
                                     double total_work, int cb, int cl,
                                     double sb, double sl) {
  if (t <= 0) return 0.0;
  const double w = total_work / t;  // Equal per-thread share.
  double tb = 0.0;
  double tl = 0.0;
  if (a.tb > 0) {
    if (cb <= 0 || sb <= 0.0) return std::numeric_limits<double>::infinity();
    tb = a.tb <= cb ? w / sb : a.tb * w / (cb * sb);
  }
  if (a.tl > 0) {
    if (cl <= 0 || sl <= 0.0) return std::numeric_limits<double>::infinity();
    tl = a.tl <= cl ? w / sl : a.tl * w / (cl * sl);
  }
  return std::max(tb, tl);
}

ClusterUtilization estimate_utilization(const ThreadAssignment& a, int t,
                                        int cb, int cl, double sb, double sl) {
  ClusterUtilization u;
  const double tf = unit_completion_time(a, t, /*total_work=*/t, cb, cl, sb, sl);
  if (tf <= 0.0 || !std::isfinite(tf)) return u;
  const double w = 1.0;  // total_work = t => per-thread share 1.
  if (a.tb > 0 && cb > 0 && sb > 0.0) {
    const double tb = a.tb <= cb ? w / sb : a.tb * w / (cb * sb);
    u.big = tb / tf;
  }
  if (a.tl > 0 && cl > 0 && sl > 0.0) {
    const double tl = a.tl <= cl ? w / sl : a.tl * w / (cl * sl);
    u.little = tl / tf;
  }
  return u;
}

}  // namespace hars
