// Table 3.1: thread assignment to the big and little clusters.
//
// Given T threads of equal work, C_B big cores at per-core speed S_B and
// C_L little cores at speed S_L (ratio r = S_B / S_L), choose how many
// threads run on each cluster (T_B + T_L = T) so that the unit completion
// time t_f = max(t_B, t_L) is minimized. The paper derives the table for
// r >= 1; the r < 1 case is the mirror image (swap the roles of the
// clusters), which we implement symmetrically.
#pragma once

namespace hars {

struct ThreadAssignment {
  int tb = 0;       ///< Threads placed on the big cluster (T_B).
  int tl = 0;       ///< Threads placed on the little cluster (T_L).
  int cb_used = 0;  ///< Big cores actually used (C_B,U <= C_B).
  int cl_used = 0;  ///< Little cores actually used (C_L,U <= C_L).
};

/// Applies Table 3.1. `r` must be positive. Handles the degenerate
/// C_B = 0 / C_L = 0 cases by packing all threads onto the available
/// cluster. Requires T >= 0 and C_B + C_L >= 1 when T > 0.
ThreadAssignment assign_threads(int t, int cb, int cl, double r);

/// Completion time of one unit of total work W distributed equally over T
/// threads under the given assignment and per-core speeds:
///   t_B = (T_B/T * W) / (min-needed big capacity), etc.; t_f = max(t_B, t_L).
/// Returns +inf when the assignment cannot run (no cores for its threads).
double unit_completion_time(const ThreadAssignment& a, int t, double total_work,
                            int cb, int cl, double sb, double sl);

/// Cluster utilizations of the *used* cores implied by the assignment:
/// U_B,U = t_B / t_f and U_L,U = t_L / t_f (paper §3.1.2).
struct ClusterUtilization {
  double big = 0.0;
  double little = 0.0;
};
ClusterUtilization estimate_utilization(const ThreadAssignment& a, int t,
                                        int cb, int cl, double sb, double sl);

}  // namespace hars
