#include "core/thread_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "backend/sim_backend.hpp"

namespace hars {

const char* thread_scheduler_name(ThreadSchedulerKind kind) {
  switch (kind) {
    case ThreadSchedulerKind::kChunk: return "chunk";
    case ThreadSchedulerKind::kInterleaved: return "interleaved";
    case ThreadSchedulerKind::kHierarchical: return "hierarchical";
  }
  return "?";
}

std::optional<ThreadSchedulerKind> parse_thread_scheduler(
    std::string_view name) {
  for (ThreadSchedulerKind kind :
       {ThreadSchedulerKind::kChunk, ThreadSchedulerKind::kInterleaved,
        ThreadSchedulerKind::kHierarchical}) {
    if (name == thread_scheduler_name(kind)) return kind;
  }
  return std::nullopt;
}

std::vector<bool> plan_hierarchical_placement(const std::vector<int>& group_sizes,
                                              int tb, [[maybe_unused]] int tl) {
  int t = 0;
  for (int g : group_sizes) t += g;
  assert(tb >= 0 && tl >= 0 && tb + tl == t);
  if (t == 0) return {};

  // Largest-remainder apportionment of the tb big slots over groups.
  const std::size_t n_groups = group_sizes.size();
  std::vector<int> big_quota(n_groups, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const double ideal =
        static_cast<double>(tb) * group_sizes[g] / static_cast<double>(t);
    big_quota[g] = static_cast<int>(ideal);
    big_quota[g] = std::min(big_quota[g], group_sizes[g]);
    assigned += big_quota[g];
    remainders.emplace_back(ideal - big_quota[g], g);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [rem, g] : remainders) {
    if (assigned >= tb) break;
    if (big_quota[g] < group_sizes[g]) {
      ++big_quota[g];
      ++assigned;
    }
  }
  // Rounding plus per-group caps can still leave slots; hand them to any
  // group with capacity.
  for (std::size_t g = 0; g < n_groups && assigned < tb; ++g) {
    while (big_quota[g] < group_sizes[g] && assigned < tb) {
      ++big_quota[g];
      ++assigned;
    }
  }

  std::vector<bool> plan;
  plan.reserve(static_cast<std::size_t>(t));
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (int i = 0; i < group_sizes[g]; ++i) {
      plan.push_back(i < big_quota[g]);
    }
  }
  return plan;
}

std::vector<bool> plan_thread_placement(ThreadSchedulerKind kind, int t, int tb,
                                        int tl) {
  assert(t >= 0 && tb >= 0 && tl >= 0 && tb + tl == t);
  std::vector<bool> big(static_cast<std::size_t>(t), false);
  if (kind == ThreadSchedulerKind::kChunk) {
    // First T_L consecutive threads -> little, remainder -> big.
    for (int i = tl; i < t; ++i) big[static_cast<std::size_t>(i)] = true;
    return big;
  }
  // Interleaving: alternate starting with little (Figure 3.2(b)), spending
  // each side's quota; once one side is exhausted the rest flow over.
  int remaining_b = tb;
  int remaining_l = tl;
  bool next_is_little = true;
  for (int i = 0; i < t; ++i) {
    bool to_big = false;
    if (remaining_l == 0) {
      to_big = true;
    } else if (remaining_b == 0) {
      to_big = false;
    } else {
      to_big = !next_is_little;
      next_is_little = !next_is_little;
    }
    if (to_big) {
      --remaining_b;
    } else {
      --remaining_l;
    }
    big[static_cast<std::size_t>(i)] = to_big;
  }
  return big;
}

void apply_thread_schedule(Backend& backend, AppId app,
                           ThreadSchedulerKind kind,
                           const ThreadAssignment& assignment, CpuMask big_set,
                           CpuMask little_set) {
  const int t = backend.thread_count(app);
  assert(assignment.tb + assignment.tl == t);
  const std::vector<bool> plan =
      kind == ThreadSchedulerKind::kHierarchical
          ? plan_hierarchical_placement(backend.thread_group_sizes(app),
                                        assignment.tb, assignment.tl)
          : plan_thread_placement(kind, t, assignment.tb, assignment.tl);
  const CpuMask fallback = big_set | little_set;
  for (int i = 0; i < t; ++i) {
    CpuMask mask = plan[static_cast<std::size_t>(i)] ? big_set : little_set;
    if (mask.empty()) mask = fallback;
    backend.place(app, i, mask);
  }
}

void apply_thread_schedule(SimEngine& engine, AppId app, ThreadSchedulerKind kind,
                           const ThreadAssignment& assignment, CpuMask big_set,
                           CpuMask little_set) {
  SimBackend backend(engine);
  apply_thread_schedule(backend, app, kind, assignment, big_set, little_set);
}

}  // namespace hars
