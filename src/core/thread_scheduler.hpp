// The two HARS schedulers (thesis §3.1.3, Figure 3.2). Both receive the
// (T_B, T_L) split from the performance estimator and pin threads with the
// sched_setaffinity equivalent:
//
//  * chunk-based — the first T_L consecutive thread IDs go to the little
//    cores, the rest to the big cores; exploits constructive cache sharing
//    among consecutive threads but can map whole pipeline stages onto one
//    cluster (the ferret bottleneck);
//  * interleaving — thread IDs alternate little/big until one side's quota
//    is exhausted; balances each pipeline stage across clusters at the
//    cost of cache sharing.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/thread_assignment.hpp"
#include "hmp/cpu_mask.hpp"
#include "hmp/sim_engine.hpp"

namespace hars {

enum class ThreadSchedulerKind { kChunk, kInterleaved, kHierarchical };

const char* thread_scheduler_name(ThreadSchedulerKind kind);

/// Inverse of thread_scheduler_name; nullopt for unknown names.
std::optional<ThreadSchedulerKind> parse_thread_scheduler(
    std::string_view name);

/// Per-thread cluster plan: entry i is true when thread i goes to the big
/// cluster. `tb + tl` must equal `t`.
std::vector<bool> plan_thread_placement(ThreadSchedulerKind kind, int t, int tb,
                                        int tl);

/// Hierarchy-aware plan (thesis §3.1.4, option 2): distributes the T_B big
/// slots across thread groups (pipeline stages) proportionally to group
/// size via largest remainder, so every stage gets its fair share of fast
/// cores regardless of how thread IDs happen to be ordered. Within a
/// group, big slots go to the group's first threads.
std::vector<bool> plan_hierarchical_placement(const std::vector<int>& group_sizes,
                                              int tb, int tl);

/// Applies the plan to an application's threads: big-bound threads get
/// `big_set`, little-bound threads get `little_set` as affinity (through
/// Backend::place — sched_setaffinity on live backends). A thread whose
/// side has no cores falls back to the union (defensive; Table 3.1 never
/// produces that). The hierarchical kind queries the application's
/// thread_group_sizes().
void apply_thread_schedule(Backend& backend, AppId app,
                           ThreadSchedulerKind kind,
                           const ThreadAssignment& assignment, CpuMask big_set,
                           CpuMask little_set);

/// Legacy shim over the Backend form: wraps the engine in a transient
/// SimBackend. Placement is identical (SimBackend::place forwards to
/// SimEngine::set_thread_affinity).
void apply_thread_schedule(SimEngine& engine, AppId app, ThreadSchedulerKind kind,
                           const ThreadAssignment& assignment, CpuMask big_set,
                           CpuMask little_set);

}  // namespace hars
