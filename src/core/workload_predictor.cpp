#include "core/workload_predictor.hpp"

namespace hars {

const char* predictor_kind_name(PredictorKind kind) {
  return kind == PredictorKind::kKalman ? "kalman" : "last-value";
}

std::optional<PredictorKind> parse_predictor_kind(std::string_view name) {
  for (PredictorKind kind : {PredictorKind::kLastValue, PredictorKind::kKalman}) {
    if (name == predictor_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

KalmanRatePredictor::KalmanRatePredictor(double q, double r) : filter_(q, r) {}

double KalmanRatePredictor::observe(double measured_rate) {
  return filter_.update(measured_rate);
}

void KalmanRatePredictor::on_state_change(double factor) {
  if (factor > 0.0) filter_.rescale(factor);
}

void KalmanRatePredictor::reset() { filter_.reset(); }

std::unique_ptr<RatePredictor> make_predictor(PredictorKind kind) {
  if (kind == PredictorKind::kKalman) {
    return std::make_unique<KalmanRatePredictor>();
  }
  return std::make_unique<LastValuePredictor>();
}

}  // namespace hars
