// Workload / rate prediction for the runtime manager.
//
// HARS's baseline model (§3.1.4): the work observed over the last
// heartbeat period repeats — i.e. the windowed rate measured now is what
// the current state will keep delivering. The Kalman predictor upgrades
// this with the filter of Hoffmann et al. [6]: it smooths measurement
// noise (avoiding adaptation on spurious window jitter) and, when the
// manager changes the system state, rescales its estimate by the
// estimator-predicted speedup instead of re-learning from scratch.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "util/kalman.hpp"

namespace hars {

enum class PredictorKind { kLastValue, kKalman };

const char* predictor_kind_name(PredictorKind kind);

/// Inverse of predictor_kind_name; nullopt for unknown names.
std::optional<PredictorKind> parse_predictor_kind(std::string_view name);

class RatePredictor {
 public:
  virtual ~RatePredictor() = default;

  /// Feeds one windowed-rate observation; returns the rate the manager
  /// should reason about.
  virtual double observe(double measured_rate) = 0;

  /// Notifies the predictor that the system state changed and the rate is
  /// expected to scale by `factor` (t_f(old) / t_f(new)).
  virtual void on_state_change(double factor) = 0;

  virtual void reset() = 0;
};

/// The paper's default: believe the last measurement.
class LastValuePredictor final : public RatePredictor {
 public:
  double observe(double measured_rate) override { return measured_rate; }
  void on_state_change(double) override {}
  void reset() override {}
};

class KalmanRatePredictor final : public RatePredictor {
 public:
  /// `q` and `r` are relative (scaled by the square of the running
  /// estimate) so one tuning works across heartbeat-rate magnitudes.
  explicit KalmanRatePredictor(double q = 2e-3, double r = 2e-2);

  double observe(double measured_rate) override;
  void on_state_change(double factor) override;
  void reset() override;

  const ScalarKalman& filter() const { return filter_; }

 private:
  ScalarKalman filter_;
};

std::unique_ptr<RatePredictor> make_predictor(PredictorKind kind);

}  // namespace hars
