#include "exp/calibration.hpp"

#include <memory>
#include <string>
#include <tuple>

#include "exp/metrics.hpp"
#include "hmp/platform_registry.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"
#include "util/once_cache.hpp"

namespace hars {

Calibration calibrate_benchmark(const PlatformSpec& platform,
                                ParsecBenchmark bench, int threads,
                                std::uint64_t seed, TimeUs duration) {
  using Key = std::tuple<std::string, int, int, std::uint64_t, TimeUs>;
  static OnceCache<Key, Calibration> cache{"calibration"};
  const Key key{platform.signature(), static_cast<int>(bench), threads, seed,
                duration};
  return cache.get_or_compute(key, [&] {
    SimEngine engine(platform, std::make_unique<GtsScheduler>());
    std::unique_ptr<App> app = make_parsec_app(bench, threads, seed);
    const AppId id = engine.add_app(app.get());
    (void)id;

    // Skip warm-up: run until the first heartbeat (blackscholes parses its
    // input serially before emitting any), capped defensively.
    const TimeUs warmup_cap = 60 * kUsPerSec;
    while (app->heartbeats().count() == 0 && engine.now() < warmup_cap) {
      engine.run_for(100 * kUsPerMs);
    }
    const TimeUs t0 = engine.now();
    engine.run_for(duration);

    Calibration cal;
    cal.max_rate_hps =
        average_rate(app->heartbeats().history(), t0, engine.now());
    cal.default_target = cal.target_for_fraction(0.50);
    cal.high_target = cal.target_for_fraction(0.75);
    return cal;
  });
}

Calibration calibrate_benchmark(ParsecBenchmark bench, int threads,
                                std::uint64_t seed, TimeUs duration) {
  return calibrate_benchmark(PlatformRegistry::instance().get("exynos5422"),
                             bench, threads, seed, duration);
}

}  // namespace hars
