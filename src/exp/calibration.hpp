// Per-benchmark calibration: measures the maximum achievable performance
// (the baseline configuration: all cores online at top frequency under the
// GTS scheduler) from which the paper derives its targets — default 50%+/-5%
// and high 75%+/-5% of the maximum (§5.1.1).
#pragma once

#include "apps/parsec.hpp"
#include "heartbeats/heartbeat.hpp"
#include "hmp/platform_spec.hpp"
#include "util/common.hpp"

namespace hars {

struct Calibration {
  double max_rate_hps = 0.0;
  PerfTarget default_target;  ///< 50% +/- 5%.
  PerfTarget high_target;     ///< 75% +/- 5%.

  PerfTarget target_for_fraction(double fraction, double tol = 0.05) const {
    return PerfTarget::around(fraction * max_rate_hps, tol);
  }
};

/// Runs the baseline measurement on `platform`. Results are memoized per
/// (platform signature, bench, seed, threads, duration) because every
/// figure re-uses the same calibration.
Calibration calibrate_benchmark(const PlatformSpec& platform,
                                ParsecBenchmark bench, int threads = 8,
                                std::uint64_t seed = 1,
                                TimeUs duration = 40 * kUsPerSec);

/// Legacy form: the exynos5422 preset platform.
Calibration calibrate_benchmark(ParsecBenchmark bench, int threads = 8,
                                std::uint64_t seed = 1,
                                TimeUs duration = 40 * kUsPerSec);

}  // namespace hars
