#include "exp/experiment.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "backend/sim_backend.hpp"
#include "exp/calibration.hpp"
#include "hmp/platform_registry.hpp"
#include "hmp/sim_engine.hpp"
#include "scenario/scenario_registry.hpp"
#include "scenario/scenario_runtime.hpp"
#include "scenario/trace_sink.hpp"
#include "util/once_cache.hpp"

namespace hars {

std::vector<std::vector<ParsecBenchmark>> multiapp_cases() {
  using B = ParsecBenchmark;
  return {{B::kBodytrack, B::kSwaptions},    // Case 1
          {B::kBlackscholes, B::kSwaptions}, // Case 2
          {B::kFluidanimate, B::kBlackscholes},  // Case 3
          {B::kBodytrack, B::kFluidanimate},     // Case 4
          {B::kFluidanimate, B::kSwaptions},     // Case 5
          {B::kBodytrack, B::kBlackscholes}};    // Case 6
}

namespace {

std::unique_ptr<Scheduler> make_default_scheduler() {
  return std::make_unique<GtsScheduler>();
}

/// The engine + OS scheduler for a measured run, honouring the spec's
/// reference_impl switch (bit-identical simulations either way).
SimEngine make_engine(const ExperimentSpec& spec) {
  std::unique_ptr<Scheduler> scheduler;
  if (spec.make_scheduler) {
    scheduler = spec.make_scheduler();
  } else if (spec.reference_impl) {
    GtsConfig gts;
    gts.reference = true;
    scheduler = std::make_unique<GtsScheduler>(gts);
  } else {
    scheduler = make_default_scheduler();
  }
  SimConfig config;
  config.reference_tick = spec.reference_impl;
  if (spec.audit) config.audit = *spec.audit;
  return SimEngine(spec.platform, std::move(scheduler), config);
}

/// Maximum achievable performance of each app *while running concurrently
/// with its partners* under the baseline (all cores, max frequency, the
/// configured OS scheduler). Multi-app derived targets are fractions of
/// this: with N CPU-bound apps sharing the machine, a fraction of the
/// standalone rate would already be met (or missed) by construction,
/// which is not what §5.2.1 evaluates. Memoized per
/// app-set/machine/duration/threads/seed because every figure re-uses the
/// same probes — but only for PARSEC app sets, whose labels identify
/// their factories (custom factories can share a label).
std::vector<double> probe_baseline_rates(const ExperimentSpec& spec) {
  SimEngine engine(spec.platform, spec.make_scheduler
                                      ? spec.make_scheduler()
                                      : make_default_scheduler());
  std::vector<std::unique_ptr<App>> apps;
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    apps.push_back(spec.apps[i].factory(spec.threads, spec.seed + i));
    engine.add_app(apps.back().get());
  }
  engine.run_for(spec.duration);
  std::vector<double> rates;
  for (const auto& app : apps) {
    const auto& history = app->heartbeats().history();
    const TimeUs t0 = history.empty() ? 0 : history.front().time;
    rates.push_back(average_rate(history, t0, engine.now()));
  }
  return rates;
}

std::vector<double> concurrent_baseline_rates(const ExperimentSpec& spec) {
  using Key = std::tuple<std::string, long long, int, std::uint64_t>;
  static OnceCache<Key, std::vector<double>> cache{"baseline_probe"};
  bool cacheable = !spec.make_scheduler;  // Custom schedulers aren't keyed.
  std::string case_key;
  for (const AppSpec& app : spec.apps) {
    cacheable &= app.bench.has_value();
    case_key += app.label;
    case_key += '+';
  }
  if (!cacheable) return probe_baseline_rates(spec);
  case_key += spec.platform.signature();
  const Key key{case_key, static_cast<long long>(spec.duration), spec.threads,
                spec.seed};
  return cache.get_or_compute(key, [&] { return probe_baseline_rates(spec); });
}

/// Per-app targets: explicit ones win. Derived targets follow the
/// protocol: steady-state measurement of a single PARSEC app derives
/// from its standalone calibration (§5.1.1); a cold-start measurement —
/// any multi-app run, or run_multi's legacy single-app form — derives
/// from the concurrent baseline probe (§5.2.1).
std::vector<PerfTarget> resolve_targets(const ExperimentSpec& spec) {
  std::vector<PerfTarget> targets(spec.apps.size());
  bool all_explicit = true;
  for (const AppSpec& app : spec.apps) all_explicit &= app.target.has_value();

  if (all_explicit) {
    for (std::size_t i = 0; i < spec.apps.size(); ++i) {
      targets[i] = *spec.apps[i].target;
    }
    return targets;
  }
  if (spec.protocol == RunProtocol::kSteadyState && spec.apps.size() == 1 &&
      spec.apps.front().bench) {
    const Calibration cal = calibrate_benchmark(
        spec.platform, *spec.apps.front().bench, spec.threads, spec.seed);
    targets[0] = cal.target_for_fraction(spec.target_fraction);
    return targets;
  }
  const std::vector<double> rates = concurrent_baseline_rates(spec);
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    if (spec.apps[i].target.has_value()) {
      targets[i] = *spec.apps[i].target;
      continue;
    }
    if (!(rates[i] > 0.0)) {
      // A zero probe rate would derive a {0, 0} target whose zero average
      // silently zeroes every normalized-perf score; fail loudly instead.
      throw std::runtime_error(
          "app \"" + spec.apps[i].label +
          "\" emitted no heartbeats in the baseline probe; cannot derive a "
          "positive performance target (set one explicitly or lengthen the "
          "duration)");
    }
    targets[i] = PerfTarget::around(spec.target_fraction * rates[i]);
  }
  return targets;
}

RunMetrics collect_metrics(const SimEngine& engine, const App& app,
                           const PerfTarget& target, TimeUs t0, TimeUs t1,
                           double avg_power_w) {
  RunMetrics m;
  const auto& history = app.heartbeats().history();
  m.norm_perf = time_weighted_norm_perf(history, target, t0, t1);
  m.avg_rate_hps = average_rate(history, t0, t1);
  m.avg_power_w = avg_power_w;
  m.perf_per_watt = m.avg_power_w > 0.0 ? m.norm_perf / m.avg_power_w : 0.0;
  m.manager_cpu_pct = engine.manager_cpu_utilization_pct();
  m.heartbeats = app.heartbeats().count();
  m.in_window_fraction = time_in_window_fraction(history, target, t0, t1);
  m.energy_j = engine.sensor().total_energy_j();
  const double beats_in_span = m.avg_rate_hps * us_to_sec(t1 - t0);
  m.energy_per_beat_j = beats_in_span > 0.0 ? m.energy_j / beats_in_span : 0.0;
  return m;
}

/// The scenario pipeline: apps arrive and depart per the scenario's event
/// list, dispatched at tick boundaries by a ScenarioRuntime installed as
/// the engine's tick hook. Cold-start protocol throughout; each app's
/// measurement span runs from its first heartbeat to its departure (or
/// run end).
ExperimentResult run_scenario(const ExperimentSpec& spec) {
  const Scenario& scenario = *spec.scenario;
  SimEngine engine = make_engine(spec);
  ScenarioRuntime runtime(scenario, engine, spec,
                          resolve_scenario_targets(spec, scenario));
  runtime.spawn_initial();

  const std::vector<AppId> initial_ids = runtime.initial_ids();
  const std::vector<PerfTarget> initial_targets = runtime.initial_targets();
  const VariantEntry* entry = VariantRegistry::instance().find(spec.variant);
  SimBackend backend(engine);
  const VariantSetup setup{backend, spec, initial_ids, initial_targets};
  std::unique_ptr<VariantInstance> instance = entry->factory(setup);
  if (instance == nullptr) {
    throw std::runtime_error("variant \"" + spec.variant +
                             "\" factory returned no instance");
  }
  if (instance->active()) engine.set_manager(instance.get());
  runtime.attach_variant(instance.get());

  if (spec.capture != nullptr) {
    TraceMeta meta;
    meta.scenario_dsl = scenario.to_dsl();
    meta.platform = spec.platform.name;
    meta.variant = spec.variant;
    meta.seed = spec.seed;
    meta.threads = spec.threads;
    meta.duration_us = spec.duration;
    meta.fraction = spec.target_fraction;
    meta.sample_ticks = spec.capture->sample_every_ticks();
    spec.capture->write_meta(meta);
    runtime.attach_capture(spec.capture);
  }
  engine.set_tick_hook([&runtime](TimeUs t) { runtime.on_tick(t); });

  if (spec.sample_period > 0 && spec.sampler) {
    std::vector<App*> app_ptrs;
    std::vector<AppId> ids;
    const TimeUs end = engine.now() + spec.duration;
    while (engine.now() < end) {
      engine.run_for(std::min(spec.sample_period, end - engine.now()));
      app_ptrs.clear();
      ids.clear();
      for (const ScenarioAppSlot& slot : runtime.slots()) {
        if (!slot.alive) continue;
        app_ptrs.push_back(slot.app.get());
        ids.push_back(slot.id);
      }
      spec.sampler(RunView{engine, app_ptrs, ids, *instance, engine.now()});
    }
  } else {
    engine.run_for(spec.duration);
  }
  runtime.finish(engine.now());

  ExperimentResult result;
  const TimeUs t1 = engine.now();
  result.avg_power_w = engine.sensor().average_power_w(t1);
  for (const ScenarioAppSlot& slot : runtime.slots()) {
    if (!slot.spawned) continue;  // Arrival beyond the run's duration.
    AppRunResult app_result;
    app_result.label = slot.label;
    app_result.target = slot.target;
    app_result.spawn_time_us = slot.spawn_time;
    app_result.depart_time_us = slot.depart_time;
    const TimeUs span1 = slot.depart_time >= 0 ? slot.depart_time : t1;
    const auto& history = slot.app->heartbeats().history();
    const TimeUs span0 = history.empty() ? slot.spawn_time : history.front().time;
    app_result.metrics = collect_metrics(engine, *slot.app, slot.target,
                                         std::min(span0, span1), span1,
                                         result.avg_power_w);
    app_result.trace = instance->trace(slot.id);
    result.apps.push_back(std::move(app_result));
  }
  result.static_state = instance->static_state();
  result.final_state = instance->current_state();
  result.adaptations = instance->adaptations();

  if (spec.capture != nullptr) {
    for (const AppRunResult& app : result.apps) {
      Record r;
      r.set("kind", "metrics");
      r.set("app", app.label);
      r.set("spawn_us", static_cast<std::int64_t>(app.spawn_time_us));
      r.set("depart_us", static_cast<std::int64_t>(app.depart_time_us));
      r.set("heartbeats", app.metrics.heartbeats);
      r.set("norm_perf", app.metrics.norm_perf);
      r.set("avg_rate_hps", app.metrics.avg_rate_hps);
      r.set("avg_power_w", app.metrics.avg_power_w);
      r.set("perf_per_watt", app.metrics.perf_per_watt);
      r.set("in_window_fraction", app.metrics.in_window_fraction);
      r.set("energy_j", app.metrics.energy_j);
      r.set("manager_cpu_pct", app.metrics.manager_cpu_pct);
      r.set("adaptations", result.adaptations);
      spec.capture->write(r);
    }
  }
  return result;
}

/// The live pipeline: resolve the named backend through the registry,
/// start one synthetic spin workload per configured app, derive any
/// missing targets from a boot-state probe slice, instantiate the variant
/// against the Backend interface and let the backend's wall-clock tick
/// loop drive it. Measurement is cold-start-style over the post-probe
/// span; energy comes from the backend's meters (or its modeled
/// fallback).
ExperimentResult run_live(const ExperimentSpec& spec) {
  BackendOptions options = spec.backend_options;
  if (!options.platform) options.platform = spec.platform;
  std::unique_ptr<Backend> backend =
      BackendRegistry::instance().get_live(spec.backend, options);

  std::vector<AppId> ids;
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    WorkloadDesc desc;
    desc.label = spec.apps[i].label;
    desc.threads = spec.threads;
    ids.push_back(backend->add_workload(desc));
  }

  // Targets: explicit ones win; the rest derive from a probe slice at the
  // boot state (the live analogue of the concurrent baseline probe).
  std::vector<PerfTarget> targets(spec.apps.size());
  bool need_probe = false;
  for (const AppSpec& app : spec.apps) need_probe |= !app.target.has_value();
  if (need_probe) {
    backend->run_for(std::max<TimeUs>(spec.duration / 5, kUsPerSec));
  }
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    if (spec.apps[i].target) {
      targets[i] = *spec.apps[i].target;
    } else {
      const double rate = backend->heartbeats(ids[i]).rate();
      if (!(rate > 0.0)) {
        throw std::runtime_error(
            "workload \"" + spec.apps[i].label +
            "\" emitted no heartbeats in the live probe on backend \"" +
            spec.backend +
            "\"; cannot derive a target (set one explicitly or lengthen "
            "the duration)");
      }
      targets[i] = PerfTarget::around(spec.target_fraction * rate);
    }
    backend->heartbeats(ids[i]).set_target(targets[i]);
  }

  const VariantEntry* entry = VariantRegistry::instance().find(spec.variant);
  const VariantSetup setup{*backend, spec, ids, targets};
  std::unique_ptr<VariantInstance> instance = entry->factory(setup);
  if (instance == nullptr) {
    throw std::runtime_error("variant \"" + spec.variant +
                             "\" factory returned no instance");
  }
  if (instance->active()) backend->attach_manager(instance.get());

  const TimeUs t0 = backend->now();
  const double energy0 = backend->energy_j();
  backend->run_for(spec.duration);
  const TimeUs t1 = backend->now();
  const double energy_j = backend->energy_j() - energy0;
  const double span_s = us_to_sec(t1 - t0);

  ExperimentResult result;
  result.avg_power_w = span_s > 0.0 ? energy_j / span_s : 0.0;
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    AppRunResult app_result;
    app_result.label = spec.apps[i].label;
    app_result.target = targets[i];
    const auto& history = backend->heartbeats(ids[i]).history();
    RunMetrics& m = app_result.metrics;
    m.norm_perf = time_weighted_norm_perf(history, targets[i], t0, t1);
    m.avg_rate_hps = average_rate(history, t0, t1);
    m.avg_power_w = result.avg_power_w;
    m.perf_per_watt = m.avg_power_w > 0.0 ? m.norm_perf / m.avg_power_w : 0.0;
    m.manager_cpu_pct = backend->manager_cpu_utilization_pct();
    m.heartbeats = backend->heartbeats(ids[i]).count();
    m.in_window_fraction =
        time_in_window_fraction(history, targets[i], t0, t1);
    m.energy_j = energy_j;
    const double beats_in_span = m.avg_rate_hps * span_s;
    m.energy_per_beat_j =
        beats_in_span > 0.0 ? m.energy_j / beats_in_span : 0.0;
    app_result.trace = instance->trace(ids[i]);
    result.apps.push_back(std::move(app_result));
  }
  result.static_state = instance->static_state();
  result.final_state = instance->current_state();
  result.adaptations = instance->adaptations();
  return result;
}

}  // namespace

ExperimentResult Experiment::run() const {
  const ExperimentSpec& spec = spec_;
  // Scoped around the whole pipeline (including scenario runs): arms the
  // registry when enabled, writes the configured sinks on exit. With
  // telemetry disabled this is construction of an inert object.
  obs::TelemetrySession telemetry(spec.telemetry);
  if (spec.backend != "sim") return run_live(spec);
  if (spec.scenario) return run_scenario(spec);
  const std::vector<PerfTarget> targets = resolve_targets(spec);

  SimEngine engine = make_engine(spec);
  std::vector<std::unique_ptr<App>> apps;
  std::vector<App*> app_ptrs;
  std::vector<AppId> ids;
  for (std::size_t i = 0; i < spec.apps.size(); ++i) {
    apps.push_back(spec.apps[i].factory(spec.threads, spec.seed + i));
    app_ptrs.push_back(apps.back().get());
    ids.push_back(engine.add_app(apps.back().get()));
    apps.back()->heartbeats().set_target(targets[i]);
  }

  // The registry entry exists: build() validated the variant name.
  const VariantEntry* entry = VariantRegistry::instance().find(spec.variant);
  SimBackend backend(engine);
  const VariantSetup setup{backend, spec, ids, targets};
  std::unique_ptr<VariantInstance> instance = entry->factory(setup);
  if (instance == nullptr) {
    throw std::runtime_error("variant \"" + spec.variant +
                             "\" factory returned no instance");
  }
  if (instance->active()) engine.set_manager(instance.get());

  TimeUs t0 = 0;
  if (spec.protocol == RunProtocol::kSteadyState) {
    const TimeUs warmup_cap = engine.now() + 60 * kUsPerSec;
    const auto all_beating = [&] {
      return std::all_of(app_ptrs.begin(), app_ptrs.end(), [](const App* a) {
        return a->heartbeats().count() > 0;
      });
    };
    while (!all_beating() && engine.now() < warmup_cap) {
      engine.run_for(100 * kUsPerMs);
    }
    t0 = engine.now();
    engine.sensor().reset();
  }

  if (spec.sample_period > 0 && spec.sampler) {
    const TimeUs end = engine.now() + spec.duration;
    while (engine.now() < end) {
      engine.run_for(std::min(spec.sample_period, end - engine.now()));
      spec.sampler(RunView{engine, app_ptrs, ids, *instance, engine.now()});
    }
  } else {
    engine.run_for(spec.duration);
  }

  ExperimentResult result;
  const TimeUs t1 = engine.now();
  result.avg_power_w = engine.sensor().average_power_w(
      spec.protocol == RunProtocol::kSteadyState ? t1 - t0 : t1);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    AppRunResult app_result;
    app_result.label = spec.apps[i].label;
    app_result.target = targets[i];
    TimeUs span0 = t0;
    if (spec.protocol == RunProtocol::kColdStart) {
      const auto& history = apps[i]->heartbeats().history();
      span0 = history.empty() ? 0 : history.front().time;
    }
    app_result.metrics = collect_metrics(engine, *apps[i], targets[i], span0,
                                         t1, result.avg_power_w);
    app_result.trace = instance->trace(ids[i]);
    result.apps.push_back(std::move(app_result));
  }
  result.static_state = instance->static_state();
  result.final_state = instance->current_state();
  result.adaptations = instance->adaptations();
  return result;
}

ExperimentBuilder::ExperimentBuilder() = default;

ExperimentBuilder& ExperimentBuilder::platform(PlatformSpec spec) {
  try {
    spec.validate();
  } catch (const PlatformConfigError& error) {
    throw ExperimentConfigError(error.what());
  }
  spec_.platform = std::move(spec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::platform(std::string_view name) {
  try {
    spec_.platform = PlatformRegistry::instance().get(name);
  } catch (const PlatformConfigError& error) {
    throw ExperimentConfigError(error.what());
  }
  return *this;
}

ExperimentBuilder& ExperimentBuilder::platform(Machine machine) {
  // Validate at configure time so an unsupportable machine (e.g. a little
  // cluster out-peaking a big one, which the perf-ranked pools cannot
  // represent) fails here with the documented exception type instead of
  // surfacing a PlatformConfigError from inside run().
  return platform(PlatformSpec::from_machine(machine));
}

ExperimentBuilder& ExperimentBuilder::os_scheduler(GtsConfig config) {
  spec_.make_scheduler = [config] {
    return std::make_unique<GtsScheduler>(config);
  };
  return *this;
}

ExperimentBuilder& ExperimentBuilder::os_scheduler(
    std::function<std::unique_ptr<Scheduler>()> factory) {
  spec_.make_scheduler = std::move(factory);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::app(ParsecBenchmark bench) {
  AppSpec spec;
  spec.bench = bench;
  spec.factory = [bench](int threads, std::uint64_t seed) {
    return make_parsec_app(bench, threads, seed);
  };
  spec.label = parsec_code(bench);
  spec_.apps.push_back(std::move(spec));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::app(std::string label,
                                          AppFactory factory) {
  AppSpec spec;
  spec.factory = std::move(factory);
  spec.label = std::move(label);
  spec_.apps.push_back(std::move(spec));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::apps(
    const std::vector<ParsecBenchmark>& benches) {
  for (ParsecBenchmark bench : benches) app(bench);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scenario(Scenario scenario) {
  try {
    scenario.validate();
  } catch (const ScenarioError& error) {
    throw ExperimentConfigError(error.what());
  }
  spec_.scenario = std::move(scenario);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scenario(std::string_view name) {
  try {
    spec_.scenario = ScenarioRegistry::instance().get(name);
  } catch (const ScenarioError& error) {
    throw ExperimentConfigError(error.what());
  }
  return *this;
}

ExperimentBuilder& ExperimentBuilder::capture(TraceSink& sink) {
  spec_.capture = &sink;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::target(PerfTarget target) {
  if (spec_.apps.empty()) {
    throw ExperimentConfigError("target() requires an app to be added first");
  }
  spec_.apps.back().target = target;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::target_fraction(double fraction) {
  spec_.target_fraction = fraction;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::backend(std::string_view name) {
  if (!BackendRegistry::instance().known(name)) {
    std::string message = "unknown backend \"" + std::string(name) +
                          "\"; known:";
    for (const std::string& known : BackendRegistry::instance().names()) {
      message += ' ';
      message += known;
    }
    throw ExperimentConfigError(message);
  }
  spec_.backend = std::string(name);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::backend(std::string_view name,
                                              BackendOptions options) {
  backend(name);
  spec_.backend_options = std::move(options);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::variant(std::string name) {
  spec_.variant = std::move(name);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::scheduler(ThreadSchedulerKind kind) {
  spec_.tuning.scheduler = kind;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::predictor(PredictorKind kind) {
  spec_.tuning.predictor = kind;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::policy(SearchPolicy policy) {
  spec_.tuning.policy = policy;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::search_window(int window) {
  spec_.tuning.search_window = window;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::search_distance(int d) {
  spec_.tuning.search_distance = d;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::adapt_period(int heartbeats) {
  spec_.tuning.adapt_period = heartbeats;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::assumed_ratio(double r0) {
  spec_.tuning.r0 = r0;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::learn_ratio(bool on) {
  spec_.tuning.learn_ratio = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::tabu(TabuParams params) {
  spec_.tuning.tabu = params;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::reference_impl(bool on) {
  spec_.reference_impl = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::audit(bool on) {
  spec_.audit = on;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::telemetry(obs::TelemetryConfig config) {
  config.enabled = true;
  spec_.telemetry = std::move(config);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::protocol(RunProtocol protocol) {
  spec_.protocol = protocol;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::duration(TimeUs duration) {
  spec_.duration = duration;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::duration_sec(double seconds) {
  spec_.duration = sec_to_us(seconds);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::threads(int threads) {
  spec_.threads = threads;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::sample_every(TimeUs period,
                                                   SampleFn fn) {
  spec_.sample_period = period;
  spec_.sampler = std::move(fn);
  return *this;
}

Experiment ExperimentBuilder::build() const {
  ExperimentSpec spec = spec_;

  if (spec.scenario) {
    if (!spec.apps.empty()) {
      throw ExperimentConfigError(
          "scenario() and app() are exclusive: scenario spawns define the "
          "apps");
    }
    if (spec.protocol == RunProtocol::kSteadyState) {
      throw ExperimentConfigError(
          "scenario runs use the cold-start protocol (a steady-state warmup "
          "has no meaning when apps arrive over time)");
    }
    spec.protocol = RunProtocol::kColdStart;
    // Synthesize the t = 0 app set so variant factories (and the traits
    // validation below) see the initial apps; later arrivals go through
    // VariantInstance::on_app_spawn.
    for (const ScenarioEvent* spawn : spec.scenario->spawns()) {
      if (spawn->time > 0) continue;
      AppSpec app;
      app.bench = spawn->spawn.bench;
      const ParsecBenchmark bench = *spawn->spawn.bench;
      app.factory = [bench](int threads, std::uint64_t seed) {
        return make_parsec_app(bench, threads, seed);
      };
      app.label = spawn->app;
      if (spawn->spawn.target) app.target = *spawn->spawn.target;
      spec.apps.push_back(std::move(app));
    }
  } else if (spec.capture != nullptr) {
    throw ExperimentConfigError("capture() requires scenario()");
  }

  if (spec.apps.empty()) {
    throw ExperimentConfigError("experiment needs at least one app");
  }
  if (!BackendRegistry::instance().known(spec.backend)) {
    std::string message = "unknown backend \"" + spec.backend + "\"; known:";
    for (const std::string& known : BackendRegistry::instance().names()) {
      message += ' ';
      message += known;
    }
    throw ExperimentConfigError(message);
  }
  if (spec.backend != "sim") {
    // The live pipeline drives real (or mock) hardware: no simulated
    // clock to slice for samplers, no engine for scenarios to mutate, and
    // reference_impl selects simulator hot paths that do not exist here.
    if (spec.scenario) {
      throw ExperimentConfigError(
          "scenario() requires the sim backend (scenario events drive the "
          "simulated engine)");
    }
    if (spec.sampler) {
      throw ExperimentConfigError(
          "sample_every() requires the sim backend (RunView exposes the "
          "simulated engine)");
    }
    if (spec.capture != nullptr) {
      throw ExperimentConfigError("capture() requires the sim backend");
    }
    if (spec.reference_impl) {
      throw ExperimentConfigError(
          "reference_impl() requires the sim backend (it selects simulator "
          "hot-path implementations)");
    }
  }
  const VariantEntry* entry = VariantRegistry::instance().find(spec.variant);
  if (entry == nullptr) {
    std::string message = "unknown variant \"" + spec.variant + "\"; known:";
    for (const std::string& name : VariantRegistry::instance().names()) {
      message += ' ';
      message += name;
    }
    throw ExperimentConfigError(message);
  }
  const VariantTraits& traits = entry->traits;
  const int app_count = static_cast<int>(spec.apps.size());
  if (app_count < traits.min_apps || app_count > traits.max_apps) {
    throw ExperimentConfigError(
        "variant \"" + spec.variant + "\" supports " +
        std::to_string(traits.min_apps) + ".." +
        std::to_string(traits.max_apps) + " apps, got " +
        std::to_string(app_count));
  }
  if (traits.requires_parsec) {
    for (const AppSpec& app : spec.apps) {
      if (!app.bench) {
        throw ExperimentConfigError("variant \"" + spec.variant +
                                    "\" requires PARSEC benchmark apps");
      }
    }
  }
  const unsigned rejected = tuning_fields(spec.tuning) & ~traits.accepted_tuning;
  if (rejected != 0) {
    std::string message =
        "variant \"" + spec.variant + "\" does not accept tuning:";
    for (unsigned bit = 1; bit <= kTuneTabu; bit <<= 1) {
      if (rejected & bit) {
        message += ' ';
        message += tuning_field_name(static_cast<TuningField>(bit));
      }
    }
    throw ExperimentConfigError(message);
  }
  if (spec.tuning.tabu) {
    const SearchPolicy effective = spec.tuning.policy
                                       ? *spec.tuning.policy
                                       : traits.base_policy.value_or(
                                             SearchPolicy::kExhaustive);
    if (effective != SearchPolicy::kTabu) {
      throw ExperimentConfigError(
          "tabu parameters require policy(SearchPolicy::kTabu)");
    }
  }
  if (!(spec.target_fraction > 0.0) || spec.target_fraction > 1.0) {
    throw ExperimentConfigError("target_fraction must be in (0, 1]");
  }
  for (const AppSpec& app : spec.apps) {
    if (app.target && !app.target->is_valid_window()) {
      throw ExperimentConfigError(
          "app \"" + app.label +
          "\" needs a positive target window (0 <= min <= max, max > 0); "
          "a non-positive target average would zero every normalized-perf "
          "score");
    }
  }
  if (spec.duration <= 0) {
    throw ExperimentConfigError("duration must be positive");
  }
  if (spec.threads < 1) {
    throw ExperimentConfigError("threads must be >= 1");
  }
  if (spec.tuning.search_window && *spec.tuning.search_window < 0) {
    throw ExperimentConfigError("search_window must be >= 0");
  }
  if (spec.tuning.search_distance && *spec.tuning.search_distance < 0) {
    throw ExperimentConfigError("search_distance must be >= 0");
  }
  if (spec.tuning.adapt_period && *spec.tuning.adapt_period < 1) {
    throw ExperimentConfigError("adapt_period must be >= 1");
  }
  if (spec.tuning.r0 && !(*spec.tuning.r0 > 0.0)) {
    throw ExperimentConfigError("assumed_ratio must be > 0");
  }
  if ((spec.sample_period > 0) != static_cast<bool>(spec.sampler)) {
    throw ExperimentConfigError(
        "sample_every needs both a positive period and a callback");
  }

  if (spec.protocol == RunProtocol::kAuto) {
    spec.protocol = spec.apps.size() == 1 ? RunProtocol::kSteadyState
                                          : RunProtocol::kColdStart;
  }
  return Experiment(std::move(spec));
}

}  // namespace hars
