// The unified experiment API.
//
// One typed, composable surface replaces the old run_single / run_multi
// fork: an ExperimentBuilder configures platform -> apps -> targets ->
// runtime variant -> measurement protocol, validates the combination at
// build() time, and Experiment::run() executes the common pipeline —
// resolve targets, assemble the engine, instantiate the variant through
// the VariantRegistry, warm up per protocol, simulate, and collect
// per-app metrics and behaviour traces.
//
//   ExperimentResult r = ExperimentBuilder()
//                            .app(ParsecBenchmark::kSwaptions)
//                            .target_fraction(0.5)
//                            .variant("HARS-EI")
//                            .duration(120 * kUsPerSec)
//                            .build()
//                            .run();
//
// Any number of apps is supported (the multi-application §5.2 protocol is
// the same pipeline with per-app targets derived from a concurrent
// baseline probe); custom App factories and custom machines slot in next
// to the PARSEC presets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/parsec.hpp"
#include "backend/backend_registry.hpp"
#include "exp/metrics.hpp"
#include "exp/variant_registry.hpp"
#include "hmp/machine.hpp"
#include "hmp/platform_spec.hpp"
#include "obs/telemetry.hpp"
#include "scenario/scenario.hpp"
#include "sched/gts.hpp"
#include "sched/scheduler.hpp"

namespace hars {

class Experiment;
class TraceSink;  // scenario/trace_sink.hpp

/// Builds one application instance for the run. `threads` and `seed` come
/// from the experiment spec (seed is already offset per app slot).
using AppFactory =
    std::function<std::unique_ptr<App>(int threads, std::uint64_t seed)>;

struct AppSpec {
  std::optional<ParsecBenchmark> bench;  ///< Set for PARSEC presets.
  AppFactory factory;
  std::optional<PerfTarget> target;  ///< Explicit target; else derived.
  std::string label;
};

/// Measurement protocol.
///  * kSteadyState — warm up until every app heartbeats (cap 60 s), reset
///    the power sensor, then measure for `duration` (the §5.1 protocol);
///  * kColdStart — all apps start with the measurement at t = 0 and each
///    app's span begins at its first heartbeat (the §5.2 protocol).
///  * kAuto — steady-state for one app, cold-start for several.
enum class RunProtocol { kAuto, kSteadyState, kColdStart };

struct RunView;
using SampleFn = std::function<void(const RunView&)>;

/// The validated configuration Experiment runs. Built by ExperimentBuilder;
/// read by the variant factories through VariantSetup::spec.
struct ExperimentSpec {
  /// The platform the experiment runs on (topology + power parameters +
  /// calibration defaults). Default: the paper's Exynos 5422 preset.
  PlatformSpec platform = PlatformSpec::from_machine(Machine::exynos5422());
  std::function<std::unique_ptr<Scheduler>()> make_scheduler;
  std::vector<AppSpec> apps;
  std::string variant = "HARS-E";
  /// Execution backend by registered name. "sim" (the default) runs the
  /// discrete-time simulator; any other name resolves through
  /// BackendRegistry::get_live() and the run drives the live platform
  /// with synthetic spin workloads shaped like the configured apps.
  std::string backend = "sim";
  /// Construction options for live (non-sim) backends. The platform field
  /// defaults to `platform` at run time (power-parameter grafting).
  BackendOptions backend_options;
  double target_fraction = 0.50;  ///< Of max achievable, for derived targets.
  TimeUs duration = 120 * kUsPerSec;
  int threads = 8;
  std::uint64_t seed = 1;
  RunProtocol protocol = RunProtocol::kAuto;
  VariantTuning tuning;
  TimeUs sample_period = 0;
  SampleFn sampler;
  /// Dynamic scenario (apps from the scenario, not from `apps` — build()
  /// synthesizes `apps` from the t = 0 spawns so variant factories and
  /// validation see the initial set).
  std::optional<Scenario> scenario;
  /// Trace capture for scenario runs (non-owning; see TraceSink).
  TraceSink* capture = nullptr;
  /// Runs the retained reference implementations of the per-tick hot
  /// paths (engine tick, GTS placement, search) instead of the optimized
  /// scratch/memoized ones. Results are bit-identical either way; the
  /// flag exists so bench/tick_bench can measure the optimized paths
  /// against their baseline on the same build.
  bool reference_impl = false;
  /// Per-run override of the engine's debug invariant audits
  /// (SimConfig::audit). Unset = the build default (HARS_AUDIT); fuzzing
  /// sets it so oracle runs audit every tick even in release builds.
  /// Does not affect results: audits only observe.
  std::optional<bool> audit;
  /// Telemetry for this run (disabled by default — the hot path then
  /// costs one thread-local null check). When enabled, run() scopes a
  /// TelemetrySession around the pipeline and writes the configured
  /// sinks on completion. Does not affect results: records are
  /// bit-identical with telemetry on or off.
  obs::TelemetryConfig telemetry;
};

struct AppRunResult {
  std::string label;
  RunMetrics metrics;
  std::vector<TracePoint> trace;  ///< Empty for trace-less variants.
  PerfTarget target;              ///< Target at run end.
  // --- Scenario runs only (0 / -1 otherwise) ---
  TimeUs spawn_time_us = 0;    ///< When the app arrived.
  TimeUs depart_time_us = -1;  ///< When it was killed; -1 = ran to end.
};

struct ExperimentResult {
  std::vector<AppRunResult> apps;  ///< In registration order.
  double avg_power_w = 0.0;        ///< System power over the measured span.
  std::optional<SystemState> static_state;  ///< Chosen state, "SO" only.
  std::optional<SystemState> final_state;   ///< Manager state at run end.
  std::int64_t adaptations = 0;

  const AppRunResult& app(std::size_t i = 0) const { return apps.at(i); }
};

/// Live view passed to the sampling callback between simulation slices.
struct RunView {
  SimEngine& engine;
  const std::vector<App*>& apps;      ///< In registration order.
  const std::vector<AppId>& app_ids;  ///< Engine ids, same order as apps.
  VariantInstance& variant;
  TimeUs now = 0;
};

/// Invalid builder configurations are reported through this exception.
class ExperimentConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class Experiment {
 public:
  /// Executes the pipeline. Deterministic: identical specs produce
  /// identical results.
  ExperimentResult run() const;

  const ExperimentSpec& spec() const { return spec_; }

 private:
  friend class ExperimentBuilder;
  explicit Experiment(ExperimentSpec spec) : spec_(std::move(spec)) {}

  ExperimentSpec spec_;
};

class ExperimentBuilder {
 public:
  ExperimentBuilder();

  // --- Platform ---
  /// A declarative platform description (validated here).
  ExperimentBuilder& platform(PlatformSpec spec);
  /// A registered platform by name ("exynos5422", "sd855", ...); throws
  /// ExperimentConfigError listing the known names when unknown.
  ExperimentBuilder& platform(std::string_view name);
  /// Legacy: a bare Machine, wrapped with the per-core-type default power
  /// parameters.
  ExperimentBuilder& platform(Machine machine);
  /// OS-scheduler substrate (default: stock GTS).
  ExperimentBuilder& os_scheduler(GtsConfig config);
  ExperimentBuilder& os_scheduler(
      std::function<std::unique_ptr<Scheduler>()> factory);

  // --- Applications ---
  ExperimentBuilder& app(ParsecBenchmark bench);
  ExperimentBuilder& app(std::string label, AppFactory factory);
  ExperimentBuilder& apps(const std::vector<ParsecBenchmark>& benches);

  // --- Dynamic scenario (the time axis; exclusive with app()) ---
  /// Apps, targets and mid-run events come from the scenario; the run
  /// uses the cold-start protocol and every per-app span ends at the
  /// app's departure. Validated at build(): see ExperimentSpec::scenario.
  ExperimentBuilder& scenario(Scenario scenario);
  /// A registered scenario preset by name ("steady", "staggered", ...);
  /// throws ExperimentConfigError listing the known names when unknown.
  ExperimentBuilder& scenario(std::string_view name);
  /// Captures the scenario run's trace into `sink` (kept alive by the
  /// caller); requires scenario(). See TraceSink for the replay contract.
  ExperimentBuilder& capture(TraceSink& sink);

  // --- Targets ---
  /// Explicit target for the most recently added app.
  ExperimentBuilder& target(PerfTarget target);
  /// Derived-target fraction of max achievable performance (default 0.5).
  ExperimentBuilder& target_fraction(double fraction);

  // --- Execution backend ---
  /// Selects the execution backend by registered name ("sim",
  /// "mock_linux", "linux", ...). Malformed names are rejected here —
  /// before build() — with the known-name list in the error.
  ExperimentBuilder& backend(std::string_view name);
  /// Same, with live-backend construction options (tick period, dry-run,
  /// sysfs fixture / root, platform power grafting).
  ExperimentBuilder& backend(std::string_view name, BackendOptions options);

  // --- Runtime variant ---
  ExperimentBuilder& variant(std::string name);
  ExperimentBuilder& scheduler(ThreadSchedulerKind kind);
  ExperimentBuilder& predictor(PredictorKind kind);
  ExperimentBuilder& policy(SearchPolicy policy);
  ExperimentBuilder& search_window(int window);
  ExperimentBuilder& search_distance(int d);
  ExperimentBuilder& adapt_period(int heartbeats);
  ExperimentBuilder& assumed_ratio(double r0);
  ExperimentBuilder& learn_ratio(bool on = true);
  ExperimentBuilder& tabu(TabuParams params);

  // --- Implementation selection ---
  /// Selects the retained reference hot-path implementations (see
  /// ExperimentSpec::reference_impl). Metric-identical; benchmark use.
  ExperimentBuilder& reference_impl(bool on = true);

  /// Forces the engine's debug invariant audits on (or off) for this run
  /// regardless of the build default. See ExperimentSpec::audit.
  ExperimentBuilder& audit(bool on = true);

  // --- Telemetry ---
  /// Enables run-scoped telemetry with the given sink configuration
  /// (config.enabled is forced on). See ExperimentSpec::telemetry.
  ExperimentBuilder& telemetry(obs::TelemetryConfig config);

  // --- Protocol ---
  ExperimentBuilder& protocol(RunProtocol protocol);
  ExperimentBuilder& duration(TimeUs duration);
  ExperimentBuilder& duration_sec(double seconds);
  ExperimentBuilder& threads(int threads);
  ExperimentBuilder& seed(std::uint64_t seed);
  /// Invokes `fn` every `period` of simulated time during the run.
  ExperimentBuilder& sample_every(TimeUs period, SampleFn fn);

  /// Validates the configuration; throws ExperimentConfigError on an
  /// inconsistent one (unknown variant, tuning the variant ignores, tabu
  /// parameters without the tabu policy, app-count mismatch, ...).
  Experiment build() const;

 private:
  ExperimentSpec spec_;
};

/// The six two-application cases of Figure 5.4, in order.
std::vector<std::vector<ParsecBenchmark>> multiapp_cases();

}  // namespace hars
