#include "exp/fuzz_harness.hpp"

#include <sstream>

#include "sweep/result_sink.hpp"

namespace hars {

namespace {

ExperimentResult run_once(const ReproCase& repro, bool reference) {
  ExperimentBuilder b;
  b.platform(std::string_view(repro.platform))
      .scenario(repro.scenario)
      .variant(repro.variant)
      .target_fraction(repro.fraction)
      .duration_sec(repro.duration_sec)
      .seed(repro.seed)
      .reference_impl(reference)
      .audit(true);
  if (repro.threads > 0) b.threads(repro.threads);
  return b.build().run();
}

}  // namespace

std::string result_fingerprint(const ExperimentResult& result) {
  Record rec;
  rec.set("avg_power_w", result.avg_power_w);
  rec.set("adaptations", result.adaptations);
  for (std::size_t i = 0; i < result.apps.size(); ++i) {
    const AppRunResult& app = result.apps[i];
    const std::string p = "app" + std::to_string(i) + "_";
    rec.set(p + "label", app.label);
    rec.set(p + "spawn_us", app.spawn_time_us);
    rec.set(p + "depart_us", app.depart_time_us);
    rec.set(p + "target_min", app.target.min);
    rec.set(p + "target_max", app.target.max);
    rec.set(p + "heartbeats", app.metrics.heartbeats);
    rec.set(p + "norm_perf", app.metrics.norm_perf);
    rec.set(p + "avg_rate_hps", app.metrics.avg_rate_hps);
    rec.set(p + "perf_per_watt", app.metrics.perf_per_watt);
    rec.set(p + "in_window", app.metrics.in_window_fraction);
    rec.set(p + "energy_j", app.metrics.energy_j);
    rec.set(p + "manager_cpu_pct", app.metrics.manager_cpu_pct);
    rec.set(p + "trace_points", static_cast<std::int64_t>(app.trace.size()));
  }
  std::ostringstream out;
  JsonlSink sink(out);
  sink.write(rec);
  return out.str();
}

FuzzCaseResult run_fuzz_case(const ReproCase& repro, bool differential) {
  if (!repro.inject.empty()) {
    // Synthetic oracle: a pure predicate over the scenario (fixtures and
    // harness self-tests), evaluated through ScenarioError like any
    // other recipe problem.
    if (const auto failure = injected_failure(repro.scenario, repro.inject)) {
      return {true, *failure};
    }
    return {false, ""};
  }

  ExperimentResult optimized;
  try {
    optimized = run_once(repro, /*reference=*/false);
  } catch (const std::exception& error) {
    return {true, error.what()};
  }
  if (!differential) return {false, ""};

  ExperimentResult reference;
  try {
    reference = run_once(repro, /*reference=*/true);
  } catch (const std::exception& error) {
    return {true, std::string("reference path: ") + error.what()};
  }
  const std::string opt_print = result_fingerprint(optimized);
  const std::string ref_print = result_fingerprint(reference);
  if (opt_print != ref_print) {
    return {true,
            "differential: optimized and reference records diverge\n  opt: " +
                opt_print + "  ref: " + ref_print};
  }
  return {false, ""};
}

}  // namespace hars
