// Oracle stack for property-based scenario fuzzing.
//
// run_fuzz_case executes one ReproCase against its variant/platform with
// every always-on correctness oracle armed:
//   - debug invariant audits forced on (ExperimentSpec::audit), so every
//     tick runs audit_tick / check_invariants even in release builds;
//   - AllocGuard (compiled in by default) turning hot-path allocations
//     into hard failures;
//   - any thrown exception (AuditError, ScenarioError, config errors,
//     ...) recorded as the failure message;
//   - optionally the differential oracle: the same spec re-run through
//     the retained reference implementations (reference_impl(true)) must
//     produce a bit-identical result fingerprint.
// Repro cases with a non-empty `inject` instead evaluate the synthetic
// injected_failure predicate — the harness self-test and seeded
// known-bug fixtures go through exactly the same code path as real
// failures.
#pragma once

#include <string>

#include "exp/experiment.hpp"
#include "scenario/repro.hpp"

namespace hars {

struct FuzzCaseResult {
  bool failed = false;
  std::string message;  ///< First failing oracle's diagnostic.
};

/// One flat record of everything metric-bearing in a result; two results
/// are treated as identical iff their fingerprints match byte-for-byte
/// (format_number round-trips doubles, so this is bit-identity).
std::string result_fingerprint(const ExperimentResult& result);

/// Runs the oracle stack described above. `differential` adds the
/// reference-path identity check (twice the runtime).
FuzzCaseResult run_fuzz_case(const ReproCase& repro,
                             bool differential = true);

}  // namespace hars
