#include "exp/metrics.hpp"

#include <algorithm>

namespace hars {

namespace {

/// Visits consecutive windowed-rate segments of the history clipped to
/// [t0, t1], invoking fn(rate, weight_us).
template <typename Fn>
void for_each_rate_segment(std::span<const HeartbeatRecord> history, TimeUs t0,
                           TimeUs t1, std::size_t window, Fn&& fn) {
  if (history.empty() || t1 <= t0) return;
  for (std::size_t i = 1; i < history.size(); ++i) {
    const TimeUs seg_start = std::max(history[i - 1].time, t0);
    const TimeUs seg_end = std::min(history[i].time, t1);
    if (seg_end <= seg_start) continue;
    const std::size_t first = i >= window ? i - window : 0;
    const TimeUs span = history[i].time - history[first].time;
    const double rate =
        span > 0 ? static_cast<double>(i - first) / us_to_sec(span) : 0.0;
    fn(rate, seg_end - seg_start);
  }
  // Tail: extend the final windowed rate to t1.
  const TimeUs tail_start = std::max(history.back().time, t0);
  if (t1 > tail_start && history.size() >= 2) {
    const std::size_t i = history.size() - 1;
    const std::size_t first = i >= window ? i - window : 0;
    const TimeUs span = history[i].time - history[first].time;
    const double rate =
        span > 0 ? static_cast<double>(i - first) / us_to_sec(span) : 0.0;
    fn(rate, t1 - tail_start);
  }
  // Head before the first heartbeat counts as zero rate.
  const TimeUs head_end = std::min(history.front().time, t1);
  if (head_end > t0) fn(0.0, head_end - t0);
}

}  // namespace

double time_weighted_norm_perf(std::span<const HeartbeatRecord> history,
                               const PerfTarget& target, TimeUs t0, TimeUs t1,
                               std::size_t window) {
  const double g = target.avg();
  if (g <= 0.0) return 0.0;
  double weighted = 0.0;
  double total_w = 0.0;
  for_each_rate_segment(history, t0, t1, window,
                        [&](double rate, TimeUs weight) {
                          weighted += std::min(g, rate) / g *
                                      static_cast<double>(weight);
                          total_w += static_cast<double>(weight);
                        });
  return total_w > 0.0 ? weighted / total_w : 0.0;
}

double time_in_window_fraction(std::span<const HeartbeatRecord> history,
                               const PerfTarget& target, TimeUs t0, TimeUs t1,
                               std::size_t window) {
  double inside = 0.0;
  double total_w = 0.0;
  for_each_rate_segment(history, t0, t1, window,
                        [&](double rate, TimeUs weight) {
                          if (target.contains(rate)) {
                            inside += static_cast<double>(weight);
                          }
                          total_w += static_cast<double>(weight);
                        });
  return total_w > 0.0 ? inside / total_w : 0.0;
}

double average_rate(std::span<const HeartbeatRecord> history, TimeUs t0,
                    TimeUs t1) {
  if (t1 <= t0) return 0.0;
  std::int64_t beats = 0;
  for (const auto& rec : history) {
    if (rec.time > t0 && rec.time <= t1) ++beats;
  }
  return static_cast<double>(beats) / us_to_sec(t1 - t0);
}

}  // namespace hars
