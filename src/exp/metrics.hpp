// Experiment metrics.
//
// The paper's headline metric is normalized performance per watt, where
// normalized performance is min(g, h) / g (g = target, h = achieved rate;
// overperformance earns no credit, §3.1.3). We compute a time-weighted
// average of the windowed heartbeat rate's normalized performance over the
// measurement span, and divide by the measured average power.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "heartbeats/heartbeat.hpp"
#include "util/common.hpp"

namespace hars {

struct RunMetrics {
  double norm_perf = 0.0;     ///< Time-weighted min(g, rate)/g in [0, 1].
  double avg_rate_hps = 0.0;  ///< Mean heartbeat rate over the span.
  double avg_power_w = 0.0;
  double perf_per_watt = 0.0;  ///< norm_perf / avg_power_w.
  double manager_cpu_pct = 0.0;
  std::int64_t heartbeats = 0;
  double in_window_fraction = 0.0;  ///< Time share with rate inside target.
  double energy_j = 0.0;            ///< Total energy over the span.
  /// Energy per heartbeat (J/beat): a throughput-oriented efficiency view
  /// complementing normalized perf/watt.
  double energy_per_beat_j = 0.0;
};

/// Time-weighted normalized performance of a heartbeat history over
/// [t0, t1], using a sliding `window`-beat rate.
double time_weighted_norm_perf(std::span<const HeartbeatRecord> history,
                               const PerfTarget& target, TimeUs t0, TimeUs t1,
                               std::size_t window = 10);

/// Fraction of [t0, t1] during which the windowed rate is inside the target.
double time_in_window_fraction(std::span<const HeartbeatRecord> history,
                               const PerfTarget& target, TimeUs t0, TimeUs t1,
                               std::size_t window = 10);

/// Mean heartbeat rate over [t0, t1] (beats / span).
double average_rate(std::span<const HeartbeatRecord> history, TimeUs t0,
                    TimeUs t1);

}  // namespace hars
