#include "exp/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hars {

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

ReportTable::ReportTable(std::string title) : title_(std::move(title)) {}

void ReportTable::set_columns(std::vector<std::string> names) {
  columns_ = std::move(names);
}

void ReportTable::add_row(const std::string& label,
                          const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_value(v));
  rows_.push_back(std::move(cells));
}

void ReportTable::add_text_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void ReportTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(columns_);
  for (const auto& row : rows_) grow(row);

  out << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << "  ";
      out << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) out << ' ';
    }
    out << '\n';
  };
  if (!columns_.empty()) {
    print_row(columns_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  out << '\n';
}

}  // namespace hars
