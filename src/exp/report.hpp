// ASCII table reporting for the bench binaries: each figure-regenerating
// bench prints the same rows/series the paper plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hars {

class ReportTable {
 public:
  explicit ReportTable(std::string title);

  void set_columns(std::vector<std::string> names);
  void add_row(const std::string& label, const std::vector<double>& values);
  void add_text_row(const std::vector<std::string>& cells);

  /// Column-aligned print with a title banner.
  void print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats with 3 decimal digits (figures) trimming trailing zeros.
std::string format_value(double v);

}  // namespace hars
