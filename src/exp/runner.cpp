// Deprecated shims: each runner maps its options onto the unified
// Experiment pipeline and repackages the result. Kept bit-identical to
// direct ExperimentBuilder use (asserted by the shim regression test).
#include "exp/runner.hpp"

#include <utility>

namespace hars {

const char* single_version_name(SingleVersion version) {
  switch (version) {
    case SingleVersion::kBaseline: return "Baseline";
    case SingleVersion::kStaticOptimal: return "SO";
    case SingleVersion::kHarsI: return "HARS-I";
    case SingleVersion::kHarsE: return "HARS-E";
    case SingleVersion::kHarsEI: return "HARS-EI";
  }
  return "?";
}

std::vector<SingleVersion> all_single_versions() {
  return {SingleVersion::kBaseline, SingleVersion::kStaticOptimal,
          SingleVersion::kHarsI, SingleVersion::kHarsE, SingleVersion::kHarsEI};
}

std::optional<SingleVersion> parse_single_version(std::string_view name) {
  for (SingleVersion version : all_single_versions()) {
    if (name == single_version_name(version)) return version;
  }
  return std::nullopt;
}

const char* multi_version_name(MultiVersion version) {
  switch (version) {
    case MultiVersion::kBaseline: return "Baseline";
    case MultiVersion::kConsI: return "CONS-I";
    case MultiVersion::kMpHarsI: return "MP-HARS-I";
    case MultiVersion::kMpHarsE: return "MP-HARS-E";
  }
  return "?";
}

std::vector<MultiVersion> all_multi_versions() {
  return {MultiVersion::kBaseline, MultiVersion::kConsI, MultiVersion::kMpHarsI,
          MultiVersion::kMpHarsE};
}

std::optional<MultiVersion> parse_multi_version(std::string_view name) {
  for (MultiVersion version : all_multi_versions()) {
    if (name == multi_version_name(version)) return version;
  }
  return std::nullopt;
}

SingleRunResult run_single(ParsecBenchmark bench, SingleVersion version,
                           const SingleRunOptions& options) {
  ExperimentBuilder builder;
  builder.app(bench)
      .variant(single_version_name(version))
      .target_fraction(options.target_fraction)
      .duration(options.duration)
      .threads(options.threads)
      .seed(options.seed);

  const bool is_hars = version == SingleVersion::kHarsI ||
                       version == SingleVersion::kHarsE ||
                       version == SingleVersion::kHarsEI;
  if (is_hars) {
    // The old runner applied overrides only to the HARS variants and
    // silently ignored them elsewhere; the builder would reject them.
    if (options.override_window >= 0) builder.search_window(options.override_window);
    if (options.override_d >= 0) builder.search_distance(options.override_d);
    if (options.override_adapt_period > 0) {
      builder.adapt_period(options.override_adapt_period);
    }
    if (options.override_r0 > 0.0) builder.assumed_ratio(options.override_r0);
    if (options.override_scheduler == 0) builder.scheduler(ThreadSchedulerKind::kChunk);
    if (options.override_scheduler == 1) {
      builder.scheduler(ThreadSchedulerKind::kInterleaved);
    }
    if (options.override_scheduler == 2) {
      builder.scheduler(ThreadSchedulerKind::kHierarchical);
    }
    if (options.override_predictor == 0) builder.predictor(PredictorKind::kLastValue);
    if (options.override_predictor == 1) builder.predictor(PredictorKind::kKalman);
    if (options.override_policy == 0) builder.policy(SearchPolicy::kIncremental);
    if (options.override_policy == 1) builder.policy(SearchPolicy::kExhaustive);
    if (options.override_policy == 2) builder.policy(SearchPolicy::kTabu);
    if (options.learn_ratio) builder.learn_ratio(true);
  }

  ExperimentResult run = builder.build().run();
  SingleRunResult result;
  result.metrics = run.apps.front().metrics;
  result.trace = std::move(run.apps.front().trace);
  result.static_state = run.static_state.value_or(SystemState{});
  result.target = run.apps.front().target;
  return result;
}

MultiRunResult run_multi(const std::vector<ParsecBenchmark>& benches,
                         MultiVersion version, const MultiRunOptions& options) {
  ExperimentResult run = ExperimentBuilder()
                             .apps(benches)
                             .variant(multi_version_name(version))
                             .target_fraction(options.target_fraction)
                             .duration(options.duration)
                             .threads(options.threads)
                             .seed(options.seed)
                             .protocol(RunProtocol::kColdStart)
                             .build()
                             .run();
  MultiRunResult result;
  result.avg_power_w = run.avg_power_w;
  for (AppRunResult& app : run.apps) {
    result.per_app.push_back(app.metrics);
    result.traces.push_back(std::move(app.trace));
    result.targets.push_back(app.target);
  }
  return result;
}

}  // namespace hars
