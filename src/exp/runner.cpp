#include "exp/runner.hpp"

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "exp/static_optimal.hpp"
#include "hmp/sim_engine.hpp"
#include "mphars/cons_i.hpp"
#include "sched/gts.hpp"

namespace hars {

const char* single_version_name(SingleVersion version) {
  switch (version) {
    case SingleVersion::kBaseline: return "Baseline";
    case SingleVersion::kStaticOptimal: return "SO";
    case SingleVersion::kHarsI: return "HARS-I";
    case SingleVersion::kHarsE: return "HARS-E";
    case SingleVersion::kHarsEI: return "HARS-EI";
  }
  return "?";
}

std::vector<SingleVersion> all_single_versions() {
  return {SingleVersion::kBaseline, SingleVersion::kStaticOptimal,
          SingleVersion::kHarsI, SingleVersion::kHarsE, SingleVersion::kHarsEI};
}

const char* multi_version_name(MultiVersion version) {
  switch (version) {
    case MultiVersion::kBaseline: return "Baseline";
    case MultiVersion::kConsI: return "CONS-I";
    case MultiVersion::kMpHarsI: return "MP-HARS-I";
    case MultiVersion::kMpHarsE: return "MP-HARS-E";
  }
  return "?";
}

std::vector<MultiVersion> all_multi_versions() {
  return {MultiVersion::kBaseline, MultiVersion::kConsI, MultiVersion::kMpHarsI,
          MultiVersion::kMpHarsE};
}

std::vector<std::vector<ParsecBenchmark>> multiapp_cases() {
  using B = ParsecBenchmark;
  return {{B::kBodytrack, B::kSwaptions},    // Case 1
          {B::kBlackscholes, B::kSwaptions}, // Case 2
          {B::kFluidanimate, B::kBlackscholes},  // Case 3
          {B::kBodytrack, B::kFluidanimate},     // Case 4
          {B::kFluidanimate, B::kSwaptions},     // Case 5
          {B::kBodytrack, B::kBlackscholes}};    // Case 6
}

namespace {

RunMetrics finalize_metrics(const SimEngine& engine, const App& app,
                            const PerfTarget& target, TimeUs t0) {
  RunMetrics m;
  const auto& history = app.heartbeats().history();
  const TimeUs t1 = engine.now();
  m.norm_perf = time_weighted_norm_perf(history, target, t0, t1);
  m.avg_rate_hps = average_rate(history, t0, t1);
  m.avg_power_w = engine.sensor().average_power_w(t1 - t0);
  m.perf_per_watt = m.avg_power_w > 0.0 ? m.norm_perf / m.avg_power_w : 0.0;
  m.manager_cpu_pct = engine.manager_cpu_utilization_pct();
  m.heartbeats = app.heartbeats().count();
  m.in_window_fraction = time_in_window_fraction(history, target, t0, t1);
  m.energy_j = engine.sensor().total_energy_j();
  const double beats_in_span = m.avg_rate_hps * us_to_sec(t1 - t0);
  m.energy_per_beat_j = beats_in_span > 0.0 ? m.energy_j / beats_in_span : 0.0;
  return m;
}

void run_past_warmup(SimEngine& engine, const App& app) {
  const TimeUs warmup_cap = engine.now() + 60 * kUsPerSec;
  while (app.heartbeats().count() == 0 && engine.now() < warmup_cap) {
    engine.run_for(100 * kUsPerMs);
  }
}

RuntimeManagerConfig hars_config_with_overrides(HarsVariant variant,
                                                const SingleRunOptions& o) {
  RuntimeManagerConfig config = config_for_variant(variant);
  if (o.override_window >= 0) config.exhaustive_window = o.override_window;
  if (o.override_d >= 0) config.exhaustive_d = o.override_d;
  if (o.override_adapt_period > 0) config.adapt_period = o.override_adapt_period;
  if (o.override_r0 > 0.0) config.r0 = o.override_r0;
  if (o.override_scheduler == 0) config.scheduler = ThreadSchedulerKind::kChunk;
  if (o.override_scheduler == 1) {
    config.scheduler = ThreadSchedulerKind::kInterleaved;
  }
  if (o.override_scheduler == 2) {
    config.scheduler = ThreadSchedulerKind::kHierarchical;
  }
  if (o.override_predictor == 0) config.predictor = PredictorKind::kLastValue;
  if (o.override_predictor == 1) config.predictor = PredictorKind::kKalman;
  if (o.override_policy == 0) config.policy = SearchPolicy::kIncremental;
  if (o.override_policy == 1) config.policy = SearchPolicy::kExhaustive;
  if (o.override_policy == 2) config.policy = SearchPolicy::kTabu;
  config.learn_ratio = o.learn_ratio;
  return config;
}

}  // namespace

SingleRunResult run_single(ParsecBenchmark bench, SingleVersion version,
                           const SingleRunOptions& options) {
  const Calibration cal =
      calibrate_benchmark(bench, options.threads, options.seed);
  const PerfTarget target = cal.target_for_fraction(options.target_fraction);

  SingleRunResult result;
  result.target = target;

  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  std::unique_ptr<App> app = make_parsec_app(bench, options.threads, options.seed);
  const AppId id = engine.add_app(app.get());
  app->heartbeats().set_target(target);

  std::unique_ptr<RuntimeManager> manager;
  switch (version) {
    case SingleVersion::kBaseline:
      break;  // Max cores, max frequency, GTS: nothing to do.
    case SingleVersion::kStaticOptimal: {
      StaticOptimalOptions so;
      so.threads = options.threads;
      so.seed = options.seed;
      const StaticOptimalResult so_result = find_static_optimal(bench, target, so);
      result.static_state = so_result.state;
      Machine& m = engine.machine();
      m.set_freq_level(m.big_cluster(), so_result.state.big_freq);
      m.set_freq_level(m.little_cluster(), so_result.state.little_freq);
      CpuMask allowed;
      const CoreId lf = m.little_mask().first();
      for (int i = 0; i < so_result.state.little_cores; ++i) allowed.set(lf + i);
      const CoreId bf = m.big_mask().first();
      for (int i = 0; i < so_result.state.big_cores; ++i) allowed.set(bf + i);
      engine.set_app_affinity(id, allowed);
      break;
    }
    case SingleVersion::kHarsI:
    case SingleVersion::kHarsE:
    case SingleVersion::kHarsEI: {
      const HarsVariant variant =
          version == SingleVersion::kHarsI   ? HarsVariant::kHarsI
          : version == SingleVersion::kHarsE ? HarsVariant::kHarsE
                                             : HarsVariant::kHarsEI;
      RuntimeManagerConfig config = hars_config_with_overrides(variant, options);
      manager = attach_hars(engine, id, target, variant, &config);
      break;
    }
  }

  run_past_warmup(engine, *app);
  const TimeUs t0 = engine.now();
  engine.sensor().reset();
  engine.run_for(options.duration);

  result.metrics = finalize_metrics(engine, *app, target, t0);
  if (manager) result.trace = manager->trace();
  return result;
}

namespace {

/// Maximum achievable performance of each app *while running concurrently
/// with its case partners* under the baseline (all cores, max frequency,
/// GTS). Multi-app targets are fractions of this: with N CPU-bound apps
/// sharing the machine, a fraction of the standalone rate would already be
/// met (or missed) by construction, which is not what §5.2.1 evaluates.
std::vector<double> concurrent_baseline_rates(
    const std::vector<ParsecBenchmark>& benches, const MultiRunOptions& options) {
  using Key = std::tuple<std::string, long long, int, std::uint64_t>;
  static std::map<Key, std::vector<double>> cache;
  std::string case_key;
  for (ParsecBenchmark b : benches) {
    case_key += parsec_code(b);
    case_key += '+';
  }
  const Key key{case_key, static_cast<long long>(options.duration),
                options.threads, options.seed};
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  std::vector<std::unique_ptr<App>> apps;
  for (std::size_t i = 0; i < benches.size(); ++i) {
    apps.push_back(make_parsec_app(benches[i], options.threads, options.seed + i));
    engine.add_app(apps.back().get());
  }
  engine.run_for(options.duration);
  std::vector<double> rates;
  for (const auto& app : apps) {
    const auto& history = app->heartbeats().history();
    const TimeUs t0 = history.empty() ? 0 : history.front().time;
    rates.push_back(average_rate(history, t0, engine.now()));
  }
  cache.emplace(key, rates);
  return rates;
}

}  // namespace

MultiRunResult run_multi(const std::vector<ParsecBenchmark>& benches,
                         MultiVersion version, const MultiRunOptions& options) {
  MultiRunResult result;

  const std::vector<double> base_rates =
      concurrent_baseline_rates(benches, options);

  SimEngine engine(Machine::exynos5422(), std::make_unique<GtsScheduler>());
  std::vector<std::unique_ptr<App>> apps;
  std::vector<AppId> ids;
  std::vector<PerfTarget> targets;
  for (std::size_t i = 0; i < benches.size(); ++i) {
    targets.push_back(
        PerfTarget::around(options.target_fraction * base_rates[i]));
    apps.push_back(
        make_parsec_app(benches[i], options.threads, options.seed + i));
    ids.push_back(engine.add_app(apps.back().get()));
    apps.back()->heartbeats().set_target(targets.back());
  }
  result.targets = targets;

  std::unique_ptr<ConsIManager> cons;
  std::unique_ptr<MpHarsManager> mphars;
  switch (version) {
    case MultiVersion::kBaseline:
      break;
    case MultiVersion::kConsI: {
      cons = std::make_unique<ConsIManager>(engine);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        cons->register_app(ids[i], ConsIAppConfig{targets[i], 5});
      }
      engine.set_manager(cons.get());
      break;
    }
    case MultiVersion::kMpHarsI:
    case MultiVersion::kMpHarsE: {
      MpHarsConfig config;
      config.policy = version == MultiVersion::kMpHarsI
                          ? SearchPolicy::kIncremental
                          : SearchPolicy::kExhaustive;
      const PowerCoeffTable coeffs =
          profile_power(engine.machine(), engine.power_model());
      mphars = std::make_unique<MpHarsManager>(engine, coeffs, config);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        mphars->register_app(ids[i], MpHarsAppConfig{targets[i], 5,
                                                     ThreadSchedulerKind::kChunk});
      }
      engine.set_manager(mphars.get());
      break;
    }
  }

  // All applications start at the same time (paper §5.2.1); measure the
  // whole run from t = 0.
  engine.run_for(options.duration);
  result.avg_power_w = engine.sensor().average_power_w(engine.now());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const App& app = *apps[i];
    RunMetrics m;
    const auto& history = app.heartbeats().history();
    const TimeUs t0 = history.empty() ? 0 : history.front().time;
    const TimeUs t1 = engine.now();
    m.norm_perf = time_weighted_norm_perf(history, targets[i], t0, t1);
    m.avg_rate_hps = average_rate(history, t0, t1);
    m.avg_power_w = result.avg_power_w;
    m.perf_per_watt = m.avg_power_w > 0.0 ? m.norm_perf / m.avg_power_w : 0.0;
    m.manager_cpu_pct = engine.manager_cpu_utilization_pct();
    m.heartbeats = app.heartbeats().count();
    m.in_window_fraction =
        time_in_window_fraction(history, targets[i], t0, t1);
    m.energy_j = engine.sensor().total_energy_j();
    const double beats_in_span = m.avg_rate_hps * us_to_sec(t1 - t0);
    m.energy_per_beat_j = beats_in_span > 0.0 ? m.energy_j / beats_in_span : 0.0;
    result.per_app.push_back(m);

    if (cons) {
      result.traces.push_back(cons->trace(ids[i]));
    } else if (mphars) {
      result.traces.push_back(mphars->trace(ids[i]));
    } else {
      result.traces.emplace_back();
    }
  }
  return result;
}

}  // namespace hars
