// Experiment runner: builds a platform + benchmark + runtime version,
// executes the measurement protocol and returns metrics/traces. Every
// figure-regenerating bench binary is a thin loop over these calls.
#pragma once

#include <string>
#include <vector>

#include "apps/parsec.hpp"
#include "core/hars.hpp"
#include "exp/calibration.hpp"
#include "exp/metrics.hpp"
#include "mphars/mphars_manager.hpp"

namespace hars {

// --- Single-application evaluation (§5.1) ---

enum class SingleVersion { kBaseline, kStaticOptimal, kHarsI, kHarsE, kHarsEI };

const char* single_version_name(SingleVersion version);
std::vector<SingleVersion> all_single_versions();

struct SingleRunOptions {
  double target_fraction = 0.50;  ///< Fraction of max achievable rate.
  TimeUs duration = 120 * kUsPerSec;
  int threads = 8;
  std::uint64_t seed = 1;
  /// Overrides for the HARS variants (distance sweep, ablations); ignored
  /// by baseline/SO. Negative = use the variant default.
  int override_window = -1;
  int override_d = -1;
  int override_adapt_period = -1;
  double override_r0 = -1.0;
  /// Force a scheduler for HARS variants (ablation); -1 = variant default.
  int override_scheduler = -1;  ///< 0 = chunk, 1 = interleaved, 2 = hierarchical.
  /// Extensions (ablations): -1 = variant default.
  int override_predictor = -1;  ///< 0 = last-value, 1 = kalman.
  int override_policy = -1;     ///< 0 = incremental, 1 = exhaustive, 2 = tabu.
  bool learn_ratio = false;     ///< Online big:little ratio learning.
};

struct SingleRunResult {
  RunMetrics metrics;
  std::vector<TracePoint> trace;   ///< Empty for baseline / static optimal.
  SystemState static_state;        ///< Chosen state for kStaticOptimal.
  PerfTarget target;
};

SingleRunResult run_single(ParsecBenchmark bench, SingleVersion version,
                           const SingleRunOptions& options = {});

// --- Multi-application evaluation (§5.2) ---

enum class MultiVersion { kBaseline, kConsI, kMpHarsI, kMpHarsE };

const char* multi_version_name(MultiVersion version);
std::vector<MultiVersion> all_multi_versions();

struct MultiRunOptions {
  double target_fraction = 0.50;
  TimeUs duration = 150 * kUsPerSec;
  int threads = 8;
  std::uint64_t seed = 1;
};

struct MultiRunResult {
  std::vector<RunMetrics> per_app;         ///< One entry per benchmark.
  std::vector<std::vector<TracePoint>> traces;
  std::vector<PerfTarget> targets;
  double avg_power_w = 0.0;  ///< System power over the whole run.
};

MultiRunResult run_multi(const std::vector<ParsecBenchmark>& benches,
                         MultiVersion version,
                         const MultiRunOptions& options = {});

/// The six two-application cases of Figure 5.4, in order.
std::vector<std::vector<ParsecBenchmark>> multiapp_cases();

}  // namespace hars
