// DEPRECATED experiment entry points.
//
// run_single / run_multi were the two parallel, non-composable runners the
// figures were originally generated from. They are now thin shims over the
// unified Experiment API (exp/experiment.hpp) — same signatures, identical
// metrics — kept so existing call sites continue to compile. New code
// should use ExperimentBuilder + VariantRegistry directly.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/parsec.hpp"
#include "core/hars.hpp"
#include "exp/calibration.hpp"
#include "exp/experiment.hpp"
#include "exp/metrics.hpp"
#include "mphars/mphars_manager.hpp"

namespace hars {

// --- Single-application evaluation (§5.1) ---

enum class SingleVersion { kBaseline, kStaticOptimal, kHarsI, kHarsE, kHarsEI };

const char* single_version_name(SingleVersion version);
std::vector<SingleVersion> all_single_versions();

/// Inverse of single_version_name; nullopt for unknown names.
std::optional<SingleVersion> parse_single_version(std::string_view name);

/// Deprecated: use ExperimentBuilder's typed setters (scheduler(),
/// predictor(), policy(), ...) instead of the int sentinels.
struct SingleRunOptions {
  double target_fraction = 0.50;  ///< Fraction of max achievable rate.
  TimeUs duration = 120 * kUsPerSec;
  int threads = 8;
  std::uint64_t seed = 1;
  /// Overrides for the HARS variants (distance sweep, ablations); ignored
  /// by baseline/SO. Negative = use the variant default.
  int override_window = -1;
  int override_d = -1;
  int override_adapt_period = -1;
  double override_r0 = -1.0;
  /// Force a scheduler for HARS variants (ablation); -1 = variant default.
  int override_scheduler = -1;  ///< 0 = chunk, 1 = interleaved, 2 = hierarchical.
  /// Extensions (ablations): -1 = variant default.
  int override_predictor = -1;  ///< 0 = last-value, 1 = kalman.
  int override_policy = -1;     ///< 0 = incremental, 1 = exhaustive, 2 = tabu.
  bool learn_ratio = false;     ///< Online big:little ratio learning.
};

struct SingleRunResult {
  RunMetrics metrics;
  std::vector<TracePoint> trace;   ///< Empty for baseline / static optimal.
  SystemState static_state;        ///< Chosen state for kStaticOptimal.
  PerfTarget target;
};

[[deprecated("use ExperimentBuilder (exp/experiment.hpp)")]]
SingleRunResult run_single(ParsecBenchmark bench, SingleVersion version,
                           const SingleRunOptions& options = {});

// --- Multi-application evaluation (§5.2) ---

enum class MultiVersion { kBaseline, kConsI, kMpHarsI, kMpHarsE };

const char* multi_version_name(MultiVersion version);
std::vector<MultiVersion> all_multi_versions();

/// Inverse of multi_version_name; nullopt for unknown names.
std::optional<MultiVersion> parse_multi_version(std::string_view name);

struct MultiRunOptions {
  double target_fraction = 0.50;
  TimeUs duration = 150 * kUsPerSec;
  int threads = 8;
  std::uint64_t seed = 1;
};

struct MultiRunResult {
  std::vector<RunMetrics> per_app;         ///< One entry per benchmark.
  std::vector<std::vector<TracePoint>> traces;
  std::vector<PerfTarget> targets;
  double avg_power_w = 0.0;  ///< System power over the whole run.
};

[[deprecated("use ExperimentBuilder (exp/experiment.hpp)")]]
MultiRunResult run_multi(const std::vector<ParsecBenchmark>& benches,
                         MultiVersion version,
                         const MultiRunOptions& options = {});

// multiapp_cases() now lives in exp/experiment.hpp (included above).

}  // namespace hars
