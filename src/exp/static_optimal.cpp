#include "exp/static_optimal.hpp"

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/power_profiler.hpp"
#include "core/search.hpp"
#include "core/thread_scheduler.hpp"
#include "exp/metrics.hpp"
#include "hmp/platform_registry.hpp"
#include "hmp/sim_engine.hpp"
#include "sched/gts.hpp"
#include "util/once_cache.hpp"

namespace hars {

namespace {

struct Probe {
  double pp = 0.0;
  double rate = 0.0;
  bool satisfies = false;
};

Probe probe_state(const PlatformSpec& platform, ParsecBenchmark bench,
                  const SystemState& s, const PerfTarget& target,
                  const StaticOptimalOptions& options) {
  SimEngine engine(platform, std::make_unique<GtsScheduler>());
  std::unique_ptr<App> app = make_parsec_app(bench, options.threads, options.seed);
  const AppId id = engine.add_app(app.get());
  app->heartbeats().set_target(target);

  Machine& m = engine.machine();
  m.set_freq_level(m.fastest_cluster(), s.big_freq);
  m.set_freq_level(m.slowest_cluster(), s.little_freq);
  CpuMask allowed;
  const CoreId lf = m.slowest_mask().first();
  for (int i = 0; i < s.little_cores; ++i) allowed.set(lf + i);
  const CoreId bf = m.fastest_mask().first();
  for (int i = 0; i < s.big_cores; ++i) allowed.set(bf + i);
  engine.set_app_affinity(id, allowed);

  const TimeUs warmup_cap = 60 * kUsPerSec;
  while (app->heartbeats().count() == 0 && engine.now() < warmup_cap) {
    engine.run_for(100 * kUsPerMs);
  }
  const TimeUs t0 = engine.now();
  engine.sensor().reset();
  engine.run_for(options.probe_duration);

  Probe probe;
  const auto& history = app->heartbeats().history();
  const double norm = time_weighted_norm_perf(history, target, t0, engine.now());
  const double power = engine.sensor().average_power_w(engine.now() - t0);
  probe.pp = power > 0.0 ? norm / power : 0.0;
  probe.rate = average_rate(history, t0, engine.now());
  probe.satisfies = probe.rate >= target.min;
  return probe;
}

// The estimator scales candidate rates from a reference (state, rate)
// pair. That reference must be *consistent with the estimator's own
// thread-assignment model* (Table 3.1-pinned threads); the GTS baseline
// leaves the little cluster idle, which would bias every little-using
// candidate low and push the true optimum out of the shortlist.
double measure_pinned_max_rate(const PlatformSpec& platform,
                               ParsecBenchmark bench,
                               const SystemState& max_state,
                               const PerfEstimator& perf_est,
                               const StaticOptimalOptions& options) {
  SimEngine engine(platform, std::make_unique<GtsScheduler>());
  std::unique_ptr<App> app = make_parsec_app(bench, options.threads, options.seed);
  const AppId id = engine.add_app(app.get());

  Machine& m = engine.machine();
  m.set_freq_level(m.fastest_cluster(), max_state.big_freq);
  m.set_freq_level(m.slowest_cluster(), max_state.little_freq);
  const ThreadAssignment a = perf_est.assignment(max_state, app->thread_count());
  apply_thread_schedule(engine, id, ThreadSchedulerKind::kChunk, a,
                        m.fastest_mask(), m.slowest_mask());

  const TimeUs warmup_cap = 60 * kUsPerSec;
  while (app->heartbeats().count() == 0 && engine.now() < warmup_cap) {
    engine.run_for(100 * kUsPerMs);
  }
  const TimeUs t0 = engine.now();
  engine.run_for(options.probe_duration);
  return average_rate(app->heartbeats().history(), t0, engine.now());
}

}  // namespace

namespace {

StaticOptimalResult compute_static_optimal(
    const PlatformSpec& platform, ParsecBenchmark bench,
    const PerfTarget& target, const StaticOptimalOptions& options) {
  const Machine machine = platform.make_machine();
  const StateSpace space = StateSpace::from_machine(machine);
  // The offline sweep may use the benchmark's true ratio: SO is an oracle.
  PerfEstimator perf_est(machine, parsec_true_ratio(bench));
  const PowerModel model(machine, platform.cluster_power());
  PowerEstimator power_est(profile_power(machine, model));

  // Reference point: measured rate of the maximum state under the
  // estimator's own (pinned) assignment model.
  const SystemState max_state = space.max_state();
  const double ref_rate =
      measure_pinned_max_rate(platform, bench, max_state, perf_est, options);

  struct Ranked {
    SystemState state;
    double est_rate = 0.0;
    double est_pp = 0.0;
  };
  std::vector<Ranked> ranked;
  for (int cb = 0; cb <= space.max_big_cores; ++cb) {
    for (int cl = 0; cl <= space.max_little_cores; ++cl) {
      if (cb + cl < 1) continue;
      for (int fb = 0; fb < space.num_big_freqs; ++fb) {
        for (int fl = 0; fl < space.num_little_freqs; ++fl) {
          const SystemState s{cb, cl, fb, fl};
          Ranked r;
          r.state = s;
          r.est_rate =
              perf_est.estimate_rate(s, max_state, ref_rate, options.threads);
          const double power = power_est.estimate(s, options.threads, perf_est);
          r.est_pp = power > 0.0 ? normalized_perf(r.est_rate, target) / power
                                 : 0.0;
          ranked.push_back(r);
        }
      }
    }
  }
  // Satisfying candidates by estimated pp first, then near-misses by rate.
  std::stable_sort(ranked.begin(), ranked.end(), [&](const Ranked& a,
                                                     const Ranked& b) {
    const bool sa = a.est_rate >= target.min;
    const bool sb = b.est_rate >= target.min;
    if (sa != sb) return sa;
    if (sa) return a.est_pp > b.est_pp;
    return a.est_rate > b.est_rate;
  });

  StaticOptimalResult best;
  bool best_set = false;
  const int n_probe = std::min<int>(options.shortlist,
                                    static_cast<int>(ranked.size()));
  for (int i = 0; i < n_probe; ++i) {
    const Probe probe =
        probe_state(platform, bench, ranked[static_cast<std::size_t>(i)].state,
                    target, options);
    const bool better =
        !best_set ||
        (probe.satisfies && !best.satisfies_target) ||
        (probe.satisfies == best.satisfies_target && probe.pp > best.measured_pp);
    if (better) {
      best.state = ranked[static_cast<std::size_t>(i)].state;
      best.measured_pp = probe.pp;
      best.measured_rate = probe.rate;
      best.satisfies_target = probe.satisfies;
      best_set = true;
    }
  }
  return best;
}

}  // namespace

StaticOptimalResult find_static_optimal(ParsecBenchmark bench,
                                        const PerfTarget& target,
                                        const StaticOptimalOptions& options) {
  const PlatformSpec platform =
      options.platform ? *options.platform
                       : PlatformRegistry::instance().get("exynos5422");
  using Key = std::tuple<std::string, int, double, double, std::uint64_t, int>;
  static OnceCache<Key, StaticOptimalResult> cache{"static_optimal"};
  const Key key{platform.signature(), static_cast<int>(bench), target.min,
                target.max, options.seed, options.threads};
  return cache.get_or_compute(key, [&] {
    return compute_static_optimal(platform, bench, target, options);
  });
}

}  // namespace hars
