// Static-optimal (SO) version (thesis §5.1.1): the optimal core counts and
// frequency levels determined by offline simulation, then run statically
// under the Linux HMP scheduler.
//
// Procedure: sweep the full state space with the §3.1 estimators (using the
// benchmark's *true* big:little ratio — SO is an offline oracle), shortlist
// the most promising candidates, measure each shortlisted state with a
// short simulation, and keep the best measured normalized-perf/watt that
// satisfies the target.
#pragma once

#include <optional>

#include "apps/parsec.hpp"
#include "core/system_state.hpp"
#include "exp/calibration.hpp"
#include "hmp/platform_spec.hpp"

namespace hars {

struct StaticOptimalOptions {
  int shortlist = 24;                    ///< Candidates measured by simulation.
  TimeUs probe_duration = 15 * kUsPerSec;///< Per-candidate measurement.
  int threads = 8;
  std::uint64_t seed = 1;
  /// Platform the oracle sweeps; unset = the exynos5422 preset.
  std::optional<PlatformSpec> platform;
};

struct StaticOptimalResult {
  SystemState state;
  double measured_pp = 0.0;     ///< Normalized perf / watt at `state`.
  double measured_rate = 0.0;
  bool satisfies_target = false;
};

StaticOptimalResult find_static_optimal(ParsecBenchmark bench,
                                        const PerfTarget& target,
                                        const StaticOptimalOptions& options = {});

}  // namespace hars
