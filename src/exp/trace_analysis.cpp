#include "exp/trace_analysis.hpp"

namespace hars {

TraceStats analyze_trace(std::span<const TracePoint> trace,
                         const PerfTarget& target, int stable_beats) {
  TraceStats stats;
  if (trace.empty()) return stats;

  // Settling: first index beginning a run of `stable_beats` in-window points.
  int run = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (target.contains(trace[i].hps)) {
      ++run;
      if (run >= stable_beats) {
        stats.settle_index = trace[i + 1 - static_cast<std::size_t>(stable_beats)].hb_index;
        break;
      }
    } else {
      run = 0;
    }
  }

  // In-window fraction after the settle point (or over everything).
  std::size_t start = 0;
  if (stats.settle_index >= 0) {
    while (start < trace.size() && trace[start].hb_index < stats.settle_index) {
      ++start;
    }
  }
  std::size_t inside = 0;
  for (std::size_t i = start; i < trace.size(); ++i) {
    if (target.contains(trace[i].hps)) ++inside;
  }
  const std::size_t counted = trace.size() - start;
  stats.in_window_fraction =
      counted > 0 ? static_cast<double>(inside) / static_cast<double>(counted)
                  : 0.0;

  // Oscillation: sign changes of the operating-point score delta.
  auto score = [](const TracePoint& p) {
    return p.big_cores + p.little_cores + p.big_freq_ghz + p.little_freq_ghz;
  };
  int direction = 0;
  int changes = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double delta = score(trace[i]) - score(trace[i - 1]);
    if (delta == 0.0) continue;
    const int dir = delta > 0.0 ? 1 : -1;
    if (direction != 0 && dir != direction) ++changes;
    direction = dir;
  }
  stats.oscillations_per_100 =
      100.0 * static_cast<double>(changes) / static_cast<double>(trace.size());

  double bc = 0.0;
  double lc = 0.0;
  double bf = 0.0;
  double lf = 0.0;
  for (const TracePoint& p : trace) {
    bc += p.big_cores;
    lc += p.little_cores;
    bf += p.big_freq_ghz;
    lf += p.little_freq_ghz;
  }
  const double n = static_cast<double>(trace.size());
  stats.mean_big_cores = bc / n;
  stats.mean_little_cores = lc / n;
  stats.mean_big_freq = bf / n;
  stats.mean_little_freq = lf / n;
  return stats;
}

}  // namespace hars
