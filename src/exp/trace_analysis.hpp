// Behaviour-trace analysis: quantifies the qualitative claims made about
// the Figure 5.5-5.7 graphs — how fast a runtime settles into the target
// window, how much it oscillates afterwards, and how expensive the
// operating points it visits are.
#pragma once

#include <span>

#include "core/runtime_manager.hpp"  // TracePoint
#include "heartbeats/heartbeat.hpp"

namespace hars {

struct TraceStats {
  /// First heartbeat index from which the rate stays inside the target
  /// window for at least `stable_beats` consecutive points; -1 if never.
  std::int64_t settle_index = -1;
  /// Fraction of trace points (after settling, or overall if never
  /// settled) inside the target window.
  double in_window_fraction = 0.0;
  /// Direction changes of the configured "performance score"
  /// (C_B + C_L + frequency sum) per 100 points — an oscillation measure.
  double oscillations_per_100 = 0.0;
  /// Mean allocated cores and frequencies over the trace.
  double mean_big_cores = 0.0;
  double mean_little_cores = 0.0;
  double mean_big_freq = 0.0;
  double mean_little_freq = 0.0;
};

/// Analyzes a behaviour trace against a target window. `stable_beats` is
/// the consecutive-in-window run length that counts as "settled".
TraceStats analyze_trace(std::span<const TracePoint> trace,
                         const PerfTarget& target, int stable_beats = 10);

}  // namespace hars
