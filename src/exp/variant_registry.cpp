#include "exp/variant_registry.hpp"

#include <map>
#include <utility>

#include "core/hars.hpp"
#include "core/power_profiler.hpp"
#include "exp/experiment.hpp"
#include "exp/static_optimal.hpp"
#include "mphars/cons_i.hpp"
#include "mphars/mphars_manager.hpp"

namespace hars {

std::vector<TracePoint> VariantInstance::trace(AppId) const { return {}; }

std::optional<SystemState> VariantInstance::current_state() const {
  return std::nullopt;
}

std::optional<SystemState> VariantInstance::static_state() const {
  return std::nullopt;
}

unsigned tuning_fields(const VariantTuning& t) {
  unsigned fields = 0;
  if (t.scheduler) fields |= kTuneScheduler;
  if (t.predictor) fields |= kTunePredictor;
  if (t.policy) fields |= kTunePolicy;
  if (t.search_window) fields |= kTuneSearchWindow;
  if (t.search_distance) fields |= kTuneSearchDistance;
  if (t.adapt_period) fields |= kTuneAdaptPeriod;
  if (t.r0) fields |= kTuneR0;
  if (t.learn_ratio) fields |= kTuneLearnRatio;
  if (t.tabu) fields |= kTuneTabu;
  return fields;
}

const char* tuning_field_name(TuningField field) {
  switch (field) {
    case kTuneScheduler: return "scheduler";
    case kTunePredictor: return "predictor";
    case kTunePolicy: return "policy";
    case kTuneSearchWindow: return "search_window";
    case kTuneSearchDistance: return "search_distance";
    case kTuneAdaptPeriod: return "adapt_period";
    case kTuneR0: return "assumed_ratio";
    case kTuneLearnRatio: return "learn_ratio";
    case kTuneTabu: return "tabu";
  }
  return "?";
}

namespace {

constexpr unsigned kHarsTuning = kTuneScheduler | kTunePredictor | kTunePolicy |
                                 kTuneSearchWindow | kTuneSearchDistance |
                                 kTuneAdaptPeriod | kTuneR0 | kTuneLearnRatio |
                                 kTuneTabu;
constexpr unsigned kConsTuning = kTuneAdaptPeriod | kTuneR0;
constexpr unsigned kMpHarsTuning = kTuneScheduler | kTuneSearchWindow |
                                   kTuneSearchDistance | kTuneAdaptPeriod |
                                   kTuneR0;

/// Baseline: the full machine at top frequency under the OS scheduler —
/// no manager at all.
class BaselineInstance final : public VariantInstance {};

/// SO: the offline oracle's state, applied once and held for the run.
class StaticOptimalInstance final : public VariantInstance {
 public:
  explicit StaticOptimalInstance(SystemState state) : state_(state) {}
  std::optional<SystemState> static_state() const override { return state_; }
  std::optional<SystemState> current_state() const override { return state_; }

 private:
  SystemState state_;
};

std::unique_ptr<VariantInstance> make_static_optimal(
    const VariantSetup& setup) {
  StaticOptimalOptions so;
  so.threads = setup.spec.threads;
  so.seed = setup.spec.seed;
  so.platform = setup.spec.platform;
  // The oracle sweep itself runs offline in throwaway simulators (see
  // find_static_optimal), so SO works on any backend: only the chosen
  // state is applied to the live platform.
  const StaticOptimalResult so_result = find_static_optimal(
      *setup.spec.apps.front().bench, setup.targets.front(), so);
  const Machine& m = setup.backend.topology();
  setup.backend.set_dvfs_level(m.fastest_cluster(), so_result.state.big_freq);
  setup.backend.set_dvfs_level(m.slowest_cluster(),
                               so_result.state.little_freq);
  CpuMask allowed;
  const CoreId lf = m.slowest_mask().first();
  for (int i = 0; i < so_result.state.little_cores; ++i) allowed.set(lf + i);
  const CoreId bf = m.fastest_mask().first();
  for (int i = 0; i < so_result.state.big_cores; ++i) allowed.set(bf + i);
  setup.backend.place_app(setup.app_ids.front(), allowed);
  return std::make_unique<StaticOptimalInstance>(so_result.state);
}

/// The single-application HARS manager, with the variant's paper
/// configuration adjusted by the experiment's typed tuning.
class HarsInstance final : public VariantInstance {
 public:
  HarsInstance(const VariantSetup& setup, HarsVariant variant)
      : managed_app_(setup.app_ids.front()) {
    RuntimeManagerConfig config = config_for_variant(variant);
    // Calibration default: the platform's assumed fastest:slowest ratio
    // (the paper's r0 = 3/2 on the Exynos preset).
    config.r0 = setup.spec.platform.assumed_ratio();
    config.reference_search = setup.spec.reference_impl;
    const VariantTuning& t = setup.spec.tuning;
    if (t.scheduler) config.scheduler = *t.scheduler;
    if (t.predictor) config.predictor = *t.predictor;
    if (t.policy) config.policy = *t.policy;
    if (t.search_window) config.exhaustive_window = *t.search_window;
    if (t.search_distance) config.exhaustive_d = *t.search_distance;
    if (t.adapt_period) config.adapt_period = *t.adapt_period;
    if (t.r0) config.r0 = *t.r0;
    if (t.learn_ratio) config.learn_ratio = *t.learn_ratio;
    if (t.tabu) config.tabu = *t.tabu;
    const PowerCoeffTable coeffs = profile_power(
        setup.backend.topology(), setup.backend.profiling_model());
    auto manager = std::make_unique<RuntimeManager>(
        setup.backend, setup.app_ids.front(), setup.targets.front(), coeffs,
        config);
    manager_ = manager.get();
    inner_ = std::move(manager);
  }

  std::vector<TracePoint> trace(AppId) const override {
    return manager_->trace();
  }
  std::optional<SystemState> current_state() const override {
    return manager_->current_state();
  }
  std::int64_t adaptations() const override { return manager_->adaptations(); }

  /// Single-app manager: if *our* app departs, go silent for the rest of
  /// the run (background departures are none of our business).
  void on_app_kill(AppId app) override {
    if (app == managed_app_) mute_inner();
  }

 private:
  AppId managed_app_;
  RuntimeManager* manager_ = nullptr;
};

class ConsInstance final : public VariantInstance {
 public:
  explicit ConsInstance(const VariantSetup& setup)
      : adapt_period_(setup.spec.tuning.adapt_period.value_or(5)) {
    ConsIConfig config;
    config.r0 = setup.spec.platform.assumed_ratio();
    const VariantTuning& t = setup.spec.tuning;
    if (t.r0) config.r0 = *t.r0;
    auto manager = std::make_unique<ConsIManager>(setup.backend, config);
    for (std::size_t i = 0; i < setup.app_ids.size(); ++i) {
      manager->register_app(setup.app_ids[i],
                            ConsIAppConfig{setup.targets[i], adapt_period_});
    }
    manager_ = manager.get();
    inner_ = std::move(manager);
  }

  std::vector<TracePoint> trace(AppId app) const override {
    return manager_->trace(app);
  }
  std::optional<SystemState> current_state() const override {
    return manager_->global_state();
  }

  void on_app_spawn(AppId app, const PerfTarget& target) override {
    manager_->register_app(app, ConsIAppConfig{target, adapt_period_});
  }
  void on_app_kill(AppId app) override { manager_->unregister_app(app); }
  void on_app_target(AppId app, const PerfTarget& target) override {
    manager_->set_app_target(app, target);
  }

 private:
  int adapt_period_;
  ConsIManager* manager_ = nullptr;
};

class MpHarsInstance final : public VariantInstance {
 public:
  MpHarsInstance(const VariantSetup& setup, SearchPolicy policy)
      : adapt_period_(setup.spec.tuning.adapt_period.value_or(5)),
        scheduler_(setup.spec.tuning.scheduler.value_or(
            ThreadSchedulerKind::kChunk)) {
    MpHarsConfig config;
    config.policy = policy;
    config.r0 = setup.spec.platform.assumed_ratio();
    config.reference_search = setup.spec.reference_impl;
    const VariantTuning& t = setup.spec.tuning;
    if (t.search_window) config.exhaustive_window = *t.search_window;
    if (t.search_distance) config.exhaustive_d = *t.search_distance;
    if (t.r0) config.r0 = *t.r0;
    const PowerCoeffTable coeffs = profile_power(
        setup.backend.topology(), setup.backend.profiling_model());
    auto manager =
        std::make_unique<MpHarsManager>(setup.backend, coeffs, config);
    for (std::size_t i = 0; i < setup.app_ids.size(); ++i) {
      manager->register_app(
          setup.app_ids[i],
          MpHarsAppConfig{setup.targets[i], adapt_period_, scheduler_});
    }
    manager_ = manager.get();
    inner_ = std::move(manager);
  }

  std::vector<TracePoint> trace(AppId app) const override {
    const auto retired = retired_traces_.find(app);
    if (retired != retired_traces_.end()) return retired->second;
    return manager_->trace(app);
  }
  std::int64_t adaptations() const override { return manager_->adaptations(); }

  void on_app_spawn(AppId app, const PerfTarget& target) override {
    manager_->register_app(app, MpHarsAppConfig{target, adapt_period_,
                                                scheduler_});
  }
  void on_app_kill(AppId app) override {
    // The registry node (and its trace) dies with the unregistration;
    // keep the trace so post-run queries still see the departed app.
    retired_traces_[app] = manager_->trace(app);
    manager_->unregister_app(app);
  }
  void on_app_target(AppId app, const PerfTarget& target) override {
    manager_->set_app_target(app, target);
  }

 private:
  int adapt_period_;
  ThreadSchedulerKind scheduler_;
  MpHarsManager* manager_ = nullptr;
  std::map<AppId, std::vector<TracePoint>> retired_traces_;
};

constexpr int kManyApps = 64;

}  // namespace

VariantRegistry::VariantRegistry() {
  register_variant("Baseline", VariantTraits{1, kManyApps, 0, {}, false},
                   [](const VariantSetup&) {
                     return std::make_unique<BaselineInstance>();
                   });
  register_variant("SO",
                   VariantTraits{1, 1, 0, {}, /*requires_parsec=*/true},
                   make_static_optimal);
  const auto hars_entry = [this](const char* name, HarsVariant variant,
                                 SearchPolicy base_policy) {
    register_variant(name, VariantTraits{1, 1, kHarsTuning, base_policy, false},
                     [variant](const VariantSetup& setup) {
                       return std::make_unique<HarsInstance>(setup, variant);
                     });
  };
  hars_entry("HARS-I", HarsVariant::kHarsI, SearchPolicy::kIncremental);
  hars_entry("HARS-E", HarsVariant::kHarsE, SearchPolicy::kExhaustive);
  hars_entry("HARS-EI", HarsVariant::kHarsEI, SearchPolicy::kExhaustive);
  register_variant(
      "CONS-I",
      VariantTraits{1, kManyApps, kConsTuning, SearchPolicy::kIncremental,
                    false},
      [](const VariantSetup& setup) {
        return std::make_unique<ConsInstance>(setup);
      });
  const auto mphars_entry = [this](const char* name, SearchPolicy policy) {
    register_variant(name,
                     VariantTraits{1, kManyApps, kMpHarsTuning, policy, false},
                     [policy](const VariantSetup& setup) {
                       return std::make_unique<MpHarsInstance>(setup, policy);
                     });
  };
  mphars_entry("MP-HARS-I", SearchPolicy::kIncremental);
  mphars_entry("MP-HARS-E", SearchPolicy::kExhaustive);
}

VariantRegistry& VariantRegistry::instance() {
  static VariantRegistry registry;
  return registry;
}

void VariantRegistry::register_variant(std::string name, VariantTraits traits,
                                       VariantFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (VariantEntry& entry : entries_) {
    if (entry.name == name) {
      entry.traits = traits;
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back({std::move(name), traits, std::move(factory)});
}

const VariantEntry* VariantRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const VariantEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> VariantRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const VariantEntry& entry : entries_) out.push_back(entry.name);
  return out;
}

}  // namespace hars
