// VariantRegistry: the string-keyed catalogue of runtime versions.
//
// Every runtime version the evaluation compares — Baseline, the static
// optimal, the single-application HARS variants and the multi-application
// managers — registers a factory under its figure name ("HARS-EI",
// "MP-HARS-E", ...). The factory receives the configured experiment (the
// engine, registered apps and resolved targets) and returns an owned
// VariantInstance: a ManagerHook wrapper that owns the concrete manager
// (or nothing, for Baseline) and exposes the uniform queries the
// experiment pipeline needs afterwards (behaviour traces, chosen states,
// adaptation counts).
//
// Adding a new runtime version to the evaluation is one register_variant
// call — no runner fork, no bench-binary edits: every registry entry is
// immediately runnable from Experiment::run() and `hars_sim --version`.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/runtime_manager.hpp"  // TracePoint, ManagerHook via sim_engine.
#include "core/search.hpp"
#include "core/system_state.hpp"

namespace hars {

struct ExperimentSpec;  // experiment.hpp

/// Typed tuning overrides for a variant (replaces the old -1 int
/// sentinels of SingleRunOptions). Unset fields keep the variant default.
struct VariantTuning {
  std::optional<ThreadSchedulerKind> scheduler;
  std::optional<PredictorKind> predictor;
  std::optional<SearchPolicy> policy;
  std::optional<int> search_window;    ///< m = n of the exhaustive sweep.
  std::optional<int> search_distance;  ///< Manhattan budget d.
  std::optional<int> adapt_period;     ///< Heartbeats between checks.
  std::optional<double> r0;            ///< Assumed big:little ratio.
  std::optional<bool> learn_ratio;     ///< Online ratio learning.
  std::optional<TabuParams> tabu;      ///< Tabu trajectory parameters.
};

/// Which tuning fields a variant understands; builder validation rejects
/// a set field the chosen variant would silently ignore.
enum TuningField : unsigned {
  kTuneScheduler = 1u << 0,
  kTunePredictor = 1u << 1,
  kTunePolicy = 1u << 2,
  kTuneSearchWindow = 1u << 3,
  kTuneSearchDistance = 1u << 4,
  kTuneAdaptPeriod = 1u << 5,
  kTuneR0 = 1u << 6,
  kTuneLearnRatio = 1u << 7,
  kTuneTabu = 1u << 8,
};

/// Bitmask of the TuningField bits set in `tuning`.
unsigned tuning_fields(const VariantTuning& tuning);

/// Human-readable name of one TuningField bit (for error messages).
const char* tuning_field_name(TuningField field);

struct VariantTraits {
  int min_apps = 1;
  int max_apps = 1;
  unsigned accepted_tuning = 0;
  /// Search policy the variant runs when tuning.policy is unset; used to
  /// validate tabu-parameter consistency.
  std::optional<SearchPolicy> base_policy;
  /// The variant needs the benchmark identity (e.g. the static optimal's
  /// offline oracle sweep) — only PARSEC apps qualify.
  bool requires_parsec = false;
};

/// What a variant factory hands back: a ManagerHook that owns the
/// concrete runtime manager (nothing for Baseline / the static optimal)
/// plus the uniform post-run query surface.
class VariantInstance : public ManagerHook {
 public:
  ~VariantInstance() override = default;

  TimeUs on_tick(TimeUs now) override {
    return (inner_ && !inner_muted_) ? inner_->on_tick(now) : 0;
  }

  // --- Scenario hooks (dynamic app sets) ---
  /// A scenario spawned `app` mid-run; the engine already has it and its
  /// target is installed. Multi-app managers register it; the default
  /// ignores it (single-app variants keep managing their original app
  /// while background apps come and go).
  virtual void on_app_spawn(AppId app, const PerfTarget& target) {
    (void)app;
    (void)target;
  }

  /// `app` is departing; called *before* the engine reclaims its threads.
  /// Multi-app managers unregister it; a single-app manager whose own app
  /// departs mutes itself (mute_inner) so it never reads the dead slot.
  virtual void on_app_kill(AppId app) { (void)app; }

  /// A scenario moved `app`'s target; the heartbeat monitor is already
  /// updated (which is all the single-app HARS manager reads). Managers
  /// that cache per-app targets refresh them here.
  virtual void on_app_target(AppId app, const PerfTarget& target) {
    (void)app;
    (void)target;
  }

  /// True when a runtime manager is attached (and should be installed on
  /// the engine).
  bool active() const { return inner_ != nullptr; }

  /// The owned concrete manager, for callers that need to reach past the
  /// uniform surface (e.g. a dynamic_cast in an example). Null for
  /// manager-less variants.
  ManagerHook* hook() { return inner_.get(); }

  /// Behaviour trace of one app (empty when the variant records none).
  virtual std::vector<TracePoint> trace(AppId app) const;

  /// Current chosen state, for variants with a single global state.
  virtual std::optional<SystemState> current_state() const;

  /// The offline-chosen state, for the static optimal.
  virtual std::optional<SystemState> static_state() const;

  virtual std::int64_t adaptations() const { return 0; }

 protected:
  /// Permanently stops forwarding on_tick to the owned manager (post-run
  /// queries like trace() stay valid — they must not touch the engine).
  void mute_inner() { inner_muted_ = true; }

  std::unique_ptr<ManagerHook> inner_;

 private:
  bool inner_muted_ = false;
};

/// Everything a factory may consult: the backend (apps already added,
/// targets installed), the per-app ids/targets in registration order and
/// the full experiment spec (tuning, threads, seed, benchmark identities).
/// The backend is a SimBackend for simulated runs and a live backend
/// (mock_linux / linux) under hars_agentd; factories that genuinely need
/// the simulator (e.g. the static optimal's offline oracle) must check
/// backend.sim_engine() != nullptr and fail clearly otherwise.
struct VariantSetup {
  Backend& backend;
  const ExperimentSpec& spec;
  const std::vector<AppId>& app_ids;
  const std::vector<PerfTarget>& targets;
};

/// Must return a non-null instance (a plain VariantInstance for
/// manager-less variants); Experiment::run() rejects a null return.
using VariantFactory =
    std::function<std::unique_ptr<VariantInstance>(const VariantSetup&)>;

struct VariantEntry {
  std::string name;
  VariantTraits traits;
  VariantFactory factory;
};

class VariantRegistry {
 public:
  /// The process-wide registry, with the paper's eight runtime versions
  /// (Baseline, SO, HARS-I/E/EI, CONS-I, MP-HARS-I/E) pre-registered.
  /// Construction is once-only (C++ magic static) and every accessor
  /// locks, so concurrent Experiment::run() calls from sweep-pool workers
  /// can look variants up safely. Entries live in a deque, so a pointer
  /// returned by find() stays valid across later registrations — but
  /// replacing a variant by name while another thread runs it is still a
  /// race; register new variants before launching a parallel sweep.
  static VariantRegistry& instance();

  /// Registers (or replaces) a variant under `name`.
  void register_variant(std::string name, VariantTraits traits,
                        VariantFactory factory);

  /// Null when `name` is unknown.
  const VariantEntry* find(std::string_view name) const;

  /// All registered names, in registration order.
  std::vector<std::string> names() const;

 private:
  VariantRegistry();
  mutable std::mutex mutex_;
  std::deque<VariantEntry> entries_;
};

/// RAII registration helper so new variants can self-register from any
/// translation unit:
///   static VariantRegistrar reg("MY-VARIANT", traits, factory);
struct VariantRegistrar {
  VariantRegistrar(std::string name, VariantTraits traits,
                   VariantFactory factory) {
    VariantRegistry::instance().register_variant(std::move(name), traits,
                                                 std::move(factory));
  }
};

}  // namespace hars
