#include "heartbeats/heartbeat.hpp"

#include "util/alloc_guard.hpp"

namespace hars {

HeartbeatMonitor::HeartbeatMonitor(std::size_t window)
    : window_(window > 1 ? window : 2) {}

void HeartbeatMonitor::emit(TimeUs now) {
  // The full emission history is retained for behaviour traces; its
  // amortized growth is a declared allocator inside the guarded tick.
  allocg::AllowScope allow("heartbeat history growth");
  HeartbeatRecord rec{next_index_++, now};
  window_.push(rec);
  history_.push_back(rec);
}

TimeUs HeartbeatMonitor::last_time() const {
  return window_.empty() ? 0 : window_.newest().time;
}

double HeartbeatMonitor::rate() const {
  if (window_.size() < 2) return 0.0;
  const TimeUs span = window_.newest().time - window_.oldest().time;
  if (span <= 0) return 0.0;
  return static_cast<double>(window_.size() - 1) / us_to_sec(span);
}

double HeartbeatMonitor::global_rate(TimeUs now) const {
  if (history_.empty()) return 0.0;
  const TimeUs span = now - history_.front().time;
  if (span <= 0) return 0.0;
  return static_cast<double>(history_.size() - 1) / us_to_sec(span);
}

void HeartbeatMonitor::reset() {
  window_.clear();
  history_.clear();
  next_index_ = 0;
}

}  // namespace hars
