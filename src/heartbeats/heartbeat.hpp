// Application Heartbeats (Hoffmann et al., ICAC'10) — the monitoring
// substrate HARS observes applications through. The application emits a
// heartbeat each time it finishes a unit of work; the runtime reads a
// windowed heartbeat rate and compares it with a user-specified target
// window [min, max] (the paper uses target +/- 5%).
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/ring_buffer.hpp"

namespace hars {

/// A performance target window expressed in heartbeats per second.
struct PerfTarget {
  double min = 0.0;
  double max = 0.0;

  double avg() const { return 0.5 * (min + max); }
  bool contains(double rate) const { return rate >= min && rate <= max; }

  /// A usable target window: non-empty, non-negative, with a strictly
  /// positive average. The search normalizes performance by avg(), so a
  /// non-positive window would make every candidate tie at zero — the
  /// builders, the scenario validator and the runtime managers reject
  /// such targets up front with this predicate.
  bool is_valid_window() const { return min >= 0.0 && max > 0.0 && max >= min; }

  /// Paper convention: `center*(1 - tol)` .. `center*(1 + tol)`.
  static PerfTarget around(double center, double tolerance = 0.05) {
    return PerfTarget{center * (1.0 - tolerance), center * (1.0 + tolerance)};
  }
};

struct HeartbeatRecord {
  std::int64_t index = 0;  ///< Monotonic heartbeat number (0-based).
  TimeUs time = 0;         ///< Emission time.
};

/// Per-application heartbeat log with windowed rate computation.
class HeartbeatMonitor {
 public:
  /// `window` is the number of most recent heartbeats used for the rate.
  explicit HeartbeatMonitor(std::size_t window = 10);

  void set_target(PerfTarget target) { target_ = target; }
  const PerfTarget& target() const { return target_; }

  /// Called by the application when it completes a unit of work.
  void emit(TimeUs now);

  /// Total heartbeats emitted so far.
  std::int64_t count() const { return next_index_; }

  /// Index of the most recent heartbeat, or -1 before the first.
  std::int64_t last_index() const { return next_index_ - 1; }

  TimeUs last_time() const;

  /// Windowed heartbeat rate in heartbeats/second; 0 until two heartbeats
  /// have been observed.
  double rate() const;

  /// Rate over the whole run (count / elapsed-since-first).
  double global_rate(TimeUs now) const;

  /// Full emission history (kept for behaviour traces).
  const std::vector<HeartbeatRecord>& history() const { return history_; }

  void reset();

 private:
  PerfTarget target_;
  RingBuffer<HeartbeatRecord> window_;
  std::vector<HeartbeatRecord> history_;
  std::int64_t next_index_ = 0;
};

}  // namespace hars
