#include "hmp/cpu_mask.hpp"

#include <bit>
#include <cassert>

namespace hars {

CpuMask CpuMask::range(CoreId first, int count) {
  assert(first >= 0 && count >= 0 && first + count <= kMaxCpus);
  if (count == 0) return CpuMask();
  if (count >= 64) return CpuMask(~0ULL);
  const std::uint64_t block = ((1ULL << count) - 1) << first;
  return CpuMask(block);
}

CpuMask CpuMask::single(CoreId cpu) {
  assert(cpu >= 0 && cpu < kMaxCpus);
  return CpuMask(1ULL << cpu);
}

void CpuMask::set(CoreId cpu) {
  assert(cpu >= 0 && cpu < kMaxCpus);
  bits_ |= (1ULL << cpu);
}

void CpuMask::clear(CoreId cpu) {
  assert(cpu >= 0 && cpu < kMaxCpus);
  bits_ &= ~(1ULL << cpu);
}

bool CpuMask::test(CoreId cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) return false;
  return (bits_ >> cpu) & 1ULL;
}

int CpuMask::count() const { return std::popcount(bits_); }

CoreId CpuMask::first() const {
  if (bits_ == 0) return -1;
  return std::countr_zero(bits_);
}

CoreId CpuMask::next(CoreId cpu) const {
  if (cpu + 1 >= kMaxCpus) return -1;
  const std::uint64_t rest = bits_ >> (cpu + 1);
  if (rest == 0) return -1;
  return cpu + 1 + std::countr_zero(rest);
}

std::string CpuMask::to_string() const {
  std::string out = "{";
  bool first_item = true;
  CoreId c = first();
  while (c >= 0) {
    CoreId run_end = c;
    while (test(run_end + 1)) ++run_end;
    if (!first_item) out += ',';
    out += std::to_string(c);
    if (run_end > c) {
      out += '-';
      out += std::to_string(run_end);
    }
    first_item = false;
    c = next(run_end);
  }
  out += '}';
  return out;
}

}  // namespace hars
