// CpuMask: a fixed-width CPU affinity set, the simulator's equivalent of
// cpu_set_t used with sched_setaffinity(2).
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace hars {

class CpuMask {
 public:
  static constexpr int kMaxCpus = 64;

  constexpr CpuMask() = default;
  constexpr explicit CpuMask(std::uint64_t bits) : bits_(bits) {}

  /// Mask with cpus [first, first+count) set.
  static CpuMask range(CoreId first, int count);

  /// Mask with a single cpu set.
  static CpuMask single(CoreId cpu);

  void set(CoreId cpu);
  void clear(CoreId cpu);
  bool test(CoreId cpu) const;

  int count() const;
  bool empty() const { return bits_ == 0; }
  bool any() const { return bits_ != 0; }

  /// Lowest set cpu, or -1 when empty.
  CoreId first() const;

  /// Next set cpu strictly greater than `cpu`, or -1.
  CoreId next(CoreId cpu) const;

  constexpr std::uint64_t bits() const { return bits_; }

  friend constexpr CpuMask operator&(CpuMask a, CpuMask b) {
    return CpuMask(a.bits_ & b.bits_);
  }
  friend constexpr CpuMask operator|(CpuMask a, CpuMask b) {
    return CpuMask(a.bits_ | b.bits_);
  }
  friend constexpr CpuMask operator~(CpuMask a) { return CpuMask(~a.bits_); }
  friend constexpr bool operator==(CpuMask a, CpuMask b) {
    return a.bits_ == b.bits_;
  }

  bool contains(CpuMask other) const {
    return (bits_ & other.bits_) == other.bits_;
  }

  /// "{0,1,5-7}"-style rendering for logs and reports.
  std::string to_string() const;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace hars
