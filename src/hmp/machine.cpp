#include "hmp/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hars {

const char* core_type_name(CoreType type) {
  return type == CoreType::kBig ? "big" : "little";
}

Machine::Machine(MachineSpec spec) : spec_(std::move(spec)) {
  if (spec_.clusters.empty()) {
    throw std::invalid_argument("Machine requires at least one cluster");
  }
  for (int c = 0; c < num_clusters(); ++c) {
    const ClusterSpec& cs = spec_.clusters[c];
    if (cs.core_count <= 0) {
      throw std::invalid_argument("cluster core_count must be positive");
    }
    if (cs.freqs_ghz.empty() ||
        !std::is_sorted(cs.freqs_ghz.begin(), cs.freqs_ghz.end())) {
      throw std::invalid_argument("cluster frequencies must be ascending");
    }
    cluster_first_core_.push_back(num_cores_);
    for (int i = 0; i < cs.core_count; ++i) {
      core_cluster_.push_back(c);
      ++num_cores_;
    }
    // Boot at the highest level, like the paper's performance-governor
    // baseline.
    freq_level_.push_back(static_cast<int>(cs.freqs_ghz.size()) - 1);
  }
  if (num_cores_ > CpuMask::kMaxCpus) {
    throw std::invalid_argument("too many cores for CpuMask");
  }
  online_ = CpuMask::range(0, num_cores_);
  perf_order_.resize(static_cast<std::size_t>(num_clusters()));
  for (int c = 0; c < num_clusters(); ++c) perf_order_[static_cast<std::size_t>(c)] = c;
  std::stable_sort(perf_order_.begin(), perf_order_.end(),
                   [this](ClusterId a, ClusterId b) {
                     return cluster_peak_speed(a) > cluster_peak_speed(b);
                   });
}

ClusterId Machine::cluster_of(CoreId core) const {
  assert(core >= 0 && core < num_cores_);
  return core_cluster_[static_cast<std::size_t>(core)];
}

CoreType Machine::core_type(CoreId core) const {
  return spec_.clusters[static_cast<std::size_t>(cluster_of(core))].type;
}

CpuMask Machine::cluster_mask(ClusterId cluster) const {
  assert(cluster >= 0 && cluster < num_clusters());
  return CpuMask::range(cluster_first_core_[static_cast<std::size_t>(cluster)],
                        spec_.clusters[static_cast<std::size_t>(cluster)].core_count);
}

int Machine::cluster_core_count(ClusterId cluster) const {
  assert(cluster >= 0 && cluster < num_clusters());
  return spec_.clusters[static_cast<std::size_t>(cluster)].core_count;
}

int Machine::num_freq_levels(ClusterId cluster) const {
  return static_cast<int>(
      spec_.clusters[static_cast<std::size_t>(cluster)].freqs_ghz.size());
}

double Machine::freq_ghz_at_level(ClusterId cluster, int level) const {
  const auto& freqs = spec_.clusters[static_cast<std::size_t>(cluster)].freqs_ghz;
  const int clamped = std::clamp(level, 0, static_cast<int>(freqs.size()) - 1);
  return freqs[static_cast<std::size_t>(clamped)];
}

int Machine::freq_level(ClusterId cluster) const {
  return freq_level_[static_cast<std::size_t>(cluster)];
}

double Machine::freq_ghz(ClusterId cluster) const {
  return freq_ghz_at_level(cluster, freq_level(cluster));
}

double Machine::core_freq_ghz(CoreId core) const {
  return freq_ghz(cluster_of(core));
}

double Machine::cluster_peak_speed(ClusterId cluster) const {
  const ClusterSpec& cs = spec_.clusters[static_cast<std::size_t>(cluster)];
  return cs.ipc * cs.freqs_ghz.back();
}

Machine Machine::exynos5422() {
  MachineSpec spec;
  spec.name = "exynos5422";
  ClusterSpec little;
  little.type = CoreType::kLittle;
  little.core_count = 4;
  little.ipc = 2.0;
  for (double f = 0.8; f < 1.301; f += 0.1) little.freqs_ghz.push_back(f);
  ClusterSpec big;
  big.type = CoreType::kBig;
  big.core_count = 4;
  big.ipc = 3.0;
  for (double f = 0.8; f < 1.601; f += 0.1) big.freqs_ghz.push_back(f);
  spec.clusters = {little, big};
  return Machine(std::move(spec));
}

void Machine::set_freq_level(ClusterId cluster, int level) {
  assert(cluster >= 0 && cluster < num_clusters());
  const int max_level = num_freq_levels(cluster) - 1;
  const int clamped = std::clamp(level, 0, max_level);
  if (freq_level_[static_cast<std::size_t>(cluster)] != clamped) {
    freq_level_[static_cast<std::size_t>(cluster)] = clamped;
    ++dvfs_epoch_;
  }
}

void Machine::set_freq_ghz(ClusterId cluster, double ghz) {
  const auto& freqs = spec_.clusters[static_cast<std::size_t>(cluster)].freqs_ghz;
  int best = 0;
  double best_err = std::abs(freqs[0] - ghz);
  for (int i = 1; i < static_cast<int>(freqs.size()); ++i) {
    const double err = std::abs(freqs[static_cast<std::size_t>(i)] - ghz);
    // Strict < keeps the first (lowest) level on an exact-midpoint tie.
    if (err < best_err) {
      best = i;
      best_err = err;
    }
  }
  set_freq_level(cluster, best);
}

int Machine::max_freq_level(ClusterId cluster) const {
  return num_freq_levels(cluster) - 1;
}

void Machine::set_online_mask(CpuMask mask) {
  // cpu0 can never be offlined on Linux; preserve that invariant.
  mask.set(0);
  online_ = mask & all_mask();
}

double Machine::core_speed(CoreId core) const {
  const ClusterSpec& cs =
      spec_.clusters[static_cast<std::size_t>(cluster_of(core))];
  return cs.ipc * core_freq_ghz(core);
}

}  // namespace hars
