// Simulated heterogeneous multi-processing machine.
//
// Substitutes for the paper's ODROID-XU3 (Samsung Exynos 5422): two clusters
// of four cores each — in-order Cortex-A7 "LITTLE" (cpu0-3) and out-of-order
// Cortex-A15 "big" (cpu4-7) — with per-cluster DVFS (the paper's assumption:
// frequency is set per cluster, not per core). Core hotplug is modelled as
// an online mask, which is how the naive multi-application model (CONS-I)
// controls the global core count.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "hmp/cpu_mask.hpp"
#include "util/common.hpp"

namespace hars {

enum class CoreType { kLittle = 0, kBig = 1 };

const char* core_type_name(CoreType type);

/// Static description of one cluster.
struct ClusterSpec {
  CoreType type = CoreType::kLittle;
  int core_count = 4;
  std::vector<double> freqs_ghz;  ///< Available DVFS levels, ascending.
  double ipc = 2.0;  ///< Architectural width; work-units/s = ipc * f_ghz.
};

struct MachineSpec {
  std::string name;
  std::vector<ClusterSpec> clusters;
};

/// The machine: topology + mutable DVFS and hotplug state.
///
/// Core ids are dense: cluster 0 occupies [0, n0), cluster 1 [n0, n0+n1), ...
/// For the Exynos preset that matches Linux's numbering on the XU3
/// (little = cpu0-3, big = cpu4-7).
class Machine {
 public:
  explicit Machine(MachineSpec spec);

  /// ODROID-XU3 preset: 4x A7 @ 0.8-1.3 GHz (ipc 2) + 4x A15 @ 0.8-1.6 GHz
  /// (ipc 3); instruction-width ratio gives the paper's r0 = 3/2.
  static Machine exynos5422();

  const MachineSpec& spec() const { return spec_; }
  int num_clusters() const { return static_cast<int>(spec_.clusters.size()); }
  int num_cores() const { return num_cores_; }

  ClusterId cluster_of(CoreId core) const;
  CoreType core_type(CoreId core) const;
  CpuMask cluster_mask(ClusterId cluster) const;
  int cluster_core_count(ClusterId cluster) const;

  // --- Capability API (N-cluster machines) ---
  /// Peak per-core speed of a cluster: ipc * top frequency. The ordering
  /// key for the perf-ranked queries below.
  double cluster_peak_speed(ClusterId cluster) const;

  /// Cluster ids ordered fastest-first by peak per-core speed; ties break
  /// toward the lower cluster id, so the order is deterministic on
  /// symmetric machines.
  const std::vector<ClusterId>& clusters_by_perf() const {
    return perf_order_;
  }
  ClusterId fastest_cluster() const { return perf_order_.front(); }
  ClusterId slowest_cluster() const { return perf_order_.back(); }
  CpuMask fastest_mask() const { return cluster_mask(fastest_cluster()); }
  CpuMask slowest_mask() const { return cluster_mask(slowest_cluster()); }

  /// Legacy two-cluster big.LITTLE names; shims over the capability API
  /// (big = fastest cluster, little = slowest). Prefer
  /// fastest_cluster()/slowest_cluster() in new code.
  ClusterId little_cluster() const { return slowest_cluster(); }
  ClusterId big_cluster() const { return fastest_cluster(); }
  CpuMask big_mask() const { return fastest_mask(); }
  CpuMask little_mask() const { return slowest_mask(); }

  // --- DVFS (per-cluster, as on the XU3) ---
  int num_freq_levels(ClusterId cluster) const;
  double freq_ghz_at_level(ClusterId cluster, int level) const;
  int freq_level(ClusterId cluster) const;
  double freq_ghz(ClusterId cluster) const;
  double core_freq_ghz(CoreId core) const;

  /// Sets the cluster to the given DVFS level, clamped to the valid range.
  void set_freq_level(ClusterId cluster, int level);

  /// Monotonic counter bumped whenever any cluster's DVFS level actually
  /// changes — the incremental-update hook for per-tick frequency
  /// snapshots (SimEngine::TickScratch): consumers re-read frequencies
  /// only when the epoch moved instead of every tick.
  std::uint64_t dvfs_epoch() const { return dvfs_epoch_; }

  /// Sets the cluster to the closest available frequency. A target exactly
  /// midway between two levels snaps to the *lower* level — the tie-break
  /// is deterministic and biased toward less power, like cpufreq's
  /// closest-below resolution.
  void set_freq_ghz(ClusterId cluster, double ghz);

  /// Highest available level index.
  int max_freq_level(ClusterId cluster) const;

  // --- Hotplug-style online mask ---
  CpuMask online_mask() const { return online_; }
  bool is_online(CoreId core) const { return online_.test(core); }
  void set_online_mask(CpuMask mask);

  /// All cores of the machine.
  CpuMask all_mask() const { return CpuMask::range(0, num_cores_); }

  /// Baseline per-core speed in work-units/second for a neutral workload
  /// (ipc * frequency). Applications scale this by their own affinity for
  /// the core type.
  double core_speed(CoreId core) const;

 private:
  MachineSpec spec_;
  int num_cores_ = 0;
  std::vector<ClusterId> core_cluster_;  ///< Per core.
  std::vector<int> cluster_first_core_;
  std::vector<int> freq_level_;  ///< Per cluster.
  std::uint64_t dvfs_epoch_ = 1;  ///< Bumped on every level change.
  CpuMask online_;
  std::vector<ClusterId> perf_order_;  ///< Clusters, fastest first.
};

}  // namespace hars
