#include "hmp/platform_registry.hpp"

#include <utility>

namespace hars {

namespace {

/// The paper's platform. Built from Machine::exynos5422() — the single
/// source of truth for the topology — plus the legacy per-core-type power
/// defaults and base draw, so experiments through the registry are
/// bit-identical to the historical hard-wired preset.
PlatformSpec exynos5422_platform() {
  return PlatformSpec::from_machine(Machine::exynos5422(),
                                    /*base_watts=*/0.7);
}

/// A tri-cluster big.LITTLE.prime mobile SoC in the Snapdragon 855 mold:
/// 4 efficiency cores, 3 big cores, 1 higher-clocked prime core. HARS's
/// two-pool model maps onto it as prime (fastest) vs. little (slowest),
/// with the middle cluster serving baseline/OS-scheduled load.
PlatformSpec sd855_platform() {
  PowerParams prime = PowerParams::cortex_a15();
  prime.c_dyn = 0.34;
  prime.c_leak = 0.18;
  return PlatformBuilder()
      .name("sd855")
      .cluster(CoreType::kLittle, 4, 2.0)
      .freq_range_ghz(0.6, 1.81, 0.3)  // 0.6 .. 1.8, 5 levels
      .cluster(CoreType::kBig, 3, 3.0)
      .freq_range_ghz(0.8, 2.41, 0.4)  // 0.8 .. 2.4, 5 levels
      .cluster(CoreType::kBig, 1, 3.5)
      .freq_range_ghz(1.0, 2.81, 0.6)  // 1.0 .. 2.8, 4 levels
      .power(prime)
      .base_watts(0.8)
      .build();
}

/// A symmetric 2x8 server part: two identical 8-core clusters with
/// per-cluster DVFS. The perf-ranked capability API ties toward cluster 0,
/// so HARS's "fast pool" is cluster 0 and its "slow pool" cluster 1.
PlatformSpec server2x8_platform() {
  PowerParams socket;
  socket.c_dyn = 0.90;
  socket.c_leak = 0.50;
  socket.c_mem = 0.12;
  socket.k_therm = 0.015;
  return PlatformBuilder()
      .name("server2x8")
      .cluster(CoreType::kBig, 8, 4.0)
      .freq_range_ghz(1.2, 3.01, 0.3)  // 1.2 .. 3.0, 7 levels
      .power(socket)
      .cluster(CoreType::kBig, 8, 4.0)
      .freq_range_ghz(1.2, 3.01, 0.3)
      .power(socket)
      .base_watts(20.0)
      .build();
}

/// Four graded 4-core clusters (16 cores): a many-core part with a smooth
/// efficiency/performance spectrum. HARS adapts over the extremes; the
/// middle clusters carry OS-scheduled load.
PlatformSpec manycore4x4_platform() {
  PowerParams mid = PowerParams::cortex_a15();
  mid.c_dyn = 0.20;
  mid.c_leak = 0.10;
  return PlatformBuilder()
      .name("manycore4x4")
      .cluster(CoreType::kLittle, 4, 1.5)
      .freq_range_ghz(0.5, 1.51, 0.25)  // 0.5 .. 1.5, 5 levels
      .cluster(CoreType::kLittle, 4, 2.0)
      .freq_range_ghz(0.6, 1.81, 0.3)  // 0.6 .. 1.8, 5 levels
      .cluster(CoreType::kBig, 4, 2.5)
      .freq_range_ghz(0.8, 2.01, 0.3)  // 0.8 .. 2.0, 5 levels
      .power(mid)
      .cluster(CoreType::kBig, 4, 3.0)
      .freq_range_ghz(1.0, 2.21, 0.3)  // 1.0 .. 2.2, 5 levels
      .base_watts(1.2)
      .build();
}

}  // namespace

PlatformRegistry::PlatformRegistry() {
  register_platform(exynos5422_platform());
  register_platform(sd855_platform());
  register_platform(server2x8_platform());
  register_platform(manycore4x4_platform());
}

PlatformRegistry& PlatformRegistry::instance() {
  static PlatformRegistry registry;
  return registry;
}

void PlatformRegistry::register_platform(PlatformSpec spec, bool replace) {
  spec.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  for (PlatformSpec& entry : entries_) {
    if (entry.name == spec.name) {
      if (!replace) {
        throw PlatformConfigError("platform \"" + spec.name +
                                  "\" is already registered");
      }
      entry = std::move(spec);
      return;
    }
  }
  entries_.push_back(std::move(spec));
}

const PlatformSpec* PlatformRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const PlatformSpec& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

PlatformSpec PlatformRegistry::get(std::string_view name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const PlatformSpec& entry : entries_) {
      if (entry.name == name) return entry;
    }
  }
  std::string message = "unknown platform \"";
  message += name;
  message += "\"; known:";
  for (const std::string& known : names()) {
    message += ' ';
    message += known;
  }
  throw PlatformConfigError(message);
}

std::vector<std::string> PlatformRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const PlatformSpec& entry : entries_) out.push_back(entry.name);
  return out;
}

}  // namespace hars
