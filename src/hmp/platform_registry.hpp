// PlatformRegistry: the string-keyed catalogue of platforms, modeled on
// VariantRegistry. Built-in presets register at construction:
//
//   exynos5422   the paper's ODROID-XU3 part (bit-identical to
//                Machine::exynos5422() + the legacy power defaults)
//   sd855        a tri-cluster big.LITTLE.prime mobile SoC (4+3+1)
//   server2x8    a symmetric two-socket-style 2x8 server part
//   manycore4x4  four graded 4-core clusters (16 cores)
//
// Every accessor locks, so concurrent Experiment::run() calls from sweep
// workers can resolve platforms safely. register_platform throws on a
// duplicate name unless replace is requested; register new platforms
// before launching a parallel sweep.
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hmp/platform_spec.hpp"

namespace hars {

class PlatformRegistry {
 public:
  /// The process-wide registry with the built-in presets pre-registered
  /// (C++ magic static; construction is once-only).
  static PlatformRegistry& instance();

  /// Registers `spec` (validate()d) under spec.name. Throws
  /// PlatformConfigError when the name is already registered and
  /// `replace` is false.
  void register_platform(PlatformSpec spec, bool replace = false);

  /// Null when `name` is unknown. The pointer stays valid across later
  /// registrations (deque storage) but not across a replace of the same
  /// name; prefer get() from sweep workers.
  const PlatformSpec* find(std::string_view name) const;

  /// Copy of the named platform; throws PlatformConfigError listing the
  /// known names when `name` is unknown.
  PlatformSpec get(std::string_view name) const;

  /// All registered names, in registration order.
  std::vector<std::string> names() const;

 private:
  PlatformRegistry();
  mutable std::mutex mutex_;
  std::deque<PlatformSpec> entries_;
};

/// RAII registration helper so platforms can self-register from any
/// translation unit:
///   static PlatformRegistrar reg(my_platform_spec());
struct PlatformRegistrar {
  explicit PlatformRegistrar(PlatformSpec spec, bool replace = false) {
    PlatformRegistry::instance().register_platform(std::move(spec), replace);
  }
};

}  // namespace hars
