#include "hmp/platform_spec.hpp"

#include <algorithm>
#include <climits>
#include <fstream>
#include <sstream>

#include "hmp/cpu_mask.hpp"

namespace hars {

void PlatformSpec::validate() const {
  if (name.empty()) {
    throw PlatformConfigError("platform needs a non-empty name");
  }
  if (clusters.size() < 2) {
    // Every consumer splits the machine into a fast and a slow pool
    // (fastest_cluster() != slowest_cluster()); a single-cluster platform
    // would make the pools alias the same cores.
    throw PlatformConfigError("platform \"" + name +
                              "\" needs at least two clusters (a fast and "
                              "a slow pool)");
  }
  int total_cores = 0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const std::string where =
        "platform \"" + name + "\" cluster " + std::to_string(c);
    const ClusterSpec& topo = clusters[c].topology;
    if (topo.core_count <= 0) {
      throw PlatformConfigError(where + ": core_count must be positive");
    }
    if (!(topo.ipc > 0.0)) {
      throw PlatformConfigError(where + ": ipc must be positive");
    }
    if (topo.freqs_ghz.empty()) {
      throw PlatformConfigError(where + ": DVFS ladder is empty");
    }
    if (!(topo.freqs_ghz.front() > 0.0)) {
      throw PlatformConfigError(where + ": frequencies must be positive");
    }
    for (std::size_t i = 1; i < topo.freqs_ghz.size(); ++i) {
      if (!(topo.freqs_ghz[i] > topo.freqs_ghz[i - 1])) {
        throw PlatformConfigError(where +
                                  ": DVFS ladder must be strictly ascending");
      }
    }
    const PowerParams& p = clusters[c].power;
    if (p.c_dyn < 0.0 || p.c_leak < 0.0 || p.c_mem < 0.0 || p.k_therm < 0.0) {
      throw PlatformConfigError(where +
                                ": power parameters must be non-negative");
    }
    total_cores += topo.core_count;
  }
  // The app execution model keys per-core speed on CoreType (SpeedModel
  // carries one ipc per type), so a "little" cluster that out-peaks a
  // "big" cluster would invert the perf-ranked pool assignment relative
  // to how applications actually execute. Reject the inversion here.
  double min_big_peak = 0.0;
  double max_little_peak = 0.0;
  bool any_big = false;
  bool any_little = false;
  for (const PlatformCluster& cluster : clusters) {
    const ClusterSpec& topo = cluster.topology;
    const double peak = topo.ipc * topo.freqs_ghz.back();
    if (topo.type == CoreType::kBig) {
      min_big_peak = any_big ? std::min(min_big_peak, peak) : peak;
      any_big = true;
    } else {
      max_little_peak = any_little ? std::max(max_little_peak, peak) : peak;
      any_little = true;
    }
  }
  // >= — an exact tie is rejected too: the perf sort's index tie-break
  // could then rank a little cluster as the fastest pool.
  if (any_big && any_little && max_little_peak >= min_big_peak) {
    throw PlatformConfigError(
        "platform \"" + name +
        "\": a little cluster matches or out-peaks a big cluster "
        "(ipc * top freq); the execution model keys speed on the core "
        "type, so big clusters must be strictly faster than little ones");
  }
  if (total_cores > CpuMask::kMaxCpus) {
    throw PlatformConfigError("platform \"" + name + "\" has " +
                              std::to_string(total_cores) + " cores; max " +
                              std::to_string(CpuMask::kMaxCpus));
  }
  if (base_watts < 0.0) {
    throw PlatformConfigError("platform \"" + name +
                              "\": base_watts must be non-negative");
  }
  if (default_r0 < 0.0) {
    throw PlatformConfigError("platform \"" + name +
                              "\": default_r0 must be non-negative");
  }
}

MachineSpec PlatformSpec::machine_spec() const {
  validate();
  MachineSpec spec;
  spec.name = name;
  spec.clusters.reserve(clusters.size());
  for (const PlatformCluster& cluster : clusters) {
    spec.clusters.push_back(cluster.topology);
  }
  return spec;
}

Machine PlatformSpec::make_machine() const { return Machine(machine_spec()); }

std::vector<PowerParams> PlatformSpec::cluster_power() const {
  std::vector<PowerParams> params;
  params.reserve(clusters.size());
  for (const PlatformCluster& cluster : clusters) {
    params.push_back(cluster.power);
  }
  return params;
}

double PlatformSpec::assumed_ratio() const {
  if (default_r0 > 0.0) return default_r0;
  // Ask the materialized machine for its perf ranking so the derived r0
  // always names the exact cluster pair the managers adapt (single source
  // of truth; validates as a side effect).
  const Machine machine = make_machine();
  const double slow_ipc =
      clusters[static_cast<std::size_t>(machine.slowest_cluster())]
          .topology.ipc;
  const double fast_ipc =
      clusters[static_cast<std::size_t>(machine.fastest_cluster())]
          .topology.ipc;
  return slow_ipc > 0.0 ? fast_ipc / slow_ipc : 1.0;
}

std::string PlatformSpec::signature() const {
  std::string sig = name;
  for (const PlatformCluster& cluster : clusters) {
    const ClusterSpec& topo = cluster.topology;
    sig += '|';
    sig += std::to_string(static_cast<int>(topo.type)) + ':' +
           std::to_string(topo.core_count) + ':' + std::to_string(topo.ipc);
    for (double f : topo.freqs_ghz) sig += ',' + std::to_string(f);
    const PowerParams& p = cluster.power;
    sig += ';' + std::to_string(p.c_dyn) + ':' + std::to_string(p.c_leak) +
           ':' + std::to_string(p.c_mem) + ':' + std::to_string(p.k_therm);
  }
  sig += "|base=" + std::to_string(base_watts);
  sig += "|r0=" + std::to_string(default_r0);
  return sig;
}

PlatformSpec PlatformSpec::from_machine(const Machine& machine,
                                        double base_watts) {
  PlatformSpec spec;
  spec.name = machine.spec().name.empty() ? "custom" : machine.spec().name;
  spec.base_watts = base_watts;
  for (const ClusterSpec& topo : machine.spec().clusters) {
    spec.clusters.push_back({topo, PowerParams::for_type(topo.type)});
  }
  return spec;
}

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) fields.push_back(field);
  return fields;
}

double parse_double(const std::string& text, const std::string& what,
                    int line_no) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw PlatformConfigError("platform csv line " + std::to_string(line_no) +
                              ": bad " + what + " \"" + text + "\"");
  }
}

int parse_int(const std::string& text, const std::string& what, int line_no) {
  try {
    std::size_t used = 0;
    const long value = std::stol(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    if (value < INT_MIN || value > INT_MAX) throw std::out_of_range(text);
    return static_cast<int>(value);
  } catch (const std::exception&) {
    throw PlatformConfigError("platform csv line " + std::to_string(line_no) +
                              ": bad " + what + " \"" + text + "\"");
  }
}

}  // namespace

PlatformSpec PlatformSpec::from_csv(std::istream& in) {
  PlatformSpec spec;
  bool saw_platform = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Trim leading whitespace; skip blanks and comments.
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    const std::vector<std::string> f = split(line.substr(start), ',');
    if (f.front() == "platform") {
      if (f.size() < 3 || f.size() > 4) {
        throw PlatformConfigError(
            "platform csv line " + std::to_string(line_no) +
            ": expected platform,NAME,BASE_WATTS[,R0]");
      }
      spec.name = f[1];
      spec.base_watts = parse_double(f[2], "base_watts", line_no);
      if (f.size() == 4) {
        spec.default_r0 = parse_double(f[3], "default_r0", line_no);
      }
      saw_platform = true;
    } else if (f.front() == "cluster") {
      if (f.size() != 9) {
        throw PlatformConfigError(
            "platform csv line " + std::to_string(line_no) +
            ": expected cluster,big|little,CORES,IPC,C_DYN,C_LEAK,C_MEM,"
            "K_THERM,F0;F1;...");
      }
      PlatformCluster cluster;
      if (f[1] == "big") {
        cluster.topology.type = CoreType::kBig;
      } else if (f[1] == "little") {
        cluster.topology.type = CoreType::kLittle;
      } else {
        throw PlatformConfigError("platform csv line " +
                                  std::to_string(line_no) +
                                  ": core type must be big or little");
      }
      cluster.topology.core_count = parse_int(f[2], "core count", line_no);
      cluster.topology.ipc = parse_double(f[3], "ipc", line_no);
      cluster.power.c_dyn = parse_double(f[4], "c_dyn", line_no);
      cluster.power.c_leak = parse_double(f[5], "c_leak", line_no);
      cluster.power.c_mem = parse_double(f[6], "c_mem", line_no);
      cluster.power.k_therm = parse_double(f[7], "k_therm", line_no);
      cluster.topology.freqs_ghz.clear();
      for (const std::string& freq : split(f[8], ';')) {
        cluster.topology.freqs_ghz.push_back(
            parse_double(freq, "frequency", line_no));
      }
      spec.clusters.push_back(std::move(cluster));
    } else {
      throw PlatformConfigError("platform csv line " +
                                std::to_string(line_no) +
                                ": unknown record \"" + f.front() + "\"");
    }
  }
  if (!saw_platform) {
    throw PlatformConfigError("platform csv: missing platform,NAME,... line");
  }
  spec.validate();
  return spec;
}

PlatformSpec PlatformSpec::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw PlatformConfigError("cannot read platform file \"" + path + "\"");
  }
  return from_csv(in);
}

PlatformBuilder& PlatformBuilder::name(std::string platform_name) {
  spec_.name = std::move(platform_name);
  return *this;
}

PlatformBuilder& PlatformBuilder::cluster(CoreType type, int core_count,
                                          double ipc) {
  PlatformCluster cluster;
  cluster.topology.type = type;
  cluster.topology.core_count = core_count;
  cluster.topology.ipc = ipc;
  cluster.topology.freqs_ghz.clear();
  cluster.power = PowerParams::for_type(type);
  spec_.clusters.push_back(std::move(cluster));
  return *this;
}

PlatformBuilder& PlatformBuilder::freqs_ghz(std::vector<double> freqs) {
  if (spec_.clusters.empty()) {
    throw PlatformConfigError("freqs_ghz() requires a cluster() first");
  }
  spec_.clusters.back().topology.freqs_ghz = std::move(freqs);
  return *this;
}

PlatformBuilder& PlatformBuilder::freq_range_ghz(double lo_ghz,
                                                 double below_ghz,
                                                 double step_ghz) {
  if (spec_.clusters.empty()) {
    throw PlatformConfigError("freq_range_ghz() requires a cluster() first");
  }
  if (!(step_ghz > 0.0)) {
    throw PlatformConfigError("freq_range_ghz() step must be positive");
  }
  std::vector<double>& freqs = spec_.clusters.back().topology.freqs_ghz;
  freqs.clear();
  for (double f = lo_ghz; f < below_ghz; f += step_ghz) freqs.push_back(f);
  return *this;
}

PlatformBuilder& PlatformBuilder::power(PowerParams params) {
  if (spec_.clusters.empty()) {
    throw PlatformConfigError("power() requires a cluster() first");
  }
  spec_.clusters.back().power = params;
  return *this;
}

PlatformBuilder& PlatformBuilder::base_watts(double watts) {
  spec_.base_watts = watts;
  return *this;
}

PlatformBuilder& PlatformBuilder::assumed_ratio(double r0) {
  spec_.default_r0 = r0;
  return *this;
}

PlatformSpec PlatformBuilder::build() const {
  spec_.validate();
  return spec_;
}

}  // namespace hars
