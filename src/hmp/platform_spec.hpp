// Declarative platform description: the one value type that carries
// everything the stack needs to instantiate a machine — topology
// (clusters, DVFS ladders, ipc), the per-cluster power-model parameters,
// the platform base draw, and calibration defaults (the managers' assumed
// fastest:slowest speed ratio r0).
//
// A PlatformSpec is plain data: build one with PlatformBuilder, load one
// from a CSV file (PlatformSpec::from_file), or fetch a preset from the
// PlatformRegistry by name ("exynos5422", "sd855", ...). validate() is
// the single gate every consumer relies on; make_machine() materializes
// the mutable Machine and SimEngine accepts the spec directly so the
// power model picks up the carried parameters instead of the legacy
// per-core-type dispatch.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "hmp/machine.hpp"
#include "hmp/power_model.hpp"

namespace hars {

class SysfsIo;  // backend/sysfs.hpp

/// Invalid platform descriptions (builder, CSV loader, registry) are
/// reported through this exception.
class PlatformConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One cluster of a platform: its topology plus its power parameters.
struct PlatformCluster {
  ClusterSpec topology;
  PowerParams power;
};

struct PlatformSpec {
  std::string name;
  std::vector<PlatformCluster> clusters;
  double base_watts = 0.7;  ///< Constant platform floor (board/memory).
  /// Calibration default for the runtime managers' assumed
  /// fastest:slowest per-core speed ratio. 0 = derive from the ipc ratio
  /// of the fastest and slowest clusters (the paper's instruction-width
  /// argument generalized).
  double default_r0 = 0.0;

  /// Throws PlatformConfigError on an inconsistent description: no name,
  /// no clusters, non-positive core counts or ipc, empty or non-ascending
  /// DVFS ladders, non-positive frequencies, negative power parameters.
  void validate() const;

  /// The immutable topology (validate()d first).
  MachineSpec machine_spec() const;

  /// Materializes the mutable machine (validate()d first).
  Machine make_machine() const;

  /// Per-cluster power parameters, in cluster order.
  std::vector<PowerParams> cluster_power() const;

  /// The assumed r0: default_r0 when set, else the ipc ratio of the
  /// fastest and slowest clusters (3/2 = the paper's value on the Exynos).
  /// Like the paper's instruction-width argument this is an *architectural
  /// assumption*, deliberately allowed to diverge from any application's
  /// measured ratio (§5.1.2's blackscholes misprediction); experiments can
  /// override it per run (.assumed_ratio) or learn it online
  /// (.learn_ratio).
  double assumed_ratio() const;

  /// A stable content signature for memoization keys: two platforms with
  /// equal signatures behave identically.
  std::string signature() const;

  /// Wraps an existing Machine, attaching the legacy per-core-type default
  /// power parameters (PowerParams::for_type) and base draw.
  static PlatformSpec from_machine(const Machine& machine,
                                   double base_watts = 0.7);

  /// Parses the platform CSV format (see README "Platforms"):
  ///   # comment / empty lines ignored
  ///   platform,NAME,BASE_WATTS[,R0]
  ///   cluster,big|little,CORES,IPC,C_DYN,C_LEAK,C_MEM,K_THERM,F0;F1;...
  /// Throws PlatformConfigError on malformed input; the result is
  /// validate()d.
  static PlatformSpec from_csv(std::istream& in);

  /// Reads `path` and parses it with from_csv.
  static PlatformSpec from_file(const std::string& path);

  /// Probes a (real or fixture) sysfs tree and self-describes the
  /// topology: clusters from cpufreq `related_cpus` groups, DVFS ladders
  /// from `scaling_available_frequencies` (kHz, sorted ascending; falls
  /// back to the cpuinfo min/max pair), ipc from `cpu_capacity` / 512,
  /// big/little from peak capability. Sysfs carries no power model, so
  /// clusters get the per-core-type default parameters — override with an
  /// explicit platform when real coefficients matter. Defined in
  /// src/backend/sysfs_probe.cpp; throws PlatformConfigError when the
  /// tree has no usable cpus.
  static PlatformSpec from_sysfs(const SysfsIo& sysfs,
                                 const std::string& name = "sysfs-probe");
};

/// Fluent construction mirroring ExperimentBuilder:
///
///   PlatformSpec spec = PlatformBuilder()
///                           .name("laptop-2P6E")
///                           .cluster(CoreType::kLittle, 6, 2.0)
///                           .freq_range_ghz(0.8, 2.01, 0.2)
///                           .cluster(CoreType::kBig, 2, 4.0)
///                           .freq_range_ghz(1.0, 3.61, 0.2)
///                           .build();  // validates
class PlatformBuilder {
 public:
  PlatformBuilder& name(std::string platform_name);

  /// Starts a new cluster; the ladder/power setters below apply to it.
  /// Power parameters default to the core type's legacy values.
  PlatformBuilder& cluster(CoreType type, int core_count, double ipc);

  /// Explicit DVFS ladder (ascending GHz) for the current cluster.
  PlatformBuilder& freqs_ghz(std::vector<double> freqs);

  /// DVFS ladder lo, lo+step, ... while < below (the presets' idiom; the
  /// accumulation form keeps ladders bit-identical to handwritten loops).
  PlatformBuilder& freq_range_ghz(double lo_ghz, double below_ghz,
                                  double step_ghz);

  /// Power parameters of the current cluster.
  PlatformBuilder& power(PowerParams params);

  PlatformBuilder& base_watts(double watts);
  PlatformBuilder& assumed_ratio(double r0);

  /// Validates and returns the finished spec.
  PlatformSpec build() const;

 private:
  PlatformSpec spec_;
};

}  // namespace hars
