#include "hmp/power_model.hpp"

#include <cassert>
#include <cmath>

namespace hars {

PowerParams PowerParams::cortex_a15() {
  PowerParams p;
  p.c_dyn = 0.30;   // ~1.2 W/core at 1.6 GHz -> ~4.8 W dynamic for 4 cores.
  p.c_leak = 0.15;  // ~0.24 W at 1.6 GHz.
  p.c_mem = 0.06;
  p.k_therm = 0.02;
  return p;
}

PowerParams PowerParams::cortex_a7() {
  PowerParams p;
  p.c_dyn = 0.10;   // ~0.22 W/core at 1.3 GHz.
  p.c_leak = 0.05;
  p.c_mem = 0.03;
  p.k_therm = 0.01;
  return p;
}

PowerParams PowerParams::for_type(CoreType type) {
  return type == CoreType::kBig ? cortex_a15() : cortex_a7();
}

PowerModel::PowerModel(const Machine& machine) : machine_(&machine) {
  params_.reserve(static_cast<std::size_t>(machine.num_clusters()));
  for (int c = 0; c < machine.num_clusters(); ++c) {
    params_.push_back(
        PowerParams::for_type(machine.spec().clusters[static_cast<std::size_t>(c)].type));
  }
}

PowerModel::PowerModel(const Machine& machine, std::vector<PowerParams> per_cluster)
    : machine_(&machine), params_(std::move(per_cluster)) {
  assert(static_cast<int>(params_.size()) == machine.num_clusters());
}

double PowerModel::cluster_power(ClusterId cluster, double busy_sum) const {
  // One formula, two entry points: delegating keeps this and the
  // snapshot-fed fast path (cluster_power_given) textually identical,
  // which the tick paths' bit-identity guarantee depends on.
  const double f = machine_->freq_ghz(cluster);
  const bool any_online =
      (machine_->online_mask() & machine_->cluster_mask(cluster)).any();
  return cluster_power_given(cluster, f, any_online, busy_sum);
}

double PowerModel::total_power(const std::vector<double>& core_busy) const {
  assert(static_cast<int>(core_busy.size()) == machine_->num_cores());
  double total = base_watts_;
  for (int c = 0; c < machine_->num_clusters(); ++c) {
    double busy_sum = 0.0;
    const CpuMask mask = machine_->cluster_mask(c);
    for (CoreId core = mask.first(); core >= 0; core = mask.next(core)) {
      busy_sum += core_busy[static_cast<std::size_t>(core)];
    }
    total += cluster_power(c, busy_sum);
  }
  return total;
}

}  // namespace hars
