// Ground-truth power model for the simulated machine.
//
// Stands in for the physical power draw the ODROID-XU3's INA231 sensors
// observe. Per cluster:
//
//   P = sum_over_busy_cores( c_dyn * f^3 * busy )        (dynamic, V ~ f)
//     + c_leak * f * (1 + k_therm * busy_sum * f^2)      (leakage + thermal)
//     + c_mem * busy_sum                                  (uncore/memory)
//
// The thermal term makes the truth deliberately *nonlinear* in
// (cores_used * utilization), so the paper's linear-regression power
// estimator (Eq. 3.1/3.2) has realistic residuals instead of fitting the
// simulator exactly. Constants are calibrated so the Exynos preset lands
// near published XU3 figures (~5-6 W big cluster flat out, ~1 W little).
#pragma once

#include <vector>

#include "hmp/machine.hpp"

namespace hars {

struct PowerParams {
  double c_dyn = 0.0;    ///< W per core per GHz^3 at 100% busy.
  double c_leak = 0.0;   ///< W per GHz for the whole cluster when online.
  double c_mem = 0.0;    ///< W per fully-busy core (uncore/memory traffic).
  double k_therm = 0.0;  ///< Leakage inflation per (busy core * GHz^2).

  // Legacy per-core-type defaults, kept as thin shims for out-of-tree
  // callers. Canonically, power parameters are carried per cluster by a
  // PlatformSpec (hmp/platform_spec.hpp); these values are what
  // PlatformSpec::from_machine attaches when wrapping a bare Machine.
  static PowerParams cortex_a15();
  static PowerParams cortex_a7();
  static PowerParams for_type(CoreType type);
};

class PowerModel {
 public:
  /// Uses the legacy per-core-type default parameters for the machine's
  /// clusters. Prefer constructing through a PlatformSpec (SimEngine's
  /// platform constructor), which carries explicit per-cluster params.
  explicit PowerModel(const Machine& machine);

  PowerModel(const Machine& machine, std::vector<PowerParams> per_cluster);

  /// Instantaneous power of `cluster` given the sum of per-core busy
  /// fractions in [0, core_count]. A fully offline cluster (no online
  /// cores) draws nothing.
  double cluster_power(ClusterId cluster, double busy_sum) const;

  /// cluster_power with the machine state pre-read: `f` must equal the
  /// cluster's current freq_ghz and `any_online` whether any of its cores
  /// is online. Same expression, same operand order — bit-identical — but
  /// callers that snapshot the machine once per tick (SimEngine's
  /// TickScratch) skip the per-call machine queries.
  double cluster_power_given(ClusterId cluster, double f, bool any_online,
                             double busy_sum) const {
    const PowerParams& p = params_[static_cast<std::size_t>(cluster)];
    if (!any_online) return 0.0;
    const double dynamic = p.c_dyn * f * f * f * busy_sum;
    const double leakage = p.c_leak * f * (1.0 + p.k_therm * busy_sum * f * f);
    const double memory = p.c_mem * busy_sum;
    return dynamic + leakage + memory;
  }

  /// Total machine power for per-core busy fractions, including the
  /// platform base draw (memory/interconnect/board) that the paper's
  /// perf-per-watt denominators implicitly carry. The per-*cluster*
  /// estimator (Eq. 3.1/3.2) never models this floor; it only matters for
  /// the measured metric.
  double total_power(const std::vector<double>& core_busy) const;

  /// Constant platform floor in watts.
  double base_watts() const { return base_watts_; }
  void set_base_watts(double watts) { base_watts_ = watts; }

  const PowerParams& params(ClusterId cluster) const {
    return params_[static_cast<std::size_t>(cluster)];
  }

 private:
  const Machine* machine_;
  std::vector<PowerParams> params_;
  double base_watts_ = 0.7;
};

}  // namespace hars
