#include "hmp/power_sensor.hpp"

#include <cassert>

#include "util/alloc_guard.hpp"
#include "util/hot_path.hpp"

namespace hars {

PowerSensor::PowerSensor(const Machine& machine, const PowerModel& model,
                         TimeUs sample_period_us, double noise_stddev,
                         std::uint64_t seed)
    : machine_(&machine),
      model_(&model),
      sample_period_us_(sample_period_us),
      noise_stddev_(noise_stddev),
      rng_(seed),
      cluster_energy_j_(static_cast<std::size_t>(machine.num_clusters()), 0.0),
      scratch_watts_(static_cast<std::size_t>(machine.num_clusters()), 0.0),
      next_sample_at_(sample_period_us) {
  assert(sample_period_us > 0);
}

void PowerSensor::tick(TimeUs now, TimeUs tick_us,
                       const std::vector<double>& core_busy) {
  const double dt_sec = us_to_sec(tick_us);
  std::vector<double> cluster_watts(
      static_cast<std::size_t>(machine_->num_clusters()), 0.0);
  double total = 0.0;
  for (int c = 0; c < machine_->num_clusters(); ++c) {
    double busy_sum = 0.0;
    const CpuMask mask = machine_->cluster_mask(c);
    for (CoreId core = mask.first(); core >= 0; core = mask.next(core)) {
      busy_sum += core_busy[static_cast<std::size_t>(core)];
    }
    const double watts = model_->cluster_power(c, busy_sum);
    cluster_watts[static_cast<std::size_t>(c)] = watts;
    cluster_energy_j_[static_cast<std::size_t>(c)] += watts * dt_sec;
    total += watts;
  }
  base_energy_j_ += model_->base_watts() * dt_sec;
  total += model_->base_watts();
  last_instant_power_ = total;

  maybe_sample(now, cluster_watts);
}

HARS_HOT void PowerSensor::tick_presummed(TimeUs now, TimeUs tick_us,
                                 const std::vector<double>& cluster_busy,
                                 const std::vector<double>& cluster_freq,
                                 const std::vector<char>& cluster_online) {
  const double dt_sec = us_to_sec(tick_us);
  double total = 0.0;
  for (int c = 0; c < machine_->num_clusters(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const double watts = model_->cluster_power_given(
        c, cluster_freq[i], cluster_online[i] != 0, cluster_busy[i]);
    scratch_watts_[i] = watts;
    cluster_energy_j_[i] += watts * dt_sec;
    total += watts;
  }
  base_energy_j_ += model_->base_watts() * dt_sec;
  total += model_->base_watts();
  last_instant_power_ = total;

  maybe_sample(now, scratch_watts_);
}

void PowerSensor::maybe_sample(TimeUs now,
                               const std::vector<double>& cluster_watts) {
  if (now < next_sample_at_) return;
  // Sample capture happens once per sampling period (~every 264 default
  // ticks) and retains history by design: a declared amortized allocator.
  allocg::AllowScope allow("power-sensor sample capture");
  PowerSample sample;
  sample.time = now;
  sample.cluster_watts.reserve(cluster_watts.size());
  double noisy_total = 0.0;
  for (double w : cluster_watts) {
    const double noisy = w * (1.0 + rng_.normal(0.0, noise_stddev_));
    sample.cluster_watts.push_back(noisy);
    noisy_total += noisy;
  }
  sample.total_watts = noisy_total;
  samples_.push_back(std::move(sample));
  next_sample_at_ += sample_period_us_;
}

double PowerSensor::cluster_energy_j(ClusterId cluster) const {
  return cluster_energy_j_[static_cast<std::size_t>(cluster)];
}

double PowerSensor::total_energy_j() const {
  double total = base_energy_j_;
  for (double e : cluster_energy_j_) total += e;
  return total;
}

double PowerSensor::average_power_w(TimeUs elapsed_us) const {
  if (elapsed_us <= 0) return 0.0;
  return total_energy_j() / us_to_sec(elapsed_us);
}

void PowerSensor::reset() {
  for (double& e : cluster_energy_j_) e = 0.0;
  base_energy_j_ = 0.0;
  samples_.clear();
  next_sample_at_ = sample_period_us_;
  last_instant_power_ = 0.0;
}

}  // namespace hars
