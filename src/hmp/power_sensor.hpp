// Sampled power sensor, modelled on the ODROID-XU3's INA231 current/voltage
// monitors: per-cluster readings at a fixed sampling period (the paper
// reports 263,808 us). Readings carry multiplicative noise; energy is
// integrated exactly from the ground-truth model each tick so perf/watt
// metrics do not depend on sampling luck, while estimator *training* data
// (PowerProfiler) goes through the noisy sampled path like the paper's.
#pragma once

#include <vector>

#include "hmp/power_model.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace hars {

struct PowerSample {
  TimeUs time = 0;
  std::vector<double> cluster_watts;  ///< One entry per cluster.
  double total_watts = 0.0;
};

class PowerSensor {
 public:
  static constexpr TimeUs kDefaultSamplePeriodUs = 263'808;

  PowerSensor(const Machine& machine, const PowerModel& model,
              TimeUs sample_period_us = kDefaultSamplePeriodUs,
              double noise_stddev = 0.01, std::uint64_t seed = 42);

  /// Advances the sensor by one simulator tick with the given per-core
  /// busy fractions. Integrates energy and takes samples as the sampling
  /// period elapses.
  void tick(TimeUs now, TimeUs tick_us, const std::vector<double>& core_busy);

  /// Allocation-free form of tick() for the engine's TickScratch path:
  /// `cluster_busy` carries the per-cluster busy sums already accumulated
  /// (in ascending core order, matching tick()'s own mask walk), and
  /// `cluster_freq` / `cluster_online` the per-cluster DVFS frequency and
  /// any-core-online snapshot, so this produces bit-identical
  /// energy/samples without the per-tick scratch vector and per-call
  /// machine queries tick() performs.
  void tick_presummed(TimeUs now, TimeUs tick_us,
                      const std::vector<double>& cluster_busy,
                      const std::vector<double>& cluster_freq,
                      const std::vector<char>& cluster_online);

  /// Exact accumulated energy in joules (per cluster / total).
  double cluster_energy_j(ClusterId cluster) const;
  double total_energy_j() const;

  /// Average power over the whole run so far.
  double average_power_w(TimeUs elapsed_us) const;

  /// Most recent noisy sample (empty until the first period elapses).
  const std::vector<PowerSample>& samples() const { return samples_; }

  /// The latest instantaneous (un-sampled, noiseless) total power.
  double instantaneous_power_w() const { return last_instant_power_; }

  void reset();

 private:
  const Machine* machine_;
  const PowerModel* model_;
  TimeUs sample_period_us_;
  double noise_stddev_;
  Rng rng_;

  /// Takes a noisy sample of `cluster_watts` when the period elapsed.
  void maybe_sample(TimeUs now, const std::vector<double>& cluster_watts);

  std::vector<double> cluster_energy_j_;
  std::vector<double> scratch_watts_;  ///< Per-tick scratch (presummed path).
  double base_energy_j_ = 0.0;
  TimeUs next_sample_at_;
  std::vector<PowerSample> samples_;
  double last_instant_power_ = 0.0;
};

}  // namespace hars
