#include "hmp/sim_engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <string>

#include "hmp/platform_spec.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "util/alloc_guard.hpp"
#include "util/hot_path.hpp"

namespace hars {

PowerModel SimEngine::make_power_model(const Machine& machine,
                                       const PlatformSpec* platform) {
  if (platform == nullptr) return PowerModel(machine);
  PowerModel model(machine, platform->cluster_power());
  model.set_base_watts(platform->base_watts);
  return model;
}

SimEngine::SimEngine(Machine machine, const PlatformSpec* platform,
                     std::unique_ptr<Scheduler> scheduler, SimConfig config)
    : machine_(std::move(machine)),
      power_model_(make_power_model(machine_, platform)),
      sensor_(machine_, power_model_, config.sensor_period_us,
              config.sensor_noise, config.sensor_seed),
      scheduler_(std::move(scheduler)),
      config_(config),
      core_busy_us_(static_cast<std::size_t>(machine_.num_cores()), 0.0),
      tick_busy_(static_cast<std::size_t>(machine_.num_cores()), 0.0) {
  if (!scheduler_) throw std::invalid_argument("SimEngine requires a scheduler");
  if (config_.tick_us <= 0) throw std::invalid_argument("tick must be positive");
}

SimEngine::SimEngine(Machine machine, std::unique_ptr<Scheduler> scheduler,
                     SimConfig config)
    : SimEngine(std::move(machine), nullptr, std::move(scheduler), config) {}

SimEngine::SimEngine(const PlatformSpec& platform,
                     std::unique_ptr<Scheduler> scheduler, SimConfig config)
    : SimEngine(platform.make_machine(), &platform, std::move(scheduler),
                config) {}

AppId SimEngine::add_app(App* app) {
  assert(app != nullptr);
  const AppId id = static_cast<AppId>(apps_.size());
  apps_.push_back(app);
  app_needs_begin_.push_back(app->needs_begin_tick() ? 1 : 0);
  app_thread_base_.push_back(static_cast<int>(threads_.size()));
  for (int i = 0; i < app->thread_count(); ++i) {
    SimThread t;
    t.id = next_thread_id_++;
    t.app = id;
    t.app_ptr = app;
    t.local_index = i;
    t.affinity = machine_.all_mask();
    threads_.push_back(t);
  }
  return id;
}

void SimEngine::remove_app(AppId app_id) {
  if (!app_alive(app_id)) {
    throw std::out_of_range("remove_app: unknown or already-removed app " +
                            std::to_string(app_id));
  }
  const auto slot = static_cast<std::size_t>(app_id);
  const int thread_count = apps_[slot]->thread_count();
  std::erase_if(threads_, [&](const SimThread& t) {
    if (t.app != app_id) return false;
    retired_migrations_ += t.migrations;
    return true;
  });
  // Later apps' thread ranges shift down by the erased block.
  for (std::size_t j = slot + 1; j < app_thread_base_.size(); ++j) {
    if (app_thread_base_[j] >= 0) app_thread_base_[j] -= thread_count;
  }
  app_thread_base_[slot] = -1;
  apps_[slot] = nullptr;
}

SimThread& SimEngine::thread_of(AppId app_id, int local_tid) {
  assert(app_alive(app_id));
  assert(local_tid >= 0 && local_tid < apps_[static_cast<std::size_t>(app_id)]->thread_count());
  return threads_[static_cast<std::size_t>(
      app_thread_base_[static_cast<std::size_t>(app_id)] + local_tid)];
}

const SimThread& SimEngine::thread_of(AppId app_id, int local_tid) const {
  return const_cast<SimEngine*>(this)->thread_of(app_id, local_tid);
}

void SimEngine::set_thread_affinity(AppId app_id, int local_tid, CpuMask mask) {
  thread_of(app_id, local_tid).affinity = mask;
}

void SimEngine::set_app_affinity(AppId app_id, CpuMask mask) {
  App& a = app(app_id);
  for (int i = 0; i < a.thread_count(); ++i) set_thread_affinity(app_id, i, mask);
}

CpuMask SimEngine::thread_affinity(AppId app_id, int local_tid) const {
  return thread_of(app_id, local_tid).affinity;
}

CoreId SimEngine::thread_core(AppId app_id, int local_tid) const {
  return thread_of(app_id, local_tid).core;
}

TimeUs SimEngine::thread_cpu_time_us(AppId app_id, int local_tid) const {
  return thread_of(app_id, local_tid).cpu_time_us;
}

void SimEngine::run_until(TimeUs t) {
  while (now_ < t) step();
}

HARS_HOT void SimEngine::prepare_scratch() {
  TickScratch& s = scratch_;
  const auto n = static_cast<std::size_t>(machine_.num_cores());
  if (s.core_type.size() != n) {
    // First tick only (the core count never changes): size the scratch.
    allocg::AllowScope allow("TickScratch first-tick growth");
    // hars-lint: allow-begin(no-alloc): one-time growth, guarded above
    s.core_capacity.resize(n);
    s.threads_on_core.resize(n);
    s.core_share.resize(n);
    s.core_type.resize(n);
    s.core_cluster.resize(n);
    s.core_freq_ghz.resize(n);
    s.cluster_busy.resize(static_cast<std::size_t>(machine_.num_clusters()));
    s.cluster_freq.resize(static_cast<std::size_t>(machine_.num_clusters()));
    s.cluster_online.resize(static_cast<std::size_t>(machine_.num_clusters()));
    // hars-lint: allow-end
    for (CoreId c = 0; c < machine_.num_cores(); ++c) {
      s.core_type[static_cast<std::size_t>(c)] = machine_.core_type(c);
      s.core_cluster[static_cast<std::size_t>(c)] = machine_.cluster_of(c);
    }
    // Force both snapshots to refresh below, whatever the machine state.
    s.dvfs_epoch = 0;  // Machine epochs start at 1.
    s.online_bits = ~machine_.online_mask().bits();
  }
  refresh_machine_snapshot();
}

HARS_HOT void SimEngine::refresh_machine_snapshot() {
  TickScratch& s = scratch_;
  // DVFS levels change at tick boundaries (tick hook, manager — the
  // latter *after* the execute loop but *before* the sensor, so this runs
  // again post-manager); the machine's epoch says when, so the snapshot
  // is refreshed incrementally instead of every tick. Same for the
  // hotplug mask.
  if (s.dvfs_epoch != machine_.dvfs_epoch()) {
    s.dvfs_epoch = machine_.dvfs_epoch();
    for (ClusterId cl = 0; cl < machine_.num_clusters(); ++cl) {
      const double f = machine_.freq_ghz(cl);
      s.cluster_freq[static_cast<std::size_t>(cl)] = f;
      const CpuMask mask = machine_.cluster_mask(cl);
      for (CoreId c = mask.first(); c >= 0; c = mask.next(c)) {
        s.core_freq_ghz[static_cast<std::size_t>(c)] = f;
      }
    }
  }
  if (s.online_bits != machine_.online_mask().bits()) {
    s.online_bits = machine_.online_mask().bits();
    for (ClusterId cl = 0; cl < machine_.num_clusters(); ++cl) {
      s.cluster_online[static_cast<std::size_t>(cl)] =
          (machine_.online_mask() & machine_.cluster_mask(cl)).any() ? 1 : 0;
    }
  }
}

HARS_HOT void SimEngine::step() {
  if (config_.reference_tick) {
    step_reference();
    return;
  }
  // Telemetry attach happens before the AllocGuard: building the shard
  // allocates (under its own AllowScope), and detaching when telemetry
  // was just disabled folds this thread's counts into the registry.
  // After this line the whole tick's instrumentation is a branch + a
  // relaxed add per write. obs_tick gates the phase timers' clock reads
  // to every 2^phase_sample_shift-th tick.
  obs::ensure_thread_registered();  // hars-lint: allow(no-obs-cold): pre-guard attach point
  const bool obs_tick = obs::tick_sample();
  const obs::Catalog& cat = obs::catalog();

  {
    obs::PhaseTimer obs_phase(obs::TickPhase::kScenarioDispatch, obs_tick);
    if (tick_hook_) tick_hook_(now_);
  }

  // From here to the end of the tick the engine is on the allocation-free
  // contract (PR 5): any allocation not inside a declared AllowScope
  // (heartbeat history, sensor samples, manager bookkeeping, guarded
  // first-use growth) is a violation. The scenario hook above is outside
  // the contract — spawning an app allocates by design.
  AllocGuard alloc_guard("SimEngine::step");

  const TimeUs tick = config_.tick_us;
  now_ += tick;

  {
    obs::PhaseTimer obs_phase(obs::TickPhase::kBeginTick, obs_tick);
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      if (apps_[i] != nullptr && app_needs_begin_[i] != 0) {
        apps_[i]->begin_tick(now_);
      }
    }
  }

  {
    obs::PhaseTimer obs_phase(obs::TickPhase::kSnapshotRefresh, obs_tick);
    prepare_scratch();
  }
  TickScratch& s = scratch_;

  // Refresh runnability and load averages, one app block at a time: the
  // app answers for all of its (contiguous) threads with one virtual
  // dispatch (App::refresh_runnable). Every SimThread's tracker is
  // default-constructed by add_app, so the EWMA decay for this tick is one
  // shared constant (asserted below) — computed once instead of one exp2
  // per thread.
  if (!threads_.empty()) {
    obs::PhaseTimer obs_phase(obs::TickPhase::kRunnability, obs_tick);
    const double decay = threads_.front().load.decay_for(tick);
    for (std::size_t slot = 0; slot < apps_.size(); ++slot) {
      App* a = apps_[slot];
      if (a == nullptr) continue;
      const auto n = static_cast<std::size_t>(a->thread_count());
      if (s.runnable_capacity < n) {
        // Grows only when an app with more threads than ever seen joins.
        allocg::AllowScope allow("runnable buffer growth");
        s.runnable = std::make_unique<bool[]>(n);  // hars-lint: allow(no-alloc): guarded growth
        s.runnable_capacity = n;
      }
      a->refresh_runnable(s.runnable.get());
      SimThread* block = &threads_[static_cast<std::size_t>(
          app_thread_base_[slot])];
      for (std::size_t i = 0; i < n; ++i) {
        SimThread& t = block[i];
        assert(t.load.half_life_us() == threads_.front().load.half_life_us());
        t.runnable = s.runnable[i];
        t.load.update_with_decay(t.runnable, decay);
      }
    }
  }

  {
    obs::PhaseTimer obs_phase(obs::TickPhase::kAssign, obs_tick);
    scheduler_->assign(machine_, threads_);
    if (config_.audit) {
      // Placement is audited here — between assign and the manager hook —
      // because the manager may legitimately narrow affinities or hotplug
      // cores later in this tick; threads keep their stale cores until the
      // next tick's assign pass re-places them.
      allocg::AllowScope allow("audit diagnostics");
      audit_placement();
    }
  }

  {
    obs::PhaseTimer obs_phase(obs::TickPhase::kExecute, obs_tick);
    // tick_busy_ was re-zeroed by the integration pass of the previous
    // tick (and starts zeroed), so no refill is needed here. The capacity
    // array likewise only needs a refill while manager overhead is being
    // charged against it.
    const TimeUs mgr_use = std::min(pending_manager_us_, tick);
    pending_manager_us_ -= mgr_use;
    if (mgr_use > 0 || capacity_dirty_) {
      std::fill(s.core_capacity.begin(), s.core_capacity.end(), tick);
      capacity_dirty_ = false;
    }
    if (mgr_use > 0) {
      s.core_capacity[static_cast<std::size_t>(config_.manager_core)] -=
          mgr_use;
      capacity_dirty_ = true;
      tick_busy_[static_cast<std::size_t>(config_.manager_core)] +=
          static_cast<double>(mgr_use) / static_cast<double>(tick);
    }

    // Count runnable threads per core, then hand out equal shares. The
    // scheduler may already track the counts (GTS does); otherwise one pass
    // over the thread table rebuilds them. The per-core share is computed
    // once per core (bit-identical to the per-thread division of the
    // reference path: same operands).
    const std::vector<int>* counts = scheduler_->runnable_per_core();
    if (counts == nullptr) {
      std::fill(s.threads_on_core.begin(), s.threads_on_core.end(), 0);
      for (const SimThread& t : threads_) {
        if (t.runnable && t.core >= 0) {
          ++s.threads_on_core[static_cast<std::size_t>(t.core)];
        }
      }
      counts = &s.threads_on_core;
    }
    for (std::size_t c = 0; c < s.core_share.size(); ++c) {
      const int sharers = (*counts)[c];
      // sharers == 1 (one thread per core — the common case once a manager
      // has spread the threads) skips the integer division; cap / 1 == cap.
      s.core_share[c] = sharers <= 1 ? (sharers == 1 ? s.core_capacity[c] : 0)
                                     : s.core_capacity[c] / sharers;
    }
    // The used -> busy-fraction division repeats heavily (most threads use
    // their whole share), so the last quotient is memoized; when computed,
    // it is the same division the reference path performs.
    TimeUs memo_used = -1;
    double memo_busy = 0.0;
    for (SimThread& t : threads_) {
      if (!t.runnable || t.core < 0) continue;
      const auto core = static_cast<std::size_t>(t.core);
      const TimeUs share = s.core_share[core];
      if (share <= 0) continue;
      const TimeUs used = t.app_ptr->execute(
          t.local_index, share, s.core_type[core], s.core_freq_ghz[core]);
      t.cpu_time_us += used;
      if (used != memo_used) {
        memo_used = used;
        memo_busy = static_cast<double>(used) / static_cast<double>(tick);
      }
      tick_busy_[core] += memo_busy;
    }
  }

  {
    obs::PhaseTimer obs_phase(obs::TickPhase::kEndTick, obs_tick);
    for (App* a : apps_) {
      if (a != nullptr) a->end_tick(now_);
    }
  }

  if (manager_ != nullptr) {
    obs::PhaseTimer obs_phase(obs::TickPhase::kManager, obs_tick);
    const TimeUs cost = manager_->on_tick(now_);
    if (cost > 0) {
      pending_manager_us_ += cost;
      manager_overhead_total_us_ += cost;
    }
    // The manager may have just moved frequencies or hotplugged cores;
    // the sensor below must integrate against the new machine state, as
    // the reference path (live reads) does.
    refresh_machine_snapshot();
  }

  obs::PhaseTimer obs_sensor_phase(obs::TickPhase::kSensor, obs_tick);
  // Busy-sum conservation audit, first half: recompute the per-cluster
  // sums through an independent path (the machine's cluster masks, not
  // the core -> cluster scratch map) before the integration pass below
  // consumes and re-zeroes tick_busy_. Same ascending-core addition
  // order, so the sums must be bit-identical.
  std::array<double, 64> audit_cluster_busy;  // CpuMask caps cores at 64.
  if (config_.audit) {
    audit_cluster_busy.fill(0.0);
    for (ClusterId cl = 0; cl < machine_.num_clusters(); ++cl) {
      double sum = 0.0;
      const CpuMask mask = machine_.cluster_mask(cl);
      for (CoreId c = mask.first(); c >= 0; c = mask.next(c)) {
        sum += std::min(tick_busy_[static_cast<std::size_t>(c)], 1.0);
      }
      audit_cluster_busy[static_cast<std::size_t>(cl)] = sum;
    }
  }

  // One pass clamps the busy fractions, integrates lifetime busy time and
  // accumulates the per-cluster busy sums the sensor needs; cores of a
  // cluster are contiguous and ascending, so the addition order matches
  // the sensor's own mask walk.
  std::fill(s.cluster_busy.begin(), s.cluster_busy.end(), 0.0);
  for (int c = 0; c < machine_.num_cores(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const double b = std::min(tick_busy_[i], 1.0);
    tick_busy_[i] = 0.0;  // Pre-zeroed for the next tick's accumulation.
    core_busy_us_[i] += b * static_cast<double>(tick);
    s.cluster_busy[static_cast<std::size_t>(s.core_cluster[i])] += b;
  }
  if (config_.audit) {
    for (ClusterId cl = 0; cl < machine_.num_clusters(); ++cl) {
      const auto i = static_cast<std::size_t>(cl);
      if (s.cluster_busy[i] != audit_cluster_busy[i]) {
        // The diagnostic allocates; the throw must not also trip the
        // step's AllocGuard mid-unwind.
        allocg::AllowScope allow("audit diagnostics");
        throw AuditError(
            "SimEngine::step: cluster " + std::to_string(cl) +
            " busy-sum fed to the presummed sensor (" +
            std::to_string(s.cluster_busy[i]) +
            ") diverges from the mask-walk recomputation (" +
            std::to_string(audit_cluster_busy[i]) + ")");
      }
    }
  }
  sensor_.tick_presummed(now_, tick, s.cluster_busy, s.cluster_freq,
                         s.cluster_online);
  if (config_.audit) {
    allocg::AllowScope allow("audit diagnostics");
    audit_tick();
  }

  obs::counter_add(cat.ticks);
  // Per-tick allocation telemetry (satellite of the AllocGuard contract):
  // total allocations this tick (the declared AllowScopes) and undeclared
  // violations, which must stay at zero.
  obs::counter_add(cat.tick_allocs, alloc_guard.allocations());
  obs::counter_add(cat.tick_alloc_violations, alloc_guard.violations());
}

// The retained reference tick path: the pre-TickScratch implementation,
// kept verbatim so bench/tick_bench can measure the optimized path
// against it and assert the two produce bit-identical records.
void SimEngine::step_reference() {
  if (tick_hook_) tick_hook_(now_);

  const TimeUs tick = config_.tick_us;
  now_ += tick;

  for (App* a : apps_) {
    if (a != nullptr) a->begin_tick(now_);
  }

  // Refresh runnability and load averages.
  for (SimThread& t : threads_) {
    t.runnable = apps_[static_cast<std::size_t>(t.app)]->runnable(t.local_index);
    t.load.update(t.runnable, tick);
  }

  scheduler_->assign(machine_, threads_);
  if (config_.audit) audit_placement();  // Pre-manager: see step().

  std::fill(tick_busy_.begin(), tick_busy_.end(), 0.0);

  // Charge pending runtime-manager overhead against the manager core's
  // capacity for this tick.
  const TimeUs mgr_use = std::min(pending_manager_us_, tick);
  pending_manager_us_ -= mgr_use;
  std::vector<TimeUs> core_capacity(static_cast<std::size_t>(machine_.num_cores()),
                                    tick);
  if (mgr_use > 0) {
    core_capacity[static_cast<std::size_t>(config_.manager_core)] -= mgr_use;
    tick_busy_[static_cast<std::size_t>(config_.manager_core)] +=
        static_cast<double>(mgr_use) / static_cast<double>(tick);
  }

  // Count runnable threads per core, then hand out equal shares.
  std::vector<int> threads_on_core(static_cast<std::size_t>(machine_.num_cores()), 0);
  for (const SimThread& t : threads_) {
    if (t.runnable && t.core >= 0) {
      ++threads_on_core[static_cast<std::size_t>(t.core)];
    }
  }
  for (SimThread& t : threads_) {
    if (!t.runnable || t.core < 0) continue;
    const auto core = static_cast<std::size_t>(t.core);
    const int sharers = threads_on_core[core];
    if (sharers <= 0) continue;
    const TimeUs share = core_capacity[core] / sharers;
    if (share <= 0) continue;
    const CoreType type = machine_.core_type(t.core);
    const double freq = machine_.core_freq_ghz(t.core);
    const TimeUs used =
        apps_[static_cast<std::size_t>(t.app)]->execute(t.local_index, share, type, freq);
    t.cpu_time_us += used;
    tick_busy_[core] += static_cast<double>(used) / static_cast<double>(tick);
  }

  for (App* a : apps_) {
    if (a != nullptr) a->end_tick(now_);
  }

  if (manager_ != nullptr) {
    const TimeUs cost = manager_->on_tick(now_);
    if (cost > 0) {
      pending_manager_us_ += cost;
      manager_overhead_total_us_ += cost;
    }
  }

  for (double& b : tick_busy_) b = std::min(b, 1.0);
  for (int c = 0; c < machine_.num_cores(); ++c) {
    core_busy_us_[static_cast<std::size_t>(c)] +=
        tick_busy_[static_cast<std::size_t>(c)] * static_cast<double>(tick);
  }
  sensor_.tick(now_, tick, tick_busy_);

  // The reference path has no scratch to audit, but thread-table
  // conservation applies to it equally (placement was audited post-assign
  // above, before the manager hook could retune affinities).
  if (config_.audit) audit_now();
}

void SimEngine::audit_now() const {
  const auto n_slots = apps_.size();
  if (app_needs_begin_.size() != n_slots || app_thread_base_.size() != n_slots) {
    throw AuditError("SimEngine::audit_now: per-app side tables out of sync "
                     "with the app slot table");
  }
  std::size_t alive_threads = 0;
  for (std::size_t slot = 0; slot < n_slots; ++slot) {
    const App* a = apps_[slot];
    const int base = app_thread_base_[slot];
    if (a == nullptr) {
      if (base != -1) {
        throw AuditError("SimEngine::audit_now: removed app slot " +
                         std::to_string(slot) +
                         " still claims thread base " + std::to_string(base));
      }
      continue;
    }
    const int count = a->thread_count();
    if (base < 0 ||
        static_cast<std::size_t>(base) + static_cast<std::size_t>(count) >
            threads_.size()) {
      throw AuditError("SimEngine::audit_now: app " + std::to_string(slot) +
                       " thread block [" + std::to_string(base) + ", " +
                       std::to_string(base + count) +
                       ") falls outside the thread table of size " +
                       std::to_string(threads_.size()));
    }
    for (int i = 0; i < count; ++i) {
      const SimThread& t =
          threads_[static_cast<std::size_t>(base) + static_cast<std::size_t>(i)];
      if (t.app != static_cast<AppId>(slot) || t.app_ptr != a ||
          t.local_index != i) {
        throw AuditError(
            "SimEngine::audit_now: thread table entry " +
            std::to_string(base + i) + " does not belong to app " +
            std::to_string(slot) + " local thread " + std::to_string(i) +
            " (spawn/kill bookkeeping lost conservation)");
      }
    }
    alive_threads += static_cast<std::size_t>(count);
  }
  if (alive_threads != threads_.size()) {
    throw AuditError("SimEngine::audit_now: alive apps account for " +
                     std::to_string(alive_threads) + " threads but the table "
                     "holds " + std::to_string(threads_.size()) +
                     " (spawn/kill/remove lost thread-count conservation)");
  }
}

void SimEngine::audit_placement() const {
  const CpuMask online = machine_.online_mask();
  for (const SimThread& t : threads_) {
    if (t.core >= machine_.num_cores()) {
      throw AuditError("SimEngine::audit_placement: thread " +
                       std::to_string(t.id) + " sits on nonexistent core " +
                       std::to_string(t.core));
    }
    if (!t.runnable || t.core < 0) continue;  // Sleepers keep stale cores.
    if (!online.test(t.core)) {
      throw AuditError("SimEngine::audit_placement: runnable thread " +
                       std::to_string(t.id) + " placed on offline core " +
                       std::to_string(t.core));
    }
    // The scheduler honours affinity unless no allowed core is online, in
    // which case Linux (and the model) falls back to any online core.
    const CpuMask allowed = t.affinity & online;
    if (allowed.any() && !allowed.test(t.core)) {
      throw AuditError("SimEngine::audit_placement: runnable thread " +
                       std::to_string(t.id) + " placed on core " +
                       std::to_string(t.core) +
                       " outside its online affinity set");
    }
  }
}

void SimEngine::audit_tick() const {
  audit_now();
  // audit_placement() deliberately does NOT run here: the manager hook
  // (which ran between assign and this audit) may have narrowed thread
  // affinities or hotplugged cores, making the tick's placement
  // legitimately stale until the next assign. Placement is audited at
  // its freshness point, immediately after scheduler_->assign().

  // Snapshot coherence: the epoch-guarded TickScratch views of DVFS and
  // hotplug state must match the live machine at the end of the tick —
  // the sensor just integrated against them.
  const TickScratch& s = scratch_;
  if (s.core_type.size() != static_cast<std::size_t>(machine_.num_cores())) {
    throw AuditError("SimEngine::audit_tick: scratch never sized for the "
                     "machine (prepare_scratch did not run?)");
  }
  if (s.dvfs_epoch != machine_.dvfs_epoch()) {
    throw AuditError("SimEngine::audit_tick: scratch DVFS epoch " +
                     std::to_string(s.dvfs_epoch) +
                     " is stale against machine epoch " +
                     std::to_string(machine_.dvfs_epoch()) +
                     " (post-manager refresh missed a retune)");
  }
  if (s.online_bits != machine_.online_mask().bits()) {
    throw AuditError("SimEngine::audit_tick: scratch online mask is stale "
                     "against the machine's hotplug state");
  }
  for (ClusterId cl = 0; cl < machine_.num_clusters(); ++cl) {
    const auto i = static_cast<std::size_t>(cl);
    if (s.cluster_freq[i] != machine_.freq_ghz(cl)) {
      throw AuditError("SimEngine::audit_tick: cluster " + std::to_string(cl) +
                       " frequency snapshot " + std::to_string(s.cluster_freq[i]) +
                       " diverges from live " +
                       std::to_string(machine_.freq_ghz(cl)));
    }
    const bool live_online =
        (machine_.online_mask() & machine_.cluster_mask(cl)).any();
    if ((s.cluster_online[i] != 0) != live_online) {
      throw AuditError("SimEngine::audit_tick: cluster " + std::to_string(cl) +
                       " online snapshot diverges from the live mask");
    }
    const double busy = s.cluster_busy[i];
    const double cores = static_cast<double>(machine_.cluster_core_count(cl));
    if (!(busy >= 0.0 && busy <= cores)) {
      throw AuditError("SimEngine::audit_tick: cluster " + std::to_string(cl) +
                       " busy-sum " + std::to_string(busy) +
                       " outside [0, " + std::to_string(cores) +
                       "] after per-core clamping");
    }
  }
  const TimeUs tick = config_.tick_us;
  for (CoreId c = 0; c < machine_.num_cores(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (s.core_freq_ghz[i] != machine_.core_freq_ghz(c)) {
      throw AuditError("SimEngine::audit_tick: core " + std::to_string(c) +
                       " frequency snapshot diverges from its cluster's "
                       "live frequency");
    }
    if (s.core_capacity[i] < 0 || s.core_capacity[i] > tick) {
      throw AuditError("SimEngine::audit_tick: core " + std::to_string(c) +
                       " capacity " + std::to_string(s.core_capacity[i]) +
                       " outside [0, tick=" + std::to_string(tick) +
                       "] (manager overhead over-charged)");
    }
    if (s.core_share[i] < 0 || s.core_share[i] > s.core_capacity[i]) {
      throw AuditError("SimEngine::audit_tick: core " + std::to_string(c) +
                       " share " + std::to_string(s.core_share[i]) +
                       " exceeds its capacity " +
                       std::to_string(s.core_capacity[i]));
    }
  }
}

double SimEngine::core_busy_fraction(CoreId core) const {
  if (now_ <= 0) return 0.0;
  return core_busy_us_[static_cast<std::size_t>(core)] / static_cast<double>(now_);
}

double SimEngine::manager_cpu_utilization_pct() const {
  if (now_ <= 0) return 0.0;
  return 100.0 * static_cast<double>(manager_overhead_total_us_) /
         static_cast<double>(now_);
}

std::int64_t SimEngine::total_migrations() const {
  std::int64_t n = retired_migrations_;
  for (const SimThread& t : threads_) n += t.migrations;
  return n;
}

}  // namespace hars
