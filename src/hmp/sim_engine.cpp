#include "hmp/sim_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "hmp/platform_spec.hpp"

namespace hars {

SimEngine::SimEngine(Machine machine, std::unique_ptr<Scheduler> scheduler,
                     SimConfig config)
    : machine_(std::move(machine)),
      power_model_(machine_),
      sensor_(machine_, power_model_, config.sensor_period_us,
              config.sensor_noise, config.sensor_seed),
      scheduler_(std::move(scheduler)),
      config_(config),
      core_busy_us_(static_cast<std::size_t>(machine_.num_cores()), 0.0),
      tick_busy_(static_cast<std::size_t>(machine_.num_cores()), 0.0) {
  if (!scheduler_) throw std::invalid_argument("SimEngine requires a scheduler");
  if (config_.tick_us <= 0) throw std::invalid_argument("tick must be positive");
}

SimEngine::SimEngine(const PlatformSpec& platform,
                     std::unique_ptr<Scheduler> scheduler, SimConfig config)
    : SimEngine(platform.make_machine(), std::move(scheduler), config) {
  // Swap in the platform's carried power parameters; sensor_ references
  // power_model_ by address, which assignment preserves.
  power_model_ = PowerModel(machine_, platform.cluster_power());
  power_model_.set_base_watts(platform.base_watts);
}

AppId SimEngine::add_app(App* app) {
  assert(app != nullptr);
  const AppId id = static_cast<AppId>(apps_.size());
  apps_.push_back(app);
  app_thread_base_.push_back(static_cast<int>(threads_.size()));
  for (int i = 0; i < app->thread_count(); ++i) {
    SimThread t;
    t.id = next_thread_id_++;
    t.app = id;
    t.local_index = i;
    t.affinity = machine_.all_mask();
    threads_.push_back(t);
  }
  return id;
}

void SimEngine::remove_app(AppId app_id) {
  if (!app_alive(app_id)) {
    throw std::out_of_range("remove_app: unknown or already-removed app " +
                            std::to_string(app_id));
  }
  const auto slot = static_cast<std::size_t>(app_id);
  const int thread_count = apps_[slot]->thread_count();
  std::erase_if(threads_, [&](const SimThread& t) {
    if (t.app != app_id) return false;
    retired_migrations_ += t.migrations;
    return true;
  });
  // Later apps' thread ranges shift down by the erased block.
  for (std::size_t j = slot + 1; j < app_thread_base_.size(); ++j) {
    if (app_thread_base_[j] >= 0) app_thread_base_[j] -= thread_count;
  }
  app_thread_base_[slot] = -1;
  apps_[slot] = nullptr;
}

SimThread& SimEngine::thread_of(AppId app_id, int local_tid) {
  assert(app_alive(app_id));
  assert(local_tid >= 0 && local_tid < apps_[static_cast<std::size_t>(app_id)]->thread_count());
  return threads_[static_cast<std::size_t>(
      app_thread_base_[static_cast<std::size_t>(app_id)] + local_tid)];
}

const SimThread& SimEngine::thread_of(AppId app_id, int local_tid) const {
  return const_cast<SimEngine*>(this)->thread_of(app_id, local_tid);
}

void SimEngine::set_thread_affinity(AppId app_id, int local_tid, CpuMask mask) {
  thread_of(app_id, local_tid).affinity = mask;
}

void SimEngine::set_app_affinity(AppId app_id, CpuMask mask) {
  App& a = app(app_id);
  for (int i = 0; i < a.thread_count(); ++i) set_thread_affinity(app_id, i, mask);
}

CpuMask SimEngine::thread_affinity(AppId app_id, int local_tid) const {
  return thread_of(app_id, local_tid).affinity;
}

CoreId SimEngine::thread_core(AppId app_id, int local_tid) const {
  return thread_of(app_id, local_tid).core;
}

void SimEngine::run_until(TimeUs t) {
  while (now_ < t) step();
}

void SimEngine::step() {
  if (tick_hook_) tick_hook_(now_);

  const TimeUs tick = config_.tick_us;
  now_ += tick;

  for (App* a : apps_) {
    if (a != nullptr) a->begin_tick(now_);
  }

  // Refresh runnability and load averages.
  for (SimThread& t : threads_) {
    t.runnable = apps_[static_cast<std::size_t>(t.app)]->runnable(t.local_index);
    t.load.update(t.runnable, tick);
  }

  scheduler_->assign(machine_, threads_);

  std::fill(tick_busy_.begin(), tick_busy_.end(), 0.0);

  // Charge pending runtime-manager overhead against the manager core's
  // capacity for this tick.
  const TimeUs mgr_use = std::min(pending_manager_us_, tick);
  pending_manager_us_ -= mgr_use;
  std::vector<TimeUs> core_capacity(static_cast<std::size_t>(machine_.num_cores()),
                                    tick);
  if (mgr_use > 0) {
    core_capacity[static_cast<std::size_t>(config_.manager_core)] -= mgr_use;
    tick_busy_[static_cast<std::size_t>(config_.manager_core)] +=
        static_cast<double>(mgr_use) / static_cast<double>(tick);
  }

  // Count runnable threads per core, then hand out equal shares.
  std::vector<int> threads_on_core(static_cast<std::size_t>(machine_.num_cores()), 0);
  for (const SimThread& t : threads_) {
    if (t.runnable && t.core >= 0) {
      ++threads_on_core[static_cast<std::size_t>(t.core)];
    }
  }
  for (SimThread& t : threads_) {
    if (!t.runnable || t.core < 0) continue;
    const auto core = static_cast<std::size_t>(t.core);
    const int sharers = threads_on_core[core];
    if (sharers <= 0) continue;
    const TimeUs share = core_capacity[core] / sharers;
    if (share <= 0) continue;
    const CoreType type = machine_.core_type(t.core);
    const double freq = machine_.core_freq_ghz(t.core);
    const TimeUs used =
        apps_[static_cast<std::size_t>(t.app)]->execute(t.local_index, share, type, freq);
    t.cpu_time_us += used;
    tick_busy_[core] += static_cast<double>(used) / static_cast<double>(tick);
  }

  for (App* a : apps_) {
    if (a != nullptr) a->end_tick(now_);
  }

  if (manager_ != nullptr) {
    const TimeUs cost = manager_->on_tick(now_);
    if (cost > 0) {
      pending_manager_us_ += cost;
      manager_overhead_total_us_ += cost;
    }
  }

  for (double& b : tick_busy_) b = std::min(b, 1.0);
  for (int c = 0; c < machine_.num_cores(); ++c) {
    core_busy_us_[static_cast<std::size_t>(c)] +=
        tick_busy_[static_cast<std::size_t>(c)] * static_cast<double>(tick);
  }
  sensor_.tick(now_, tick, tick_busy_);
}

double SimEngine::core_busy_fraction(CoreId core) const {
  if (now_ <= 0) return 0.0;
  return core_busy_us_[static_cast<std::size_t>(core)] / static_cast<double>(now_);
}

double SimEngine::manager_cpu_utilization_pct() const {
  if (now_ <= 0) return 0.0;
  return 100.0 * static_cast<double>(manager_overhead_total_us_) /
         static_cast<double>(now_);
}

std::int64_t SimEngine::total_migrations() const {
  std::int64_t n = retired_migrations_;
  for (const SimThread& t : threads_) n += t.migrations;
  return n;
}

}  // namespace hars
