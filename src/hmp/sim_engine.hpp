// SimEngine: the discrete-time execution engine.
//
// Advances the machine in fixed ticks (default 1 ms). Each tick it:
//   0. fires the tick hook with the tick's start time (scenario event
//      dispatch: apps may be added/removed, targets/phases/hotplug may
//      change here, visible to the whole tick),
//   1. lets every application generate/prepare work (begin_tick),
//   2. asks the OS-scheduler model to place runnable threads on cores,
//   3. divides each core's tick equally among the threads on it and lets
//      the owning application consume the CPU shares,
//   4. runs application barrier/heartbeat logic (end_tick),
//   5. invokes the attached runtime manager (HARS / MP-HARS / CONS-I),
//      charging its reported CPU cost to the manager core (cpu0) so that
//      runtime overhead both consumes capacity and burns power,
//   6. integrates power and advances the sensor.
//
// The engine exposes the "syscall surface" the paper's user-level runtime
// uses on Linux: sched_setaffinity (set_thread_affinity), cpufreq
// (machine().set_freq_level) and hotplug (machine().set_online_mask).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "backend/backend.hpp"  // ManagerHook lives in the Backend HAL now.
#include "hmp/machine.hpp"
#include "hmp/power_model.hpp"
#include "hmp/power_sensor.hpp"
#include "sched/scheduler.hpp"
#include "util/audit.hpp"

namespace hars {

class SimEngine;

struct SimConfig {
  TimeUs tick_us = 1 * kUsPerMs;
  CoreId manager_core = 0;  ///< Where runtime-manager overhead is charged.
  std::uint64_t sensor_seed = 42;
  TimeUs sensor_period_us = PowerSensor::kDefaultSamplePeriodUs;
  double sensor_noise = 0.01;
  /// Runs the retained, unoptimized tick path (per-tick vector
  /// allocations, per-thread machine queries) instead of the TickScratch
  /// path. Both produce bit-identical simulations; the reference path
  /// exists as the baseline for bench/tick_bench's speedup trajectory and
  /// as an always-available cross-check.
  bool reference_tick = false;
  /// Per-tick invariant audits (audit_tick/audit_now): thread-table
  /// conservation across spawn/kill, snapshot coherence with the live
  /// machine, capacity/share ranges and bit-exact cluster busy-sum
  /// conservation. Defaults on when the build defines HARS_AUDIT (the CI
  /// sanitizer matrix does); a failed audit throws AuditError.
  bool audit = audit::default_enabled();
};

/// Reusable per-tick scratch owned by the engine. Pre-sized once for the
/// machine's core count (which never changes; hotplug only toggles the
/// online mask), so the steady-state tick path performs no allocations.
/// Lifetime of the contents is one tick: everything here is recomputed or
/// reused from scratch each step().
struct TickScratch {
  std::vector<TimeUs> core_capacity;   ///< Tick minus manager overhead.
  std::vector<int> threads_on_core;    ///< Runnable sharers per core.
  std::vector<TimeUs> core_share;      ///< capacity / sharers, per core.
  std::vector<CoreType> core_type;     ///< Immutable per-core type cache.
  std::vector<ClusterId> core_cluster; ///< Immutable core -> cluster map.
  std::vector<double> core_freq_ghz;   ///< Per-core DVFS snapshot.
  std::vector<double> cluster_busy;    ///< Per-cluster busy sum for the sensor.
  std::vector<double> cluster_freq;    ///< Per-cluster DVFS snapshot.
  std::vector<char> cluster_online;    ///< Any core of the cluster online?
  std::unique_ptr<bool[]> runnable;    ///< App::refresh_runnable buffer.
  std::size_t runnable_capacity = 0;   ///< Allocated size of `runnable`.
  std::uint64_t dvfs_epoch = 0;        ///< Machine epoch the snapshot is for.
  std::uint64_t online_bits = ~0ULL;   ///< Online mask the snapshot is for.
};

struct PlatformSpec;  // hmp/platform_spec.hpp

class SimEngine {
 public:
  /// Legacy wiring: the power model falls back to the per-core-type
  /// default parameters for the machine's clusters.
  SimEngine(Machine machine, std::unique_ptr<Scheduler> scheduler,
            SimConfig config = {});

  /// Platform wiring: materializes the machine and applies the platform's
  /// per-cluster power parameters and base draw.
  SimEngine(const PlatformSpec& platform, std::unique_ptr<Scheduler> scheduler,
            SimConfig config = {});

  /// Registers an application (non-owning); returns its AppId. All of the
  /// app's threads start with affinity = all cores. Apps may be added
  /// mid-run (scenario arrivals); their threads join scheduling on the
  /// next tick.
  AppId add_app(App* app);

  /// Deregisters a departed application: its threads are reclaimed from
  /// the scheduler (erased from the thread table, so no share of any core
  /// reaches it again) and its slot is cleared so no stale heartbeat or
  /// affinity state can leak into later manager decisions. The AppId is
  /// retired, never reused; ids of other apps are stable. Detach the app
  /// from any manager *before* removing it. Throws std::out_of_range on
  /// an unknown or already-removed id.
  void remove_app(AppId app_id);

  /// False once `app_id` has been remove_app()ed.
  bool app_alive(AppId app_id) const {
    return app_id >= 0 && app_id < num_apps() &&
           apps_[static_cast<std::size_t>(app_id)] != nullptr;
  }

  /// Installs a callback invoked at every tick boundary with the tick's
  /// start time (first call: t = 0), before applications generate work —
  /// the dispatch point for scenario events: state changed by the hook is
  /// visible to the whole tick. One hook; empty function clears it.
  void set_tick_hook(std::function<void(TimeUs)> hook) {
    tick_hook_ = std::move(hook);
  }

  /// Installs a manager the caller keeps alive (legacy wiring; the
  /// Experiment pipeline and the attach_hars shim use this).
  void set_manager(ManagerHook* manager) {
    if (owned_manager_.get() != manager) owned_manager_.reset();
    manager_ = manager;
  }

  /// Installs a manager the engine owns; replaces any previous manager.
  void set_manager(std::unique_ptr<ManagerHook> manager) {
    owned_manager_ = std::move(manager);
    manager_ = owned_manager_.get();
  }

  /// Detaches (and, if owned, destroys) the current manager. Accrued
  /// overhead accounting is kept.
  void clear_manager() {
    manager_ = nullptr;
    owned_manager_.reset();
  }

  ManagerHook* manager() const { return manager_; }

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  const PowerModel& power_model() const { return power_model_; }
  PowerSensor& sensor() { return sensor_; }
  const PowerSensor& sensor() const { return sensor_; }
  Scheduler& scheduler() { return *scheduler_; }

  /// Number of app slots ever registered (removed apps keep their slot).
  int num_apps() const { return static_cast<int>(apps_.size()); }
  /// The app in slot `id`; the id must be alive (app_alive).
  App& app(AppId id) { return *apps_[static_cast<std::size_t>(id)]; }
  const App& app(AppId id) const { return *apps_[static_cast<std::size_t>(id)]; }

  TimeUs now() const { return now_; }
  TimeUs tick_us() const { return config_.tick_us; }

  /// sched_setaffinity equivalent for one thread of one app.
  void set_thread_affinity(AppId app_id, int local_tid, CpuMask mask);

  /// Applies `mask` to every thread of the app (cluster-level pinning).
  void set_app_affinity(AppId app_id, CpuMask mask);

  CpuMask thread_affinity(AppId app_id, int local_tid) const;
  CoreId thread_core(AppId app_id, int local_tid) const;

  /// CPU time one thread has consumed so far (us) — the live-hardware
  /// analogue is /proc/<tid>/stat; SimBackend serves elapsed_work_us
  /// from this.
  TimeUs thread_cpu_time_us(AppId app_id, int local_tid) const;

  /// Runs the simulation until `t` (absolute) or for `dt` (relative).
  void run_until(TimeUs t);
  void run_for(TimeUs dt) { run_until(now_ + dt); }

  // --- Accounting ---
  /// Lifetime busy fraction of a core (busy time / elapsed).
  double core_busy_fraction(CoreId core) const;

  /// Total manager overhead charged so far (us of CPU time).
  TimeUs manager_overhead_us() const { return manager_overhead_total_us_; }

  /// Manager overhead as a percentage of one CPU over the elapsed time.
  double manager_cpu_utilization_pct() const;

  std::int64_t total_migrations() const;

  const std::vector<SimThread>& threads() const { return threads_; }

  // --- HARS_AUDIT invariant audits ---
  /// Whether this engine runs per-tick audits (SimConfig::audit). The
  /// managers consult it before auditing their own search results.
  bool audit_enabled() const { return config_.audit; }
  void set_audit(bool enabled) { config_.audit = enabled; }

  /// Runs the tick-boundary-safe audits immediately (thread-table
  /// conservation across spawn/kill, app-slot coherence) regardless of
  /// SimConfig::audit; throws AuditError on the first violation. The
  /// scenario runtime calls this after dispatching spawn/kill/hotplug
  /// events when audits are on; step() runs it (plus the placement,
  /// snapshot-coherence and busy-sum checks) every tick.
  void audit_now() const;

 private:
  /// Shared delegate of both public constructors: builds the power model
  /// once, from the platform's carried parameters when one is given,
  /// from the per-core-type legacy defaults otherwise — no
  /// construct-then-reassign.
  SimEngine(Machine machine, const PlatformSpec* platform,
            std::unique_ptr<Scheduler> scheduler, SimConfig config);
  static PowerModel make_power_model(const Machine& machine,
                                     const PlatformSpec* platform);

  void step();
  void step_reference();
  /// Post-assign check: every runnable placed thread sits on an online
  /// core inside its affinity set (or the online fallback). Runs
  /// immediately after scheduler assignment — NOT at end of step — since
  /// the manager hook may retune affinity/hotplug mid-tick, leaving
  /// placement legitimately stale until the next assign.
  void audit_placement() const;
  /// End-of-step audits that need the tick's scratch: snapshot coherence
  /// with the live machine and capacity/share ranges; also runs
  /// audit_now().
  void audit_tick() const;
  /// Sizes the scratch for the machine (first tick only) and snapshots
  /// the per-core DVFS frequencies for this tick.
  void prepare_scratch();
  /// Epoch-guarded refresh of the frequency/online snapshots; re-run
  /// after the manager hook, which may change them mid-tick.
  void refresh_machine_snapshot();
  SimThread& thread_of(AppId app_id, int local_tid);
  const SimThread& thread_of(AppId app_id, int local_tid) const;

  Machine machine_;
  PowerModel power_model_;
  PowerSensor sensor_;
  std::unique_ptr<Scheduler> scheduler_;
  SimConfig config_;

  std::vector<App*> apps_;  ///< Slot per AppId; null once removed.
  /// Per slot: App::needs_begin_tick(), cached at add_app so the tick
  /// path skips the no-op virtual dispatch.
  std::vector<char> app_needs_begin_;
  std::vector<SimThread> threads_;
  /// threads_ index of the first thread of each app; -1 once removed.
  std::vector<int> app_thread_base_;
  ThreadId next_thread_id_ = 0;  ///< Ids stay unique across removals.
  std::int64_t retired_migrations_ = 0;  ///< Migrations of removed apps.

  std::function<void(TimeUs)> tick_hook_;

  ManagerHook* manager_ = nullptr;
  std::unique_ptr<ManagerHook> owned_manager_;  ///< Set iff engine-owned.
  TimeUs pending_manager_us_ = 0;  ///< Overhead not yet charged to a tick.
  TimeUs manager_overhead_total_us_ = 0;

  TimeUs now_ = 0;
  std::vector<double> core_busy_us_;  ///< Lifetime busy time per core.
  std::vector<double> tick_busy_;     ///< Scratch: per-core busy fraction.
  TickScratch scratch_;               ///< Per-tick scratch (optimized path).
  /// True while TickScratch::core_capacity may hold a value other than a
  /// full tick (manager overhead was charged); forces a refill.
  bool capacity_dirty_ = true;
};

}  // namespace hars
