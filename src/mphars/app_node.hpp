// Per-application data structure (thesis Table 4.1), kept in a linked list
// that the MP-HARS runtime manager iterates each cycle (Algorithm 3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/runtime_manager.hpp"  // TracePoint
#include "core/thread_scheduler.hpp"
#include "heartbeats/heartbeat.hpp"
#include "util/common.hpp"
#include "util/intrusive_list.hpp"

namespace hars {

/// Core-slot ownership flags (paper's USE / UNUSE and FREE / NOT_FREE).
inline constexpr int kUse = 1;
inline constexpr int kUnuse = 0;
inline constexpr int kFree = 1;
inline constexpr int kNotFree = 0;

struct AppNode : IntrusiveListNode<AppNode> {
  AppId app_id = -1;

  // --- Table 4.1 fields ---
  int nprocs_b = 0;  ///< Number of assigned big cores.
  int nprocs_l = 0;  ///< Number of assigned little cores.
  std::vector<int> use_b_core;  ///< Per big-core-slot USE/UNUSE.
  std::vector<int> use_l_core;  ///< Per little-core-slot USE/UNUSE.
  std::int64_t adaptation_index = -1;  ///< Last heartbeat index adapted on.
  double heartbeat_rate = 0.0;         ///< Latest windowed rate.
  int freezing_cnt_b = 0;  ///< Heartbeats to wait before big freq is controllable.
  int freezing_cnt_l = 0;  ///< Same for the little cluster.

  // --- Implementation bookkeeping ---
  PerfTarget target;
  int adapt_period = 5;
  ThreadSchedulerKind scheduler = ThreadSchedulerKind::kChunk;
  std::int64_t last_seen_hb = -1;
  int dec_big_core_cnt = 0;     ///< Cores to release at the next allocation.
  int dec_little_core_cnt = 0;
  std::vector<TracePoint> trace;

  int used_big_count() const {
    int n = 0;
    for (int u : use_b_core) n += (u == kUse);
    return n;
  }
  int used_little_count() const {
    int n = 0;
    for (int u : use_l_core) n += (u == kUse);
    return n;
  }
};

/// Per-cluster data structure (thesis Table 4.2).
struct ClusterData {
  int frozen_flag = 0;         ///< Set while any app's freezing count > 0.
  std::vector<int> free_core;  ///< FREE / NOT_FREE per core slot.
  int nfreq = 0;               ///< Current frequency level.

  int free_count() const {
    int n = 0;
    for (int f : free_core) n += (f == kFree);
    return n;
  }
};

}  // namespace hars
