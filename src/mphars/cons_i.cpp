#include "mphars/cons_i.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "backend/sim_backend.hpp"
#include "util/alloc_guard.hpp"

namespace hars {

double cons_perf_score(const Machine& machine, const SystemState& s, double r0,
                       double f0_ghz) {
  const double fb = machine.freq_ghz_at_level(machine.fastest_cluster(), s.big_freq);
  const double fl =
      machine.freq_ghz_at_level(machine.slowest_cluster(), s.little_freq);
  return s.big_cores * r0 * (fb / f0_ghz) + s.little_cores * (fl / f0_ghz);
}

ConsIManager::ConsIManager(Backend& backend, ConsIConfig config)
    : ConsIManager(nullptr, &backend, std::move(config)) {}

ConsIManager::ConsIManager(SimEngine& engine, ConsIConfig config)
    : ConsIManager(std::make_unique<SimBackend>(engine), nullptr,
                   std::move(config)) {}

ConsIManager::ConsIManager(std::unique_ptr<Backend> owned, Backend* backend,
                           ConsIConfig config)
    : owned_backend_(std::move(owned)),
      backend_(backend != nullptr ? *backend : *owned_backend_),
      config_(config) {
  build_state_list();
  // Start at the maximum state, like the baseline.
  state_ = StateSpace::from_machine(backend_.topology()).max_state();
  apply_state(state_);
}

void ConsIManager::build_state_list() {
  const Machine& m = backend_.topology();
  const int max_big = m.cluster_core_count(m.fastest_cluster());
  const int max_little = m.cluster_core_count(m.slowest_cluster());
  const int nb_freqs = m.num_freq_levels(m.fastest_cluster());
  const int nl_freqs = m.num_freq_levels(m.slowest_cluster());
  // cpu0 can never go offline. When it belongs to a controlled pool that
  // pool's count must stay >= 1 so the model matches the force-online
  // core (on the XU3 cpu0 is a little core, hence the paper's C_L >= 1);
  // when cpu0 sits in a middle cluster, keep C_L >= 1 so the controlled
  // pools always offer the applications at least one core.
  const int min_big = m.fastest_mask().test(0) ? 1 : 0;
  const int min_little = min_big == 0 ? 1 : 0;
  for (int cb = min_big; cb <= max_big; ++cb) {
    for (int cl = min_little; cl <= max_little; ++cl) {
      for (int fb = 0; fb < nb_freqs; ++fb) {
        for (int fl = 0; fl < nl_freqs; ++fl) {
          states_.push_back(SystemState{cb, cl, fb, fl});
        }
      }
    }
  }
  std::stable_sort(states_.begin(), states_.end(),
                   [&](const SystemState& a, const SystemState& b) {
                     return cons_perf_score(m, a, config_.r0, config_.f0_ghz) <
                            cons_perf_score(m, b, config_.r0, config_.f0_ghz);
                   });
  // Quantize into a ladder: keep one representative per min_score_step,
  // always retaining the maximum state (the boot configuration).
  std::vector<SystemState> ladder;
  double last_score = -1e18;
  for (const auto& s : states_) {
    const double score = cons_perf_score(m, s, config_.r0, config_.f0_ghz);
    if (score - last_score >= config_.min_score_step) {
      ladder.push_back(s);
      last_score = score;
    }
  }
  const SystemState max_state = StateSpace::from_machine(m).max_state();
  if (ladder.empty() || !(ladder.back() == max_state)) {
    ladder.push_back(max_state);
  }
  states_ = std::move(ladder);
  scores_.reserve(states_.size());
  for (const auto& s : states_) {
    scores_.push_back(cons_perf_score(m, s, config_.r0, config_.f0_ghz));
  }
}

std::size_t ConsIManager::current_index() const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == state_) return i;
  }
  return states_.size() - 1;
}

void ConsIManager::register_app(AppId app, const ConsIAppConfig& app_config) {
  if (!app_config.target.is_valid_window()) {
    throw std::invalid_argument(
        "ConsIManager::register_app: target window must be positive");
  }
  AppEntry entry;
  entry.app = app;
  entry.target = app_config.target;
  entry.adapt_period = app_config.adapt_period;
  apps_.push_back(std::move(entry));
  backend_.heartbeats(app).set_target(app_config.target);
}

bool ConsIManager::set_app_target(AppId app, PerfTarget target) {
  if (!target.is_valid_window()) {
    throw std::invalid_argument(
        "ConsIManager::set_app_target: target window must be positive");
  }
  for (AppEntry& entry : apps_) {
    if (entry.app == app && entry.alive) {
      entry.target = target;
      backend_.heartbeats(app).set_target(target);
      return true;
    }
  }
  return false;
}

bool ConsIManager::unregister_app(AppId app) {
  for (AppEntry& entry : apps_) {
    if (entry.app == app && entry.alive) {
      entry.alive = false;
      entry.rate = 0.0;  // A departed app no longer constrains decisions.
      entry.freezing_cnt = 0;
      return true;
    }
  }
  return false;
}

void ConsIManager::apply_state(const SystemState& s) {
  state_ = s;
  const Machine& m = backend_.topology();
  backend_.set_dvfs_level(m.fastest_cluster(), s.big_freq);
  backend_.set_dvfs_level(m.slowest_cluster(), s.little_freq);
  // Global core counts are realized with hotplug: the first C_L slow-pool
  // and first C_B fast-pool cores stay online; everything runs unpinned
  // under GTS. Middle clusters of an N-cluster machine are outside the
  // model's two controlled pools and stay online under OS control.
  CpuMask online;
  for (ClusterId c = 0; c < m.num_clusters(); ++c) {
    if (c != m.fastest_cluster() && c != m.slowest_cluster()) {
      online = online | m.cluster_mask(c);
    }
  }
  const CoreId little_first = m.slowest_mask().first();
  for (int i = 0; i < s.little_cores; ++i) online.set(little_first + i);
  const CoreId big_first = m.fastest_mask().first();
  for (int i = 0; i < s.big_cores; ++i) online.set(big_first + i);
  backend_.set_online_mask(online);
}

const std::vector<TracePoint>& ConsIManager::trace(AppId app) const {
  static const std::vector<TracePoint> kEmpty;
  for (const auto& entry : apps_) {
    if (entry.app == app) return entry.trace;
  }
  return kEmpty;
}

TimeUs ConsIManager::on_tick(TimeUs now) {
  if (now < next_poll_) return 0;
  // Per-app trace growth and hotplug/schedule changes are declared
  // amortized allocators inside the engine's guarded tick.
  allocg::AllowScope allow("cons-i bookkeeping");
  next_poll_ = now + config_.poll_period_us;
  TimeUs cost = config_.poll_cost_us;

  const Machine& m = backend_.topology();
  for (AppEntry& entry : apps_) {
    if (!entry.alive) continue;
    const HeartbeatMonitor& hb = backend_.heartbeats(entry.app);
    const std::int64_t idx = hb.last_index();
    if (idx < 0 || idx == entry.last_seen_hb) continue;
    const std::int64_t new_beats = idx - entry.last_seen_hb;
    entry.last_seen_hb = idx;
    entry.rate = hb.rate();
    for (std::int64_t i = 0; i < new_beats; ++i) {
      if (entry.freezing_cnt > 0) --entry.freezing_cnt;
    }
    entry.trace.push_back(TracePoint{idx, entry.rate, state_.big_cores,
                                     state_.little_cores,
                                     m.freq_ghz(m.fastest_cluster()),
                                     m.freq_ghz(m.slowest_cluster())});

    if (idx % entry.adapt_period != 0) continue;
    if (entry.rate <= 0.0) continue;  // No windowed rate yet.
    if (entry.target.contains(entry.rate)) continue;

    // Departed entries are excluded everywhere freezing counts are read
    // or armed: they emit no heartbeats, so a count set on one would
    // never decay and would freeze the system for the rest of the run.
    const bool frozen = std::any_of(apps_.begin(), apps_.end(),
                                    [](const AppEntry& a) {
                                      return a.alive && a.freezing_cnt > 0;
                                    });
    const PerfStatus own =
        classify(entry.rate, entry.target.min, entry.target.max);
    bool any_under = false;
    bool any_achieve = false;
    bool any_other = false;
    for (const AppEntry& other : apps_) {
      if (other.app == entry.app) continue;
      // Apps that have not emitted any heartbeat yet (e.g. blackscholes'
      // input phase, §5.2.2 case 6) do not constrain the decision.
      if (other.rate <= 0.0) continue;
      any_other = true;
      const PerfStatus st =
          classify(other.rate, other.target.min, other.target.max);
      if (st == PerfStatus::kUnderperf) any_under = true;
      if (st == PerfStatus::kAchieve) any_achieve = true;
    }
    PerfStatus others = PerfStatus::kOverperf;
    if (any_other) {
      if (any_under) {
        others = PerfStatus::kUnderperf;
      } else if (any_achieve) {
        others = PerfStatus::kAchieve;
      }
    }

    const InterferenceDecision decision = decide_interference(own, others, frozen);
    cost += config_.step_cost_us;

    if (decision.freeze == FreezeDecision::kUnfreeze) {
      for (AppEntry& a : apps_) {
        if (a.alive) a.freezing_cnt = 0;
      }
    }

    const std::size_t idx_now = current_index();
    if (decision.state == StateDecision::kInc) {
      // Nearest strictly-higher perfScore.
      std::size_t j = idx_now;
      while (j + 1 < states_.size() && scores_[j] <= scores_[idx_now]) ++j;
      if (scores_[j] > scores_[idx_now]) apply_state(states_[j]);
    } else if (decision.state == StateDecision::kDec) {
      std::size_t j = idx_now;
      while (j > 0 && scores_[j] >= scores_[idx_now]) --j;
      if (scores_[j] < scores_[idx_now]) {
        apply_state(states_[j]);
        if (decision.freeze == FreezeDecision::kFreeze) {
          for (AppEntry& a : apps_) {
            if (a.alive) a.freezing_cnt = config_.freeze_heartbeats;
          }
        }
      }
    }
  }
  return cost;
}

}  // namespace hars
