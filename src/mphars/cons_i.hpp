// CONS-I: the conservative incremental adaptation baseline (thesis §4.1.1,
// §5.2.1) — the "naive model" for multiple applications.
//
// All applications share every system resource (online core counts and
// cluster frequencies) under the Linux HMP scheduler; nothing is estimated.
// The model keeps the global system-state list sorted by the performance
// score
//     perfScore = C_B * r0 * (f_B / f_0) + C_L * (f_L / f_0)
// and, when an application in its adaptation period is out of its window,
// steps to the state with the nearest higher (INC) or lower (DEC) score —
// the smallest possible system performance change. Decisions follow the
// interference-aware policy (Table 4.3): decreases require every other
// application to overperform and trigger a freeze period.
#pragma once

#include <memory>
#include <vector>

#include "core/system_state.hpp"
#include "core/runtime_manager.hpp"  // TracePoint
#include "hmp/sim_engine.hpp"
#include "mphars/freeze_policy.hpp"

namespace hars {

struct ConsIConfig {
  double r0 = 1.5;
  double f0_ghz = 1.0;
  /// The raw cross-product of (C_B, C_L, f_B, f_L) yields hundreds of
  /// near-duplicate perfScores; stepping through every one would take the
  /// incremental model minutes to descend. The configuration ladder keeps
  /// only states whose score differs by at least this much from the
  /// previous kept state (one "step" of system performance).
  double min_score_step = 0.5;
  int freeze_heartbeats = 5;
  TimeUs poll_period_us = 5 * kUsPerMs;
  TimeUs poll_cost_us = 60;
  TimeUs step_cost_us = 200;  ///< Cost of one incremental step decision.
};

struct ConsIAppConfig {
  PerfTarget target;
  int adapt_period = 5;
};

/// perfScore of a global state (freq dims are level indices).
double cons_perf_score(const Machine& machine, const SystemState& s, double r0,
                       double f0_ghz);

class ConsIManager : public ManagerHook {
 public:
  /// The model drives the platform exclusively through `backend` (DVFS,
  /// hotplug, heartbeats) — simulated and live backends interchange.
  explicit ConsIManager(Backend& backend, ConsIConfig config = {});

  /// Compatibility overload: wraps `engine` in an owned SimBackend
  /// (bit-identical to pre-HAL construction).
  explicit ConsIManager(SimEngine& engine, ConsIConfig config = {});

  void register_app(AppId app, const ConsIAppConfig& app_config);

  /// Removes a departed app from the decision loop (its trace is kept for
  /// post-run queries). Returns false for unknown apps.
  bool unregister_app(AppId app);

  /// Moves an app's performance target (scenario set_target events).
  /// Returns false for unknown apps.
  bool set_app_target(AppId app, PerfTarget target);

  TimeUs on_tick(TimeUs now) override;

  const SystemState& global_state() const { return state_; }
  const std::vector<TracePoint>& trace(AppId app) const;

 private:
  struct AppEntry {
    AppId app = -1;
    bool alive = true;  ///< False once unregistered (departed).
    PerfTarget target;
    int adapt_period = 5;
    std::int64_t last_seen_hb = -1;
    double rate = 0.0;
    int freezing_cnt = 0;
    std::vector<TracePoint> trace;
  };

  /// Delegation target of both public constructors: exactly one of
  /// `owned` / `backend` is set (owned_backend_ precedes backend_ so the
  /// reference can bind to it).
  ConsIManager(std::unique_ptr<Backend> owned, Backend* backend,
               ConsIConfig config);

  void apply_state(const SystemState& s);
  void build_state_list();
  /// Index into states_ holding the current state.
  std::size_t current_index() const;

  std::unique_ptr<Backend> owned_backend_;  ///< Only for the SimEngine ctor.
  Backend& backend_;
  ConsIConfig config_;
  std::vector<AppEntry> apps_;
  std::vector<SystemState> states_;  ///< Sorted ascending by perfScore.
  std::vector<double> scores_;
  SystemState state_;
  TimeUs next_poll_ = 0;
};

}  // namespace hars
