#include "mphars/core_allocator.hpp"

#include <cassert>

namespace hars {

CpuMask owned_big_mask(const AppNode& app, int big_start_index) {
  CpuMask mask;
  for (std::size_t i = 0; i < app.use_b_core.size(); ++i) {
    if (app.use_b_core[i] == kUse) {
      mask.set(static_cast<CoreId>(i) + big_start_index);
    }
  }
  return mask;
}

CpuMask owned_little_mask(const AppNode& app, int little_start_index) {
  CpuMask mask;
  for (std::size_t i = 0; i < app.use_l_core.size(); ++i) {
    if (app.use_l_core[i] == kUse) {
      mask.set(static_cast<CoreId>(i) + little_start_index);
    }
  }
  return mask;
}

CpuMask allocate_core_set(AppNode& app, ClusterData& big_cluster,
                          ClusterData& little_cluster, int big_start_index,
                          int little_start_index) {
  const int max_big = static_cast<int>(app.use_b_core.size());
  const int max_little = static_cast<int>(app.use_l_core.size());
  assert(app.nprocs_b >= 0 && app.nprocs_b <= max_big);
  assert(app.nprocs_l >= 0 && app.nprocs_l <= max_little);

  // Lines 4-11: release decBigCoreCnt of the app's big cores.
  if (app.dec_big_core_cnt > 0) {
    for (int i = 0; i < max_big; ++i) {
      if (app.use_b_core[static_cast<std::size_t>(i)] == kUse) {
        big_cluster.free_core[static_cast<std::size_t>(i)] = kFree;
        app.use_b_core[static_cast<std::size_t>(i)] = kUnuse;
        --app.dec_big_core_cnt;
        if (app.dec_big_core_cnt == 0) break;
      }
    }
    app.dec_big_core_cnt = 0;  // Nothing left to free even if short.
  }
  // Lines 12-19: release decLittleCoreCnt of the app's little cores.
  if (app.dec_little_core_cnt > 0) {
    for (int i = 0; i < max_little; ++i) {
      if (app.use_l_core[static_cast<std::size_t>(i)] == kUse) {
        little_cluster.free_core[static_cast<std::size_t>(i)] = kFree;
        app.use_l_core[static_cast<std::size_t>(i)] = kUnuse;
        --app.dec_little_core_cnt;
        if (app.dec_little_core_cnt == 0) break;
      }
    }
    app.dec_little_core_cnt = 0;
  }

  CpuMask cpu_mask;
  int allocated_big = 0;
  int allocated_little = 0;

  // Lines 20-25: keep already-owned big cores first (no migration).
  for (int i = 0; i < max_big; ++i) {
    if (allocated_big >= app.nprocs_b) break;
    if (app.use_b_core[static_cast<std::size_t>(i)] == kUse) {
      big_cluster.free_core[static_cast<std::size_t>(i)] = kNotFree;
      cpu_mask.set(i + big_start_index);
      ++allocated_big;
    }
  }
  // Lines 26-32: take free big cores for the remainder.
  for (int i = 0; i < max_big; ++i) {
    if (allocated_big >= app.nprocs_b) break;
    if (big_cluster.free_core[static_cast<std::size_t>(i)] == kFree) {
      big_cluster.free_core[static_cast<std::size_t>(i)] = kNotFree;
      app.use_b_core[static_cast<std::size_t>(i)] = kUse;
      cpu_mask.set(i + big_start_index);
      ++allocated_big;
    }
  }
  // Lines 33-38: keep already-owned little cores.
  for (int i = 0; i < max_little; ++i) {
    if (allocated_little >= app.nprocs_l) break;
    if (app.use_l_core[static_cast<std::size_t>(i)] == kUse) {
      little_cluster.free_core[static_cast<std::size_t>(i)] = kNotFree;
      cpu_mask.set(i + little_start_index);
      ++allocated_little;
    }
  }
  // Lines 39-45: take free little cores.
  for (int i = 0; i < max_little; ++i) {
    if (allocated_little >= app.nprocs_l) break;
    if (little_cluster.free_core[static_cast<std::size_t>(i)] == kFree) {
      little_cluster.free_core[static_cast<std::size_t>(i)] = kNotFree;
      app.use_l_core[static_cast<std::size_t>(i)] = kUse;
      cpu_mask.set(i + little_start_index);
      ++allocated_little;
    }
  }

  return cpu_mask;
}

}  // namespace hars
