// The core allocation function of MP-HARS (thesis Algorithm 4).
//
// Resource partitioning rules:
//  * an application may only occupy FREE core slots — never another app's;
//  * already-owned cores are kept in preference to grabbing new ones, to
//    minimize thread migration (paper's bigcore example in §4.1.3);
//  * shrinking releases the app's lowest-indexed owned cores back to the
//    free pool (dec*CoreCnt bookkeeping).
//
// The function mutates the app's use_*_core arrays and the clusters'
// free_core arrays, and returns the cpu mask of the final allocation.
#pragma once

#include "hmp/cpu_mask.hpp"
#include "mphars/app_node.hpp"

namespace hars {

/// Applies Algorithm 4 for `app`: releases dec_*_core_cnt cores, then
/// builds the allocation of app.nprocs_b fast-pool and app.nprocs_l
/// slow-pool cores. `big_start_index` / `little_start_index` are the
/// machine core ids of the pools' first cores (on the XU3 the little
/// cluster starts at id 0; on N-cluster platforms the slowest cluster can
/// sit anywhere, so callers pass Machine::slowest_mask().first()).
CpuMask allocate_core_set(AppNode& app, ClusterData& big_cluster,
                          ClusterData& little_cluster, int big_start_index,
                          int little_start_index = 0);

/// Masks of the app's currently owned cores.
CpuMask owned_big_mask(const AppNode& app, int big_start_index);
CpuMask owned_little_mask(const AppNode& app, int little_start_index = 0);

}  // namespace hars
