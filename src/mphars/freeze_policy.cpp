#include "mphars/freeze_policy.hpp"

namespace hars {

const char* perf_status_name(PerfStatus s) {
  switch (s) {
    case PerfStatus::kUnderperf: return "Underperf";
    case PerfStatus::kAchieve: return "Achieve";
    case PerfStatus::kOverperf: return "Overperf";
  }
  return "?";
}

const char* state_decision_name(StateDecision s) {
  switch (s) {
    case StateDecision::kInc: return "INC";
    case StateDecision::kKeep: return "KEEP";
    case StateDecision::kDec: return "DEC";
  }
  return "?";
}

const char* freeze_decision_name(FreezeDecision s) {
  switch (s) {
    case FreezeDecision::kFreeze: return "FREEZE";
    case FreezeDecision::kUnfreeze: return "UNFREEZE";
    case FreezeDecision::kKeep: return "KEEP";
  }
  return "?";
}

PerfStatus classify(double rate, double target_min, double target_max) {
  if (rate < target_min) return PerfStatus::kUnderperf;
  if (rate > target_max) return PerfStatus::kOverperf;
  return PerfStatus::kAchieve;
}

InterferenceDecision decide_interference(PerfStatus app_in_period,
                                         PerfStatus the_others, bool frozen) {
  // Table 4.3. Rows are grouped by AppInPeriod; `the_others` only matters
  // for the Overperf group's DEC row, but the table is encoded in full so
  // the unit test can check it row by row.
  switch (app_in_period) {
    case PerfStatus::kUnderperf:
      // The app misses its target: always push the system up; a frozen
      // cluster is unfrozen because increases are always safe (§4.1.4:
      // "no restriction on increasing system performance").
      return frozen
                 ? InterferenceDecision{StateDecision::kInc, FreezeDecision::kUnfreeze}
                 : InterferenceDecision{StateDecision::kInc, FreezeDecision::kKeep};
    case PerfStatus::kAchieve:
      // Satisfied apps leave shared components alone.
      return InterferenceDecision{StateDecision::kKeep, FreezeDecision::kKeep};
    case PerfStatus::kOverperf:
      switch (the_others) {
        case PerfStatus::kUnderperf:
          // Someone else still needs the performance: push up while frozen
          // (thesis row: INC), hold otherwise.
          return frozen ? InterferenceDecision{StateDecision::kInc,
                                               FreezeDecision::kKeep}
                        : InterferenceDecision{StateDecision::kKeep,
                                               FreezeDecision::kKeep};
        case PerfStatus::kAchieve:
          // DEVIATION from the printed thesis table: the (Overperf,
          // Achieve/Overperf, FREEZE) rows list INC, but increasing while
          // everyone meets or exceeds their target immediately undoes the
          // decrease that armed the freeze, and the model oscillates
          // without ever descending (the very behaviour the freeze exists
          // to prevent). We treat those rows as KEEP: wait out the
          // settling window. See DESIGN.md §6.
          return InterferenceDecision{StateDecision::kKeep,
                                      FreezeDecision::kKeep};
        case PerfStatus::kOverperf:
          // Everyone overperforms: decreasing is safe, but only once the
          // settling window expired; a decrease re-freezes the cluster.
          return frozen ? InterferenceDecision{StateDecision::kKeep,
                                               FreezeDecision::kKeep}
                        : InterferenceDecision{StateDecision::kDec,
                                               FreezeDecision::kFreeze};
      }
      break;
  }
  return InterferenceDecision{};
}

}  // namespace hars
