// Interference-aware adaptation decisions (thesis §4.1.4, Table 4.3).
//
// When one application changes the frequency of a *shared* cluster it
// perturbs every co-located application, so the adaptation direction is
// gated on: the adapting app's own performance status (AppInPeriod), the
// aggregate status of the other applications (TheOthers), and the cluster's
// frozen state. Decreases additionally freeze the cluster for a number of
// heartbeats so all affected apps re-collect reliable performance data
// before anyone adapts on stale rates.
#pragma once

namespace hars {

enum class PerfStatus { kUnderperf, kAchieve, kOverperf };
enum class StateDecision { kInc, kKeep, kDec };
enum class FreezeDecision { kFreeze, kUnfreeze, kKeep };

const char* perf_status_name(PerfStatus s);
const char* state_decision_name(StateDecision s);
const char* freeze_decision_name(FreezeDecision s);

struct InterferenceDecision {
  StateDecision state = StateDecision::kKeep;
  FreezeDecision freeze = FreezeDecision::kKeep;
};

/// Table 4.3, implemented verbatim (all 18 rows).
InterferenceDecision decide_interference(PerfStatus app_in_period,
                                         PerfStatus the_others, bool frozen);

/// Status of a rate against a target window.
PerfStatus classify(double rate, double target_min, double target_max);

}  // namespace hars
