#include "mphars/mphars_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "backend/sim_backend.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/alloc_guard.hpp"
#include "util/audit.hpp"

namespace hars {

MpHarsManager::MpHarsManager(Backend& backend, PowerCoeffTable coeffs,
                             MpHarsConfig config)
    : MpHarsManager(nullptr, &backend, std::move(coeffs), std::move(config)) {}

MpHarsManager::MpHarsManager(SimEngine& engine, PowerCoeffTable coeffs,
                             MpHarsConfig config)
    : MpHarsManager(std::make_unique<SimBackend>(engine), nullptr,
                    std::move(coeffs), std::move(config)) {}

MpHarsManager::MpHarsManager(std::unique_ptr<Backend> owned, Backend* backend,
                             PowerCoeffTable coeffs, MpHarsConfig config)
    : owned_backend_(std::move(owned)),
      backend_(backend != nullptr ? *backend : *owned_backend_),
      registry_(backend_.topology().cluster_core_count(
                    backend_.topology().fastest_cluster()),
                backend_.topology().cluster_core_count(
                    backend_.topology().slowest_cluster())),
      perf_est_(backend_.topology(), config.r0),
      power_est_(std::move(coeffs)),
      config_(config),
      machine_space_(StateSpace::from_machine(backend_.topology())) {}

void MpHarsManager::register_app(AppId app, const MpHarsAppConfig& app_config) {
  if (!app_config.target.is_valid_window()) {
    throw std::invalid_argument(
        "MpHarsManager::register_app: target window must be positive");
  }
  AppNode& node = registry_.add(app);
  node.target = app_config.target;
  node.adapt_period = app_config.adapt_period;
  node.scheduler = app_config.scheduler;
  backend_.heartbeats(app).set_target(app_config.target);

  // Even initial split of each cluster across all registered apps: release
  // everything, then re-allocate fair shares in registration order.
  const int napps = static_cast<int>(registry_.size());
  const int big_share = std::max(
      1, registry_.fastest_cluster().free_core.empty()
             ? 0
             : static_cast<int>(registry_.fastest_cluster().free_core.size()) / napps);
  const int little_share = std::max(
      1, static_cast<int>(registry_.slowest_cluster().free_core.size()) / napps);
  registry_.for_each([&](AppNode& n) {
    n.dec_big_core_cnt = n.used_big_count();
    n.dec_little_core_cnt = n.used_little_count();
    n.nprocs_b = 0;
    n.nprocs_l = 0;
    allocate_core_set(n, registry_.fastest_cluster(),
                      registry_.slowest_cluster(),
                      backend_.topology().fastest_mask().first(),
                      backend_.topology().slowest_mask().first());
  });
  registry_.for_each([&](AppNode& n) {
    SystemState initial;
    initial.big_cores = big_share;
    initial.little_cores = little_share;
    initial.big_freq = machine_space_.num_big_freqs - 1;
    initial.little_freq = machine_space_.num_little_freqs - 1;
    apply_app_state(n, initial);
  });
}

bool MpHarsManager::unregister_app(AppId app) {
  return registry_.remove(app);
}

bool MpHarsManager::set_app_target(AppId app, PerfTarget target) {
  if (!target.is_valid_window()) {
    throw std::invalid_argument(
        "MpHarsManager::set_app_target: target window must be positive");
  }
  AppNode* node = registry_.find(app);
  if (node == nullptr) return false;
  node->target = target;
  backend_.heartbeats(app).set_target(target);
  return true;
}

SystemState MpHarsManager::current_state_of(const AppNode& node) const {
  const Machine& m = backend_.topology();
  SystemState s;
  s.big_cores = node.nprocs_b;
  s.little_cores = node.nprocs_l;
  s.big_freq = m.freq_level(m.fastest_cluster());
  s.little_freq = m.freq_level(m.slowest_cluster());
  return s;
}

SystemState MpHarsManager::app_state(AppId app) const {
  const AppNode* node = registry_.find(app);
  return node != nullptr ? current_state_of(*node) : SystemState{};
}

const std::vector<TracePoint>& MpHarsManager::trace(AppId app) const {
  static const std::vector<TracePoint> kEmpty;
  const AppNode* node = registry_.find(app);
  return node != nullptr ? node->trace : kEmpty;
}

bool MpHarsManager::cluster_shared(const AppNode& node, bool big_cluster) const {
  bool shared = false;
  registry_.for_each([&](const AppNode& other) {
    if (other.app_id == node.app_id) return;
    const int used = big_cluster ? other.used_big_count() : other.used_little_count();
    if (used > 0) shared = true;
  });
  return shared;
}

PerfStatus MpHarsManager::others_status(const AppNode& node,
                                        bool big_cluster) const {
  bool any_under = false;
  bool any_achieve = false;
  bool any_other = false;
  registry_.for_each([&](const AppNode& other) {
    if (other.app_id == node.app_id) return;
    const int used = big_cluster ? other.used_big_count() : other.used_little_count();
    if (used == 0) return;
    if (other.heartbeat_rate <= 0.0) return;  // Not emitting heartbeats yet.
    any_other = true;
    const PerfStatus st =
        classify(other.heartbeat_rate, other.target.min, other.target.max);
    if (st == PerfStatus::kUnderperf) any_under = true;
    if (st == PerfStatus::kAchieve) any_achieve = true;
  });
  if (!any_other) return PerfStatus::kOverperf;  // No one to disturb.
  if (any_under) return PerfStatus::kUnderperf;
  if (any_achieve) return PerfStatus::kAchieve;
  return PerfStatus::kOverperf;
}

void MpHarsManager::record_trace(AppNode& node) {
  const Machine& m = backend_.topology();
  node.trace.push_back(TracePoint{
      node.last_seen_hb, node.heartbeat_rate, node.nprocs_b, node.nprocs_l,
      m.freq_ghz(m.fastest_cluster()), m.freq_ghz(m.slowest_cluster())});
}

void MpHarsManager::apply_app_state(AppNode& node, const SystemState& next) {
  const Machine& m = backend_.topology();
  // Core bookkeeping: queue releases for shrunk clusters, then run the
  // Algorithm 4 allocator.
  node.dec_big_core_cnt = std::max(0, node.used_big_count() - next.big_cores);
  node.dec_little_core_cnt =
      std::max(0, node.used_little_count() - next.little_cores);
  node.nprocs_b = next.big_cores;
  node.nprocs_l = next.little_cores;
  allocate_core_set(node, registry_.fastest_cluster(),
                    registry_.slowest_cluster(), m.fastest_mask().first(),
                    m.slowest_mask().first());
  // The allocator may come up short if free cores ran out (the search
  // filter prevents this, but stay safe).
  node.nprocs_b = node.used_big_count();
  node.nprocs_l = node.used_little_count();

  const int old_big_freq = m.freq_level(m.fastest_cluster());
  const int old_little_freq = m.freq_level(m.slowest_cluster());
  backend_.set_dvfs_level(m.fastest_cluster(), next.big_freq);
  backend_.set_dvfs_level(m.slowest_cluster(), next.little_freq);
  registry_.fastest_cluster().nfreq = m.freq_level(m.fastest_cluster());
  registry_.slowest_cluster().nfreq = m.freq_level(m.slowest_cluster());

  // Pin the app's threads over its own cores.
  const SystemState applied = current_state_of(node);
  const int t = backend_.thread_count(node.app_id);
  const ThreadAssignment a = perf_est_.assignment(applied, t);
  apply_thread_schedule(backend_, node.app_id, node.scheduler, a,
                        owned_big_mask(node, m.fastest_mask().first()),
                        owned_little_mask(node, m.slowest_mask().first()));

  // Lines 23-26 of Algorithm 3: a frequency decrease freezes the cluster
  // by arming the freezing counts of every application using it.
  const bool big_dec = m.freq_level(m.fastest_cluster()) < old_big_freq;
  const bool little_dec = m.freq_level(m.slowest_cluster()) < old_little_freq;
  if (big_dec || little_dec) {
    registry_.for_each([&](AppNode& other) {
      if (big_dec && other.used_big_count() > 0) {
        other.freezing_cnt_b = config_.freeze_heartbeats;
      }
      if (little_dec && other.used_little_count() > 0) {
        other.freezing_cnt_l = config_.freeze_heartbeats;
      }
    });
  }
}

TimeUs MpHarsManager::adapt_app(AppNode& node, TimeUs now) {
  (void)now;
  const double rate = node.heartbeat_rate;
  const PerfTarget& target = node.target;
  if (rate <= 0.0) return 0;  // No windowed rate yet.
  if (node.adaptation_index >= 0 &&
      node.last_seen_hb - node.adaptation_index < config_.settle_beats) {
    return 0;  // Heartbeat window still mixes pre-change rates.
  }
  if (std::abs(rate - target.avg()) <= 0.5 * (target.max - target.min)) {
    return 0;  // Inside the window.
  }

  const SystemState current = current_state_of(node);

  // Line 18: free cores not allocated to any application.
  const int free_big = registry_.fastest_cluster().free_count();
  const int free_little = registry_.slowest_cluster().free_count();

  // Line 19: frequency controllability per cluster.
  struct FreqRule {
    bool allow_inc = true;
    bool allow_dec = true;
  };
  auto rule_for = [&](bool big_cluster) -> FreqRule {
    if (!cluster_shared(node, big_cluster)) return FreqRule{};  // Exclusive.
    const bool frozen = big_cluster
                            ? registry_.fastest_cluster().frozen_flag != 0
                            : registry_.slowest_cluster().frozen_flag != 0;
    const PerfStatus own = classify(rate, target.min, target.max);
    const PerfStatus others = others_status(node, big_cluster);
    const InterferenceDecision decision =
        decide_interference(own, others, frozen);
    if (decision.freeze == FreezeDecision::kUnfreeze) {
      // Increases are always safe: lift the settling window.
      registry_.for_each([&](AppNode& other) {
        if (big_cluster) {
          other.freezing_cnt_b = 0;
        } else {
          other.freezing_cnt_l = 0;
        }
      });
      if (big_cluster) {
        registry_.fastest_cluster().frozen_flag = 0;
      } else {
        registry_.slowest_cluster().frozen_flag = 0;
      }
    }
    switch (decision.state) {
      case StateDecision::kInc: return FreqRule{true, false};
      case StateDecision::kKeep: return FreqRule{false, false};
      case StateDecision::kDec: return FreqRule{true, true};
    }
    return FreqRule{};
  };
  const FreqRule big_rule = rule_for(true);
  const FreqRule little_rule = rule_for(false);

  // Named lvalue: CandidateFilter is a non-owning reference, so the
  // lambda must outlive the search call.
  const auto filter_fn = [&](const SystemState& cand) {
    if (cand.big_cores > node.nprocs_b + free_big) return false;
    if (cand.little_cores > node.nprocs_l + free_little) return false;
    if (cand.big_freq > current.big_freq && !big_rule.allow_inc) return false;
    if (cand.big_freq < current.big_freq && !big_rule.allow_dec) return false;
    if (cand.little_freq > current.little_freq && !little_rule.allow_inc)
      return false;
    if (cand.little_freq < current.little_freq && !little_rule.allow_dec)
      return false;
    return true;
  };

  const bool overperforming = rate > target.avg();
  const SearchParams params =
      params_for_policy(config_.policy, overperforming,
                        config_.exhaustive_window, config_.exhaustive_d);
  const SearchResult result = get_next_sys_state(
      rate, current, target, params, machine_space_, perf_est_, power_est_,
      backend_.thread_count(node.app_id), filter_fn,
      config_.reference_search ? nullptr : &scratch_);
  {
    const obs::Catalog& cat = obs::catalog();
    obs::counter_add(config_.policy == SearchPolicy::kExhaustive
                         ? cat.candidates_exhaustive
                         : cat.candidates_incremental,
                     static_cast<std::uint64_t>(result.candidates));
  }

  if (backend_.audit_enabled()) {
    const std::string why = result.state.check_invariants(machine_space_);
    if (!why.empty()) {
      throw AuditError("MpHarsManager: search returned invalid state: " + why);
    }
  }

  TimeUs cost = config_.adapt_fixed_cost_us +
                config_.cost_per_candidate_us * result.candidates;
  if (result.moved) {
    apply_app_state(node, result.state);
    ++adaptations_;
    node.adaptation_index = node.last_seen_hb;
  }
  return cost;
}

TimeUs MpHarsManager::on_tick(TimeUs now) {
  if (now < next_poll_) return 0;
  // Registry/trace bookkeeping and schedule changes are declared
  // amortized allocators inside the guarded tick; the candidate search
  // re-tightens via its own AllocGuard (see get_next_sys_state).
  allocg::AllowScope allow("mphars-manager bookkeeping");
  next_poll_ = now + config_.poll_period_us;
  TimeUs cost = config_.poll_cost_us;

  // One memoization epoch per manager tick: every adapt_app below shares
  // the same estimator configuration, so their searches reuse estimates.
  if (!config_.reference_search) scratch_.begin_tick(machine_space_);

  // Algorithm 3: iterate the application list.
  registry_.for_each([&](AppNode& node) {
    const HeartbeatMonitor& hb = backend_.heartbeats(node.app_id);
    const std::int64_t idx = hb.last_index();
    if (idx < 0 || idx == node.last_seen_hb) return;
    const std::int64_t new_beats = idx - node.last_seen_hb;
    node.last_seen_hb = idx;
    node.heartbeat_rate = hb.rate();

    // Lines 8-11: each new heartbeat retires one freezing count.
    for (std::int64_t i = 0; i < new_beats; ++i) {
      if (node.freezing_cnt_b > 0) --node.freezing_cnt_b;
      if (node.freezing_cnt_l > 0) --node.freezing_cnt_l;
    }

    record_trace(node);

    // Lines 12-15: refresh the per-cluster frozen flags.
    int big_frozen = 0;
    int little_frozen = 0;
    registry_.for_each([&](const AppNode& n) {
      if (n.freezing_cnt_b > 0) big_frozen = 1;
      if (n.freezing_cnt_l > 0) little_frozen = 1;
    });
    registry_.fastest_cluster().frozen_flag = big_frozen;
    registry_.slowest_cluster().frozen_flag = little_frozen;

    // Lines 16-22: adaptation period check.
    if (idx % node.adapt_period == 0) {
      cost += adapt_app(node, now);
    }
  });
  return cost;
}

}  // namespace hars
