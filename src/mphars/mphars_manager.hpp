// The MP-HARS runtime manager (thesis §4, Algorithm 3).
//
// Each registered application is managed "by its own HARS": it owns its
// cores exclusively (resource partitioning, Algorithm 4) while cluster
// frequencies remain shared and are governed by the interference-aware
// adaptation policy (Table 4.3 + freezing counts). Per iteration the
// manager walks the application list, updates freezing counters on new
// heartbeats, refreshes the clusters' frozen flags, and runs the HARS
// search for any application in its adaptation period — with the state
// space narrowed to the app's own cores plus free cores, and frequency
// dimensions constrained by cluster controllability.
#pragma once

#include <memory>
#include <vector>

#include "core/perf_estimator.hpp"
#include "core/power_estimator.hpp"
#include "core/search.hpp"
#include "hmp/sim_engine.hpp"
#include "mphars/core_allocator.hpp"
#include "mphars/freeze_policy.hpp"
#include "mphars/registry.hpp"

namespace hars {

struct MpHarsConfig {
  SearchPolicy policy = SearchPolicy::kExhaustive;
  int exhaustive_window = 4;  ///< MP-HARS-E: m = n = 4.
  int exhaustive_d = 7;       ///< MP-HARS-E: d = 7.
  int freeze_heartbeats = 5;  ///< Freezing count installed after a decrease.
  int settle_beats = 10;      ///< Fresh heartbeats required after a move.
  double r0 = 1.5;

  // Overhead model, as in RuntimeManagerConfig.
  TimeUs poll_period_us = 5 * kUsPerMs;
  TimeUs poll_cost_us = 60;
  TimeUs cost_per_candidate_us = 400;
  TimeUs adapt_fixed_cost_us = 500;

  /// Runs the retained reference search implementation instead of the
  /// memoized SearchScratch path (bit-identical decisions; see
  /// RuntimeManagerConfig::reference_search).
  bool reference_search = false;
};

struct MpHarsAppConfig {
  PerfTarget target;
  int adapt_period = 5;
  ThreadSchedulerKind scheduler = ThreadSchedulerKind::kChunk;
};

class MpHarsManager : public ManagerHook {
 public:
  /// The manager drives the platform exclusively through `backend` (DVFS,
  /// placement, heartbeats) — simulated and live backends interchange.
  MpHarsManager(Backend& backend, PowerCoeffTable coeffs,
                MpHarsConfig config = {});

  /// Compatibility overload: wraps `engine` in an owned SimBackend
  /// (bit-identical to pre-HAL construction).
  MpHarsManager(SimEngine& engine, PowerCoeffTable coeffs,
                MpHarsConfig config = {});

  /// Registers an app; initial allocation is an even split of each cluster
  /// across registered apps (re-applied on every registration).
  void register_app(AppId app, const MpHarsAppConfig& app_config);

  /// Removes an app (it exited): its cores return to the free pool, where
  /// the remaining applications' searches can claim them on their next
  /// adaptation. Returns false for unknown apps.
  bool unregister_app(AppId app);

  /// Moves an app's performance target (scenario set_target events).
  /// Returns false for unknown apps.
  bool set_app_target(AppId app, PerfTarget target);

  TimeUs on_tick(TimeUs now) override;

  /// Current state of one app (own cores + shared frequencies).
  SystemState app_state(AppId app) const;
  const std::vector<TracePoint>& trace(AppId app) const;
  const AppRegistry& registry() const { return registry_; }
  std::int64_t adaptations() const { return adaptations_; }

 private:
  /// Delegation target of both public constructors: exactly one of
  /// `owned` / `backend` is set (owned_backend_ precedes backend_ so the
  /// reference can bind to it).
  MpHarsManager(std::unique_ptr<Backend> owned, Backend* backend,
                PowerCoeffTable coeffs, MpHarsConfig config);

  TimeUs adapt_app(AppNode& node, TimeUs now);
  void apply_app_state(AppNode& node, const SystemState& next);
  SystemState current_state_of(const AppNode& node) const;
  /// Aggregate status of the other apps sharing `big` (true) or little.
  PerfStatus others_status(const AppNode& node, bool big_cluster) const;
  /// Does any other app own cores on the cluster?
  bool cluster_shared(const AppNode& node, bool big_cluster) const;
  void record_trace(AppNode& node);

  std::unique_ptr<Backend> owned_backend_;  ///< Only for the SimEngine ctor.
  Backend& backend_;
  AppRegistry registry_;
  PerfEstimator perf_est_;
  PowerEstimator power_est_;
  MpHarsConfig config_;
  StateSpace machine_space_;
  /// Shared per-tick search memoization: one epoch per manager tick, so
  /// the per-app searches of the same tick reuse each other's estimates
  /// (estimator configuration is constant across a tick).
  SearchScratch scratch_;
  TimeUs next_poll_ = 0;
  std::int64_t adaptations_ = 0;
};

}  // namespace hars
