#include "mphars/registry.hpp"

namespace hars {

AppRegistry::AppRegistry(int big_slots, int little_slots)
    : big_slots_(big_slots), little_slots_(little_slots) {
  big_.free_core.assign(static_cast<std::size_t>(big_slots), kFree);
  little_.free_core.assign(static_cast<std::size_t>(little_slots), kFree);
}

AppNode& AppRegistry::add(AppId app_id) {
  auto node = std::make_unique<AppNode>();
  node->app_id = app_id;
  node->use_b_core.assign(static_cast<std::size_t>(big_slots_), kUnuse);
  node->use_l_core.assign(static_cast<std::size_t>(little_slots_), kUnuse);
  AppNode& ref = *node;
  nodes_.push_back(std::move(node));
  list_.push_back(&ref);
  return ref;
}

bool AppRegistry::remove(AppId app_id) {
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if ((*it)->app_id != app_id) continue;
    AppNode& node = **it;
    // Return every owned slot to the free pools.
    for (std::size_t i = 0; i < node.use_b_core.size(); ++i) {
      if (node.use_b_core[i] == kUse) big_.free_core[i] = kFree;
    }
    for (std::size_t i = 0; i < node.use_l_core.size(); ++i) {
      if (node.use_l_core[i] == kUse) little_.free_core[i] = kFree;
    }
    list_.remove(&node);
    nodes_.erase(it);
    return true;
  }
  return false;
}

AppNode* AppRegistry::find(AppId app_id) {
  for (auto& n : nodes_) {
    if (n->app_id == app_id) return n.get();
  }
  return nullptr;
}

const AppNode* AppRegistry::find(AppId app_id) const {
  return const_cast<AppRegistry*>(this)->find(app_id);
}

}  // namespace hars
