// Application registry for MP-HARS: owns the AppNode storage and exposes
// the paper's linked-list iteration (Algorithm 3 walks nodes in
// registration order) plus the per-cluster data of Table 4.2.
#pragma once

#include <memory>
#include <vector>

#include "mphars/app_node.hpp"
#include "util/intrusive_list.hpp"

namespace hars {

class AppRegistry {
 public:
  /// `big_slots` / `little_slots` size the per-cluster core-slot arrays.
  AppRegistry(int big_slots, int little_slots);

  /// Creates and links a node; all core slots of the new app start UNUSE.
  AppNode& add(AppId app_id);

  /// Unlinks and destroys the node, returning all of its core slots to
  /// the clusters' free pools. Returns false if the app is unknown.
  bool remove(AppId app_id);

  AppNode* find(AppId app_id);
  const AppNode* find(AppId app_id) const;

  /// Algorithm 3's iterateNodes order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    list_.for_each(std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    list_.for_each([&fn](AppNode& node) { fn(static_cast<const AppNode&>(node)); });
  }

  std::size_t size() const { return nodes_.size(); }

  /// The two managed pools, named after the machine's perf-ranked
  /// capability API: "fastest" slots map onto the fastest cluster's cores
  /// and "slowest" onto the slowest cluster's (on two-cluster big.LITTLE
  /// parts these are exactly the big and little clusters).
  ClusterData& fastest_cluster() { return big_; }
  ClusterData& slowest_cluster() { return little_; }
  const ClusterData& fastest_cluster() const { return big_; }
  const ClusterData& slowest_cluster() const { return little_; }

  /// Legacy two-cluster names (shims).
  ClusterData& big_cluster() { return big_; }
  ClusterData& little_cluster() { return little_; }
  const ClusterData& big_cluster() const { return big_; }
  const ClusterData& little_cluster() const { return little_; }

 private:
  std::vector<std::unique_ptr<AppNode>> nodes_;
  IntrusiveList<AppNode> list_;
  ClusterData big_;
  ClusterData little_;
  int big_slots_;
  int little_slots_;
};

}  // namespace hars
