#include "obs/catalog.hpp"

#include <cmath>
#include <string>
#include <vector>

namespace hars {
namespace obs {

const char* tick_phase_name(TickPhase phase) {
  switch (phase) {
    case TickPhase::kScenarioDispatch: return "scenario_dispatch";
    case TickPhase::kBeginTick: return "begin_tick";
    case TickPhase::kSnapshotRefresh: return "snapshot_refresh";
    case TickPhase::kRunnability: return "runnability";
    case TickPhase::kAssign: return "assign";
    case TickPhase::kExecute: return "execute";
    case TickPhase::kEndTick: return "end_tick";
    case TickPhase::kManager: return "manager";
    case TickPhase::kSensor: return "sensor";
    case TickPhase::kCount: break;
  }
  return "?";
}

namespace {

/// Exponential ns bounds for phase timers: 100 ns .. 10 ms.
std::vector<double> phase_ns_bounds() {
  std::vector<double> bounds;
  for (double b = 100.0; b <= 1e7; b *= std::sqrt(10.0)) {
    bounds.push_back(b);
  }
  return bounds;
}

/// Power-of-two bounds for the tabu ring occupancy (ring is small).
std::vector<double> ring_bounds() { return {1, 2, 4, 8, 16, 32, 64}; }

/// Millisecond latency bounds for sweep case timings: 10 us .. 10 s.
std::vector<double> sweep_ms_bounds() {
  std::vector<double> bounds;
  for (double b = 0.01; b <= 1e4; b *= std::sqrt(10.0)) {
    bounds.push_back(b);
  }
  return bounds;
}

Catalog build_catalog() {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Catalog c;

  c.ticks = reg.register_counter("engine.ticks", "Simulation ticks stepped");
  c.tick_allocs = reg.register_counter(
      "engine.tick_allocs",
      "Heap allocations observed inside guarded tick regions (AllowScopes "
      "included)");
  c.tick_alloc_violations = reg.register_counter(
      "engine.tick_alloc_violations",
      "Undeclared allocations inside guarded tick regions (must stay 0)");
  for (int p = 0; p < static_cast<int>(TickPhase::kCount); ++p) {
    c.tick_phase_ns[p] = reg.register_histogram(
        std::string("engine.phase.") +
            tick_phase_name(static_cast<TickPhase>(p)) + "_ns",
        phase_ns_bounds(),
        "Sampled wall time of one tick phase (ns)");
  }

  c.memo_unit_time_hits = reg.register_counter(
      "search.memo.unit_time_hits", "SearchScratch unit-time memo hits");
  c.memo_unit_time_misses = reg.register_counter(
      "search.memo.unit_time_misses", "SearchScratch unit-time memo misses");
  c.memo_power_hits = reg.register_counter("search.memo.power_hits",
                                           "SearchScratch power memo hits");
  c.memo_power_misses = reg.register_counter(
      "search.memo.power_misses", "SearchScratch power memo misses");
  c.search_calls =
      reg.register_counter("search.calls", "get_next_sys_state invocations");
  c.search_moves = reg.register_counter(
      "search.moves", "Accepted state transitions (result != current)");
  c.candidates_incremental = reg.register_counter(
      "search.candidates.incremental",
      "Candidate states evaluated by the incremental policy");
  c.candidates_exhaustive = reg.register_counter(
      "search.candidates.exhaustive",
      "Candidate states evaluated by the exhaustive policy");
  c.candidates_tabu = reg.register_counter(
      "search.candidates.tabu",
      "Candidate states evaluated by the tabu policy");
  c.tabu_ring_occupancy = reg.register_histogram(
      "search.tabu.ring_occupancy", ring_bounds(),
      "Tabu ring entries live after a trajectory");

  c.gts_assign_calls = reg.register_counter(
      "sched.gts.assign_calls", "GTS scratch-path assign invocations");
  c.gts_assign_skips = reg.register_counter(
      "sched.gts.assign_skips",
      "GTS assigns skipped by the stable-placement fast path");
  c.migrations = reg.register_counter(
      "sched.migrations", "Thread migrations performed by GTS (scratch path)");

  c.backend_dvfs_writes = reg.register_counter(
      "backend.dvfs_writes", "Backend::set_dvfs_level calls (any backend)");
  c.backend_placements = reg.register_counter(
      "backend.placements", "Backend::place calls (any backend)");
  c.backend_hotplug_writes = reg.register_counter(
      "backend.hotplug_writes", "Backend::set_online_mask calls (any backend)");
  c.backend_energy_reads = reg.register_counter(
      "backend.energy_reads", "Backend::energy_j reads (any backend)");
  c.backend_ticks = reg.register_counter(
      "backend.ticks", "Live-backend tick-loop iterations (mock/linux)");
  c.backend_tick_ns = reg.register_histogram(
      "backend.tick_ns", phase_ns_bounds(),
      "Wall time of one live-backend tick (observe + manager + actuate, ns)");

  c.sweep_cases =
      reg.register_counter("sweep.cases", "Sweep cases completed");
  c.sweep_jobs = reg.register_gauge("sweep.jobs",
                                    "Worker count of the last sweep run");
  c.sweep_case_queue_ms = reg.register_histogram(
      "sweep.case_queue_ms", sweep_ms_bounds(),
      "Delay between sweep start and a case starting (ms)");
  c.sweep_case_run_ms = reg.register_histogram(
      "sweep.case_run_ms", sweep_ms_bounds(),
      "Wall time of one sweep case (ms)");
  c.sweep_case_emit_ms = reg.register_histogram(
      "sweep.case_emit_ms", sweep_ms_bounds(),
      "Time a finished case waited for in-order emission (ms)");
  return c;
}

}  // namespace

const Catalog& catalog() {
  static const Catalog c = build_catalog();
  return c;
}

namespace {
// Prime at static init: all registration allocations happen before main,
// so catalog() inside a live AllocGuard is a pure table read.
[[maybe_unused]] const Catalog& g_primed = catalog();
}  // namespace

}  // namespace obs
}  // namespace hars
