// The repo-wide metric catalog: every counter/gauge/histogram the
// simulator, search layer, scheduler and sweep engine write, registered
// once at static initialization (catalog.cpp primes it), so hot-path
// writers only ever touch pre-built ids — registration can never happen
// inside a live AllocGuard.
//
// Naming: dotted lowercase ("engine.phase.assign_ns"); the Prometheus
// writer sanitizes to hars_engine_phase_assign_ns.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace hars {
namespace obs {

/// The tick lifecycle phases timed in SimEngine::step(): the paper's
/// 6-step tick plus the scenario-dispatch hook (step 0), with snapshot
/// refresh and the manager hook separated out so search cost is
/// attributable. Order matches execution order inside one tick.
enum class TickPhase : std::uint8_t {
  kScenarioDispatch = 0,  ///< tick hook: scenario event dispatch.
  kBeginTick,             ///< App work generation (begin_tick).
  kSnapshotRefresh,       ///< Scratch prep + DVFS/online snapshot.
  kRunnability,           ///< Runnable refresh + EWMA load update.
  kAssign,                ///< Scheduler placement (+ placement audit).
  kExecute,               ///< Share split + app execution.
  kEndTick,               ///< App barrier/heartbeat logic (end_tick).
  kManager,               ///< Runtime-manager hook (HARS search etc).
  kSensor,                ///< Power integration + sensor advance.
  kCount
};

const char* tick_phase_name(TickPhase phase);

/// Ids for every metric in the catalog. Access through catalog(); the
/// instance is built (and all names registered) during static init.
struct Catalog {
  // --- Engine / tick lifecycle ---
  CounterId ticks;                  ///< engine.ticks
  CounterId tick_allocs;            ///< engine.tick_allocs
  CounterId tick_alloc_violations;  ///< engine.tick_alloc_violations
  HistId tick_phase_ns[static_cast<int>(TickPhase::kCount)];

  // --- Search / memoization ---
  CounterId memo_unit_time_hits;    ///< search.memo.unit_time_hits
  CounterId memo_unit_time_misses;  ///< search.memo.unit_time_misses
  CounterId memo_power_hits;        ///< search.memo.power_hits
  CounterId memo_power_misses;      ///< search.memo.power_misses
  CounterId search_calls;           ///< search.calls
  CounterId search_moves;           ///< search.moves (accepted transitions)
  CounterId candidates_incremental; ///< search.candidates.incremental
  CounterId candidates_exhaustive;  ///< search.candidates.exhaustive
  CounterId candidates_tabu;        ///< search.candidates.tabu
  HistId tabu_ring_occupancy;       ///< search.tabu.ring_occupancy

  // --- Scheduler ---
  CounterId gts_assign_calls;  ///< sched.gts.assign_calls
  CounterId gts_assign_skips;  ///< sched.gts.assign_skips (stable placement)
  CounterId migrations;        ///< sched.migrations

  // --- Backend HAL ---
  CounterId backend_dvfs_writes;    ///< backend.dvfs_writes
  CounterId backend_placements;     ///< backend.placements
  CounterId backend_hotplug_writes; ///< backend.hotplug_writes
  CounterId backend_energy_reads;   ///< backend.energy_reads
  CounterId backend_ticks;          ///< backend.ticks (live tick loops)
  HistId backend_tick_ns;           ///< backend.tick_ns (live tick wall time)

  // --- Sweep engine ---
  CounterId sweep_cases;       ///< sweep.cases
  GaugeId sweep_jobs;          ///< sweep.jobs (workers of the last run)
  HistId sweep_case_queue_ms;  ///< sweep.case_queue_ms
  HistId sweep_case_run_ms;    ///< sweep.case_run_ms
  HistId sweep_case_emit_ms;   ///< sweep.case_emit_ms
};

/// The process-wide catalog; first call registers everything.
const Catalog& catalog();

}  // namespace obs
}  // namespace hars
