#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "util/alloc_guard.hpp"

namespace hars {
namespace obs {

namespace detail {

thread_local ThreadShard* tls = nullptr;

std::atomic<std::uint64_t> g_attach_epoch{kDetachedEpoch};

void hist_observe_slow(ThreadShard* shard, std::int32_t hist, double value) {
  const HistDef* def = shard->hists[static_cast<std::size_t>(hist)];
  std::int32_t b = 0;
  const std::int32_t last = def->num_buckets - 1;  // +Inf bucket.
  while (b < last && value > def->bounds[static_cast<std::size_t>(b)]) ++b;
  // Single-writer shard: relaxed load+store, not an atomic RMW (see
  // counter_add in the header).
  const auto bump = [](std::atomic<std::uint64_t>& slot) {
    slot.store(slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  };
  bump(shard->buckets[def->first_bucket + b]);
  std::atomic<double>& sum = shard->hist_sum[hist];
  sum.store(sum.load(std::memory_order_relaxed) + value,
            std::memory_order_relaxed);
  bump(shard->hist_count[hist]);
}

namespace {

/// Owns the thread's shard; the destructor folds it into the retired
/// accumulators so exited worker threads keep their counts. Safe because
/// the registry is leaked (never destroyed before any thread exits).
struct ShardOwner {
  std::unique_ptr<ThreadShard> shard;
  ~ShardOwner();
};

thread_local ShardOwner t_owner;

}  // namespace
}  // namespace detail

struct MetricsRegistry::Impl {
  std::mutex mu;

  struct CounterDef {
    std::string name, help;
  };
  struct GaugeDef {
    std::string name, help;
  };
  struct HistMeta {
    std::string name, help;
    detail::HistDef* def = nullptr;
  };

  std::vector<CounterDef> counters;
  std::vector<GaugeDef> gauges;
  std::vector<HistMeta> hists;
  std::deque<detail::HistDef> hist_defs;  ///< Address-stable storage.
  std::int32_t total_buckets = 0;

  /// (kind, index-within-kind) in registration order, for snapshots.
  std::vector<std::pair<MetricKind, std::int32_t>> order;
  std::unordered_map<std::string, std::pair<MetricKind, std::int32_t>> by_name;

  /// Bumped on every registration; shards rebuilt lazily on mismatch.
  /// Atomic so ensure_thread_registered() can check staleness without
  /// the mutex (all writes happen under it).
  std::atomic<std::uint64_t> layout_epoch{0};

  // Retired accumulators: counts of threads that detached or exited.
  std::vector<std::uint64_t> retired_counters;
  std::vector<std::uint64_t> retired_buckets;
  std::vector<double> retired_hist_sum;
  std::vector<std::uint64_t> retired_hist_count;

  std::vector<double> gauge_values;

  std::vector<detail::ThreadShard*> live;  ///< Currently attached shards.

  /// Folds `shard` into the retired accumulators. Caller holds mu. The
  /// shard's layout is always a prefix of the current layout (defs are
  /// append-only), so indices line up.
  void retire(const detail::ThreadShard& shard) {
    grow_retired();
    for (std::int32_t i = 0; i < shard.num_counters; ++i) {
      retired_counters[static_cast<std::size_t>(i)] +=
          shard.counters[i].load(std::memory_order_relaxed);
    }
    for (std::int32_t h = 0; h < shard.num_hists; ++h) {
      const detail::HistDef* def = shard.hists[static_cast<std::size_t>(h)];
      for (std::int32_t b = 0; b < def->num_buckets; ++b) {
        retired_buckets[static_cast<std::size_t>(def->first_bucket + b)] +=
            shard.buckets[def->first_bucket + b].load(std::memory_order_relaxed);
      }
      retired_hist_sum[static_cast<std::size_t>(h)] +=
          shard.hist_sum[h].load(std::memory_order_relaxed);
      retired_hist_count[static_cast<std::size_t>(h)] +=
          shard.hist_count[h].load(std::memory_order_relaxed);
    }
  }

  void grow_retired() {
    retired_counters.resize(counters.size(), 0);
    retired_buckets.resize(static_cast<std::size_t>(total_buckets), 0);
    retired_hist_sum.resize(hists.size(), 0.0);
    retired_hist_count.resize(hists.size(), 0);
    gauge_values.resize(gauges.size(), 0.0);
  }

  void unregister(detail::ThreadShard* shard) {
    live.erase(std::remove(live.begin(), live.end(), shard), live.end());
  }

  /// Publishes the epoch threads must be attached under (see
  /// detail::g_attach_epoch): the current layout epoch when the registry
  /// is enabled, kDetachedEpoch when it is not.
  void publish_epoch(bool enabled) {
    detail::g_attach_epoch.store(
        enabled ? layout_epoch.load(std::memory_order_relaxed)
                : detail::kDetachedEpoch,
        std::memory_order_relaxed);
  }
};

namespace detail {
namespace {

ShardOwner::~ShardOwner() {
  if (shard != nullptr) MetricsRegistry::instance().detach_current_thread();
}

}  // namespace
}  // namespace detail

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

void MetricsRegistry::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_release);
  impl_->publish_epoch(enabled);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked deliberately; see the header.
  static MetricsRegistry* reg = [] {
    allocg::AllowScope allow("obs registry construction");
    return new MetricsRegistry();
  }();
  return *reg;
}

CounterId MetricsRegistry::register_counter(std::string name,
                                            std::string help) {
  allocg::AllowScope allow("obs metric registration");
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.by_name.find(name);
  if (it != im.by_name.end()) {
    if (it->second.first != MetricKind::kCounter) {
      throw std::logic_error("obs: '" + name + "' registered with other kind");
    }
    return CounterId{it->second.second};
  }
  const std::int32_t idx = static_cast<std::int32_t>(im.counters.size());
  im.counters.push_back({name, std::move(help)});
  im.by_name.emplace(std::move(name), std::pair{MetricKind::kCounter, idx});
  im.order.emplace_back(MetricKind::kCounter, idx);
  ++im.layout_epoch;
  im.publish_epoch(enabled());
  return CounterId{idx};
}

GaugeId MetricsRegistry::register_gauge(std::string name, std::string help) {
  allocg::AllowScope allow("obs metric registration");
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.by_name.find(name);
  if (it != im.by_name.end()) {
    if (it->second.first != MetricKind::kGauge) {
      throw std::logic_error("obs: '" + name + "' registered with other kind");
    }
    return GaugeId{it->second.second};
  }
  const std::int32_t idx = static_cast<std::int32_t>(im.gauges.size());
  im.gauges.push_back({name, std::move(help)});
  im.gauge_values.resize(im.gauges.size(), 0.0);
  im.by_name.emplace(std::move(name), std::pair{MetricKind::kGauge, idx});
  im.order.emplace_back(MetricKind::kGauge, idx);
  ++im.layout_epoch;
  im.publish_epoch(enabled());
  return GaugeId{idx};
}

HistId MetricsRegistry::register_histogram(std::string name,
                                           std::vector<double> bounds,
                                           std::string help) {
  if (bounds.empty()) {
    throw std::logic_error("obs: histogram '" + name + "' needs bounds");
  }
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i]) || (i > 0 && bounds[i] <= bounds[i - 1])) {
      throw std::logic_error("obs: histogram '" + name +
                             "' bounds must be finite and ascending");
    }
  }
  allocg::AllowScope allow("obs metric registration");
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.by_name.find(name);
  if (it != im.by_name.end()) {
    if (it->second.first != MetricKind::kHistogram) {
      throw std::logic_error("obs: '" + name + "' registered with other kind");
    }
    const Impl::HistMeta& meta =
        im.hists[static_cast<std::size_t>(it->second.second)];
    if (meta.def->bounds != bounds) {
      throw std::logic_error("obs: histogram '" + name +
                             "' re-registered with different bounds");
    }
    return HistId{it->second.second};
  }
  const std::int32_t idx = static_cast<std::int32_t>(im.hists.size());
  im.hist_defs.push_back({});
  detail::HistDef& def = im.hist_defs.back();
  def.bounds = std::move(bounds);
  def.first_bucket = im.total_buckets;
  def.num_buckets = static_cast<std::int32_t>(def.bounds.size()) + 1;
  im.total_buckets += def.num_buckets;
  im.hists.push_back({name, std::move(help), &def});
  im.by_name.emplace(std::move(name), std::pair{MetricKind::kHistogram, idx});
  im.order.emplace_back(MetricKind::kHistogram, idx);
  ++im.layout_epoch;
  im.publish_epoch(enabled());
  return HistId{idx};
}

void MetricsRegistry::gauge_set(GaugeId id, double value) {
  if (!enabled() || id.v < 0) return;
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  if (static_cast<std::size_t>(id.v) < im.gauge_values.size()) {
    im.gauge_values[static_cast<std::size_t>(id.v)] = value;
  }
}

void MetricsRegistry::attach_current_thread() {
  Impl& im = *impl_;
  allocg::AllowScope allow("obs thread shard growth");
  std::lock_guard<std::mutex> lock(im.mu);
  detail::ShardOwner& owner = detail::t_owner;
  if (owner.shard != nullptr &&
      owner.shard->layout_epoch == im.layout_epoch) {
    detail::tls = owner.shard.get();
    return;
  }
  if (owner.shard != nullptr) {
    // Layout grew since this shard was built: fold its counts into the
    // retired accumulators and rebuild against the new layout.
    im.retire(*owner.shard);
    im.unregister(owner.shard.get());
    detail::tls = nullptr;
    owner.shard.reset();
  }
  auto shard = std::make_unique<detail::ThreadShard>();
  shard->num_counters = static_cast<std::int32_t>(im.counters.size());
  shard->counters =
      std::make_unique<std::atomic<std::uint64_t>[]>(im.counters.size());
  for (std::size_t i = 0; i < im.counters.size(); ++i) shard->counters[i] = 0;
  shard->num_hists = static_cast<std::int32_t>(im.hists.size());
  shard->buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(im.total_buckets));
  for (std::int32_t i = 0; i < im.total_buckets; ++i) shard->buckets[i] = 0;
  shard->hist_sum = std::make_unique<std::atomic<double>[]>(im.hists.size());
  shard->hist_count =
      std::make_unique<std::atomic<std::uint64_t>[]>(im.hists.size());
  shard->hists.reserve(im.hists.size());
  for (std::size_t h = 0; h < im.hists.size(); ++h) {
    shard->hist_sum[h] = 0.0;
    shard->hist_count[h] = 0;
    shard->hists.push_back(im.hists[h].def);
  }
  shard->layout_epoch = im.layout_epoch;
  shard->tag = thread_tag();
  im.live.push_back(shard.get());
  owner.shard = std::move(shard);
  detail::tls = owner.shard.get();
}

std::uint64_t MetricsRegistry::layout_epoch() const {
  return impl_->layout_epoch.load(std::memory_order_acquire);
}

void MetricsRegistry::detach_current_thread() {
  Impl& im = *impl_;
  detail::ShardOwner& owner = detail::t_owner;
  if (owner.shard == nullptr) {
    detail::tls = nullptr;
    return;
  }
  allocg::AllowScope allow("obs thread shard growth");
  std::lock_guard<std::mutex> lock(im.mu);
  im.retire(*owner.shard);
  im.unregister(owner.shard.get());
  detail::tls = nullptr;
  owner.shard.reset();
}

void MetricsRegistry::reset() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  im.grow_retired();
  std::fill(im.retired_counters.begin(), im.retired_counters.end(), 0);
  std::fill(im.retired_buckets.begin(), im.retired_buckets.end(), 0);
  std::fill(im.retired_hist_sum.begin(), im.retired_hist_sum.end(), 0.0);
  std::fill(im.retired_hist_count.begin(), im.retired_hist_count.end(), 0);
  std::fill(im.gauge_values.begin(), im.gauge_values.end(), 0.0);
  for (detail::ThreadShard* shard : im.live) {
    for (std::int32_t i = 0; i < shard->num_counters; ++i) {
      shard->counters[i].store(0, std::memory_order_relaxed);
    }
    for (std::int32_t h = 0; h < shard->num_hists; ++h) {
      const detail::HistDef* def = shard->hists[static_cast<std::size_t>(h)];
      for (std::int32_t b = 0; b < def->num_buckets; ++b) {
        shard->buckets[def->first_bucket + b].store(0,
                                                    std::memory_order_relaxed);
      }
      shard->hist_sum[h].store(0.0, std::memory_order_relaxed);
      shard->hist_count[h].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricsRegistry::take_snapshot() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  im.grow_retired();

  std::vector<std::uint64_t> counters = im.retired_counters;
  std::vector<std::uint64_t> buckets = im.retired_buckets;
  std::vector<double> hist_sum = im.retired_hist_sum;
  std::vector<std::uint64_t> hist_count = im.retired_hist_count;
  for (const detail::ThreadShard* shard : im.live) {
    for (std::int32_t i = 0; i < shard->num_counters; ++i) {
      counters[static_cast<std::size_t>(i)] +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::int32_t h = 0; h < shard->num_hists; ++h) {
      const detail::HistDef* def = shard->hists[static_cast<std::size_t>(h)];
      for (std::int32_t b = 0; b < def->num_buckets; ++b) {
        buckets[static_cast<std::size_t>(def->first_bucket + b)] +=
            shard->buckets[def->first_bucket + b].load(
                std::memory_order_relaxed);
      }
      hist_sum[static_cast<std::size_t>(h)] +=
          shard->hist_sum[h].load(std::memory_order_relaxed);
      hist_count[static_cast<std::size_t>(h)] +=
          shard->hist_count[h].load(std::memory_order_relaxed);
    }
  }

  MetricsSnapshot snap;
  snap.metrics.reserve(im.order.size());
  for (const auto& [kind, idx] : im.order) {
    MetricValue v;
    v.kind = kind;
    const std::size_t i = static_cast<std::size_t>(idx);
    switch (kind) {
      case MetricKind::kCounter:
        v.name = im.counters[i].name;
        v.help = im.counters[i].help;
        v.counter = counters[i];
        break;
      case MetricKind::kGauge:
        v.name = im.gauges[i].name;
        v.help = im.gauges[i].help;
        v.gauge = im.gauge_values[i];
        break;
      case MetricKind::kHistogram: {
        const Impl::HistMeta& meta = im.hists[i];
        v.name = meta.name;
        v.help = meta.help;
        v.bounds = meta.def->bounds;
        v.buckets.assign(
            buckets.begin() + meta.def->first_bucket,
            buckets.begin() + meta.def->first_bucket + meta.def->num_buckets);
        v.sum = hist_sum[i];
        v.count = hist_count[i];
        break;
      }
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

namespace detail {
void ensure_thread_registered_slow() {
  MetricsRegistry& reg = MetricsRegistry::instance();
  if (!reg.enabled()) {
    if (detail::tls != nullptr) reg.detach_current_thread();
    return;
  }
  reg.attach_current_thread();
}
}  // namespace detail

void gauge_set(GaugeId id, double value) {
  MetricsRegistry::instance().gauge_set(id, value);
}

std::uint32_t thread_tag() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t tag =
      next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double histogram_quantile(const MetricValue& hist, double q) {
  if (hist.count == 0 || hist.buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(hist.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    const std::uint64_t in_bucket = hist.buckets[b];
    if (static_cast<double>(cumulative + in_bucket) >= target &&
        in_bucket > 0) {
      const double lo = b == 0 ? 0.0 : hist.bounds[b - 1];
      if (b >= hist.bounds.size()) return lo;  // +Inf bucket: lower bound.
      const double hi = hist.bounds[b];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return hist.bounds.empty() ? 0.0 : hist.bounds.back();
}

}  // namespace obs
}  // namespace hars
