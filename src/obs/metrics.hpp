// MetricsRegistry: the zero-cost telemetry core.
//
// Counters, gauges and fixed-bucket histograms are registered once
// (cold; names are stable for the life of the process) and written from
// the hot path through typed ids. Writes go to thread-local shards of
// relaxed atomics, so the steady-state cost of a counter bump is one
// thread-local load, one bounds check and one relaxed fetch_add — no
// locks, no allocation, no sharing between threads. take_snapshot()
// merges the live shards with the accumulators of exited threads under
// the registry mutex.
//
// Runtime gating: the registry is compiled in unconditionally but
// disabled by default. A thread only ever observes metrics after it
// called ensure_thread_registered() while the registry was enabled;
// calling it while disabled *detaches* the thread (its counts are
// folded into the retired accumulators), so a disabled run's hot path
// is a single thread-local null check per write. Records produced by
// the simulator are bit-identical either way — telemetry observes, it
// never feeds back.
//
// Allocation contract: registration, thread attach and snapshotting
// allocate (under named allocg::AllowScopes where they can run inside a
// guarded region); the write fast path (counter_add / gauge_set /
// hist_observe) never does. tools/hars_lint enforces that only the
// write-path entry points appear inside HARS_HOT bodies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hars {
namespace obs {

/// Typed handles returned by registration; default-constructed ids are
/// inert (writes through them are dropped).
struct CounterId {
  std::int32_t v = -1;
};
struct GaugeId {
  std::int32_t v = -1;
};
struct HistId {
  std::int32_t v = -1;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One merged metric in a snapshot. Histograms carry the finite upper
/// bounds plus an implicit +Inf bucket: buckets.size() == bounds.size()+1
/// and buckets[i] counts observations in (bounds[i-1], bounds[i]]
/// (le semantics, non-cumulative).
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;                ///< kCounter
  double gauge = 0.0;                       ///< kGauge
  std::vector<double> bounds;               ///< kHistogram
  std::vector<std::uint64_t> buckets;       ///< kHistogram, +Inf last
  double sum = 0.0;                         ///< kHistogram
  std::uint64_t count = 0;                  ///< kHistogram
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  ///< Registration order.
  /// The metric named `name`, or nullptr.
  const MetricValue* find(std::string_view name) const;
};

/// Quantile estimate (q in [0,1]) from a snapshot histogram, linearly
/// interpolated within the winning bucket; the +Inf bucket reports its
/// lower bound. Returns 0 for an empty histogram.
double histogram_quantile(const MetricValue& hist, double q);

namespace detail {

/// Bucket layout of one histogram, captured at registration; lives in a
/// deque inside the registry so the address is stable for shards.
struct HistDef {
  std::vector<double> bounds;    ///< Finite upper bounds, ascending.
  std::int32_t first_bucket = 0; ///< Offset into the flattened buckets.
  std::int32_t num_buckets = 0;  ///< bounds.size() + 1 (+Inf).
};

/// Per-thread metric shard. All slots are relaxed atomics so
/// take_snapshot() may read them while the owner keeps writing.
struct ThreadShard {
  std::unique_ptr<std::atomic<std::uint64_t>[]> counters;
  std::int32_t num_counters = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  ///< Flattened.
  std::unique_ptr<std::atomic<double>[]> hist_sum;
  std::unique_ptr<std::atomic<std::uint64_t>[]> hist_count;
  std::int32_t num_hists = 0;
  std::vector<const HistDef*> hists;  ///< Per-histogram layout.
  std::uint64_t layout_epoch = 0;     ///< Registry epoch this was built for.
  std::uint32_t tag = 0;              ///< thread_tag() of the owner.
  std::uint64_t tick_serial = 0;      ///< Advanced by tick_sample().
};

/// Shard of the calling thread; nullptr until ensure_thread_registered()
/// attaches one (and again after it detaches). Constant-initialized, so
/// reads are safe from any point including static init.
extern thread_local ThreadShard* tls;

/// The layout epoch threads must be attached under, or kDetachedEpoch
/// when the registry is disabled. Published by set_enabled()/register_*
/// so ensure_thread_registered()'s per-tick check is one relaxed load.
constexpr std::uint64_t kDetachedEpoch = ~std::uint64_t{0};
extern std::atomic<std::uint64_t> g_attach_epoch;

void hist_observe_slow(ThreadShard* shard, std::int32_t hist, double value);
void ensure_thread_registered_slow();

}  // namespace detail

class MetricsRegistry {
 public:
  /// The process-wide registry. Leaky singleton: constructed on first
  /// use, never destroyed, so thread-exit hooks and static-destruction
  /// order can never observe a dead registry.
  static MetricsRegistry& instance();

  // --- Registration (cold; idempotent by name) ---
  // Re-registering an existing name returns the original id; a kind
  // mismatch or (for histograms) a bounds mismatch throws
  // std::logic_error. Bounds must be finite, ascending and non-empty.
  CounterId register_counter(std::string name, std::string help);
  GaugeId register_gauge(std::string name, std::string help);
  HistId register_histogram(std::string name, std::vector<double> bounds,
                            std::string help);

  // --- Runtime gate ---
  /// Also publishes detail::g_attach_epoch so attached threads notice
  /// the change on their next ensure_thread_registered(). Cold.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Zeroes every counter/histogram slot (live shards and retired
  /// accumulators) and every gauge. Call at a quiescent point.
  void reset();

  /// Merges retired accumulators with every live shard into a snapshot,
  /// in registration order. Cold: locks the registry and allocates.
  MetricsSnapshot take_snapshot();

  /// Gauges are unsharded (their writes are cold): last write wins.
  void gauge_set(GaugeId id, double value);

  // --- Thread attach/detach (called via free functions below) ---
  void attach_current_thread();
  void detach_current_thread();

  /// Current registration epoch (bumped by every register_*). Lock-free;
  /// ensure_thread_registered() compares it against the calling thread's
  /// shard to skip the attach mutex on the steady-state path.
  std::uint64_t layout_epoch() const;

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // Leaky by design.
  struct Impl;
  Impl* impl_;
  std::atomic<bool> enabled_{false};
};

/// True when writes are live. Single acquire load; callers on the hot
/// path should prefer the tls null check in counter_add instead.
inline bool enabled() { return MetricsRegistry::instance().enabled(); }

/// Attaches the calling thread to the registry (allocating its shard
/// under allocg::AllowScope("obs thread shard growth")) when telemetry
/// is enabled; detaches it — folding its counts into the retired
/// accumulators — when disabled. Call at a cold point before entering
/// guarded regions (e.g. top of SimEngine::step, worker-loop entry).
/// Steady state (attached-and-current or detached-and-disabled) is one
/// thread-local load plus one relaxed atomic compare.
inline void ensure_thread_registered() {
  detail::ThreadShard* s = detail::tls;
  const std::uint64_t want =
      detail::g_attach_epoch.load(std::memory_order_relaxed);
  if ((s != nullptr ? s->layout_epoch : detail::kDetachedEpoch) == want) {
    return;
  }
  detail::ensure_thread_registered_slow();
}

/// Hot-path write: thread-local load + bounds check + relaxed add.
/// Drops silently when the thread is not attached or the id is inert.
/// Single-writer: only the owning thread writes its shard, so a relaxed
/// load+store (a plain add in machine code) replaces the much costlier
/// lock-prefixed fetch_add; snapshot readers still see a torn-free value.
inline void counter_add(CounterId id, std::uint64_t n = 1) {
  detail::ThreadShard* s = detail::tls;
  if (s == nullptr || id.v < 0 || id.v >= s->num_counters) return;
  std::atomic<std::uint64_t>& slot = s->counters[id.v];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

/// Hot-path write: the bucket scan is out-of-line but allocation-free.
inline void hist_observe(HistId id, double value) {
  detail::ThreadShard* s = detail::tls;
  if (s == nullptr || id.v < 0 || id.v >= s->num_hists) return;
  detail::hist_observe_slow(s, id.v, value);
}

/// Cold write (locks the registry); drops when disabled or inert.
void gauge_set(GaugeId id, double value);

/// Small dense per-thread tag (0, 1, 2, ... in first-use order), used
/// as the `tid` of trace spans. Stable for the life of the thread.
std::uint32_t thread_tag();

}  // namespace obs
}  // namespace hars
