#include "obs/phase_timer.hpp"

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"

namespace hars {
namespace obs {

namespace {

std::atomic<int> g_shift{7};

std::int64_t steady_now_raw() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-relative base so span timestamps start near 0 and fit
// comfortably in Chrome's microsecond doubles.
const std::int64_t g_base_ns = steady_now_raw();

}  // namespace

std::int64_t now_ns() { return steady_now_raw() - g_base_ns; }

bool tick_sample() {
  detail::ThreadShard* shard = detail::tls;
  if (shard == nullptr) return false;
  const std::uint64_t serial = shard->tick_serial++;
  const int shift = g_shift.load(std::memory_order_relaxed);
  return (serial & ((1ULL << shift) - 1)) == 0;
}

void set_phase_sample_shift(int shift) {
  if (shift < 0) shift = 0;
  if (shift > 20) shift = 20;
  g_shift.store(shift, std::memory_order_relaxed);
}

int phase_sample_shift() { return g_shift.load(std::memory_order_relaxed); }

void PhaseTimer::finish() {
  const std::int64_t end_ns = now_ns();
  const std::int64_t dur = end_ns - start_ns_;
  hist_observe(catalog().tick_phase_ns[static_cast<int>(phase_)],
               static_cast<double>(dur));
  if (SpanCollector* collector = spans()) {
    SpanEvent event;
    event.name = tick_phase_name(phase_);
    event.cat = "tick";
    event.ts_ns = start_ns_;
    event.dur_ns = dur;
    event.tid = thread_tag();
    collector->push(event);
  }
}

}  // namespace obs
}  // namespace hars
