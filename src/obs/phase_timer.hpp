// PhaseTimer: RAII wall-clock timer over one tick phase. The clock is
// only read when the timer is constructed active — callers gate on
// tick_sample(), which admits every 2^phase_sample_shift-th tick of the
// calling thread, so the steady-state tick pays two branches and the
// sampled tick pays 2 clock reads per phase. The destructor observes
// the duration into catalog().tick_phase_ns[phase] and, when a
// SpanCollector is installed, pushes a trace span.
//
// The clock read lives out-of-line in phase_timer.cpp: no wall-clock
// token ever appears inside a HARS_HOT body (hars_lint's
// no-wallclock-rand rule stays intact).
#pragma once

#include <cstdint>

#include "obs/catalog.hpp"
#include "obs/span_collector.hpp"

namespace hars {
namespace obs {

/// Process-relative monotonic time in ns. Cold-callable from anywhere;
/// inside HARS_HOT bodies only reachable through an active PhaseTimer.
std::int64_t now_ns();

/// True on ticks that should be timed. Advances the calling thread's
/// tick serial, so call it exactly once per tick (top of step()).
/// Returns false when the thread is not attached (telemetry off).
bool tick_sample();

/// log2 of the tick sampling period (default 7: every 128th tick).
/// 0 samples every tick. Cold; applies to subsequent tick_sample calls.
void set_phase_sample_shift(int shift);
int phase_sample_shift();

class PhaseTimer {
 public:
  PhaseTimer(TickPhase phase, bool active) : phase_(phase), active_(active) {
    if (active_) start_ns_ = now_ns();
  }
  ~PhaseTimer() {
    if (active_) finish();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  void finish();  ///< Out-of-line: clock read + observe + span push.
  TickPhase phase_;
  bool active_;
  std::int64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace hars
