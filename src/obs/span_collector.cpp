#include "obs/span_collector.hpp"

#include <algorithm>

#include "util/alloc_guard.hpp"

namespace hars {
namespace obs {

namespace {
std::atomic<SpanCollector*> g_spans{nullptr};
}  // namespace

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  allocg::AllowScope allow("obs span ring allocation");
  ring_ = std::make_unique<SpanEvent[]>(capacity_);
}

std::vector<SpanEvent> SpanCollector::drain() const {
  const std::size_t used =
      std::min(next_.load(std::memory_order_relaxed), capacity_);
  return std::vector<SpanEvent>(ring_.get(), ring_.get() + used);
}

void install_span_collector(SpanCollector* collector) {
  g_spans.store(collector, std::memory_order_release);
}

SpanCollector* spans() { return g_spans.load(std::memory_order_relaxed); }

}  // namespace obs
}  // namespace hars
