// SpanCollector: a pre-allocated ring of trace spans (one per sampled
// tick phase or sweep case), drained into Chrome trace-event JSON by
// obs::write_chrome_trace. push() is lock-free and allocation-free: one
// fetch_add plus five stores; when the ring is full further spans are
// counted as dropped rather than grown.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace hars {
namespace obs {

/// One completed span. `name`/`cat` must be string literals (the
/// collector stores the pointers).
struct SpanEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t ts_ns = 0;   ///< Start, process-relative.
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< obs::thread_tag() of the emitting thread.
};

class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity);

  /// Hot path. Drops (and counts) when the ring is full.
  void push(const SpanEvent& event) {
    const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_[slot] = event;
  }

  /// The recorded spans, in push order. Only call after all writers are
  /// quiescent (e.g. after the run, before writing the trace file).
  std::vector<SpanEvent> drain() const;

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<SpanEvent[]> ring_;
  std::size_t capacity_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Installs `collector` as the process-wide span sink (nullptr to
/// uninstall). The caller keeps ownership and must uninstall before
/// destroying it. Cold.
void install_span_collector(SpanCollector* collector);

/// The installed collector, or nullptr. Hot-path safe (one relaxed load).
SpanCollector* spans();

}  // namespace obs
}  // namespace hars
