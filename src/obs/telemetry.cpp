#include "obs/telemetry.hpp"

#include <string>

#include "obs/phase_timer.hpp"
#include "obs/writers.hpp"
#include "util/alloc_guard.hpp"

namespace hars {
namespace obs {

namespace {

std::string scope_metric_name(const char* scope) {
  std::string name = "alloc.scope.";
  for (const char* p = scope; *p != '\0'; ++p) {
    const char c = *p;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (ok) {
      name.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      name.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      name.push_back('_');
    }
  }
  return name;
}

}  // namespace

void publish_alloc_scope_gauges() {
  MetricsRegistry& reg = MetricsRegistry::instance();
  if (!reg.enabled()) return;
  reg.gauge_set(
      reg.register_gauge("alloc.thread_total",
                         "Allocations ever made on the session thread"),
      static_cast<double>(allocg::thread_allocs()));
  reg.gauge_set(
      reg.register_gauge(
          "alloc.thread_violations",
          "Undeclared allocations under AllocGuard on the session thread"),
      static_cast<double>(allocg::thread_violations()));
  for (const allocg::ScopeCount& scope : allocg::thread_scope_counts()) {
    reg.gauge_set(
        reg.register_gauge(scope_metric_name(scope.name),
                           "Allocations attributed to this AllowScope"),
        static_cast<double>(scope.allocs));
  }
}

TelemetrySession::TelemetrySession(TelemetryConfig config)
    : config_(std::move(config)) {
  if (!config_.enabled) return;
  MetricsRegistry& reg = MetricsRegistry::instance();
  set_phase_sample_shift(config_.phase_sample_shift);
  if (config_.reset_at_start) reg.reset();
  reg.set_enabled(true);
  ensure_thread_registered();
  if (!config_.trace_json.empty()) {
    spans_ = std::make_unique<SpanCollector>(config_.span_capacity);
    install_span_collector(spans_.get());
  }
  active_ = true;
}

TelemetrySession::~TelemetrySession() { finish(); }

void TelemetrySession::finish() {
  if (!active_ || finished_) return;
  finished_ = true;
  publish_alloc_scope_gauges();
  MetricsRegistry& reg = MetricsRegistry::instance();
  snapshot_ = reg.take_snapshot();
  if (!config_.metrics_jsonl.empty()) {
    write_metrics_jsonl_file(config_.metrics_jsonl, snapshot_);
  }
  if (!config_.metrics_csv.empty()) {
    write_metrics_csv_file(config_.metrics_csv, snapshot_);
  }
  if (!config_.prometheus.empty()) {
    write_prometheus_file(config_.prometheus, snapshot_);
  }
  if (spans_ != nullptr) {
    install_span_collector(nullptr);
    if (!config_.trace_json.empty()) {
      write_chrome_trace_file(config_.trace_json, spans_->drain());
    }
  }
  reg.set_enabled(false);
}

}  // namespace obs
}  // namespace hars
