// TelemetrySession: run-scoped telemetry lifecycle. Construction arms
// the registry (optionally resetting it), attaches the calling thread
// and installs a span collector when a trace file was requested;
// finish() (or the destructor) publishes the alloc_guard per-scope
// totals as gauges, snapshots the registry and writes every configured
// sink, then disarms. The session never throws out of finish(): sink
// I/O errors go to stderr — telemetry must not change a run's outcome.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span_collector.hpp"

namespace hars {
namespace obs {

struct TelemetryConfig {
  bool enabled = false;
  /// Zero all metrics at session start so the dump covers this run only.
  bool reset_at_start = true;
  /// log2 of the tick phase-timer sampling period (7 = every 128th tick).
  int phase_sample_shift = 7;
  std::size_t span_capacity = 1 << 16;
  // Output paths; empty = sink disabled.
  std::string metrics_jsonl;
  std::string metrics_csv;
  std::string prometheus;
  std::string trace_json;
};

class TelemetrySession {
 public:
  explicit TelemetrySession(TelemetryConfig config);
  ~TelemetrySession();
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Publishes alloc-scope gauges, snapshots, writes all configured
  /// sinks and disables telemetry. Idempotent; called by the destructor.
  void finish();

  /// The snapshot finish() took (empty before finish / when disabled).
  const MetricsSnapshot& snapshot() const { return snapshot_; }

  bool active() const { return active_; }

 private:
  TelemetryConfig config_;
  std::unique_ptr<SpanCollector> spans_;
  MetricsSnapshot snapshot_;
  bool active_ = false;
  bool finished_ = false;
};

/// Registers (idempotently) and sets gauges "alloc.scope.<name>" from
/// allocg::thread_scope_counts() of the calling thread, plus
/// "alloc.thread_total" / "alloc.thread_violations". Cold; called by
/// TelemetrySession::finish() and available to tools directly.
void publish_alloc_scope_gauges();

}  // namespace obs
}  // namespace hars
