#include "obs/writers.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "sweep/result_sink.hpp"  // format_number, json_escape

namespace hars {
namespace obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

template <typename Fn>
bool write_file(const std::string& path, const char* what, Fn&& fn) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open %s file '%s'\n", what,
                 path.c_str());
    return false;
  }
  fn(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: write to %s file '%s' failed\n", what,
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "hars_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_metrics_jsonl(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const MetricValue& m : snapshot.metrics) {
    out << "{\"name\":\"" << json_escape(m.name) << "\",\"kind\":\""
        << kind_name(m.kind) << "\"";
    switch (m.kind) {
      case MetricKind::kCounter:
        out << ",\"value\":" << m.counter;
        break;
      case MetricKind::kGauge:
        out << ",\"value\":" << format_number(m.gauge);
        break;
      case MetricKind::kHistogram: {
        out << ",\"count\":" << m.count << ",\"sum\":" << format_number(m.sum)
            << ",\"p50\":" << format_number(histogram_quantile(m, 0.50))
            << ",\"p90\":" << format_number(histogram_quantile(m, 0.90))
            << ",\"p99\":" << format_number(histogram_quantile(m, 0.99))
            << ",\"buckets\":[";
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (b != 0) out << ",";
          out << "{\"le\":";
          if (b < m.bounds.size()) {
            out << format_number(m.bounds[b]);
          } else {
            out << "\"+Inf\"";
          }
          out << ",\"n\":" << m.buckets[b] << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}\n";
  }
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "name,kind,value,count,sum,p50,p90,p99\n";
  for (const MetricValue& m : snapshot.metrics) {
    out << m.name << "," << kind_name(m.kind) << ",";
    switch (m.kind) {
      case MetricKind::kCounter:
        out << m.counter << ",,,,,";
        break;
      case MetricKind::kGauge:
        out << format_number(m.gauge) << ",,,,,";
        break;
      case MetricKind::kHistogram:
        out << "," << m.count << "," << format_number(m.sum) << ","
            << format_number(histogram_quantile(m, 0.50)) << ","
            << format_number(histogram_quantile(m, 0.90)) << ","
            << format_number(histogram_quantile(m, 0.99));
        break;
    }
    out << "\n";
  }
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const MetricValue& m : snapshot.metrics) {
    const std::string name = prometheus_name(m.name);
    if (!m.help.empty()) {
      out << "# HELP " << name << " " << m.help << "\n";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << m.counter << "\n";
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << format_number(m.gauge) << "\n";
        break;
      case MetricKind::kHistogram: {
        out << "# TYPE " << name << " histogram\n";
        // Prometheus buckets are cumulative.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          out << name << "_bucket{le=\"";
          if (b < m.bounds.size()) {
            out << format_number(m.bounds[b]);
          } else {
            out << "+Inf";
          }
          out << "\"} " << cumulative << "\n";
        }
        out << name << "_sum " << format_number(m.sum) << "\n";
        out << name << "_count " << m.count << "\n";
        break;
      }
    }
  }
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanEvent>& spans) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& s : spans) {
    if (s.name == nullptr) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
        << json_escape(s.cat != nullptr ? s.cat : "") << "\",\"ph\":\"X\""
        << ",\"ts\":" << format_number(static_cast<double>(s.ts_ns) / 1000.0)
        << ",\"dur\":" << format_number(static_cast<double>(s.dur_ns) / 1000.0)
        << ",\"pid\":0,\"tid\":" << s.tid << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool write_metrics_jsonl_file(const std::string& path,
                              const MetricsSnapshot& snapshot) {
  return write_file(path, "metrics JSONL",
                    [&](std::ostream& out) { write_metrics_jsonl(out, snapshot); });
}

bool write_metrics_csv_file(const std::string& path,
                            const MetricsSnapshot& snapshot) {
  return write_file(path, "metrics CSV",
                    [&](std::ostream& out) { write_metrics_csv(out, snapshot); });
}

bool write_prometheus_file(const std::string& path,
                           const MetricsSnapshot& snapshot) {
  return write_file(path, "Prometheus",
                    [&](std::ostream& out) { write_prometheus(out, snapshot); });
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<SpanEvent>& spans) {
  return write_file(path, "Chrome trace",
                    [&](std::ostream& out) { write_chrome_trace(out, spans); });
}

}  // namespace obs
}  // namespace hars
