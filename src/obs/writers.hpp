// Telemetry sinks: serialize a MetricsSnapshot (and recorded trace
// spans) to the three export formats the repo speaks:
//   - metrics JSONL: one JSON object per metric per line (machine diff /
//     jq-friendly; see docs/FILE_FORMATS.md),
//   - metrics CSV: one row per metric with quantile columns,
//   - Prometheus text exposition format (the scrape surface of the
//     future hars_simd daemon),
//   - Chrome trace-event JSON (load in chrome://tracing or Perfetto).
// All writers are cold and deterministic: metric order is registration
// order, numbers use the shortest round-trip form.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_collector.hpp"

namespace hars {
namespace obs {

void write_metrics_jsonl(std::ostream& out, const MetricsSnapshot& snapshot);
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanEvent>& spans);

/// File variants; return false (and print to stderr) on I/O failure.
bool write_metrics_jsonl_file(const std::string& path,
                              const MetricsSnapshot& snapshot);
bool write_metrics_csv_file(const std::string& path,
                            const MetricsSnapshot& snapshot);
bool write_prometheus_file(const std::string& path,
                           const MetricsSnapshot& snapshot);
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<SpanEvent>& spans);

/// "search.memo.unit_time_hits" -> "hars_search_memo_unit_time_hits".
std::string prometheus_name(std::string_view name);

}  // namespace obs
}  // namespace hars
