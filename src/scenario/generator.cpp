#include "scenario/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "sweep/result_sink.hpp"  // format_number
#include "util/rng.hpp"

namespace hars {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw ScenarioError("generator: " + message);
}

/// Event times land on whole milliseconds so the DSL round-trip is
/// trivially exact and repro files stay human-readable.
TimeUs round_ms(double seconds) {
  return static_cast<TimeUs>(std::llround(seconds * 1e3)) * kUsPerMs;
}

/// Triangle wave in [-1, 1] with period 1 (exact arithmetic; the diurnal
/// modulation deliberately avoids libm transcendentals whose last bits
/// vary across libm builds).
double triangle(double x) {
  const double p = x - std::floor(x);
  return 1.0 - 4.0 * std::abs(p - 0.5);
}

/// Keep generated payload numbers short in the CSV.
double round3(double v) { return std::round(v * 1e3) / 1e3; }

}  // namespace

void GeneratorSpec::validate() const {
  if (profile.empty()) fail("empty profile name");
  if (!(horizon_s > 0.0)) fail("horizon must be > 0");
  if (arrival_rate_hz < 0.0) fail("arrival rate must be >= 0");
  if (rush_amplitude < 0.0 || rush_amplitude >= 1.0) {
    fail("rush amplitude must be in [0, 1)");
  }
  if (!(rush_period_s > 0.0)) fail("rush period must be > 0");
  if (initial_apps < 1) fail("initial_apps must be >= 1");
  if (max_live_apps < initial_apps) fail("max_live_apps < initial_apps");
  if (!(lifetime_min_s > 0.0) || lifetime_max_s < lifetime_min_s) {
    fail("lifetime range must satisfy 0 < min <= max");
  }
  if (!(lifetime_alpha > 0.0)) fail("lifetime alpha must be > 0");
  if (depart_prob < 0.0 || depart_prob > 1.0) {
    fail("depart probability must be in [0, 1]");
  }
  if (threads_min < 0 || threads_max < threads_min) {
    fail("thread range must satisfy 0 <= min <= max");
  }
  if (fraction_min < 0.0 || fraction_max < fraction_min ||
      fraction_max > 1.0 || (fraction_max > 0.0 && !(fraction_min > 0.0))) {
    fail("fraction range must satisfy 0 < min <= max <= 1 (or 0,0)");
  }
  if (storm_rate_hz < 0.0) fail("storm rate must be >= 0");
  if (storm_len < 1) fail("storm length must be >= 1");
  if (!(storm_gap_s > 0.0)) fail("storm gap must be > 0");
  if (!(phase_min > 0.0) || phase_max < phase_min) {
    fail("phase range must satisfy 0 < min <= max");
  }
  if (hotplug_rate_hz < 0.0) fail("hotplug rate must be >= 0");
  if (!(outage_min_s > 0.0) || outage_max_s < outage_min_s) {
    fail("outage range must satisfy 0 < min <= max");
  }
  if (max_core < 1 || max_core >= CpuMask::kMaxCpus) {
    fail("max_core must be in [1, " + std::to_string(CpuMask::kMaxCpus - 1) +
         "]");
  }
  if (max_offline_cores < 1 || max_offline_cores > max_core) {
    fail("max_offline_cores must be in [1, max_core]");
  }
  if (retarget_rate_hz < 0.0) fail("retarget rate must be >= 0");
  if (!(target_min_hps > 0.0) || target_max_hps < target_min_hps) {
    fail("target range must satisfy 0 < min <= max");
  }
}

ScenarioGenerator::ScenarioGenerator(GeneratorSpec spec)
    : spec_(std::move(spec)) {
  spec_.validate();
}

Scenario ScenarioGenerator::generate() const {
  const GeneratorSpec& g = spec_;
  // Independent streams per process: adding, say, storms to a spec never
  // perturbs the arrival sequence of the same seed.
  Rng root(g.seed);
  Rng arrivals = root.fork(1);
  Rng lifetimes = root.fork(2);
  Rng shape = root.fork(3);
  Rng storms = root.fork(4);
  Rng plugs = root.fork(5);
  Rng targets = root.fork(6);

  const TimeUs horizon = round_ms(g.horizon_s);
  const std::vector<ParsecBenchmark> benches =
      g.benches.empty() ? all_parsec_benchmarks() : g.benches;

  Scenario s;
  s.name = canonical_name(g);

  struct GenApp {
    std::string id;
    TimeUs spawn = 0;
    TimeUs kill = -1;  ///< -1: runs to the end.
  };
  std::vector<GenApp> apps;

  const auto exp_wait = [](Rng& rng, double rate) {
    return -std::log(1.0 - rng.next_double()) / rate;
  };

  // Bounded Pareto inverse CDF: x = L * (1 - u * (1 - (L/H)^a))^(-1/a).
  const auto sample_lifetime = [&]() {
    const double a = g.lifetime_alpha;
    const double ratio = std::pow(g.lifetime_min_s / g.lifetime_max_s, a);
    const double u = lifetimes.next_double();
    return g.lifetime_min_s * std::pow(1.0 - u * (1.0 - ratio), -1.0 / a);
  };

  const auto alive_at = [&](TimeUs t) {
    std::vector<const GenApp*> out;
    for (const GenApp& a : apps) {
      if (a.spawn <= t && (a.kill < 0 || a.kill > t)) out.push_back(&a);
    }
    return out;
  };

  const auto add_app = [&](TimeUs t) {
    GenApp app;
    // Built with += : GCC 12's -Wrestrict false-positives on
    // operator+(const char*, std::string&&) here.
    app.id = "g";
    app.id += std::to_string(apps.size());
    app.spawn = t;

    ScenarioEvent spawn;
    spawn.time = t;
    spawn.kind = ScenarioEventKind::kSpawn;
    spawn.app = app.id;
    spawn.spawn.bench =
        benches[static_cast<std::size_t>(shape.uniform_int(
            0, static_cast<int>(benches.size()) - 1))];
    if (g.threads_max > 0) {
      spawn.spawn.threads = shape.uniform_int(g.threads_min, g.threads_max);
    }
    if (g.fraction_max > 0.0) {
      spawn.spawn.fraction =
          round3(shape.uniform(g.fraction_min, g.fraction_max));
    }
    s.events.push_back(std::move(spawn));

    if (lifetimes.next_double() < g.depart_prob) {
      TimeUs kill = t + std::max<TimeUs>(round_ms(sample_lifetime()), kUsPerMs);
      if (kill < horizon) {
        app.kill = kill;
        ScenarioEvent e;
        e.time = kill;
        e.kind = ScenarioEventKind::kKill;
        e.app = app.id;
        s.events.push_back(std::move(e));
      }
    }
    apps.push_back(std::move(app));
  };

  // --- Arrivals: initial apps, then a (possibly diurnal) Poisson stream
  // realized by thinning against the peak rate.
  for (int i = 0; i < g.initial_apps; ++i) add_app(0);
  const double peak_rate = g.arrival_rate_hz * (1.0 + g.rush_amplitude);
  if (peak_rate > 0.0) {
    double t = 0.0;
    while (true) {
      t += exp_wait(arrivals, peak_rate);
      if (t >= g.horizon_s) break;
      const double rate_t =
          g.arrival_rate_hz *
          (1.0 + g.rush_amplitude * triangle(t / g.rush_period_s));
      if (arrivals.next_double() * peak_rate > rate_t) continue;  // thinned
      const TimeUs tu = std::max<TimeUs>(round_ms(t), kUsPerMs);
      if (static_cast<int>(alive_at(tu).size()) >= g.max_live_apps) continue;
      add_app(tu);
    }
  }

  // --- Phase-change storms: alternating heavy/nominal flips against one
  // app alive for the storm's span.
  if (g.storm_rate_hz > 0.0) {
    double t = 0.0;
    while (true) {
      t += exp_wait(storms, g.storm_rate_hz);
      if (t >= g.horizon_s) break;
      const TimeUs tu = std::max<TimeUs>(round_ms(t), kUsPerMs);
      const std::vector<const GenApp*> alive = alive_at(tu);
      if (alive.empty()) continue;
      const GenApp& victim = *alive[static_cast<std::size_t>(
          storms.uniform_int(0, static_cast<int>(alive.size()) - 1))];
      const double scale = round3(storms.uniform(g.phase_min, g.phase_max));
      const TimeUs gap = std::max<TimeUs>(round_ms(g.storm_gap_s), kUsPerMs);
      // A flip on a departed app would be invalid: stop at the kill.
      const TimeUs limit =
          std::min(horizon, victim.kill < 0 ? horizon : victim.kill - kUsPerMs);
      for (int j = 0; j < g.storm_len; ++j) {
        const TimeUs ft = tu + j * gap;
        if (ft > limit) break;
        ScenarioEvent e;
        e.time = ft;
        e.kind = ScenarioEventKind::kSetPhase;
        e.app = victim.id;
        e.phase_scale = (j % 2 == 0) ? scale : 1.0;
        s.events.push_back(std::move(e));
      }
    }
  }

  // --- Hotplug cascades: a contiguous block of non-manager cores fails,
  // then recovers; cascades are serialized so outages never interleave.
  if (g.hotplug_rate_hz > 0.0) {
    double t = 0.0;
    double busy_until = 0.0;
    while (true) {
      t += exp_wait(plugs, g.hotplug_rate_hz);
      if (t >= g.horizon_s) break;
      if (t < busy_until) continue;
      const int count =
          std::min(plugs.uniform_int(1, g.max_offline_cores), g.max_core);
      const int start = plugs.uniform_int(1, g.max_core - count + 1);
      CpuMask mask;
      for (int c = start; c < start + count; ++c) {
        mask.set(static_cast<CoreId>(c));
      }
      const double outage = plugs.uniform(g.outage_min_s, g.outage_max_s);
      const TimeUs off_t = std::max<TimeUs>(round_ms(t), kUsPerMs);
      ScenarioEvent off;
      off.time = off_t;
      off.kind = ScenarioEventKind::kOfflineCores;
      off.cores = mask;
      s.events.push_back(std::move(off));
      if (t + outage < g.horizon_s) {
        ScenarioEvent on;
        on.time = std::max<TimeUs>(round_ms(t + outage), off_t + kUsPerMs);
        on.kind = ScenarioEventKind::kOnlineCores;
        on.cores = mask;
        s.events.push_back(std::move(on));
      }  // else: the run ends with the cores still offline.
      busy_until = t + outage + 0.5;
    }
  }

  // --- Target renegotiation: alive apps get fresh ±10% windows.
  if (g.retarget_rate_hz > 0.0) {
    double t = 0.0;
    while (true) {
      t += exp_wait(targets, g.retarget_rate_hz);
      if (t >= g.horizon_s) break;
      const TimeUs tu = std::max<TimeUs>(round_ms(t), kUsPerMs);
      std::vector<const GenApp*> alive = alive_at(tu);
      // A retarget on an app about to depart is fine; one after the kill
      // is not — filter to apps still alive at the event time.
      alive.erase(std::remove_if(alive.begin(), alive.end(),
                                 [&](const GenApp* a) {
                                   return a->kill >= 0 && a->kill <= tu;
                                 }),
                  alive.end());
      if (alive.empty()) continue;
      const GenApp& app = *alive[static_cast<std::size_t>(
          targets.uniform_int(0, static_cast<int>(alive.size()) - 1))];
      const double center =
          round3(targets.uniform(g.target_min_hps, g.target_max_hps));
      ScenarioEvent e;
      e.time = tu;
      e.kind = ScenarioEventKind::kSetTarget;
      e.app = app.id;
      e.target = PerfTarget::around(center, 0.10);
      // round3 keeps the serialized window free of fp noise like
      // 4.182200000000001 (corpus files are read by humans).
      e.target.min = round3(e.target.min);
      e.target.max = round3(e.target.max);
      s.events.push_back(std::move(e));
    }
  }

  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
  s.validate();
  return s;
}

// --- Profiles -----------------------------------------------------------

std::vector<std::string> ScenarioGenerator::profiles() {
  return {"poisson", "rush", "storm", "hotplug", "retarget", "churn", "mixed"};
}

GeneratorSpec ScenarioGenerator::profile(std::string_view name) {
  GeneratorSpec g;
  g.profile = std::string(name);
  if (name == "poisson") {
    // The defaults: a flat Poisson arrival stream with departures.
  } else if (name == "rush") {
    g.arrival_rate_hz = 0.12;
    g.rush_amplitude = 0.9;
    g.rush_period_s = 25.0;
    g.max_live_apps = 4;
  } else if (name == "storm") {
    g.arrival_rate_hz = 0.05;
    g.depart_prob = 0.6;
    g.storm_rate_hz = 0.08;
    g.storm_len = 4;
  } else if (name == "hotplug") {
    g.arrival_rate_hz = 0.08;
    g.hotplug_rate_hz = 0.05;
  } else if (name == "retarget") {
    g.arrival_rate_hz = 0.06;
    g.retarget_rate_hz = 0.25;
  } else if (name == "churn") {
    g.arrival_rate_hz = 0.35;
    g.max_live_apps = 4;
    g.lifetime_min_s = 1.5;
    g.lifetime_max_s = 12.0;
    g.lifetime_alpha = 1.1;
    g.depart_prob = 0.95;
    g.hotplug_rate_hz = 0.03;
  } else if (name == "mixed") {
    g.arrival_rate_hz = 0.15;
    g.rush_amplitude = 0.5;
    g.max_live_apps = 4;
    g.storm_rate_hz = 0.03;
    g.hotplug_rate_hz = 0.02;
    g.retarget_rate_hz = 0.1;
  } else {
    std::string known;
    for (const std::string& p : profiles()) {
      known += ' ';
      known += p;
    }
    fail("unknown profile \"" + std::string(name) + "\"; known:" + known);
  }
  return g;
}

// --- gen: names ---------------------------------------------------------

namespace {

std::uint64_t parse_u64(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 0);
  if (end == value.c_str() || *end != '\0') {
    fail("malformed " + key + " \"" + value + "\"");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_num(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    fail("malformed " + key + " \"" + value + "\"");
  }
  return v;
}

int parse_int(const std::string& value, const std::string& key) {
  return static_cast<int>(parse_num(value, key));
}

std::vector<ParsecBenchmark> parse_benches(const std::string& value) {
  std::vector<ParsecBenchmark> out;
  std::size_t from = 0;
  while (from <= value.size()) {
    const std::size_t plus = value.find('+', from);
    const std::string code = value.substr(
        from, plus == std::string::npos ? std::string::npos : plus - from);
    bool found = false;
    for (ParsecBenchmark b : all_parsec_benchmarks()) {
      if (code == parsec_code(b) || code == parsec_name(b)) {
        out.push_back(b);
        found = true;
        break;
      }
    }
    if (!found) fail("unknown bench \"" + code + "\" in benches=");
    if (plus == std::string::npos) break;
    from = plus + 1;
  }
  if (out.empty()) fail("empty benches=");
  return out;
}

std::string format_benches(const std::vector<ParsecBenchmark>& benches) {
  std::string out;
  for (ParsecBenchmark b : benches) {
    if (!out.empty()) out += '+';
    out += parsec_code(b);
  }
  return out;
}

}  // namespace

bool ScenarioGenerator::is_generated_name(std::string_view name) {
  return name.substr(0, 4) == "gen:";
}

GeneratorSpec ScenarioGenerator::parse_name(std::string_view name) {
  if (!is_generated_name(name)) {
    fail("not a generated-scenario name (want gen:PROFILE[:k=v;...]): \"" +
         std::string(name) + "\"");
  }
  const std::string_view rest = name.substr(4);
  const std::size_t colon = rest.find(':');
  const std::string_view profile_name =
      colon == std::string_view::npos ? rest : rest.substr(0, colon);
  GeneratorSpec g = profile(profile_name);
  if (colon == std::string_view::npos) return g;

  const std::string params(rest.substr(colon + 1));
  std::size_t from = 0;
  while (from <= params.size()) {
    const std::size_t semi = params.find(';', from);
    const std::string pair = params.substr(
        from, semi == std::string::npos ? std::string::npos : semi - from);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("expected key=value, got \"" + pair + "\" in \"" +
           std::string(name) + "\"");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "seed") {
      g.seed = parse_u64(value, key);
    } else if (key == "horizon") {
      g.horizon_s = parse_num(value, key);
    } else if (key == "rate") {
      g.arrival_rate_hz = parse_num(value, key);
    } else if (key == "rush") {
      g.rush_amplitude = parse_num(value, key);
    } else if (key == "rush_period") {
      g.rush_period_s = parse_num(value, key);
    } else if (key == "init") {
      g.initial_apps = parse_int(value, key);
    } else if (key == "max_live") {
      g.max_live_apps = parse_int(value, key);
    } else if (key == "life_min") {
      g.lifetime_min_s = parse_num(value, key);
    } else if (key == "life_max") {
      g.lifetime_max_s = parse_num(value, key);
    } else if (key == "alpha") {
      g.lifetime_alpha = parse_num(value, key);
    } else if (key == "depart") {
      g.depart_prob = parse_num(value, key);
    } else if (key == "threads_min") {
      g.threads_min = parse_int(value, key);
    } else if (key == "threads_max") {
      g.threads_max = parse_int(value, key);
    } else if (key == "frac_min") {
      g.fraction_min = parse_num(value, key);
    } else if (key == "frac_max") {
      g.fraction_max = parse_num(value, key);
    } else if (key == "benches") {
      g.benches = parse_benches(value);
    } else if (key == "storm") {
      g.storm_rate_hz = parse_num(value, key);
    } else if (key == "storm_len") {
      g.storm_len = parse_int(value, key);
    } else if (key == "storm_gap") {
      g.storm_gap_s = parse_num(value, key);
    } else if (key == "phase_min") {
      g.phase_min = parse_num(value, key);
    } else if (key == "phase_max") {
      g.phase_max = parse_num(value, key);
    } else if (key == "hotplug") {
      g.hotplug_rate_hz = parse_num(value, key);
    } else if (key == "outage_min") {
      g.outage_min_s = parse_num(value, key);
    } else if (key == "outage_max") {
      g.outage_max_s = parse_num(value, key);
    } else if (key == "max_offline") {
      g.max_offline_cores = parse_int(value, key);
    } else if (key == "max_core") {
      g.max_core = parse_int(value, key);
    } else if (key == "retarget") {
      g.retarget_rate_hz = parse_num(value, key);
    } else if (key == "target_min") {
      g.target_min_hps = parse_num(value, key);
    } else if (key == "target_max") {
      g.target_max_hps = parse_num(value, key);
    } else {
      fail("unknown generator key \"" + key + "\" in \"" + std::string(name) +
           "\"");
    }
    if (semi == std::string::npos) break;
    from = semi + 1;
  }
  g.validate();
  return g;
}

std::string ScenarioGenerator::canonical_name(const GeneratorSpec& spec) {
  const GeneratorSpec base = profile(spec.profile);
  std::string params;
  const auto emit = [&params](const std::string& key, const std::string& v) {
    if (!params.empty()) params += ';';
    params += key + "=" + v;
  };
  const auto num = [&emit](const char* key, double v, double base_v) {
    if (v != base_v) emit(key, format_number(v));
  };
  const auto integer = [&emit](const char* key, int v, int base_v) {
    if (v != base_v) emit(key, std::to_string(v));
  };
  if (spec.seed != base.seed) emit("seed", std::to_string(spec.seed));
  num("horizon", spec.horizon_s, base.horizon_s);
  num("rate", spec.arrival_rate_hz, base.arrival_rate_hz);
  num("rush", spec.rush_amplitude, base.rush_amplitude);
  num("rush_period", spec.rush_period_s, base.rush_period_s);
  integer("init", spec.initial_apps, base.initial_apps);
  integer("max_live", spec.max_live_apps, base.max_live_apps);
  num("life_min", spec.lifetime_min_s, base.lifetime_min_s);
  num("life_max", spec.lifetime_max_s, base.lifetime_max_s);
  num("alpha", spec.lifetime_alpha, base.lifetime_alpha);
  num("depart", spec.depart_prob, base.depart_prob);
  integer("threads_min", spec.threads_min, base.threads_min);
  integer("threads_max", spec.threads_max, base.threads_max);
  num("frac_min", spec.fraction_min, base.fraction_min);
  num("frac_max", spec.fraction_max, base.fraction_max);
  if (spec.benches != base.benches) {
    emit("benches", format_benches(spec.benches));
  }
  num("storm", spec.storm_rate_hz, base.storm_rate_hz);
  integer("storm_len", spec.storm_len, base.storm_len);
  num("storm_gap", spec.storm_gap_s, base.storm_gap_s);
  num("phase_min", spec.phase_min, base.phase_min);
  num("phase_max", spec.phase_max, base.phase_max);
  num("hotplug", spec.hotplug_rate_hz, base.hotplug_rate_hz);
  num("outage_min", spec.outage_min_s, base.outage_min_s);
  num("outage_max", spec.outage_max_s, base.outage_max_s);
  integer("max_offline", spec.max_offline_cores, base.max_offline_cores);
  integer("max_core", spec.max_core, base.max_core);
  num("retarget", spec.retarget_rate_hz, base.retarget_rate_hz);
  num("target_min", spec.target_min_hps, base.target_min_hps);
  num("target_max", spec.target_max_hps, base.target_max_hps);
  std::string name = "gen:" + spec.profile;
  if (!params.empty()) name += ":" + params;
  return name;
}

Scenario ScenarioGenerator::from_name(std::string_view name) {
  ScenarioGenerator generator(parse_name(name));
  Scenario s = generator.generate();
  s.name = std::string(name);
  return s;
}

}  // namespace hars
