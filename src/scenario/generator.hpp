// Generative workload engine: seeded, declarative scenario synthesis.
//
// A GeneratorSpec describes a *distribution* over scenarios — arrival
// process (Poisson, optionally modulated by a diurnal rush-hour wave),
// heavy-tailed app lifetimes (bounded Pareto), phase-change storms,
// core-failure/hotplug cascades and target renegotiation bursts — and
// ScenarioGenerator::generate() draws one concrete, validate()d Scenario
// from it. Generation is a pure function of the spec (including its
// seed): same spec ⇒ byte-identical scenario CSV, so every generated
// workload is replayable through the existing DSL and the trace-replay
// machinery.
//
// Generated scenarios are addressable by *name* everywhere a preset is:
// "gen:PROFILE[:key=value;key=value;...]" parses into a GeneratorSpec
// (profile defaults + overrides) and the ScenarioRegistry materializes
// such names on demand, so `hars_sim --scenario gen:churn:seed=7`,
// SweepSpec::scenarios and daemon campaign requests all accept them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/parsec.hpp"
#include "scenario/scenario.hpp"

namespace hars {

/// Distribution over scenarios. All rates are per simulated second; all
/// durations are simulated seconds. Invalid combinations are rejected by
/// validate() with a ScenarioError.
struct GeneratorSpec {
  std::string profile = "poisson";  ///< Preset this spec derives from.
  std::uint64_t seed = 1;           ///< Drives every draw.
  double horizon_s = 60.0;          ///< Events land in [0, horizon).

  // --- Arrival process ---
  double arrival_rate_hz = 0.1;  ///< Mean Poisson arrival rate.
  /// Diurnal modulation: rate(t) = arrival_rate_hz * (1 + amplitude *
  /// tri(t / period)) with a triangle wave in [-1, 1] (exact arithmetic,
  /// no libm). 0 = flat Poisson.
  double rush_amplitude = 0.0;  ///< In [0, 1).
  double rush_period_s = 30.0;
  int initial_apps = 1;   ///< Spawns at t = 0 (>= 1; keep 1 for
                          ///< single-app variants).
  int max_live_apps = 3;  ///< Arrivals beyond this are shed.

  // --- App lifetime: bounded Pareto (heavy tail) ---
  double lifetime_min_s = 3.0;
  double lifetime_max_s = 40.0;
  double lifetime_alpha = 1.3;  ///< Tail index; smaller = heavier.
  double depart_prob = 0.8;     ///< Else the app runs to the end.

  // --- Spawn shape ---
  int threads_min = 0;  ///< 0,0 = experiment-default thread count.
  int threads_max = 0;
  double fraction_min = 0.0;  ///< 0,0 = experiment-default fraction.
  double fraction_max = 0.0;
  std::vector<ParsecBenchmark> benches;  ///< Empty = all six.

  // --- Phase-change storms ---
  double storm_rate_hz = 0.0;  ///< Storms per second (0 = none).
  int storm_len = 3;           ///< Flips per storm (heavy/nominal).
  double storm_gap_s = 1.5;    ///< Between consecutive flips.
  double phase_min = 0.5;      ///< Heavy-flip scale range.
  double phase_max = 3.0;

  // --- Core-failure / hotplug cascades ---
  double hotplug_rate_hz = 0.0;  ///< Cascades per second (0 = none).
  double outage_min_s = 2.0;
  double outage_max_s = 8.0;
  int max_offline_cores = 3;  ///< Cores per cascade (never cpu0).
  int max_core = 7;           ///< Highest core id eligible.

  // --- Target renegotiation bursts ---
  double retarget_rate_hz = 0.0;  ///< set_target events per second.
  double target_min_hps = 2.0;    ///< New window centers drawn here.
  double target_max_hps = 12.0;

  /// Throws ScenarioError on out-of-range fields.
  void validate() const;
};

/// Draws concrete scenarios from a GeneratorSpec. Stateless between
/// calls: generate() always produces the same scenario for the same
/// spec.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorSpec spec);

  const GeneratorSpec& spec() const { return spec_; }

  /// One concrete scenario, named canonical_name(spec()), validate()d.
  /// Pure: byte-identical DSL for byte-identical specs.
  Scenario generate() const;

  /// The built-in profile names: poisson, rush, storm, hotplug,
  /// retarget, churn, mixed.
  static std::vector<std::string> profiles();

  /// Preset spec for a profile name; throws ScenarioError when unknown.
  static GeneratorSpec profile(std::string_view name);

  /// True for "gen:..." names (the registry's cue to synthesize).
  static bool is_generated_name(std::string_view name);

  /// Parses "gen:PROFILE[:key=value;...]" (see docs/FILE_FORMATS.md for
  /// the key list); throws ScenarioError on unknown profiles, unknown
  /// keys or malformed values.
  static GeneratorSpec parse_name(std::string_view name);

  /// The minimal name that parses back to `spec`: profile defaults are
  /// elided, every overridden key is emitted in a fixed order.
  static std::string canonical_name(const GeneratorSpec& spec);

  /// parse_name + generate, with the scenario named `name` verbatim (so
  /// registry lookups and record rows echo the requested spelling).
  static Scenario from_name(std::string_view name);

 private:
  GeneratorSpec spec_;
};

}  // namespace hars
