#include "scenario/repro.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "sweep/result_sink.hpp"  // format_number

namespace hars {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw ScenarioError("repro: " + message);
}

/// Recipe values live on one comment line each; collapse embedded
/// newlines so recorded failure messages cannot break the format.
std::string one_line(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

std::string format_repro(const ReproCase& repro) {
  std::ostringstream out;
  out << "# hars_fuzz repro v1\n";
  out << "# variant=" << repro.variant << '\n';
  out << "# platform=" << repro.platform << '\n';
  out << "# seed=" << repro.seed << '\n';
  if (repro.threads != 0) out << "# threads=" << repro.threads << '\n';
  out << "# duration_sec=" << format_number(repro.duration_sec) << '\n';
  out << "# fraction=" << format_number(repro.fraction) << '\n';
  if (!repro.inject.empty()) out << "# inject=" << repro.inject << '\n';
  out << "# expect=" << (repro.expect_fail ? "fail" : "pass") << '\n';
  if (!repro.failure.empty()) {
    out << "# failure=" << one_line(repro.failure) << '\n';
  }
  if (!repro.generator.empty()) {
    out << "# generator=" << repro.generator << '\n';
  }
  if (repro.shrink_attempts > 0) {
    out << "# shrink_attempts=" << repro.shrink_attempts << '\n';
  }
  if (repro.original_events > 0) {
    out << "# original_events=" << repro.original_events << '\n';
  }
  if (!repro.rerun.empty()) out << "# rerun=" << repro.rerun << '\n';
  repro.scenario.to_stream(out);
  return out.str();
}

ReproCase parse_repro(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  ReproCase repro;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() != '#') break;  // Recipe comments precede the DSL.
    std::string body = line.substr(1);
    if (!body.empty() && body.front() == ' ') body = body.substr(1);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // Plain comment.
    const std::string key = body.substr(0, eq);
    const std::string value = body.substr(eq + 1);
    char* end = nullptr;
    if (key == "variant") {
      repro.variant = value;
    } else if (key == "platform") {
      repro.platform = value;
    } else if (key == "seed") {
      repro.seed = std::strtoull(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') fail("malformed seed \"" + value + "\"");
    } else if (key == "threads") {
      repro.threads = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0') fail("malformed threads \"" + value + "\"");
    } else if (key == "duration_sec") {
      repro.duration_sec = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') fail("malformed duration_sec \"" + value + "\"");
    } else if (key == "fraction") {
      repro.fraction = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') fail("malformed fraction \"" + value + "\"");
    } else if (key == "inject") {
      repro.inject = value;
    } else if (key == "expect") {
      if (value != "pass" && value != "fail") {
        fail("expect must be pass or fail, got \"" + value + "\"");
      }
      repro.expect_fail = value == "fail";
    } else if (key == "failure") {
      repro.failure = value;
    } else if (key == "generator") {
      repro.generator = value;
    } else if (key == "shrink_attempts") {
      repro.shrink_attempts =
          static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0') fail("malformed shrink_attempts \"" + value + "\"");
    } else if (key == "original_events") {
      repro.original_events = static_cast<std::size_t>(
          std::strtoull(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0') fail("malformed original_events \"" + value + "\"");
    } else if (key == "rerun") {
      repro.rerun = value;
    }
    // Unrecognized "# key=value" lines are plain comments: ignored.
  }

  std::istringstream dsl(content);
  repro.scenario = Scenario::from_stream(dsl);
  return repro;
}

ReproCase parse_repro_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot read " + path);
  try {
    return parse_repro(in);
  } catch (const ScenarioError& error) {
    throw ScenarioError(std::string(error.what()) + " [" + path + "]");
  }
}

std::optional<std::string> injected_failure(const Scenario& scenario,
                                            std::string_view kind) {
  if (kind == "phase_gt2") {
    for (const ScenarioEvent& e : scenario.events) {
      if (e.kind == ScenarioEventKind::kSetPhase && e.phase_scale > 2.0) {
        return "injected phase_gt2: set_phase scale=" +
               format_number(e.phase_scale) + " > 2 (app " + e.app + " at " +
               format_number(static_cast<double>(e.time) / kUsPerMs) + " ms)";
      }
    }
    return std::nullopt;
  }
  if (kind == "kill_during_outage") {
    CpuMask offline;
    for (const ScenarioEvent& e : scenario.events) {
      if (e.kind == ScenarioEventKind::kOfflineCores) {
        offline = offline | e.cores;
      } else if (e.kind == ScenarioEventKind::kOnlineCores) {
        offline = offline & ~e.cores;
      } else if (e.kind == ScenarioEventKind::kKill && offline.any()) {
        return "injected kill_during_outage: app " + e.app + " killed at " +
               format_number(static_cast<double>(e.time) / kUsPerMs) +
               " ms with cores " + offline.to_string() + " offline";
      }
    }
    return std::nullopt;
  }
  throw ScenarioError("repro: unknown inject kind \"" + std::string(kind) +
                      "\"; known: phase_gt2 kill_during_outage");
}

}  // namespace hars
