// Corpus repro files: a failing fuzz case with its re-run recipe.
//
// A repro is a plain scenario DSL file (parseable by Scenario::from_file
// and docs_check like any *.scenario.csv) whose leading comment lines
// carry the full recipe needed to re-run the case: variant, platform,
// seed, duration, plus provenance (the originating gen: name, shrink
// statistics, the recorded failure). `hars_fuzz --repro FILE` replays
// one; `hars_fuzz --repro-dir DIR` replays a checked-in corpus and
// asserts every file's observed outcome matches its `# expect=` line.
//
// Example:
//   # hars_fuzz repro v1
//   # variant=HARS-E
//   # platform=exynos5422
//   # seed=7
//   # inject=phase_gt2
//   # expect=fail
//   scenario,gen:storm:seed=7
//   0,spawn,app=g0,bench=FA
//   1000,set_phase,app=g0,scale=2.8
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace hars {

struct ReproCase {
  Scenario scenario;
  std::string variant = "HARS-E";
  std::string platform = "exynos5422";
  std::uint64_t seed = 1;
  int threads = 0;           ///< 0 = experiment default.
  double duration_sec = 20.0;
  double fraction = 0.9;     ///< Experiment target fraction.
  /// Synthetic oracle (see injected_failure); empty = the real oracles
  /// (audits + AllocGuard + invariants + differential).
  std::string inject;
  bool expect_fail = true;   ///< The corpus contract for --repro-dir.
  std::string failure;       ///< Recorded failure (informational).
  std::string generator;     ///< Originating gen: name, when known.
  int shrink_attempts = 0;   ///< Oracle runs the shrinker spent.
  std::size_t original_events = 0;  ///< Event count before shrinking.
  std::string rerun;         ///< Re-run hint, e.g. "hars_fuzz --repro f".
};

/// Serializes the recipe comments + scenario DSL. parse_repro round-trips
/// byte-identically (asserted by tests and docs_check).
std::string format_repro(const ReproCase& repro);

/// Parses a repro file: recipe comments are read, unknown comments are
/// ignored, and the scenario body goes through Scenario::from_stream.
/// Throws ScenarioError on malformed recipes or scenarios.
ReproCase parse_repro(std::istream& in);
ReproCase parse_repro_file(const std::string& path);

/// Synthetic invariant violations for harness self-tests and seeded
/// known-bug fixtures: a pure predicate over the scenario. Returns the
/// failure message, or nullopt when the scenario "passes". Kinds:
///   phase_gt2          fails iff any set_phase has scale > 2
///   kill_during_outage fails iff an app is killed while cores are
///                      offline (no full recovery in between)
/// Throws ScenarioError for unknown kinds.
std::optional<std::string> injected_failure(const Scenario& scenario,
                                            std::string_view kind);

}  // namespace hars
