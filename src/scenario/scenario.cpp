#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "sweep/result_sink.hpp"  // format_number

namespace hars {

const char* scenario_event_name(ScenarioEventKind kind) {
  switch (kind) {
    case ScenarioEventKind::kSpawn: return "spawn";
    case ScenarioEventKind::kKill: return "kill";
    case ScenarioEventKind::kSetTarget: return "set_target";
    case ScenarioEventKind::kSetPhase: return "set_phase";
    case ScenarioEventKind::kOfflineCores: return "offline_cores";
    case ScenarioEventKind::kOnlineCores: return "online_cores";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw ScenarioError("scenario: " + message);
}

bool needs_app(ScenarioEventKind kind) {
  return kind != ScenarioEventKind::kOfflineCores &&
         kind != ScenarioEventKind::kOnlineCores;
}

/// Shared validation walk. `lines` (parallel to events, nullable) carries
/// the DSL source line of each event so from_stream / from_file reject
/// with "line N" instead of the event's index — every rejection path
/// then points at the offending file:line.
void validate_events(const Scenario& scenario,
                     const std::vector<int>* lines) {
  const std::vector<ScenarioEvent>& events = scenario.events;
  if (scenario.name.empty()) fail("missing name");
  TimeUs prev = 0;
  // App lifecycle per id: unseen -> alive -> killed.
  enum class Life { kUnseen, kAlive, kKilled };
  std::map<std::string, Life> apps;
  bool initial_spawn = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    const std::string where =
        (lines != nullptr ? "line " + std::to_string((*lines)[i])
                          : "event " + std::to_string(i)) +
        " (" + std::string(scenario_event_name(e.kind)) + ")";
    if (e.time < 0) fail(where + ": negative time");
    if (e.time < prev) {
      fail(where + ": out of order (t=" + std::to_string(e.time) +
           " after t=" + std::to_string(prev) + ")");
    }
    prev = e.time;
    if (needs_app(e.kind) && e.app.empty()) fail(where + ": missing app id");
    switch (e.kind) {
      case ScenarioEventKind::kSpawn: {
        if (apps.count(e.app)) fail(where + ": duplicate app id \"" + e.app + "\"");
        if (!e.spawn.bench) fail(where + ": spawn of \"" + e.app + "\" has no workload");
        if (e.spawn.threads < 0) fail(where + ": negative thread count");
        if (e.spawn.fraction &&
            (!(*e.spawn.fraction > 0.0) || *e.spawn.fraction > 1.0)) {
          fail(where + ": fraction must be in (0, 1]");
        }
        if (e.spawn.target && !e.spawn.target->is_valid_window()) {
          fail(where + ": empty or non-positive target window");
        }
        apps[e.app] = Life::kAlive;
        if (e.time == 0) initial_spawn = true;
        break;
      }
      case ScenarioEventKind::kKill:
      case ScenarioEventKind::kSetTarget:
      case ScenarioEventKind::kSetPhase: {
        if (e.time == 0) fail(where + ": t=0 is reserved for spawns");
        const auto it = apps.find(e.app);
        if (it == apps.end()) fail(where + ": unknown app \"" + e.app + "\"");
        if (it->second == Life::kKilled) {
          fail(where + ": app \"" + e.app + "\" already killed");
        }
        if (e.kind == ScenarioEventKind::kKill) it->second = Life::kKilled;
        if (e.kind == ScenarioEventKind::kSetTarget &&
            !e.target.is_valid_window()) {
          fail(where + ": empty or non-positive target window");
        }
        if (e.kind == ScenarioEventKind::kSetPhase && !(e.phase_scale > 0.0)) {
          fail(where + ": phase scale must be > 0");
        }
        break;
      }
      case ScenarioEventKind::kOfflineCores:
      case ScenarioEventKind::kOnlineCores:
        if (e.time == 0) fail(where + ": t=0 is reserved for spawns");
        if (e.cores.empty()) fail(where + ": empty core set");
        if (e.kind == ScenarioEventKind::kOfflineCores && e.cores.test(0)) {
          fail(where + ": cpu0 (the manager core) cannot go offline");
        }
        break;
    }
  }
  if (!initial_spawn) fail("no spawn at t=0 (the run needs an initial app)");
}

}  // namespace

void Scenario::validate() const { validate_events(*this, nullptr); }

std::vector<const ScenarioEvent*> Scenario::spawns() const {
  std::vector<const ScenarioEvent*> out;
  for (const ScenarioEvent& e : events) {
    if (e.kind == ScenarioEventKind::kSpawn) out.push_back(&e);
  }
  return out;
}

TimeUs Scenario::last_event_time() const {
  return events.empty() ? 0 : events.back().time;
}

bool operator==(const ScenarioSpawn& a, const ScenarioSpawn& b) {
  const auto target_eq = [](const std::optional<PerfTarget>& x,
                            const std::optional<PerfTarget>& y) {
    if (x.has_value() != y.has_value()) return false;
    return !x || (x->min == y->min && x->max == y->max);
  };
  return a.bench == b.bench && a.threads == b.threads &&
         a.fraction == b.fraction && target_eq(a.target, b.target);
}

bool operator==(const ScenarioEvent& a, const ScenarioEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.app == b.app &&
         a.spawn == b.spawn && a.target.min == b.target.min &&
         a.target.max == b.target.max && a.phase_scale == b.phase_scale &&
         a.cores == b.cores;
}

bool operator==(const Scenario& a, const Scenario& b) {
  return a.name == b.name && a.events == b.events;
}

CpuMask parse_core_set(const std::string& spec) {
  CpuMask mask;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ';')) {
    if (part.empty()) fail("empty core range in \"" + spec + "\"");
    char* end = nullptr;
    const long lo = std::strtol(part.c_str(), &end, 10);
    long hi = lo;
    if (*end == '-') {
      hi = std::strtol(end + 1, &end, 10);
    }
    if (*end != '\0' || lo < 0 || hi < lo || hi >= CpuMask::kMaxCpus) {
      fail("malformed core set \"" + spec + "\"");
    }
    for (long c = lo; c <= hi; ++c) mask.set(static_cast<CoreId>(c));
  }
  if (mask.empty()) fail("empty core set \"" + spec + "\"");
  return mask;
}

std::string format_core_set(CpuMask mask) {
  std::string out;
  CoreId c = mask.first();
  while (c >= 0) {
    CoreId end = c;
    while (end + 1 < CpuMask::kMaxCpus && mask.test(end + 1)) ++end;
    if (!out.empty()) out += ';';
    out += std::to_string(c);
    if (end > c) {
      out += '-';
      out += std::to_string(end);
    }
    c = mask.next(end);
  }
  return out;
}

namespace {

/// Splits "key=value" cells of one DSL line into an ordered map; rejects
/// duplicate and malformed cells.
std::map<std::string, std::string> parse_fields(
    const std::vector<std::string>& cells, std::size_t from, int line_no) {
  std::map<std::string, std::string> fields;
  for (std::size_t i = from; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    const std::size_t eq = cell.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("line " + std::to_string(line_no) + ": expected key=value, got \"" +
           cell + "\"");
    }
    const std::string key = cell.substr(0, eq);
    if (!fields.emplace(key, cell.substr(eq + 1)).second) {
      fail("line " + std::to_string(line_no) + ": duplicate field \"" + key +
           "\"");
    }
  }
  return fields;
}

double parse_double(const std::string& value, const char* key, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    fail("line " + std::to_string(line_no) + ": malformed " + key + " \"" +
         value + "\"");
  }
  return v;
}

std::optional<ParsecBenchmark> parse_bench_code(const std::string& name) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    if (name == parsec_code(b) || name == parsec_name(b)) return b;
  }
  return std::nullopt;
}

}  // namespace

Scenario Scenario::from_stream(std::istream& in) {
  Scenario scenario;
  std::vector<int> event_lines;  // Source line of each event, for errors.
  std::string line;
  int line_no = 0;
  bool have_header = false;
  TimeUs prev_time = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);

    if (!have_header) {
      if (cells.size() != 2 || cells[0] != "scenario" || cells[1].empty()) {
        fail("line " + std::to_string(line_no) +
             ": expected header \"scenario,NAME\"");
      }
      scenario.name = cells[1];
      have_header = true;
      continue;
    }

    if (cells.size() < 2) {
      fail("line " + std::to_string(line_no) + ": expected TIME_MS,event,...");
    }
    ScenarioEvent event;
    // Round, don't truncate: to_stream writes time as a ms double whose
    // product with 1000 can land just below the integral us value
    // (1.001 * 1000 = 1000.999...), and the round-trip must be exact.
    event.time = static_cast<TimeUs>(
        std::llround(parse_double(cells[0], "time", line_no) * kUsPerMs));
    if (event.time < prev_time) {
      fail("line " + std::to_string(line_no) + ": out-of-order event (t=" +
           cells[0] + " ms after a later one)");
    }
    prev_time = event.time;
    const std::string& kind = cells[1];
    const auto fields = parse_fields(cells, 2, line_no);
    const auto field = [&](const char* key) -> const std::string& {
      const auto it = fields.find(key);
      if (it == fields.end()) {
        fail("line " + std::to_string(line_no) + ": " + kind + " needs " +
             key + "=");
      }
      return it->second;
    };
    const auto has = [&](const char* key) { return fields.count(key) != 0; };
    // parse_core_set is public API and knows nothing about source
    // positions; anchor its rejections on the line like everything else.
    const auto core_set = [&](const std::string& value) {
      try {
        return parse_core_set(value);
      } catch (const ScenarioError& error) {
        std::string inner = error.what();
        const std::string prefix = "scenario: ";
        if (inner.rfind(prefix, 0) == 0) inner = inner.substr(prefix.size());
        fail("line " + std::to_string(line_no) + ": " + inner);
      }
    };

    if (kind == "spawn") {
      event.kind = ScenarioEventKind::kSpawn;
      event.app = field("app");
      const std::string& bench = field("bench");
      event.spawn.bench = parse_bench_code(bench);
      if (!event.spawn.bench) {
        fail("line " + std::to_string(line_no) + ": unknown bench \"" + bench +
             "\"");
      }
      if (has("threads")) {
        event.spawn.threads =
            static_cast<int>(parse_double(field("threads"), "threads", line_no));
      }
      if (has("fraction")) {
        event.spawn.fraction = parse_double(field("fraction"), "fraction", line_no);
      }
      if (has("min") || has("max")) {
        event.spawn.target =
            PerfTarget{parse_double(field("min"), "min", line_no),
                       parse_double(field("max"), "max", line_no)};
      }
    } else if (kind == "kill") {
      event.kind = ScenarioEventKind::kKill;
      event.app = field("app");
    } else if (kind == "set_target") {
      event.kind = ScenarioEventKind::kSetTarget;
      event.app = field("app");
      event.target = PerfTarget{parse_double(field("min"), "min", line_no),
                                parse_double(field("max"), "max", line_no)};
    } else if (kind == "set_phase") {
      event.kind = ScenarioEventKind::kSetPhase;
      event.app = field("app");
      event.phase_scale = parse_double(field("scale"), "scale", line_no);
    } else if (kind == "offline_cores") {
      event.kind = ScenarioEventKind::kOfflineCores;
      event.cores = core_set(field("cores"));
    } else if (kind == "online_cores") {
      event.kind = ScenarioEventKind::kOnlineCores;
      event.cores = core_set(field("cores"));
    } else {
      fail("line " + std::to_string(line_no) + ": unknown event \"" + kind +
           "\"");
    }
    scenario.events.push_back(std::move(event));
    event_lines.push_back(line_no);
  }
  if (!have_header) fail("missing \"scenario,NAME\" header");
  validate_events(scenario, &event_lines);
  return scenario;
}

Scenario Scenario::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot read " + path);
  try {
    return from_stream(in);
  } catch (const ScenarioError& error) {
    throw ScenarioError(std::string(error.what()) + " [" + path + "]");
  }
}

void Scenario::to_stream(std::ostream& out) const {
  out << "scenario," << name << '\n';
  for (const ScenarioEvent& e : events) {
    out << format_number(static_cast<double>(e.time) / kUsPerMs) << ','
        << scenario_event_name(e.kind);
    switch (e.kind) {
      case ScenarioEventKind::kSpawn:
        out << ",app=" << e.app << ",bench=" << parsec_code(*e.spawn.bench);
        if (e.spawn.threads > 0) out << ",threads=" << e.spawn.threads;
        if (e.spawn.fraction) {
          out << ",fraction=" << format_number(*e.spawn.fraction);
        }
        if (e.spawn.target) {
          out << ",min=" << format_number(e.spawn.target->min)
              << ",max=" << format_number(e.spawn.target->max);
        }
        break;
      case ScenarioEventKind::kKill:
        out << ",app=" << e.app;
        break;
      case ScenarioEventKind::kSetTarget:
        out << ",app=" << e.app << ",min=" << format_number(e.target.min)
            << ",max=" << format_number(e.target.max);
        break;
      case ScenarioEventKind::kSetPhase:
        out << ",app=" << e.app
            << ",scale=" << format_number(e.phase_scale);
        break;
      case ScenarioEventKind::kOfflineCores:
      case ScenarioEventKind::kOnlineCores:
        out << ",cores=" << format_core_set(e.cores);
        break;
    }
    out << '\n';
  }
}

std::string Scenario::to_dsl() const {
  std::ostringstream out;
  to_stream(out);
  return out.str();
}

ScenarioBuilder::ScenarioBuilder(std::string name) {
  scenario_.name = std::move(name);
}

ScenarioEvent& ScenarioBuilder::last_spawn() {
  for (auto it = scenario_.events.rbegin(); it != scenario_.events.rend(); ++it) {
    if (it->kind == ScenarioEventKind::kSpawn) return *it;
  }
  fail("builder: spawn() must come before per-spawn setters");
}

ScenarioBuilder& ScenarioBuilder::spawn(TimeUs t, std::string app,
                                        ParsecBenchmark bench) {
  ScenarioEvent e;
  e.time = t;
  e.kind = ScenarioEventKind::kSpawn;
  e.app = std::move(app);
  e.spawn.bench = bench;
  scenario_.events.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::threads(int n) {
  last_spawn().spawn.threads = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fraction(double f) {
  last_spawn().spawn.fraction = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::target(PerfTarget t) {
  last_spawn().spawn.target = t;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::kill(TimeUs t, std::string app) {
  ScenarioEvent e;
  e.time = t;
  e.kind = ScenarioEventKind::kKill;
  e.app = std::move(app);
  scenario_.events.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::set_target(TimeUs t, std::string app,
                                             PerfTarget target) {
  ScenarioEvent e;
  e.time = t;
  e.kind = ScenarioEventKind::kSetTarget;
  e.app = std::move(app);
  e.target = target;
  scenario_.events.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::set_phase(TimeUs t, std::string app,
                                            double scale) {
  ScenarioEvent e;
  e.time = t;
  e.kind = ScenarioEventKind::kSetPhase;
  e.app = std::move(app);
  e.phase_scale = scale;
  scenario_.events.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offline_cores(TimeUs t, CpuMask cores) {
  ScenarioEvent e;
  e.time = t;
  e.kind = ScenarioEventKind::kOfflineCores;
  e.cores = cores;
  scenario_.events.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::online_cores(TimeUs t, CpuMask cores) {
  ScenarioEvent e;
  e.time = t;
  e.kind = ScenarioEventKind::kOnlineCores;
  e.cores = cores;
  scenario_.events.push_back(std::move(e));
  return *this;
}

Scenario ScenarioBuilder::build() const {
  Scenario out = scenario_;
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time < b.time;
                   });
  out.validate();
  return out;
}

}  // namespace hars
