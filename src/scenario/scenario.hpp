// Declarative dynamic scenarios: the time axis of the evaluation.
//
// A Scenario is a validated, time-ordered list of events applied to a run
// while it executes — applications arriving (`spawn`) and departing
// (`kill`), performance targets moving (`set_target`), workload phases
// shifting (`set_phase`, a work multiplier), and cores failing or
// recovering (`offline_cores` / `online_cores`). Scenarios are *data*,
// not code: load one from the CSV DSL (Scenario::from_file, format in
// docs/FILE_FORMATS.md), compose one with the fluent ScenarioBuilder, or
// fetch a preset from the ScenarioRegistry ("steady", "staggered",
// "bursty", "rush_hour", "core_failure").
//
// Determinism: a Scenario is a pure value; event dispatch happens at tick
// boundaries of the SimEngine in event order, and every spawned app's RNG
// seed derives from the experiment seed and the spawn's position in the
// scenario — never from wall clock or execution order — so a scenario run
// is exactly reproducible (and replayable bit-for-bit; see TraceSink).
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/parsec.hpp"
#include "heartbeats/heartbeat.hpp"
#include "hmp/cpu_mask.hpp"
#include "util/common.hpp"

namespace hars {

/// Malformed scenarios (DSL syntax, ordering, unknown app references) are
/// reported through this exception.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class ScenarioEventKind {
  kSpawn,         ///< An application arrives.
  kKill,          ///< An application departs (threads reclaimed).
  kSetTarget,     ///< An application's performance target moves.
  kSetPhase,      ///< Workload phase: work appears `scale`× heavier.
  kOfflineCores,  ///< Cores go offline (hotplug failure model).
  kOnlineCores,   ///< Cores come back online.
};

const char* scenario_event_name(ScenarioEventKind kind);

/// Payload of a spawn event. Target resolution at run time: an explicit
/// `target` window wins; otherwise the app's target is `fraction` (or the
/// experiment's target_fraction when unset) of its standalone calibrated
/// maximum rate on the run's platform.
struct ScenarioSpawn {
  std::optional<ParsecBenchmark> bench;  ///< Workload preset (required).
  int threads = 0;                       ///< 0 = experiment default.
  std::optional<double> fraction;        ///< Derived-target fraction.
  std::optional<PerfTarget> target;      ///< Explicit target; wins.
};

struct ScenarioEvent {
  TimeUs time = 0;
  ScenarioEventKind kind = ScenarioEventKind::kSpawn;
  std::string app;           ///< Scenario-unique app id (core events: empty).
  ScenarioSpawn spawn;       ///< kSpawn payload.
  PerfTarget target;         ///< kSetTarget payload.
  double phase_scale = 1.0;  ///< kSetPhase payload (> 0).
  CpuMask cores;             ///< kOfflineCores / kOnlineCores payload.
};

/// A validated, time-ordered event list. Construct via ScenarioBuilder,
/// from_file/from_stream, or the ScenarioRegistry — all three validate().
struct Scenario {
  std::string name;
  std::vector<ScenarioEvent> events;  ///< Non-decreasing in time.

  /// Throws ScenarioError on an inconsistent scenario: empty name, no
  /// spawn at t = 0, out-of-order events, duplicate spawn ids, events
  /// referencing unknown / not-yet-spawned / already-killed apps,
  /// non-positive phase scales or thread counts, empty core masks,
  /// offlining cpu0 (the manager core is not hot-unpluggable), spawns
  /// without a workload, negative event times, or non-spawn events at
  /// t = 0 (the first tick boundary is reserved for initial arrivals).
  void validate() const;

  /// The spawn events in scenario order (positions define app seeds).
  std::vector<const ScenarioEvent*> spawns() const;

  /// Time of the last event (0 for a steady scenario).
  TimeUs last_event_time() const;

  /// Parses the scenario CSV DSL (docs/FILE_FORMATS.md):
  ///   # comment / empty lines ignored
  ///   scenario,NAME
  ///   TIME_MS,spawn,app=ID,bench=SW[,threads=N][,fraction=F]
  ///                 [,min=HPS,max=HPS]
  ///   TIME_MS,kill,app=ID
  ///   TIME_MS,set_target,app=ID,min=HPS,max=HPS
  ///   TIME_MS,set_phase,app=ID,scale=X
  ///   TIME_MS,offline_cores,cores=SPEC   (SPEC: "4-7" or "1;3;5-6")
  ///   TIME_MS,online_cores,cores=SPEC
  /// Events must appear in non-decreasing time order (out-of-order input
  /// is rejected, not sorted). The result is validate()d.
  static Scenario from_stream(std::istream& in);

  /// Reads `path` and parses it with from_stream.
  static Scenario from_file(const std::string& path);

  /// Serializes back to the DSL; from_stream(to_stream(s)) round-trips to
  /// an equal scenario (asserted by tests/scenario/scenario_test.cpp).
  void to_stream(std::ostream& out) const;
  std::string to_dsl() const;
};

bool operator==(const ScenarioSpawn& a, const ScenarioSpawn& b);
bool operator==(const ScenarioEvent& a, const ScenarioEvent& b);
bool operator==(const Scenario& a, const Scenario& b);

/// Parses a core-set spec ("4-7", "1;3;5-6") into a mask; throws
/// ScenarioError on malformed input. Inverse of format_core_set.
CpuMask parse_core_set(const std::string& spec);
std::string format_core_set(CpuMask mask);

/// Fluent composition mirroring ExperimentBuilder. Events may be added in
/// any order; build() stably sorts by time and validates:
///
///   Scenario s = ScenarioBuilder("staggered")
///                    .spawn(0, "a0", ParsecBenchmark::kBodytrack)
///                    .spawn(8 * kUsPerSec, "a1", ParsecBenchmark::kFluidanimate)
///                    .kill(30 * kUsPerSec, "a1")
///                    .build();
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name);

  /// Starts a spawn; the per-spawn setters below refine the latest one.
  ScenarioBuilder& spawn(TimeUs t, std::string app, ParsecBenchmark bench);
  ScenarioBuilder& threads(int n);
  ScenarioBuilder& fraction(double f);
  ScenarioBuilder& target(PerfTarget t);

  ScenarioBuilder& kill(TimeUs t, std::string app);
  ScenarioBuilder& set_target(TimeUs t, std::string app, PerfTarget target);
  ScenarioBuilder& set_phase(TimeUs t, std::string app, double scale);
  ScenarioBuilder& offline_cores(TimeUs t, CpuMask cores);
  ScenarioBuilder& online_cores(TimeUs t, CpuMask cores);

  /// Stable-sorts by time, validates, returns the finished scenario.
  Scenario build() const;

 private:
  ScenarioEvent& last_spawn();
  Scenario scenario_;
};

}  // namespace hars
