#include "scenario/scenario_registry.hpp"

#include <utility>

#include "scenario/generator.hpp"

namespace hars {

namespace {

Scenario make_steady() {
  return ScenarioBuilder("steady")
      .spawn(0, "a0", ParsecBenchmark::kSwaptions)
      .build();
}

Scenario make_staggered() {
  return ScenarioBuilder("staggered")
      .spawn(0, "a0", ParsecBenchmark::kBodytrack)
      .spawn(8 * kUsPerSec, "a1", ParsecBenchmark::kFluidanimate)
      .spawn(16 * kUsPerSec, "a2", ParsecBenchmark::kSwaptions)
      .kill(30 * kUsPerSec, "a1")
      .build();
}

Scenario make_bursty() {
  return ScenarioBuilder("bursty")
      .spawn(0, "a0", ParsecBenchmark::kFacesim)
      .set_phase(10 * kUsPerSec, "a0", 2.0)
      .set_phase(20 * kUsPerSec, "a0", 1.0)
      .set_phase(30 * kUsPerSec, "a0", 2.0)
      .set_phase(40 * kUsPerSec, "a0", 1.0)
      .build();
}

Scenario make_rush_hour() {
  return ScenarioBuilder("rush_hour")
      .spawn(0, "resident", ParsecBenchmark::kSwaptions)
      .spawn(10 * kUsPerSec, "b0", ParsecBenchmark::kBodytrack)
      .spawn(14 * kUsPerSec, "b1", ParsecBenchmark::kFluidanimate)
      .spawn(18 * kUsPerSec, "b2", ParsecBenchmark::kBlackscholes)
      .kill(40 * kUsPerSec, "b0")
      .kill(44 * kUsPerSec, "b1")
      .kill(48 * kUsPerSec, "b2")
      .build();
}

Scenario make_core_failure() {
  const CpuMask fast_cores = parse_core_set("4-7");
  return ScenarioBuilder("core_failure")
      .spawn(0, "a0", ParsecBenchmark::kBodytrack)
      .offline_cores(10 * kUsPerSec, fast_cores)
      .online_cores(25 * kUsPerSec, fast_cores)
      .build();
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
  entries_.push_back(make_steady());
  entries_.push_back(make_staggered());
  entries_.push_back(make_bursty());
  entries_.push_back(make_rush_hour());
  entries_.push_back(make_core_failure());
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::register_scenario(Scenario scenario) {
  scenario.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  for (Scenario& entry : entries_) {
    if (entry.name == scenario.name) {
      entry = std::move(scenario);
      return;
    }
  }
  entries_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find_locked(std::string_view name) const {
  for (const Scenario& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  if (!ScenarioGenerator::is_generated_name(name)) return nullptr;
  entries_.push_back(ScenarioGenerator::from_name(name));
  return &entries_.back();
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    return find_locked(name);
  } catch (const ScenarioError&) {
    return nullptr;
  }
}

Scenario ScenarioRegistry::get(std::string_view name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A malformed gen: name throws here with the generator's diagnostic,
    // which beats the generic unknown-name message below.
    if (const Scenario* found = find_locked(name)) return *found;
  }
  std::string message = "unknown scenario \"" + std::string(name) + "\"; known:";
  for (const std::string& known : names()) {
    message += ' ';
    message += known;
  }
  message += " (or gen:PROFILE[:key=value;...])";
  throw ScenarioError(message);
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Scenario& entry : entries_) out.push_back(entry.name);
  return out;
}

}  // namespace hars
