// ScenarioRegistry: the string-keyed catalogue of scenario presets,
// mirroring the PlatformRegistry / VariantRegistry idiom. Presets model
// the adaptation stimuli the paper's runtime exists for:
//
//   steady        one app, no events — the §5.1 baseline protocol.
//   staggered     apps arrive 8 s apart, one departs mid-run (§5.2's
//                 multi-app protocol with the time axis turned on).
//   bursty        one app whose workload phase doubles and relaxes every
//                 10 s (set_phase stress for the predictors).
//   rush_hour     a resident app plus a burst of three arrivals that all
//                 depart again — peak-load resource contention.
//   core_failure  the non-manager cores of the fast cluster fail at 10 s
//                 and recover at 25 s (hotplug resilience).
//
// Event times are absolute; presets fit inside the default 120 s run and
// the interesting window is the first ~50 s, so short test runs cover
// them too. Core ids in core_failure refer to cores 4-7, the fast
// cluster(s) on the 8-core presets (exynos5422, sd855); on other
// platforms the mask simply intersects the machine.
#pragma once

#include <deque>
#include <mutex>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"

namespace hars {

class ScenarioRegistry {
 public:
  /// The process-wide registry with the presets above pre-registered.
  /// Thread-safe like the other registries; register custom scenarios
  /// before launching a parallel sweep.
  static ScenarioRegistry& instance();

  /// Registers (or replaces) a scenario under its own name. The scenario
  /// is validate()d first.
  void register_scenario(Scenario scenario);

  /// Null when `name` is unknown; the pointer stays valid across later
  /// registrations of *other* names. Generated names ("gen:PROFILE:...",
  /// see scenario/generator.hpp) are synthesized and memoized on first
  /// lookup, so they behave exactly like presets everywhere a scenario
  /// is addressed by name; a malformed gen: name yields null (use get()
  /// for the diagnostic).
  const Scenario* find(std::string_view name) const;

  /// Copy of the named scenario; throws ScenarioError listing the known
  /// names when unknown, or with the generator's diagnostic for a
  /// malformed gen: name.
  Scenario get(std::string_view name) const;

  /// All registered names, in registration order.
  std::vector<std::string> names() const;

 private:
  ScenarioRegistry();
  /// Lookup plus on-demand gen: synthesis; call with mutex_ held. May
  /// throw ScenarioError for a malformed gen: name.
  const Scenario* find_locked(std::string_view name) const;

  mutable std::mutex mutex_;
  /// Deque: find() pointers stay valid. Mutable: find() memoizes
  /// generated scenarios.
  mutable std::deque<Scenario> entries_;
};

}  // namespace hars
