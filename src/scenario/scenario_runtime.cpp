#include "scenario/scenario_runtime.hpp"

#include <utility>

#include "exp/calibration.hpp"

namespace hars {

std::vector<PerfTarget> resolve_scenario_targets(const ExperimentSpec& spec,
                                                 const Scenario& scenario) {
  std::vector<PerfTarget> targets;
  const auto spawns = scenario.spawns();
  targets.reserve(spawns.size());
  for (std::size_t i = 0; i < spawns.size(); ++i) {
    const ScenarioSpawn& spawn = spawns[i]->spawn;
    if (spawn.target) {
      targets.push_back(*spawn.target);
      continue;
    }
    const int threads = spawn.threads > 0 ? spawn.threads : spec.threads;
    const Calibration cal = calibrate_benchmark(spec.platform, *spawn.bench,
                                                threads, spec.seed + i);
    const double fraction =
        spawn.fraction ? *spawn.fraction : spec.target_fraction;
    targets.push_back(cal.target_for_fraction(fraction));
  }
  return targets;
}

ScenarioRuntime::ScenarioRuntime(const Scenario& scenario, SimEngine& engine,
                                 const ExperimentSpec& spec,
                                 std::vector<PerfTarget> targets)
    : scenario_(scenario), engine_(engine), backend_(engine), spec_(spec) {
  const auto spawns = scenario_.spawns();
  slots_.reserve(spawns.size());
  for (std::size_t i = 0; i < spawns.size(); ++i) {
    ScenarioAppSlot slot;
    slot.label = spawns[i]->app;
    slot.spawn_event = spawns[i];
    slot.target = targets[i];
    slot.threads = spawns[i]->spawn.threads > 0 ? spawns[i]->spawn.threads
                                                : spec_.threads;
    slots_.push_back(std::move(slot));
  }
}

void ScenarioRuntime::spawn_slot(std::size_t slot_index, TimeUs now) {
  ScenarioAppSlot& slot = slots_[slot_index];
  slot.app = make_parsec_app(*slot.spawn_event->spawn.bench, slot.threads,
                             spec_.seed + slot_index);
  slot.id = engine_.add_app(slot.app.get());
  slot.app->heartbeats().set_target(slot.target);
  slot.spawn_time = now;
  slot.spawned = true;
  slot.alive = true;
  if (variant_ != nullptr) variant_->on_app_spawn(slot.id, slot.target);
}

void ScenarioRuntime::spawn_initial() {
  // validate() guarantees every t = 0 event is a spawn.
  std::size_t spawn_index = 0;
  while (next_event_ < scenario_.events.size() &&
         scenario_.events[next_event_].time <= 0) {
    spawn_slot(spawn_index++, 0);
    ++next_event_;
  }
}

ScenarioAppSlot& ScenarioRuntime::slot_of(const std::string& label) {
  for (ScenarioAppSlot& slot : slots_) {
    if (slot.label == label) return slot;
  }
  throw ScenarioError("runtime: unknown app \"" + label + "\"");
}

void ScenarioRuntime::dispatch(const ScenarioEvent& event, TimeUs now) {
  switch (event.kind) {
    case ScenarioEventKind::kSpawn: {
      // Slot index = position among spawns (validate() forbids dup ids).
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].spawn_event == &event) {
          spawn_slot(i, now);
          return;
        }
      }
      throw ScenarioError("runtime: spawn event without slot");
    }
    case ScenarioEventKind::kKill: {
      ScenarioAppSlot& slot = slot_of(event.app);
      if (!slot.alive) return;
      if (variant_ != nullptr) variant_->on_app_kill(slot.id);
      engine_.remove_app(slot.id);
      slot.alive = false;
      slot.depart_time = now;
      return;
    }
    case ScenarioEventKind::kSetTarget: {
      ScenarioAppSlot& slot = slot_of(event.app);
      if (!slot.alive) return;
      slot.target = event.target;
      slot.app->heartbeats().set_target(event.target);
      if (variant_ != nullptr) variant_->on_app_target(slot.id, event.target);
      return;
    }
    case ScenarioEventKind::kSetPhase: {
      ScenarioAppSlot& slot = slot_of(event.app);
      if (!slot.alive) return;
      slot.app->set_phase_scale(event.phase_scale);
      return;
    }
    case ScenarioEventKind::kOfflineCores: {
      const Machine& m = engine_.machine();
      backend_.set_online_mask(m.online_mask() & ~event.cores);
      return;
    }
    case ScenarioEventKind::kOnlineCores: {
      const Machine& m = engine_.machine();
      backend_.set_online_mask(m.online_mask() | event.cores);
      return;
    }
  }
}

void ScenarioRuntime::on_tick(TimeUs now) {
  bool dispatched = false;
  while (next_event_ < scenario_.events.size() &&
         scenario_.events[next_event_].time <= now) {
    dispatch(scenario_.events[next_event_], now);
    ++next_event_;
    dispatched = true;
  }
  // Spawn/kill/hotplug events mutate engine tables mid-run; re-check the
  // tick-boundary-safe conservation invariants right after dispatching.
  if (dispatched && engine_.audit_enabled()) engine_.audit_now();
  if (capture_ != nullptr &&
      tick_index_ % capture_->sample_every_ticks() == 0) {
    sample(now);
  }
  ++tick_index_;
}

void ScenarioRuntime::finish(TimeUs now) {
  if (capture_ != nullptr) sample(now);
}

void ScenarioRuntime::sample(TimeUs now) {
  const Machine& m = engine_.machine();
  const CpuMask online = m.online_mask();
  for (const ScenarioAppSlot& slot : slots_) {
    if (!slot.alive) continue;
    // The app's allocated cores: the union of its threads' affinities,
    // intersected with the online mask, split by the managed pools.
    CpuMask allowed;
    for (const SimThread& t : engine_.threads()) {
      if (t.app == slot.id) allowed = allowed | t.affinity;
    }
    allowed = allowed & online;
    const HeartbeatMonitor& hb = slot.app->heartbeats();
    Record r;
    r.set("kind", "sample");
    r.set("t_us", static_cast<std::int64_t>(now));
    r.set("app", slot.label);
    r.set("beats", hb.count());
    r.set("hps", hb.rate());
    r.set("target_min", slot.target.min);
    r.set("target_max", slot.target.max);
    r.set("big_cores", (allowed & m.fastest_mask()).count());
    r.set("little_cores", (allowed & m.slowest_mask()).count());
    r.set("big_freq_ghz", m.freq_ghz(m.fastest_cluster()));
    r.set("little_freq_ghz", m.freq_ghz(m.slowest_cluster()));
    r.set("online", online.count());
    r.set("power_w", engine_.sensor().instantaneous_power_w());
    capture_->write(r);
  }
}

std::vector<AppId> ScenarioRuntime::initial_ids() const {
  std::vector<AppId> ids;
  for (const ScenarioAppSlot& slot : slots_) {
    if (slot.spawned && slot.spawn_event->time <= 0) ids.push_back(slot.id);
  }
  return ids;
}

std::vector<PerfTarget> ScenarioRuntime::initial_targets() const {
  std::vector<PerfTarget> targets;
  for (const ScenarioAppSlot& slot : slots_) {
    if (slot.spawned && slot.spawn_event->time <= 0) {
      targets.push_back(slot.target);
    }
  }
  return targets;
}

}  // namespace hars
