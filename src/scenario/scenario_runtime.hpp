// ScenarioRuntime: binds a Scenario to one live run.
//
// Installed as the SimEngine's tick hook by Experiment::run(), it owns
// every scenario application (the engine is non-owning), dispatches due
// events at each tick boundary — spawn (create app, add to engine, set
// target, notify the variant), kill (notify the variant, reclaim the
// app's threads), set_target / set_phase / hotplug — and, when a
// TraceSink is attached, samples the per-app state on the configured
// cadence. Dispatch order is event order; an event at time t is applied
// at the first tick boundary with start >= t, so its effect is visible to
// that whole tick.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/sim_backend.hpp"
#include "exp/experiment.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace_sink.hpp"

namespace hars {

/// One spawn of the scenario and the application it materialized. Slots
/// exist for every spawn (in scenario order, which defines the seed
/// offset) — apps not yet arrived have id == -1.
struct ScenarioAppSlot {
  std::string label;               ///< Scenario app id.
  const ScenarioEvent* spawn_event = nullptr;
  std::unique_ptr<App> app;        ///< Owned; outlives engine removal.
  AppId id = -1;                   ///< Engine id once spawned.
  PerfTarget target;               ///< Current target.
  int threads = 0;                 ///< Resolved thread count.
  TimeUs spawn_time = 0;
  TimeUs depart_time = -1;         ///< -1: alive at run end.
  bool spawned = false;
  bool alive = false;
};

/// Per-spawn target resolution (spawn order): an explicit window wins;
/// otherwise fraction (spawn's or the spec default) of the standalone
/// calibrated maximum on the spec's platform, seeded like the app itself.
std::vector<PerfTarget> resolve_scenario_targets(const ExperimentSpec& spec,
                                                 const Scenario& scenario);

class ScenarioRuntime {
 public:
  /// `targets` are resolve_scenario_targets() results (spawn order).
  ScenarioRuntime(const Scenario& scenario, SimEngine& engine,
                  const ExperimentSpec& spec, std::vector<PerfTarget> targets);

  /// Spawns every t = 0 app. Call once, before creating the variant (the
  /// factories expect the initial apps registered).
  void spawn_initial();

  void attach_variant(VariantInstance* variant) { variant_ = variant; }
  void attach_capture(TraceSink* sink) { capture_ = sink; }

  /// The SimEngine tick hook: dispatches due events, then samples.
  void on_tick(TimeUs now);

  /// Samples the final state at run end (always, regardless of cadence).
  void finish(TimeUs now);

  /// Engine ids / targets of the t = 0 apps, in spawn order (the
  /// VariantSetup the factories see).
  std::vector<AppId> initial_ids() const;
  std::vector<PerfTarget> initial_targets() const;

  const std::vector<ScenarioAppSlot>& slots() const { return slots_; }

 private:
  void dispatch(const ScenarioEvent& event, TimeUs now);
  void spawn_slot(std::size_t slot_index, TimeUs now);
  ScenarioAppSlot& slot_of(const std::string& label);
  void sample(TimeUs now);

  const Scenario& scenario_;
  SimEngine& engine_;
  /// Platform mutations (hotplug events) go through the HAL so the obs
  /// counters see them; SimBackend forwards 1:1 to the engine.
  SimBackend backend_;
  const ExperimentSpec& spec_;
  VariantInstance* variant_ = nullptr;
  TraceSink* capture_ = nullptr;
  std::vector<ScenarioAppSlot> slots_;  ///< One per spawn, scenario order.
  std::size_t next_event_ = 0;          ///< Cursor into scenario_.events.
  std::int64_t tick_index_ = 0;
};

}  // namespace hars
