#include "scenario/shrink.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace hars {

namespace {

bool is_valid(const Scenario& s) {
  try {
    s.validate();
    return true;
  } catch (const ScenarioError&) {
    return false;
  }
}

/// Indices of events that can be dropped individually without orphaning
/// anything: every non-spawn event. Spawns only leave via whole-app
/// drops, which also remove their kills / retargets / phase flips.
std::vector<std::size_t> droppable_indices(const Scenario& s) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (s.events[i].kind != ScenarioEventKind::kSpawn) out.push_back(i);
  }
  return out;
}

std::vector<std::string> app_ids(const Scenario& s) {
  std::vector<std::string> out;
  for (const ScenarioEvent& e : s.events) {
    if (e.kind == ScenarioEventKind::kSpawn) out.push_back(e.app);
  }
  return out;
}

}  // namespace

Scenario shrink_scenario(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails,
    const ShrinkOptions& options, ShrinkStats* stats) {
  Scenario current = failing;
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st = ShrinkStats{};

  // Accepts `candidate` as the new current scenario when it is a real
  // reduction, still a valid scenario, and still failing.
  const auto try_accept = [&](Scenario candidate) {
    if (st.attempts >= options.max_attempts) return false;
    if (candidate == current || !is_valid(candidate)) return false;
    ++st.attempts;
    if (!still_fails(candidate)) return false;
    ++st.accepted;
    current = std::move(candidate);
    return true;
  };

  const auto budget_left = [&] { return st.attempts < options.max_attempts; };

  bool improved = true;
  while (improved && budget_left()) {
    improved = false;
    ++st.rounds;

    // 1. Drop whole apps (spawn + every dependent event).
    for (const std::string& id : app_ids(current)) {
      if (!budget_left()) break;
      Scenario candidate = current;
      candidate.events.erase(
          std::remove_if(candidate.events.begin(), candidate.events.end(),
                         [&](const ScenarioEvent& e) { return e.app == id; }),
          candidate.events.end());
      if (try_accept(std::move(candidate))) improved = true;
    }

    // 2. Drop chunks of non-spawn events, ddmin-style: halves first,
    // then quarters, down to single events.
    std::size_t chunk = std::max<std::size_t>(
        droppable_indices(current).size() / 2, 1);
    while (chunk >= 1 && budget_left()) {
      std::size_t start = 0;
      while (budget_left()) {
        const std::vector<std::size_t> droppable = droppable_indices(current);
        if (start >= droppable.size()) break;
        const std::size_t end = std::min(start + chunk, droppable.size());
        Scenario candidate;
        candidate.name = current.name;
        for (std::size_t i = 0; i < current.events.size(); ++i) {
          const bool dropped =
              std::find(droppable.begin() + static_cast<std::ptrdiff_t>(start),
                        droppable.begin() + static_cast<std::ptrdiff_t>(end),
                        i) != droppable.begin() + static_cast<std::ptrdiff_t>(end);
          if (!dropped) candidate.events.push_back(current.events[i]);
        }
        if (try_accept(std::move(candidate))) {
          improved = true;  // Indices shifted; retry from the same start.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }

    // 3. Halve every event time (shorter repro horizon). Times stay
    // strictly positive for non-initial events so t=0 keeps its
    // reserved meaning and the initial-app count is unchanged.
    {
      Scenario candidate = current;
      for (ScenarioEvent& e : candidate.events) {
        if (e.time > 0) e.time = std::max<TimeUs>(e.time / 2, 1);
      }
      if (try_accept(std::move(candidate))) improved = true;
    }

    // 4. Simplify payloads event by event: default thread counts and
    // targets, nominal phase scales, single-core hotplug masks.
    for (std::size_t i = 0; i < current.events.size() && budget_left(); ++i) {
      const ScenarioEvent& e = current.events[i];
      std::vector<ScenarioEvent> simpler;
      if (e.kind == ScenarioEventKind::kSpawn) {
        if (e.spawn.threads != 0) {
          simpler.push_back(e);
          simpler.back().spawn.threads = 0;
        }
        if (e.spawn.fraction) {
          simpler.push_back(e);
          simpler.back().spawn.fraction.reset();
        }
        if (e.spawn.target) {
          simpler.push_back(e);
          simpler.back().spawn.target.reset();
        }
      } else if (e.kind == ScenarioEventKind::kSetPhase &&
                 e.phase_scale != 1.0) {
        simpler.push_back(e);
        simpler.back().phase_scale = 1.0;
      } else if ((e.kind == ScenarioEventKind::kOfflineCores ||
                  e.kind == ScenarioEventKind::kOnlineCores) &&
                 e.cores.count() > 1) {
        simpler.push_back(e);
        CpuMask single;
        single.set(e.cores.first());
        simpler.back().cores = single;
      }
      for (ScenarioEvent& variant_event : simpler) {
        if (!budget_left()) break;
        Scenario candidate = current;
        candidate.events[i] = variant_event;
        if (try_accept(std::move(candidate))) {
          improved = true;
          break;  // `e` is dangling relative to the new current.
        }
      }
    }
  }
  return current;
}

}  // namespace hars
