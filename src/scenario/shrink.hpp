// Scenario shrinking: reduce a failing scenario to a minimal repro.
//
// Given a scenario and a predicate that re-checks the failure (typically
// a full oracle run: audits + AllocGuard + invariants, or an injected
// synthetic bug), shrink_scenario greedily applies reductions — drop
// whole apps, drop event chunks (ddmin-style halving), halve event
// times, simplify spawn payloads and core masks — keeping a candidate
// only when it is still a valid Scenario AND the predicate still fails.
// The result is the smallest failing scenario the budget found; it is
// what hars_fuzz writes into the corpus as a repro.
#pragma once

#include <functional>

#include "scenario/scenario.hpp"

namespace hars {

struct ShrinkOptions {
  /// Budget of predicate evaluations (each one typically a sim run).
  int max_attempts = 400;
};

struct ShrinkStats {
  int attempts = 0;  ///< Predicate evaluations spent.
  int accepted = 0;  ///< Reductions that kept the failure.
  int rounds = 0;    ///< Full passes over the transformation set.
};

/// Shrinks `failing` under `still_fails`. The caller has already
/// established still_fails(failing); the function never returns a
/// scenario for which the predicate did not hold. Deterministic: no
/// randomness, candidate order is fixed.
Scenario shrink_scenario(const Scenario& failing,
                         const std::function<bool(const Scenario&)>& still_fails,
                         const ShrinkOptions& options = {},
                         ShrinkStats* stats = nullptr);

}  // namespace hars
