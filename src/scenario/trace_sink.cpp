#include "scenario/trace_sink.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/experiment.hpp"
#include "hmp/platform_registry.hpp"
#include "scenario/scenario.hpp"

namespace hars {

TraceSink::TraceSink(int sample_every_ticks)
    : sample_ticks_(sample_every_ticks < 1 ? 1 : sample_every_ticks),
      jsonl_(buffer_) {}

void TraceSink::write_meta(const TraceMeta& meta) {
  if (PlatformRegistry::instance().find(meta.platform) == nullptr) {
    throw ScenarioError(
        "trace capture needs a registry platform for replay; \"" +
        meta.platform + "\" is not registered");
  }
  Record r;
  r.set("kind", "meta");
  r.set("scenario", meta.scenario_dsl);
  r.set("platform", meta.platform);
  r.set("variant", meta.variant);
  r.set("seed", std::to_string(meta.seed));  // Text: exact 64-bit value.
  r.set("threads", meta.threads);
  r.set("duration_us", static_cast<std::int64_t>(meta.duration_us));
  r.set("fraction", meta.fraction);
  r.set("sample_ticks", meta.sample_ticks);
  jsonl_.write(r);
}

void TraceSink::write(const Record& record) {
  jsonl_.write(record);
  if (record.text("kind") == "sample") samples_.push_back(record);
}

bool TraceSink::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << bytes();
  return out.good();
}

namespace {

[[noreturn]] void bad_meta(const std::string& why) {
  throw ScenarioError("trace meta: " + why);
}

/// Inverse of json_escape for the escapes it emits.
std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) bad_meta("dangling escape");
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) bad_meta("truncated \\u escape");
        const std::string hex(s.substr(i + 1, 4));
        out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
        i += 4;
        break;
      }
      default: bad_meta("unknown escape");
    }
  }
  return out;
}

/// Value of "key" in a flat one-line JSON object written by JsonlSink.
/// Returns the *raw* value token (quotes stripped, still escaped for
/// strings); `found` reports presence.
std::string raw_value(const std::string& line, const std::string& key,
                      bool* is_string, bool* found) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while (true) {
    pos = line.find(needle, pos);
    if (pos == std::string::npos) {
      *found = false;
      return {};
    }
    // Reject needle matches inside a value: the char before must be
    // '{' or ',' (JsonlSink never emits spaces between cells).
    if (pos > 0 && (line[pos - 1] == '{' || line[pos - 1] == ',')) break;
    pos += needle.size();
  }
  *found = true;
  std::size_t v = pos + needle.size();
  if (v < line.size() && line[v] == '"') {
    *is_string = true;
    std::size_t end = v + 1;
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
        continue;
      }
      if (line[end] == '"') break;
      ++end;
    }
    if (end >= line.size()) bad_meta("unterminated string for " + key);
    return line.substr(v + 1, end - v - 1);
  }
  *is_string = false;
  std::size_t end = v;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(v, end - v);
}

std::string meta_string(const std::string& line, const std::string& key) {
  bool is_string = false;
  bool found = false;
  const std::string raw = raw_value(line, key, &is_string, &found);
  if (!found || !is_string) bad_meta("missing string field \"" + key + "\"");
  return json_unescape(raw);
}

double meta_number(const std::string& line, const std::string& key) {
  bool is_string = false;
  bool found = false;
  const std::string raw = raw_value(line, key, &is_string, &found);
  if (!found || is_string) bad_meta("missing numeric field \"" + key + "\"");
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    bad_meta("malformed number for \"" + key + "\"");
  }
  return v;
}

}  // namespace

TraceMeta parse_trace_meta(const std::string& meta_line) {
  if (meta_line.empty() || meta_line.front() != '{') {
    bad_meta("first line is not a JSON object");
  }
  if (meta_string(meta_line, "kind") != "meta") {
    bad_meta("first line is not a meta record");
  }
  TraceMeta meta;
  meta.scenario_dsl = meta_string(meta_line, "scenario");
  meta.platform = meta_string(meta_line, "platform");
  meta.variant = meta_string(meta_line, "variant");
  meta.seed = std::strtoull(meta_string(meta_line, "seed").c_str(), nullptr, 10);
  meta.threads = static_cast<int>(meta_number(meta_line, "threads"));
  meta.duration_us = static_cast<TimeUs>(meta_number(meta_line, "duration_us"));
  meta.fraction = meta_number(meta_line, "fraction");
  meta.sample_ticks = static_cast<int>(meta_number(meta_line, "sample_ticks"));
  return meta;
}

ReplayOutcome replay_trace(const std::string& bytes) {
  const std::size_t eol = bytes.find('\n');
  if (eol == std::string::npos) bad_meta("capture has no meta line");
  const TraceMeta meta = parse_trace_meta(bytes.substr(0, eol));

  std::istringstream dsl(meta.scenario_dsl);
  const Scenario scenario = Scenario::from_stream(dsl);

  TraceSink sink(meta.sample_ticks);
  ExperimentBuilder builder;
  builder.platform(std::string_view(meta.platform))
      .scenario(scenario)
      .variant(meta.variant)
      .seed(meta.seed)
      .threads(meta.threads)
      .duration(meta.duration_us)
      .target_fraction(meta.fraction)
      .capture(sink);
  try {
    (void)builder.build().run();
  } catch (const ExperimentConfigError& error) {
    throw ScenarioError(std::string("replay cannot re-run capture: ") +
                        error.what());
  }

  const std::string replayed = sink.bytes();
  if (replayed == bytes) return ReplayOutcome{true, "replay is bit-identical"};

  // Locate the first diverging line for the report.
  std::istringstream a(bytes);
  std::istringstream b(replayed);
  std::string la;
  std::string lb;
  int line_no = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    ++line_no;
    if (!ga && !gb) break;
    if (la != lb || ga != gb) {
      return ReplayOutcome{
          false, "replay diverges at line " + std::to_string(line_no) +
                     ":\n  captured: " + (ga ? la : "<eof>") +
                     "\n  replayed: " + (gb ? lb : "<eof>")};
    }
  }
  return ReplayOutcome{false, "replay diverges (byte-level difference)"};
}

ReplayOutcome replay_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return replay_trace(buffer.str());
}

}  // namespace hars
