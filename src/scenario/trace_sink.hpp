// TraceSink: deterministic scenario trace capture and bit-exact replay.
//
// A capture is a JSONL stream (schema in docs/FILE_FORMATS.md):
//   line 1            {"kind":"meta", ...}     — everything needed to
//                     re-run the experiment: the scenario serialized to
//                     its DSL, platform/variant names, seed, threads,
//                     duration, target fraction and the sample cadence;
//   then per sample   {"kind":"sample", ...}   — per-app state at a tick
//                     boundary (windowed rate, beats, target, allocated
//                     cores, cluster frequencies, online cores, power);
//   finally per app   {"kind":"metrics", ...}  — the run's final metrics.
//
// Numbers are written with format_number (shortest round-trip decimals),
// so the byte stream is a canonical function of the simulation: replaying
// the meta line MUST reproduce the remaining bytes exactly. replay_trace
// re-runs a capture and asserts exactly that — the golden scenario
// regression in tests/scenario/replay_test.cpp and `hars_sim --replay`.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/result_sink.hpp"
#include "util/common.hpp"

namespace hars {

/// The re-run recipe embedded in a capture's first line. The platform is
/// carried by registry name: captures of unregistered ad-hoc platforms
/// cannot be replayed (write_meta throws ScenarioError).
struct TraceMeta {
  std::string scenario_dsl;  ///< Scenario::to_dsl() of the scenario.
  std::string platform;      ///< PlatformRegistry name.
  std::string variant;       ///< VariantRegistry name.
  std::uint64_t seed = 1;
  int threads = 8;
  TimeUs duration_us = 0;
  double fraction = 0.5;     ///< Default derived-target fraction.
  int sample_ticks = 1;      ///< Trace cadence in engine ticks.
};

class TraceSink {
 public:
  /// `sample_every_ticks` thins the per-tick sampling (1 = every tick);
  /// the run's final state is always sampled.
  explicit TraceSink(int sample_every_ticks = 1);

  int sample_every_ticks() const { return sample_ticks_; }

  /// Writes the meta line; must come first. Throws ScenarioError when the
  /// platform is not resolvable by name (replay would be impossible).
  void write_meta(const TraceMeta& meta);

  /// Appends one record (the runtime builds sample records, the
  /// experiment pipeline the final metrics records).
  void write(const Record& record);

  /// Structured copies of the "sample" records, for analysis (e.g. the
  /// scenario suite's adaptation-latency metric).
  const std::vector<Record>& samples() const { return samples_; }

  /// The full capture (JSONL bytes) accumulated so far.
  std::string bytes() const { return buffer_.str(); }

  /// Writes bytes() to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  int sample_ticks_;
  std::ostringstream buffer_;
  JsonlSink jsonl_;
  std::vector<Record> samples_;
};

/// Parses a capture's meta line (exact inverse of write_meta; also used
/// by tools/docs_check to validate the checked-in example). Throws
/// ScenarioError on malformed input.
TraceMeta parse_trace_meta(const std::string& meta_line);

struct ReplayOutcome {
  bool ok = false;
  std::string message;  ///< On mismatch: where the streams first diverge.
};

/// Re-runs the capture in `bytes` from its meta line and compares the
/// regenerated capture byte-for-byte. Throws ScenarioError when the
/// capture cannot be re-run at all (bad meta, unknown platform/variant).
ReplayOutcome replay_trace(const std::string& bytes);

/// Reads `path` and replays it.
ReplayOutcome replay_trace_file(const std::string& path);

}  // namespace hars
