#include "sched/gts.hpp"

#include <algorithm>
#include <vector>

namespace hars {

GtsScheduler::GtsScheduler(GtsConfig config) : config_(config) {}

void GtsScheduler::assign(const Machine& machine, std::vector<SimThread>& threads) {
  const CpuMask online = machine.online_mask();
  // GTS is a two-tier policy: the "little" down-migration tier is the
  // slowest cluster, the "big" up-migration tier is everything faster.
  // On two-cluster big.LITTLE parts this is exactly the big cluster; on
  // N-cluster machines high-load threads may use every non-slowest
  // cluster instead of stacking on the single fastest one.
  const CpuMask little = machine.slowest_mask();
  const CpuMask big = machine.all_mask() & ~little;

  // Number of runnable threads currently packed on each core; rebuilt each
  // tick as we (re)place threads.
  std::vector<int> core_load(static_cast<std::size_t>(machine.num_cores()), 0);

  auto pick_least_loaded = [&](CpuMask candidates, CoreId prefer) -> CoreId {
    CoreId best = -1;
    int best_load = INT32_MAX;
    for (CoreId c = candidates.first(); c >= 0; c = candidates.next(c)) {
      const int load = core_load[static_cast<std::size_t>(c)];
      // Strictly-better wins; the preferred (current) core wins ties.
      if (load < best_load || (load == best_load && c == prefer)) {
        best = c;
        best_load = load;
      }
    }
    return best;
  };

  for (SimThread& t : threads) {
    if (!t.runnable) {
      // Sleeping threads keep their last core for stickiness but occupy
      // no capacity.
      continue;
    }

    CpuMask allowed = t.affinity & online;
    if (allowed.empty()) allowed = online;  // Linux falls back to all online.

    // GTS tier selection by load thresholds, constrained by affinity.
    CpuMask preferred = allowed;
    const double load = t.load.value();
    if (load >= config_.up_threshold) {
      const CpuMask big_allowed = allowed & big;
      if (big_allowed.any()) preferred = big_allowed;
    } else if (load <= config_.down_threshold) {
      const CpuMask little_allowed = allowed & little;
      if (little_allowed.any()) preferred = little_allowed;
    } else if (t.core >= 0 && allowed.test(t.core)) {
      // Between thresholds: stay in the current cluster if possible.
      const CpuMask same_cluster = allowed & machine.cluster_mask(machine.cluster_of(t.core));
      if (same_cluster.any()) preferred = same_cluster;
    }

    const CoreId target = pick_least_loaded(preferred, t.core);
    if (target < 0) continue;  // No online core at all; cannot happen with cpu0 pinned online.
    if (t.core != target) {
      if (t.core >= 0) ++t.migrations;
      t.core = target;
    }
    ++core_load[static_cast<std::size_t>(target)];
  }

  if (!config_.idle_pull) return;

  // EAS-style idle balancing: every idle online core pulls one runnable
  // thread from the most crowded core that the thread's affinity permits.
  for (CoreId idle = online.first(); idle >= 0; idle = online.next(idle)) {
    if (core_load[static_cast<std::size_t>(idle)] != 0) continue;
    SimThread* victim = nullptr;
    int victim_load = 1;  // Only steal from cores with >= 2 runnable threads.
    for (SimThread& t : threads) {
      if (!t.runnable || t.core < 0 || t.core == idle) continue;
      const int load = core_load[static_cast<std::size_t>(t.core)];
      if (load <= victim_load) continue;
      CpuMask allowed = t.affinity & online;
      if (allowed.empty()) allowed = online;
      if (!allowed.test(idle)) continue;
      victim = &t;
      victim_load = load;
    }
    if (victim == nullptr) continue;
    --core_load[static_cast<std::size_t>(victim->core)];
    victim->core = idle;
    ++victim->migrations;
    ++core_load[static_cast<std::size_t>(idle)];
  }
}

}  // namespace hars
