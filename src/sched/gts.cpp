#include "sched/gts.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "util/alloc_guard.hpp"
#include "util/hot_path.hpp"

namespace hars {

GtsScheduler::GtsScheduler(GtsConfig config) : config_(config) {}

void GtsScheduler::prime_topology(const Machine& machine) {
  allocg::AllowScope allow("GTS topology cache (machine swap only)");
  cached_machine_ = &machine;
  little_cache_ = machine.slowest_mask();
  big_cache_ = machine.all_mask() & ~little_cache_;
  core_cluster_mask_.resize(static_cast<std::size_t>(machine.num_cores()));
  for (CoreId c = 0; c < machine.num_cores(); ++c) {
    core_cluster_mask_[static_cast<std::size_t>(c)] =
        machine.cluster_mask(machine.cluster_of(c));
  }
  // A machine swap also invalidates any recorded placement signature.
  sig_valid_ = false;
}

HARS_HOT void GtsScheduler::assign(const Machine& machine,
                                   std::vector<SimThread>& threads) {
  if (config_.reference) {
    assign_reference(machine, threads);
    return;
  }
  if (cached_machine_ != &machine) prime_topology(machine);
  obs::counter_add(obs::catalog().gts_assign_calls);
  const CpuMask online = machine.online_mask();
  const CpuMask little = little_cache_;
  const CpuMask big = big_cache_;

  // Stable-placement skip: the current placement is a fixed point and no
  // decision input changed, so a full run would reproduce it exactly.
  auto tier_of = [&](const SimThread& t) -> std::uint8_t {
    const double load = t.load.value();
    if (load >= config_.up_threshold) return 0;
    if (load <= config_.down_threshold) return 1;
    return 2;
  };
  if (!config_.idle_pull && sig_valid_ && last_stable_ &&
      online.bits() == prev_online_bits_ &&
      threads.size() == prev_sig_.size()) {
    bool same = true;
    for (std::size_t i = 0; i < threads.size(); ++i) {
      const SimThread& t = threads[i];
      const ThreadSig& sig = prev_sig_[i];
      // An unplaced runnable thread (fresh spawn reusing this index)
      // always needs a full run — it is not part of any fixed point —
      // and so does any thread-identity change (kill + spawn can restore
      // the same table size with every index reshuffled).
      if (t.id != sig.id || t.runnable != sig.runnable ||
          t.affinity.bits() != sig.affinity || tier_of(t) != sig.tier ||
          (t.runnable && t.core < 0)) {
        same = false;
        break;
      }
    }
    if (same) {
      // core_load_ from the last full run still holds.
      obs::counter_add(obs::catalog().gts_assign_skips);
      return;
    }
  }

  // Number of runnable threads currently packed on each core; reused
  // across calls (pre-sized once) and rebuilt as we (re)place threads.
  // Capacity is retained, so these only allocate when the machine or the
  // thread table grows.
  {
    allocg::AllowScope allow("GTS scratch growth");
    core_load_.assign(static_cast<std::size_t>(machine.num_cores()), 0);
    prev_sig_.resize(threads.size());  // hars-lint: allow(no-alloc): retained capacity
  }
  prev_online_bits_ = online.bits();
  sig_valid_ = true;
  bool moved_any = false;

  auto pick_least_loaded = [&](CpuMask candidates, CoreId prefer) -> CoreId {
    // One candidate: it wins regardless of load (frequent under manager
    // pinning, where per-thread masks shrink to a core or two).
    const std::uint64_t bits = candidates.bits();
    if ((bits & (bits - 1)) == 0) {
      return bits == 0 ? -1 : std::countr_zero(bits);
    }
    // Clear-lowest-bit iteration visits the same cores in the same
    // ascending order as first()/next(), a few ops cheaper per core.
    CoreId best = -1;
    int best_load = INT32_MAX;
    for (std::uint64_t rest = bits; rest != 0; rest &= rest - 1) {
      const CoreId c = std::countr_zero(rest);
      const int load = core_load_[static_cast<std::size_t>(c)];
      // Strictly-better wins; the preferred (current) core wins ties.
      if (load < best_load || (load == best_load && c == prefer)) {
        best = c;
        best_load = load;
      }
    }
    return best;
  };

  for (std::size_t i = 0; i < threads.size(); ++i) {
    SimThread& t = threads[i];
    ThreadSig& sig = prev_sig_[i];
    sig.affinity = t.affinity.bits();
    sig.id = t.id;
    sig.runnable = t.runnable;
    sig.tier = tier_of(t);
    if (!t.runnable) {
      // Sleeping threads keep their last core for stickiness but occupy
      // no capacity.
      continue;
    }

    CpuMask allowed = t.affinity & online;
    if (allowed.empty()) allowed = online;  // Linux falls back to all online.

    // GTS tier selection by load thresholds, constrained by affinity.
    CpuMask preferred = allowed;
    if (sig.tier == 0) {
      const CpuMask big_allowed = allowed & big;
      if (big_allowed.any()) preferred = big_allowed;
    } else if (sig.tier == 1) {
      const CpuMask little_allowed = allowed & little;
      if (little_allowed.any()) preferred = little_allowed;
    } else if (t.core >= 0 && ((allowed.bits() >> t.core) & 1ULL) != 0) {
      // Between thresholds: stay in the current cluster if possible.
      const CpuMask same_cluster =
          allowed & core_cluster_mask_[static_cast<std::size_t>(t.core)];
      if (same_cluster.any()) preferred = same_cluster;
    }

    const CoreId target = pick_least_loaded(preferred, t.core);
    if (target < 0) continue;  // No online core at all; cannot happen with cpu0 pinned online.
    if (t.core != target) {
      if (t.core >= 0) {
        ++t.migrations;
        obs::counter_add(obs::catalog().migrations);
      }
      t.core = target;
      moved_any = true;
    }
    ++core_load_[static_cast<std::size_t>(target)];
  }
  last_stable_ = !moved_any;

  if (!config_.idle_pull) return;

  // A pull is only possible when some online core is idle AND some core
  // stacks two or more runnable threads; checking that first skips the
  // per-idle-core thread scans on the (common) balanced ticks without
  // changing any placement.
  bool any_idle = false;
  bool any_stacked = false;
  for (CoreId c = online.first(); c >= 0; c = online.next(c)) {
    const int load = core_load_[static_cast<std::size_t>(c)];
    any_idle |= load == 0;
    any_stacked |= load >= 2;
  }
  if (!any_idle || !any_stacked) return;

  // EAS-style idle balancing: every idle online core pulls one runnable
  // thread from the most crowded core that the thread's affinity permits.
  for (CoreId idle = online.first(); idle >= 0; idle = online.next(idle)) {
    if (core_load_[static_cast<std::size_t>(idle)] != 0) continue;
    SimThread* victim = nullptr;
    int victim_load = 1;  // Only steal from cores with >= 2 runnable threads.
    for (SimThread& t : threads) {
      if (!t.runnable || t.core < 0 || t.core == idle) continue;
      const int load = core_load_[static_cast<std::size_t>(t.core)];
      if (load <= victim_load) continue;
      CpuMask allowed = t.affinity & online;
      if (allowed.empty()) allowed = online;
      if (!allowed.test(idle)) continue;
      victim = &t;
      victim_load = load;
    }
    if (victim == nullptr) continue;
    --core_load_[static_cast<std::size_t>(victim->core)];
    victim->core = idle;
    ++victim->migrations;
    obs::counter_add(obs::catalog().migrations);
    ++core_load_[static_cast<std::size_t>(idle)];
    last_stable_ = false;
  }
}

// The retained reference body: identical placement decisions, with the
// original per-call scratch allocation and unconditional idle-pull scans.
void GtsScheduler::assign_reference(const Machine& machine,
                                    std::vector<SimThread>& threads) {
  const CpuMask online = machine.online_mask();
  // GTS is a two-tier policy: the "little" down-migration tier is the
  // slowest cluster, the "big" up-migration tier is everything faster.
  // On two-cluster big.LITTLE parts this is exactly the big cluster; on
  // N-cluster machines high-load threads may use every non-slowest
  // cluster instead of stacking on the single fastest one.
  const CpuMask little = machine.slowest_mask();
  const CpuMask big = machine.all_mask() & ~little;

  // Number of runnable threads currently packed on each core; rebuilt each
  // tick as we (re)place threads.
  std::vector<int> core_load(static_cast<std::size_t>(machine.num_cores()), 0);

  auto pick_least_loaded = [&](CpuMask candidates, CoreId prefer) -> CoreId {
    CoreId best = -1;
    int best_load = INT32_MAX;
    for (CoreId c = candidates.first(); c >= 0; c = candidates.next(c)) {
      const int load = core_load[static_cast<std::size_t>(c)];
      // Strictly-better wins; the preferred (current) core wins ties.
      if (load < best_load || (load == best_load && c == prefer)) {
        best = c;
        best_load = load;
      }
    }
    return best;
  };

  for (SimThread& t : threads) {
    if (!t.runnable) {
      // Sleeping threads keep their last core for stickiness but occupy
      // no capacity.
      continue;
    }

    CpuMask allowed = t.affinity & online;
    if (allowed.empty()) allowed = online;  // Linux falls back to all online.

    // GTS tier selection by load thresholds, constrained by affinity.
    CpuMask preferred = allowed;
    const double load = t.load.value();
    if (load >= config_.up_threshold) {
      const CpuMask big_allowed = allowed & big;
      if (big_allowed.any()) preferred = big_allowed;
    } else if (load <= config_.down_threshold) {
      const CpuMask little_allowed = allowed & little;
      if (little_allowed.any()) preferred = little_allowed;
    } else if (t.core >= 0 && allowed.test(t.core)) {
      // Between thresholds: stay in the current cluster if possible.
      const CpuMask same_cluster = allowed & machine.cluster_mask(machine.cluster_of(t.core));
      if (same_cluster.any()) preferred = same_cluster;
    }

    const CoreId target = pick_least_loaded(preferred, t.core);
    if (target < 0) continue;  // No online core at all; cannot happen with cpu0 pinned online.
    if (t.core != target) {
      if (t.core >= 0) ++t.migrations;
      t.core = target;
    }
    ++core_load[static_cast<std::size_t>(target)];
  }

  if (!config_.idle_pull) return;

  // EAS-style idle balancing: every idle online core pulls one runnable
  // thread from the most crowded core that the thread's affinity permits.
  for (CoreId idle = online.first(); idle >= 0; idle = online.next(idle)) {
    if (core_load[static_cast<std::size_t>(idle)] != 0) continue;
    SimThread* victim = nullptr;
    int victim_load = 1;  // Only steal from cores with >= 2 runnable threads.
    for (SimThread& t : threads) {
      if (!t.runnable || t.core < 0 || t.core == idle) continue;
      const int load = core_load[static_cast<std::size_t>(t.core)];
      if (load <= victim_load) continue;
      CpuMask allowed = t.affinity & online;
      if (allowed.empty()) allowed = online;
      if (!allowed.test(idle)) continue;
      victim = &t;
      victim_load = load;
    }
    if (victim == nullptr) continue;
    --core_load[static_cast<std::size_t>(victim->core)];
    victim->core = idle;
    ++victim->migrations;
    ++core_load[static_cast<std::size_t>(idle)];
  }
}

}  // namespace hars
