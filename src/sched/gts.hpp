// Global Task Scheduling (GTS) model — the Linux HMP scheduler the paper's
// baseline runs under (kernel 3.10 + big.LITTLE MP patches).
//
// Behavioural contract reproduced from the paper (§2.1, §4.1.1):
//  * per-thread load averages with an *up* migration threshold (little->big
//    when load exceeds it) and a *down* threshold (big->little when load
//    falls below it);
//  * consequence: concurrently running CPU-intensive threads all collect on
//    the big cluster and time-share it while the little cluster idles —
//    the inefficiency HARS exploits;
//  * affinity masks (sched_setaffinity) are honoured, which is exactly how
//    HARS pins threads to its chosen core allocation;
//  * within the permitted cores, threads are balanced to the least-loaded
//    core, preferring the current core on ties (stickiness).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace hars {

struct GtsConfig {
  double up_threshold = 0.80;    ///< little -> big when load_avg above.
  double down_threshold = 0.30;  ///< big -> little when load_avg below.
  /// Idle-pull spill-over: when true, an idle online core steals a
  /// runnable thread from a core packing two or more, across clusters.
  /// Models the fine-grain inter-cluster balancing of later schedulers
  /// (EAS-style; thesis §3.1.4 option 3 / related work [9]) — stock GTS
  /// does NOT do this (§4.1.1), which is the paper's baseline critique.
  bool idle_pull = false;
  /// Runs the retained per-call-allocating assign() body instead of the
  /// scratch-reusing one. Placement is bit-identical either way; the flag
  /// exists for bench/tick_bench's reference measurement.
  bool reference = false;
};

class GtsScheduler final : public Scheduler {
 public:
  explicit GtsScheduler(GtsConfig config = {});

  void assign(const Machine& machine, std::vector<SimThread>& threads) override;

  /// The scratch-path core loads double as the engine's runnable-thread
  /// counts (reference mode opts out so the reference engine path keeps
  /// doing its own counting pass, as it always did).
  const std::vector<int>* runnable_per_core() const override {
    return config_.reference ? nullptr : &core_load_;
  }

  const char* name() const override { return "gts"; }

  const GtsConfig& config() const { return config_; }

 private:
  void assign_reference(const Machine& machine,
                        std::vector<SimThread>& threads);
  /// Rebuilds the immutable-topology caches when first seeing `machine`.
  void prime_topology(const Machine& machine);

  GtsConfig config_;
  std::vector<int> core_load_;  ///< Per-call scratch, pre-sized once.

  // Stable-placement skip (scratch path, idle_pull off): when the last
  // full run migrated nothing (the placement was already a fixed point of
  // the deterministic policy) and every per-thread decision input —
  // runnable, load tier, affinity — plus the online mask is unchanged,
  // re-running the policy provably reproduces the current placement, so
  // assign() returns early with core_load_ still valid.
  struct ThreadSig {
    std::uint64_t affinity = 0;
    ThreadId id = -1;  ///< Thread identity: a kill+spawn that restores the
                       ///< same table size must not match stale entries.
    std::uint8_t tier = 0;  ///< 0 = up, 1 = down, 2 = between thresholds.
    bool runnable = false;
  };
  std::vector<ThreadSig> prev_sig_;
  std::uint64_t prev_online_bits_ = 0;
  bool sig_valid_ = false;
  bool last_stable_ = false;  ///< Last full run placed without migrating.

  // Topology caches (immutable for a given machine; rebuilt whenever a
  // different Machine object is handed in — engines own their scheduler,
  // so in practice this primes once): the per-cluster masks and the
  // core -> cluster-mask map sit on the per-thread path.
  const Machine* cached_machine_ = nullptr;
  CpuMask little_cache_;
  CpuMask big_cache_;
  std::vector<CpuMask> core_cluster_mask_;  ///< Per core.
};

}  // namespace hars
