// Global Task Scheduling (GTS) model — the Linux HMP scheduler the paper's
// baseline runs under (kernel 3.10 + big.LITTLE MP patches).
//
// Behavioural contract reproduced from the paper (§2.1, §4.1.1):
//  * per-thread load averages with an *up* migration threshold (little->big
//    when load exceeds it) and a *down* threshold (big->little when load
//    falls below it);
//  * consequence: concurrently running CPU-intensive threads all collect on
//    the big cluster and time-share it while the little cluster idles —
//    the inefficiency HARS exploits;
//  * affinity masks (sched_setaffinity) are honoured, which is exactly how
//    HARS pins threads to its chosen core allocation;
//  * within the permitted cores, threads are balanced to the least-loaded
//    core, preferring the current core on ties (stickiness).
#pragma once

#include "sched/scheduler.hpp"

namespace hars {

struct GtsConfig {
  double up_threshold = 0.80;    ///< little -> big when load_avg above.
  double down_threshold = 0.30;  ///< big -> little when load_avg below.
  /// Idle-pull spill-over: when true, an idle online core steals a
  /// runnable thread from a core packing two or more, across clusters.
  /// Models the fine-grain inter-cluster balancing of later schedulers
  /// (EAS-style; thesis §3.1.4 option 3 / related work [9]) — stock GTS
  /// does NOT do this (§4.1.1), which is the paper's baseline critique.
  bool idle_pull = false;
};

class GtsScheduler final : public Scheduler {
 public:
  explicit GtsScheduler(GtsConfig config = {});

  void assign(const Machine& machine, std::vector<SimThread>& threads) override;

  const char* name() const override { return "gts"; }

  const GtsConfig& config() const { return config_; }

 private:
  GtsConfig config_;
};

}  // namespace hars
