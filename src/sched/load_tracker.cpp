#include "sched/load_tracker.hpp"

#include <cmath>

namespace hars {

LoadTracker::LoadTracker(TimeUs half_life_us) : half_life_us_(half_life_us) {}

double LoadTracker::decay_for(TimeUs tick_us) const {
  return std::exp2(-static_cast<double>(tick_us) /
                   static_cast<double>(half_life_us_));
}

void LoadTracker::update(bool runnable, TimeUs tick_us) {
  update_with_decay(runnable, decay_for(tick_us));
}

}  // namespace hars
