#include "sched/load_tracker.hpp"

#include <cmath>

namespace hars {

LoadTracker::LoadTracker(TimeUs half_life_us) : half_life_us_(half_life_us) {}

void LoadTracker::update(bool runnable, TimeUs tick_us) {
  const double decay =
      std::exp2(-static_cast<double>(tick_us) / static_cast<double>(half_life_us_));
  value_ = value_ * decay + (runnable ? 1.0 : 0.0) * (1.0 - decay);
}

}  // namespace hars
