// Per-thread load tracking, a simplified analogue of the kernel's
// per-entity load tracking that drives GTS migration decisions: an
// exponentially weighted moving average of the thread's runnable fraction.
#pragma once

#include "util/common.hpp"
#include "util/hot_path.hpp"

namespace hars {

class LoadTracker {
 public:
  /// `half_life_us` controls how quickly the average follows behaviour
  /// changes; the kernel's PELT half-life is ~32 ms.
  explicit LoadTracker(TimeUs half_life_us = 32 * kUsPerMs);

  /// Records one tick of `runnable` (1) or idle (0) behaviour.
  void update(bool runnable, TimeUs tick_us);

  /// The per-tick EWMA factor `update` derives from the tick length.
  /// Exposed so the engine can compute it once per tick instead of once
  /// per thread (exp2 dominates the update otherwise).
  double decay_for(TimeUs tick_us) const;

  /// Hot-path form of update(): `decay` must equal decay_for(tick_us) for
  /// this tracker, which makes the result bit-identical to update().
  HARS_HOT void update_with_decay(bool runnable, double decay) {
    // Exact fixed points, skipped bit-identically: 0 is always one
    // (0*d + 0*(1-d) == 0); 1 is one when d >= 1/2, where 1-d is exact
    // (Sterbenz) and d + (1-d) rounds to exactly 1.0.
    if (runnable ? (value_ == 1.0 && decay >= 0.5) : (value_ == 0.0)) return;
    value_ = value_ * decay + (runnable ? 1.0 : 0.0) * (1.0 - decay);
  }

  TimeUs half_life_us() const { return half_life_us_; }

  /// Current load average in [0, 1].
  double value() const { return value_; }

  /// Threads start "hot" so freshly spawned CPU-bound work migrates up
  /// immediately, as GTS does for forked tasks.
  void prime(double initial) { value_ = initial; }

 private:
  TimeUs half_life_us_;
  double value_ = 1.0;
};

}  // namespace hars
