// Per-thread load tracking, a simplified analogue of the kernel's
// per-entity load tracking that drives GTS migration decisions: an
// exponentially weighted moving average of the thread's runnable fraction.
#pragma once

#include "util/common.hpp"

namespace hars {

class LoadTracker {
 public:
  /// `half_life_us` controls how quickly the average follows behaviour
  /// changes; the kernel's PELT half-life is ~32 ms.
  explicit LoadTracker(TimeUs half_life_us = 32 * kUsPerMs);

  /// Records one tick of `runnable` (1) or idle (0) behaviour.
  void update(bool runnable, TimeUs tick_us);

  /// Current load average in [0, 1].
  double value() const { return value_; }

  /// Threads start "hot" so freshly spawned CPU-bound work migrates up
  /// immediately, as GTS does for forked tasks.
  void prime(double initial) { value_ = initial; }

 private:
  TimeUs half_life_us_;
  double value_ = 1.0;
};

}  // namespace hars
