// Scheduler interface between the simulation engine and OS-scheduler
// models. Each tick the engine hands the scheduler the thread table; the
// scheduler places every runnable thread on an online core permitted by
// its affinity mask.
#pragma once

#include <vector>

#include "hmp/cpu_mask.hpp"
#include "hmp/machine.hpp"
#include "sched/load_tracker.hpp"
#include "util/common.hpp"

namespace hars {

class App;

/// Mutable per-thread record owned by the simulation engine. Fields the
/// tick path touches every tick (affinity, core, runnable, load,
/// app_ptr, local_index) lead, so they share cache lines; bookkeeping
/// trails.
struct SimThread {
  CpuMask affinity;      ///< sched_setaffinity mask (all cores by default).
  CoreId core = -1;      ///< Current placement; -1 when unplaced.
  bool runnable = false; ///< Wants CPU this tick.
  int local_index = 0;   ///< Thread index within the application.
  LoadTracker load;      ///< Load average for migration decisions.
  App* app_ptr = nullptr;  ///< Cached owner (== engine app(app)); stable
                           ///< across other apps' removals.
  AppId app = 0;         ///< Owning application index.
  TimeUs cpu_time_us = 0;      ///< Lifetime CPU time consumed.
  ThreadId id = 0;       ///< Engine-global thread id.
  std::int64_t migrations = 0; ///< Cross-core placement changes.
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Places every runnable thread on a core (`SimThread::core`); must only
  /// use online cores inside each thread's affinity mask (falling back to
  /// any online core when the intersection is empty, as Linux does).
  virtual void assign(const Machine& machine, std::vector<SimThread>& threads) = 0;

  /// Optional fast path for the engine's tick: the number of runnable
  /// threads placed on each core by the latest assign() call, or null
  /// when the scheduler does not track it. When provided it must equal
  /// exactly what counting `t.runnable && t.core >= 0` over the thread
  /// table yields, so the engine can skip that pass.
  virtual const std::vector<int>* runnable_per_core() const { return nullptr; }

  virtual const char* name() const = 0;
};

}  // namespace hars
