// Scheduler interface between the simulation engine and OS-scheduler
// models. Each tick the engine hands the scheduler the thread table; the
// scheduler places every runnable thread on an online core permitted by
// its affinity mask.
#pragma once

#include <vector>

#include "hmp/cpu_mask.hpp"
#include "hmp/machine.hpp"
#include "sched/load_tracker.hpp"
#include "util/common.hpp"

namespace hars {

/// Mutable per-thread record owned by the simulation engine.
struct SimThread {
  ThreadId id = 0;       ///< Engine-global thread id.
  AppId app = 0;         ///< Owning application index.
  int local_index = 0;   ///< Thread index within the application.
  CpuMask affinity;      ///< sched_setaffinity mask (all cores by default).
  CoreId core = -1;      ///< Current placement; -1 when unplaced.
  bool runnable = false; ///< Wants CPU this tick.
  LoadTracker load;      ///< Load average for migration decisions.
  TimeUs cpu_time_us = 0;      ///< Lifetime CPU time consumed.
  std::int64_t migrations = 0; ///< Cross-core placement changes.
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Places every runnable thread on a core (`SimThread::core`); must only
  /// use online cores inside each thread's affinity mask (falling back to
  /// any online core when the intersection is empty, as Linux does).
  virtual void assign(const Machine& machine, std::vector<SimThread>& threads) = 0;

  virtual const char* name() const = 0;
};

}  // namespace hars
