#include "svc/campaign_scheduler.hpp"

#include <algorithm>
#include <thread>

#include "apps/parsec.hpp"
#include "core/search.hpp"
#include "core/thread_scheduler.hpp"
#include "core/workload_predictor.hpp"
#include "exp/variant_registry.hpp"
#include "hmp/platform_registry.hpp"
#include "scenario/scenario_registry.hpp"

namespace hars {
namespace svc {

namespace {

bool parse_bench(const std::string& name, ParsecBenchmark* out) {
  for (ParsecBenchmark b : all_parsec_benchmarks()) {
    if (name == parsec_code(b) || name == parsec_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

/// Resolves campaign name lists against the registries; empty return =
/// ok. Shared by sweep and run expansion.
std::string resolve_names(const CampaignRequest& campaign,
                          std::vector<ParsecBenchmark>* benches) {
  for (const std::string& name : campaign.benches) {
    ParsecBenchmark bench;
    if (!parse_bench(name, &bench)) {
      return "unknown benchmark '" + name + "'";
    }
    benches->push_back(bench);
  }
  for (const std::string& name : campaign.variants) {
    if (VariantRegistry::instance().find(name) == nullptr) {
      return "unknown version '" + name + "'";
    }
  }
  for (const std::string& name : campaign.platforms) {
    if (PlatformRegistry::instance().find(name) == nullptr) {
      return "unknown platform '" + name + "'";
    }
  }
  for (const std::string& name : campaign.scenarios) {
    if (ScenarioRegistry::instance().find(name) == nullptr) {
      // get() distinguishes a malformed gen: name (generator diagnostic)
      // from a plain unknown preset; either way the campaign is typed
      // invalid here, before any case runs.
      try {
        ScenarioRegistry::instance().get(name);
        return "unknown scenario '" + name + "'";
      } catch (const ScenarioError& error) {
        return error.what();
      }
    }
  }
  if (!campaign.scenarios.empty() && !campaign.benches.empty()) {
    return "benches and scenarios are exclusive (the scenario's spawn "
           "events define the apps)";
  }
  return {};
}

}  // namespace

std::string expand_sweep_campaign(const CampaignRequest& campaign,
                                  SweepSpec* spec, std::size_t* cases) {
  std::vector<ParsecBenchmark> benches;
  std::string error = resolve_names(campaign, &benches);
  if (!error.empty()) return error;

  std::vector<std::string> versions = campaign.variants;
  if (benches.empty() && campaign.scenarios.empty()) {
    benches.push_back(ParsecBenchmark::kSwaptions);
  }
  if (versions.empty()) versions.push_back("HARS-E");

  const double duration_sec = campaign.duration_sec;
  const int threads = campaign.threads;
  const std::uint64_t seed = campaign.seed;
  spec->name("hars_sim_sweep")
      .base([duration_sec, threads, seed](ExperimentBuilder& b) {
        b.duration_sec(duration_sec).threads(threads).seed(seed);
      })
      .base_seed(seed);
  if (!benches.empty()) spec->benchmarks(benches);
  if (!campaign.scenarios.empty()) spec->scenarios(campaign.scenarios);
  spec->variants(versions);
  if (!campaign.platforms.empty()) spec->platforms(campaign.platforms);
  if (!campaign.fractions.empty()) spec->target_fractions(campaign.fractions);
  if (!campaign.distances.empty()) spec->search_distances(campaign.distances);
  if (campaign.derive_seeds) spec->seed_mode(SeedMode::kDerived);

  const std::size_t expanded = spec->expand().size();
  if (cases != nullptr) *cases = expanded;
  if (campaign.start_case > expanded) {
    return "start_case beyond the campaign's " + std::to_string(expanded) +
           " cases";
  }
  return {};
}

std::string build_run_experiment(const CampaignRequest& campaign,
                                 ExperimentBuilder* builder) {
  std::vector<ParsecBenchmark> benches;
  std::string error = resolve_names(campaign, &benches);
  if (!error.empty()) return error;
  if (campaign.scenarios.size() > 1) {
    return "run mode takes at most one scenario";
  }
  if (campaign.platforms.size() > 1) {
    return "run mode takes at most one platform";
  }
  if (campaign.variants.size() > 1) {
    return "run mode takes at most one version";
  }
  if (campaign.fractions.size() > 1) {
    return "run mode takes at most one fraction";
  }
  if (!campaign.distances.empty()) {
    return "distances are a sweep-mode axis";
  }

  if (!campaign.scheduler.empty()) {
    const auto kind = parse_thread_scheduler(campaign.scheduler);
    if (!kind) return "unknown scheduler '" + campaign.scheduler + "'";
    builder->scheduler(*kind);
  }
  if (!campaign.predictor.empty()) {
    const auto kind = parse_predictor_kind(campaign.predictor);
    if (!kind) return "unknown predictor '" + campaign.predictor + "'";
    builder->predictor(*kind);
  }
  if (!campaign.policy.empty()) {
    const auto policy = parse_search_policy(campaign.policy);
    if (!policy) return "unknown policy '" + campaign.policy + "'";
    builder->policy(*policy);
  }
  if (campaign.learn_ratio) builder->learn_ratio(true);

  if (!campaign.platforms.empty()) {
    builder->platform(std::string_view(campaign.platforms.front()));
  }
  if (!campaign.scenarios.empty()) {
    builder->scenario(std::string_view(campaign.scenarios.front()));
  } else {
    builder->apps(benches.empty()
                      ? std::vector<ParsecBenchmark>{
                            ParsecBenchmark::kSwaptions}
                      : benches);
  }
  builder->variant(campaign.variants.empty() ? "HARS-E"
                                             : campaign.variants.front())
      .target_fraction(campaign.fractions.empty() ? 0.50
                                                  : campaign.fractions.front())
      .duration_sec(campaign.duration_sec)
      .threads(campaign.threads)
      .seed(campaign.seed);
  return {};
}

CampaignScheduler::CampaignScheduler(int jobs) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<WorkStealingPool>(std::max(1, jobs));
}

CampaignScheduler::CampaignPtr CampaignScheduler::register_campaign(
    std::uint64_t session, std::uint64_t cases) {
  std::lock_guard<std::mutex> lock(mutex_);
  CampaignPtr campaign = std::make_shared<Campaign>();
  campaign->id = next_id_++;
  campaign->session = session;
  campaign->cases = cases;
  if (draining_) {
    campaign->control.store(static_cast<int>(SweepControl::kDrain),
                            std::memory_order_relaxed);
  }
  active_.emplace(campaign->id, campaign);
  ++total_;
  return campaign;
}

void CampaignScheduler::unregister_campaign(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(id);
}

bool CampaignScheduler::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  it->second->control.store(static_cast<int>(SweepControl::kCancel),
                            std::memory_order_relaxed);
  return true;
}

void CampaignScheduler::cancel_session(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, campaign] : active_) {
    if (campaign->session == session) {
      campaign->control.store(static_cast<int>(SweepControl::kCancel),
                              std::memory_order_relaxed);
    }
  }
}

void CampaignScheduler::drain_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  for (auto& [id, campaign] : active_) {
    // A cancelled campaign stays cancelled (cancel is the stronger word
    // for reporting; scheduling behaviour is identical).
    int expected = static_cast<int>(SweepControl::kRun);
    campaign->control.compare_exchange_strong(
        expected, static_cast<int>(SweepControl::kDrain),
        std::memory_order_relaxed);
  }
}

std::vector<CampaignStatus> CampaignScheduler::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CampaignStatus> out;
  out.reserve(active_.size());
  for (const auto& [id, campaign] : active_) {
    CampaignStatus row;
    row.campaign = id;
    const auto control = static_cast<SweepControl>(
        campaign->control.load(std::memory_order_relaxed));
    row.state = control == SweepControl::kRun      ? "running"
                : control == SweepControl::kDrain  ? "draining"
                                                   : "cancelling";
    row.cases = campaign->cases;
    row.emitted = campaign->emitted.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const CampaignStatus& a, const CampaignStatus& b) {
              return a.campaign < b.campaign;
            });
  return out;
}

std::uint64_t CampaignScheduler::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

std::uint64_t CampaignScheduler::total_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace svc
}  // namespace hars
