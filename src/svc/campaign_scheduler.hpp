// CampaignScheduler: maps client campaigns onto one shared
// WorkStealingPool and tracks them for status/cancel/drain.
//
// Expansion: a declarative CampaignRequest becomes the *same* SweepSpec
// (sweep mode) or ExperimentBuilder (run mode) the hars_sim CLI builds
// from the equivalent flags — axis order, base mutator, campaign name
// and seeding all match, which is what makes daemon-streamed records
// byte-identical to a local run. Unknown benchmark / variant /
// platform / scenario names are rejected up front with a message naming
// the offender (mapped to kBadRequest by the connection layer).
//
// Scheduling: all campaigns share the daemon's one pool; the SweepEngine
// runs each with SweepOptions::shared_pool and a campaign-local latch,
// so concurrent campaigns interleave at case granularity and never wait
// on each other's completion. Each registered campaign owns an atomic
// control word (SweepControl) the engine polls — cancel flips one
// campaign's word, drain_all flips every current *and future* one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/protocol.hpp"
#include "sweep/sweep_engine.hpp"
#include "sweep/sweep_spec.hpp"
#include "sweep/work_stealing_pool.hpp"

namespace hars {
namespace svc {

/// Builds the sweep-mode SweepSpec for `campaign` (mirroring hars_sim's
/// sweep mode, including its defaults: SW when no bench or scenario is
/// named, HARS-E when no variant is). Returns an error message naming
/// the first invalid field, or empty on success; `cases` receives the
/// expanded case count.
std::string expand_sweep_campaign(const CampaignRequest& campaign,
                                  SweepSpec* spec, std::size_t* cases);

/// Builds the run-mode ExperimentBuilder for `campaign` (mirroring
/// hars_sim's run mode). Returns an error message or empty.
std::string build_run_experiment(const CampaignRequest& campaign,
                                 ExperimentBuilder* builder);

class CampaignScheduler {
 public:
  /// One live campaign. `control` is the word the SweepEngine polls
  /// (values of SweepControl); `emitted` is advanced by the daemon's
  /// streaming sink as records leave, so `status` responses report live
  /// progress without touching the engine.
  struct Campaign {
    std::uint64_t id = 0;
    std::uint64_t session = 0;
    std::uint64_t cases = 0;
    std::atomic<int> control{static_cast<int>(SweepControl::kRun)};
    std::atomic<std::uint64_t> emitted{0};
  };
  using CampaignPtr = std::shared_ptr<Campaign>;

  /// `jobs` <= 0 selects hardware concurrency.
  explicit CampaignScheduler(int jobs);

  CampaignPtr register_campaign(std::uint64_t session, std::uint64_t cases);
  void unregister_campaign(std::uint64_t id);

  /// Flips one campaign to kCancel; false when no such campaign.
  bool cancel(std::uint64_t id);
  /// Cancels every campaign owned by `session` (connection teardown).
  void cancel_session(std::uint64_t session);
  /// Flips every current and future campaign to kDrain. Idempotent.
  void drain_all();

  std::vector<CampaignStatus> status() const;
  WorkStealingPool& pool() { return *pool_; }
  int jobs() const { return pool_->worker_count(); }
  std::uint64_t active_count() const;
  std::uint64_t total_count() const;

 private:
  std::unique_ptr<WorkStealingPool> pool_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, CampaignPtr> active_;
  std::uint64_t next_id_ = 1;
  std::uint64_t total_ = 0;
  bool draining_ = false;
};

}  // namespace svc
}  // namespace hars
