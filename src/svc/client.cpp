#include "svc/client.hpp"

#include <stdexcept>

#include "svc/wire.hpp"

namespace hars {
namespace svc {

ServiceClient::ServiceClient(const Address& address)
    : socket_(connect_to(address)) {}

void ServiceClient::send(const std::string& payload) {
  if (!write_frame(socket_, payload)) {
    throw std::runtime_error("hars_simd connection lost while sending");
  }
}

json::Value ServiceClient::read_payload() {
  std::string payload;
  std::string error;
  const FrameResult result = read_frame(socket_, &payload, &error);
  if (result == FrameResult::kClosed) {
    throw std::runtime_error("hars_simd closed the connection");
  }
  if (result != FrameResult::kOk) {
    throw std::runtime_error("hars_simd protocol error: " + error);
  }
  return json::parse(payload);
}

bool ServiceClient::ping() {
  Request request;
  request.id = next_id();
  request.verb = "ping";
  send(encode_request(request));
  return response_type(read_payload()) == "pong";
}

SubmitOutcome ServiceClient::submit_sweep(const CampaignRequest& campaign,
                                          const RecordFn& on_record) {
  Request request;
  request.id = next_id();
  request.verb = "submit";
  request.campaign = campaign;
  send(encode_request(request));

  SubmitOutcome outcome;
  for (;;) {
    const json::Value payload = read_payload();
    const std::string type = response_type(payload);
    if (type == "ack") {
      outcome.ack = parse_ack(payload);
    } else if (type == "record") {
      if (on_record) on_record(parse_record(payload));
    } else if (type == "summary") {
      outcome.summary = parse_summary(payload);
      outcome.ok = true;
      return outcome;
    } else if (type == "error") {
      outcome.error = parse_error(payload);
      return outcome;
    } else {
      throw std::runtime_error("unexpected response frame '" + type + "'");
    }
  }
}

SubmitOutcome ServiceClient::submit_run(const CampaignRequest& campaign) {
  Request request;
  request.id = next_id();
  request.verb = "submit";
  request.campaign = campaign;
  request.campaign.mode = "run";
  send(encode_request(request));

  SubmitOutcome outcome;
  for (;;) {
    const json::Value payload = read_payload();
    const std::string type = response_type(payload);
    if (type == "ack") {
      outcome.ack = parse_ack(payload);
    } else if (type == "result") {
      outcome.result = parse_run_result(payload);
      outcome.ok = true;
      return outcome;
    } else if (type == "error") {
      outcome.error = parse_error(payload);
      return outcome;
    } else {
      throw std::runtime_error("unexpected response frame '" + type + "'");
    }
  }
}

std::string ServiceClient::metrics_text() {
  Request request;
  request.id = next_id();
  request.verb = "metrics";
  send(encode_request(request));
  const json::Value payload = read_payload();
  if (response_type(payload) != "metrics") {
    throw std::runtime_error("unexpected response to metrics");
  }
  return payload.at("text").as_string();
}

StatsInfo ServiceClient::stats() {
  Request request;
  request.id = next_id();
  request.verb = "stats";
  send(encode_request(request));
  const json::Value payload = read_payload();
  if (response_type(payload) != "stats") {
    throw std::runtime_error("unexpected response to stats");
  }
  return parse_stats(payload);
}

std::vector<CampaignStatus> ServiceClient::status() {
  Request request;
  request.id = next_id();
  request.verb = "status";
  send(encode_request(request));
  const json::Value payload = read_payload();
  if (response_type(payload) != "status") {
    throw std::runtime_error("unexpected response to status");
  }
  return parse_status(payload);
}

bool ServiceClient::cancel(std::uint64_t campaign, ErrorInfo* error) {
  Request request;
  request.id = next_id();
  request.verb = "cancel";
  request.target = campaign;
  send(encode_request(request));
  const json::Value payload = read_payload();
  if (response_type(payload) == "ack") return true;
  if (response_type(payload) == "error") {
    if (error != nullptr) *error = parse_error(payload);
    return false;
  }
  throw std::runtime_error("unexpected response to cancel");
}

bool ServiceClient::drain() {
  Request request;
  request.id = next_id();
  request.verb = "drain";
  send(encode_request(request));
  return response_type(read_payload()) == "ack";
}

}  // namespace svc
}  // namespace hars
