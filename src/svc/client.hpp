// ServiceClient: typed client for the hars_simd wire protocol.
//
// One client owns one connection and runs a strictly request->response
// conversation on it (submit streams ack -> records... -> summary /
// result). Transport and framing failures throw std::runtime_error;
// typed protocol errors (quota, draining, bad request, ...) come back
// in the Outcome so callers can branch on the ErrorCode — a drained
// campaign, for example, is not an exception: its summary carries the
// resume cursor.
//
// tools/hars_client, hars_sim --remote and the tests/svc suites all sit
// on this class; none of them touch frames directly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "svc/net.hpp"
#include "svc/protocol.hpp"

namespace hars {
namespace svc {

/// Terminal result of a submit conversation.
struct SubmitOutcome {
  bool ok = false;
  AckInfo ack;               ///< Valid once the daemon admitted the campaign.
  std::optional<ErrorInfo> error;  ///< Set when !ok.
  SummaryInfo summary;       ///< Sweep submissions.
  RunResultPayload result;   ///< Run submissions.
};

class ServiceClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit ServiceClient(const Address& address);

  bool ping();

  using RecordFn = std::function<void(const Record&)>;
  /// Submits a sweep campaign and streams its records into `on_record`
  /// (in case order, byte-identical cells to a local run). Returns when
  /// the terminal summary or a typed error arrives.
  SubmitOutcome submit_sweep(const CampaignRequest& campaign,
                             const RecordFn& on_record);
  /// Submits a run-mode campaign; the outcome carries the full result
  /// payload.
  SubmitOutcome submit_run(const CampaignRequest& campaign);

  /// Prometheus text exposition scraped from the daemon.
  std::string metrics_text();
  StatsInfo stats();
  std::vector<CampaignStatus> status();
  /// Typed error (kNotFound) comes back as nullopt-with-false; true on ack.
  bool cancel(std::uint64_t campaign, ErrorInfo* error = nullptr);
  /// Requests a daemon-wide graceful drain.
  bool drain();

 private:
  std::uint64_t next_id() { return next_id_++; }
  void send(const std::string& payload);
  /// Reads one response frame and parses its JSON payload.
  json::Value read_payload();

  Socket socket_;
  std::uint64_t next_id_ = 1;
};

}  // namespace svc
}  // namespace hars
