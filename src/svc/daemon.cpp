#include "svc/daemon.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "obs/writers.hpp"
#include "svc/frame_queue.hpp"
#include "svc/service_cache.hpp"
#include "svc/wire.hpp"

namespace hars {
namespace svc {

namespace {

/// Batch ceiling for one writer-thread write() call.
constexpr std::size_t kWriteBatchBytes = 256u << 10;

}  // namespace

struct ServiceDaemon::Connection {
  Connection(Socket s, std::size_t queue_frames)
      : socket(std::move(s)), queue(queue_frames) {}

  Socket socket;
  FrameQueue queue;
  std::uint64_t session = 0;
  std::thread handler;
  std::thread writer;
  std::mutex runners_mutex;
  std::vector<std::thread> runners;
  std::atomic<bool> done{false};

  /// Frames (already enveloped) flow through the bounded queue; a
  /// false push (teardown races) is deliberately ignored.
  void send(const std::string& payload) { queue.push(encode_frame(payload)); }
};

namespace {

/// ResultSink that streams records to the connection's frame queue and
/// advances the campaign's live progress counter.
class RemoteSink final : public ResultSink {
 public:
  RemoteSink(ServiceDaemon::Connection& connection, std::uint64_t request_id,
             CampaignScheduler::Campaign& campaign,
             std::atomic<std::uint64_t>& records_total,
             obs::CounterId records_metric)
      : connection_(connection),
        request_id_(request_id),
        campaign_(campaign),
        records_total_(records_total),
        records_metric_(records_metric) {}

  void write(const Record& record) override {
    connection_.send(encode_record(request_id_, record));
    campaign_.emitted.fetch_add(1, std::memory_order_relaxed);
    records_total_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(records_metric_);
  }

 private:
  ServiceDaemon::Connection& connection_;
  std::uint64_t request_id_;
  CampaignScheduler::Campaign& campaign_;
  std::atomic<std::uint64_t>& records_total_;
  obs::CounterId records_metric_;
};

}  // namespace

ServiceDaemon::ServiceDaemon(DaemonConfig config)
    : config_(std::move(config)),
      listener_(Listener::listen(config_.listen)),
      sessions_(config_.limits),
      scheduler_(config_.jobs) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.set_enabled(true);
  requests_metric_ =
      registry.register_counter("svc.requests", "Protocol requests handled");
  records_metric_ =
      registry.register_counter("svc.records", "Records streamed to clients");
  campaigns_metric_ =
      registry.register_counter("svc.campaigns", "Campaigns admitted");
  sessions_gauge_ =
      registry.register_gauge("svc.sessions.active", "Open client sessions");
  campaigns_gauge_ = registry.register_gauge("svc.campaigns.active",
                                             "Campaigns currently running");
}

ServiceDaemon::~ServiceDaemon() {
  stop();
  reap_connections(/*join_all=*/true);
}

void ServiceDaemon::begin_drain() {
  drain_requested_.store(true, std::memory_order_release);
}

void ServiceDaemon::stop() {
  stop_requested_.store(true, std::memory_order_release);
  drain_requested_.store(true, std::memory_order_release);
}

void ServiceDaemon::serve() {
  obs::ensure_thread_registered();
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> drain_start;
  bool draining_started = false;

  for (;;) {
    if (config_.drain_signal != nullptr &&
        config_.drain_signal->load(std::memory_order_relaxed) != 0) {
      drain_requested_.store(true, std::memory_order_release);
    }
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if ((drain_requested_.load(std::memory_order_acquire) || stopping) &&
        !draining_started) {
      draining_started = true;
      drain_start = Clock::now();
      sessions_.begin_drain();
      scheduler_.drain_all();
    }
    reap_connections(/*join_all=*/false);
    obs::gauge_set(sessions_gauge_,
                   static_cast<double>(sessions_.active_sessions()));
    obs::gauge_set(campaigns_gauge_,
                   static_cast<double>(scheduler_.active_count()));

    if (draining_started) {
      bool idle;
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        idle = connections_.empty();
      }
      if (idle) break;
      const double waited =
          std::chrono::duration<double>(Clock::now() - *drain_start).count();
      if (stopping || waited > config_.drain_timeout_sec) {
        force_close_connections();
        reap_connections(/*join_all=*/true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }

    std::optional<Socket> accepted = listener_.accept(/*timeout_ms=*/100);
    if (!accepted.has_value()) continue;
    const std::optional<std::uint64_t> session = sessions_.open_session();
    if (!session.has_value()) {
      ErrorInfo error;
      error.code = sessions_.draining() ? ErrorCode::kDraining
                                        : ErrorCode::kTooManyClients;
      error.message = sessions_.draining()
                          ? "daemon is draining"
                          : "client limit reached, retry later";
      write_frame(*accepted, encode_error(error));
      continue;  // Socket closes on scope exit.
    }
    auto connection = std::make_unique<Connection>(std::move(*accepted),
                                                   config_.send_queue_frames);
    connection->session = *session;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->writer = std::thread(&ServiceDaemon::writer_loop, this, raw);
    raw->handler = std::thread(&ServiceDaemon::handle_connection, this, raw);
  }

  listener_.close();
  reap_connections(/*join_all=*/true);
}

void ServiceDaemon::writer_loop(Connection* connection) {
  std::string batch;
  while (connection->queue.pop_batch(&batch, kWriteBatchBytes)) {
    if (!connection->socket.write_all(batch)) {
      // Peer gone: unblock producers and drop everything still queued.
      connection->queue.discard_all();
      break;
    }
  }
}

void ServiceDaemon::handle_connection(Connection* connection) {
  obs::ensure_thread_registered();
  for (;;) {
    std::string payload;
    std::string error;
    const FrameResult result =
        read_frame(connection->socket, &payload, &error);
    if (result == FrameResult::kOversize ||
        result == FrameResult::kError) {
      // The stream is desynchronized after a bad envelope: report once
      // and hang up.
      ErrorInfo info;
      info.code = ErrorCode::kBadRequest;
      info.message = error.empty() ? "malformed frame" : error;
      connection->send(encode_error(info));
      break;
    }
    if (result != FrameResult::kOk) break;  // Orderly close.
    handle_request(connection, payload);
  }

  // Teardown: a dead client's campaigns are cancelled (they finish
  // their in-flight cases and stop), runners drain into the queue (the
  // writer discards if the peer is really gone), then the queue closes
  // and the writer flushes out.
  scheduler_.cancel_session(connection->session);
  std::vector<std::thread> runners;
  {
    std::lock_guard<std::mutex> lock(connection->runners_mutex);
    runners.swap(connection->runners);
  }
  for (std::thread& runner : runners) runner.join();
  connection->queue.close();
  if (connection->writer.joinable()) connection->writer.join();
  connection->socket.shutdown_both();
  connection->socket.close();
  sessions_.close_session(connection->session);
  connection->done.store(true, std::memory_order_release);
}

void ServiceDaemon::handle_request(Connection* connection,
                                   const std::string& payload) {
  obs::counter_add(requests_metric_);
  Request request;
  try {
    request = parse_request(json::parse(payload));
  } catch (const std::exception& e) {
    ErrorInfo error;
    error.code = ErrorCode::kBadRequest;
    error.message = e.what();
    connection->send(encode_error(error));
    return;
  }

  if (request.verb == "ping") {
    connection->send(encode_pong(request.id));
  } else if (request.verb == "metrics") {
    std::ostringstream text;
    obs::write_prometheus(text,
                          obs::MetricsRegistry::instance().take_snapshot());
    connection->send(encode_metrics_text(request.id, text.str()));
  } else if (request.verb == "status") {
    connection->send(encode_status(request.id, scheduler_.status()));
  } else if (request.verb == "stats") {
    StatsInfo stats;
    stats.id = request.id;
    stats.sessions = sessions_.active_sessions();
    stats.campaigns_active = scheduler_.active_count();
    stats.campaigns_total = scheduler_.total_count();
    stats.records_streamed =
        records_streamed_.load(std::memory_order_relaxed);
    stats.caches =
        service_cache_stats(obs::MetricsRegistry::instance().take_snapshot());
    connection->send(encode_stats(stats));
  } else if (request.verb == "drain") {
    AckInfo ack;
    ack.id = request.id;
    connection->send(encode_ack(ack));
    begin_drain();
  } else if (request.verb == "cancel") {
    if (scheduler_.cancel(request.target)) {
      AckInfo ack;
      ack.id = request.id;
      ack.campaign = request.target;
      connection->send(encode_ack(ack));
    } else {
      ErrorInfo error;
      error.id = request.id;
      error.code = ErrorCode::kNotFound;
      error.message =
          "no active campaign " + std::to_string(request.target);
      connection->send(encode_error(error));
    }
  } else if (request.verb == "submit") {
    handle_submit(connection, request);
  } else {
    ErrorInfo error;
    error.id = request.id;
    error.code = ErrorCode::kUnknownVerb;
    error.message = "unknown verb '" + request.verb + "'";
    connection->send(encode_error(error));
  }
}

void ServiceDaemon::handle_submit(Connection* connection,
                                  const Request& request) {
  auto reject = [&](ErrorCode code, std::string message) {
    ErrorInfo error;
    error.id = request.id;
    error.code = code;
    error.message = std::move(message);
    connection->send(encode_error(error));
  };

  const CampaignRequest& campaign_request = request.campaign;
  std::shared_ptr<SweepSpec> spec;
  std::uint64_t cases = 1;
  if (campaign_request.mode == "run") {
    ExperimentBuilder probe;
    const std::string error = build_run_experiment(campaign_request, &probe);
    if (!error.empty()) {
      reject(ErrorCode::kBadRequest, error);
      return;
    }
  } else {
    spec = std::make_shared<SweepSpec>();
    std::size_t expanded = 0;
    const std::string error =
        expand_sweep_campaign(campaign_request, spec.get(), &expanded);
    if (!error.empty()) {
      reject(ErrorCode::kBadRequest, error);
      return;
    }
    cases = expanded;
  }

  // Admission charges only the cases this submission will actually run
  // (a resume skips [0, start_case)).
  const std::uint64_t charged =
      cases > campaign_request.start_case ? cases - campaign_request.start_case
                                          : 0;
  const std::optional<ErrorCode> denied =
      sessions_.admit_campaign(connection->session, charged);
  if (denied.has_value()) {
    const char* why = *denied == ErrorCode::kDraining ? "daemon is draining"
                      : *denied == ErrorCode::kQuotaExceeded
                          ? "per-client campaign quota reached"
                          : "global queued-case budget exhausted";
    reject(*denied, why);
    return;
  }

  CampaignScheduler::CampaignPtr campaign =
      scheduler_.register_campaign(connection->session, cases);
  obs::counter_add(campaigns_metric_);
  AckInfo ack;
  ack.id = request.id;
  ack.campaign = campaign->id;
  ack.cases = cases;
  connection->send(encode_ack(ack));

  std::lock_guard<std::mutex> lock(connection->runners_mutex);
  if (campaign_request.mode == "run") {
    connection->runners.emplace_back(&ServiceDaemon::run_single_campaign,
                                     this, connection, request, campaign);
  } else {
    connection->runners.emplace_back(&ServiceDaemon::run_sweep_campaign, this,
                                     connection, request, campaign,
                                     std::move(spec));
  }
}

void ServiceDaemon::run_sweep_campaign(Connection* connection, Request request,
                                       CampaignScheduler::CampaignPtr campaign,
                                       std::shared_ptr<SweepSpec> spec) {
  obs::ensure_thread_registered();
  const std::uint64_t charged =
      campaign->cases > request.campaign.start_case
          ? campaign->cases - request.campaign.start_case
          : 0;
  try {
    RemoteSink sink(*connection, request.id, *campaign, records_streamed_,
                    records_metric_);
    SweepOptions options;
    options.keep_results = false;
    options.shared_pool = &scheduler_.pool();
    options.control = &campaign->control;
    options.start_case = request.campaign.start_case;
    SweepEngine engine(options);
    engine.add_sink(sink);
    const SweepReport report = engine.run(*spec);

    SummaryInfo summary;
    summary.id = request.id;
    summary.campaign = campaign->id;
    summary.status = report.status;
    summary.cases = report.outcomes.size();
    summary.emitted_through = report.emitted_through;
    summary.failed = report.failed;
    summary.wall_ms = report.wall_ms;
    connection->send(encode_summary(summary));
  } catch (const std::exception& e) {
    ErrorInfo error;
    error.id = request.id;
    error.code = ErrorCode::kInternal;
    error.message = e.what();
    connection->send(encode_error(error));
  }
  scheduler_.unregister_campaign(campaign->id);
  sessions_.release_campaign(connection->session, charged);
}

void ServiceDaemon::run_single_campaign(
    Connection* connection, Request request,
    CampaignScheduler::CampaignPtr campaign) {
  obs::ensure_thread_registered();
  try {
    ExperimentBuilder builder;
    const std::string error =
        build_run_experiment(request.campaign, &builder);
    if (!error.empty()) throw std::runtime_error(error);
    const ExperimentResult result = builder.build().run();
    campaign->emitted.store(1, std::memory_order_relaxed);
    records_streamed_.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add(records_metric_);
    connection->send(encode_run_result(
        request.id, run_payload_of(result, request.campaign.want_trace)));
  } catch (const std::exception& e) {
    ErrorInfo error;
    error.id = request.id;
    error.code = ErrorCode::kInternal;
    error.message = e.what();
    connection->send(encode_error(error));
  }
  scheduler_.unregister_campaign(campaign->id);
  sessions_.release_campaign(connection->session, 1);
}

void ServiceDaemon::force_close_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const std::unique_ptr<Connection>& connection : connections_) {
    connection->queue.discard_all();
    connection->socket.shutdown_both();
  }
}

void ServiceDaemon::reap_connections(bool join_all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::unique_ptr<Connection>& connection : finished) {
    if (connection->handler.joinable()) connection->handler.join();
    if (connection->writer.joinable()) connection->writer.join();
  }
}

}  // namespace svc
}  // namespace hars
