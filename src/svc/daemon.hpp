// ServiceDaemon: the hars_simd simulation-as-a-service core.
//
// One daemon = one listener + one SessionManager (admission) + one
// CampaignScheduler (shared WorkStealingPool) + one shared cache tier
// (the process-wide OnceCaches, warm across requests). Each accepted
// connection gets a handler thread (reads request frames), a writer
// thread (drains the connection's bounded FrameQueue in batches), and
// one runner thread per in-flight campaign — campaigns stream records
// through the queue while the handler keeps serving status/cancel.
//
// Determinism: a campaign executes through the exact SweepSpec /
// ExperimentBuilder path the hars_sim CLI uses, on a SweepEngine with
// ordered emission, and every record cell crosses the wire verbatim —
// so the bytes a client writes are identical to a local run for any
// worker count and any number of concurrent clients.
//
// Drain: begin_drain() (SIGTERM) stops accepting, makes the session
// layer reject new submissions with kDraining, and flips every live
// campaign's control word to kDrain. In-flight cases finish, each
// campaign emits a terminal summary with status "drained" and the
// emitted_through resume cursor, and serve() returns once every client
// disconnects — or after drain_timeout_sec, when remaining connections
// are force-closed.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/campaign_scheduler.hpp"
#include "svc/net.hpp"
#include "svc/session.hpp"

namespace hars {
namespace svc {

struct DaemonConfig {
  Address listen;  ///< Default: loopback TCP, ephemeral port.
  /// Shared pool workers; <= 0 selects hardware concurrency.
  int jobs = 1;
  SessionLimits limits;
  double drain_timeout_sec = 30.0;
  /// Per-connection send-queue bound, in frames (the backpressure knob).
  std::size_t send_queue_frames = 256;
  /// Polled by serve() every accept timeout; a signal handler sets it
  /// to request a graceful drain. Lock-free atomic stores are
  /// async-signal-safe, and unlike volatile sig_atomic_t this is also
  /// race-free when another *thread* sets the flag (as tests do).
  const std::atomic<std::sig_atomic_t>* drain_signal = nullptr;
};

class ServiceDaemon {
 public:
  /// Binds the listener and enables the metrics registry; throws
  /// std::runtime_error when the address cannot be bound.
  explicit ServiceDaemon(DaemonConfig config);
  ~ServiceDaemon();

  /// The bound address (resolves an ephemeral TCP port).
  const Address& address() const { return listener_.bound_address(); }

  /// Accept loop; blocks until a drain completes or stop() is called.
  void serve();

  /// Requests a graceful drain (thread-safe, idempotent).
  void begin_drain();

  /// Hard stop for tests: cancels campaigns, force-closes connections.
  void stop();

  SessionManager& sessions() { return sessions_; }
  CampaignScheduler& scheduler() { return scheduler_; }
  const DaemonConfig& config() const { return config_; }

  /// Per-connection state; public only so daemon.cpp's file-local
  /// RemoteSink can stream through it.
  struct Connection;

 private:

  void handle_connection(Connection* connection);
  void handle_request(Connection* connection, const std::string& payload);
  void handle_submit(Connection* connection, const Request& request);
  void run_sweep_campaign(Connection* connection, Request request,
                          CampaignScheduler::CampaignPtr campaign,
                          std::shared_ptr<SweepSpec> spec);
  void run_single_campaign(Connection* connection, Request request,
                           CampaignScheduler::CampaignPtr campaign);
  void writer_loop(Connection* connection);
  void force_close_connections();
  void reap_connections(bool join_all);

  DaemonConfig config_;
  Listener listener_;
  SessionManager sessions_;
  CampaignScheduler scheduler_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};

  // Service metrics (scraped via the `metrics` verb) plus plain atomics
  // for the `stats` verb, which must work even when a client disabled
  // the registry.
  obs::CounterId requests_metric_;
  obs::CounterId records_metric_;
  obs::CounterId campaigns_metric_;
  obs::GaugeId sessions_gauge_;
  obs::GaugeId campaigns_gauge_;
  std::atomic<std::uint64_t> records_streamed_{0};
};

}  // namespace svc
}  // namespace hars
