#include "svc/frame_queue.hpp"

#include <algorithm>

namespace hars {
namespace svc {

FrameQueue::FrameQueue(std::size_t max_frames)
    : max_frames_(std::max<std::size_t>(1, max_frames)) {}

bool FrameQueue::push(std::string frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_push_.wait(lock, [this] {
    return frames_.size() < max_frames_ || closed_ || discarding_;
  });
  if (closed_ || discarding_) return false;
  frames_.push_back(std::move(frame));
  can_pop_.notify_one();
  return true;
}

bool FrameQueue::pop_batch(std::string* out, std::size_t max_bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_pop_.wait(lock,
                [this] { return !frames_.empty() || closed_ || discarding_; });
  if (discarding_ || frames_.empty()) return false;
  out->clear();
  while (!frames_.empty() &&
         (out->empty() || out->size() + frames_.front().size() <= max_bytes)) {
    out->append(frames_.front());
    frames_.pop_front();
  }
  can_push_.notify_all();
  return true;
}

void FrameQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  can_push_.notify_all();
  can_pop_.notify_all();
}

void FrameQueue::discard_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  discarding_ = true;
  frames_.clear();
  can_push_.notify_all();
  can_pop_.notify_all();
}

std::size_t FrameQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_.size();
}

}  // namespace svc
}  // namespace hars
