// FrameQueue: the bounded per-connection send queue.
//
// Producers are the connection's request handler and its campaign
// runner threads; the single consumer is the connection's writer
// thread, which drains frames in batches (one write() per batch, not
// per frame — record streams are many small frames). The bound is the
// backpressure mechanism: when a client stops reading, the writer
// blocks in write(), the queue fills, and push() blocks the campaign
// runner — which stalls that campaign's emission cursor without
// consuming unbounded memory or blocking any other campaign (workers
// keep running other cases; only the emit step waits).
//
// Teardown: close() lets queued frames flush then stops the consumer;
// discard_all() (peer gone) drops everything and unblocks producers
// immediately — pushes become no-ops so runners finish unimpeded.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

namespace hars {
namespace svc {

class FrameQueue {
 public:
  /// `max_frames` bounds queued-but-unsent frames (>= 1).
  explicit FrameQueue(std::size_t max_frames);

  /// Enqueues one encoded frame, blocking while the queue is full.
  /// Returns false (dropping the frame) after close()/discard_all().
  bool push(std::string frame);

  /// Dequeues up to `max_bytes` of consecutive frames into `out`
  /// (always at least one frame when available, regardless of size).
  /// Blocks while empty; false when the queue is closed and drained, or
  /// discarding.
  bool pop_batch(std::string* out, std::size_t max_bytes);

  /// Stops accepting pushes; pop_batch drains what is queued, then
  /// reports exhaustion.
  void close();

  /// Peer is gone: drops queued frames, rejects future ones, unblocks
  /// everyone.
  void discard_all();

  std::size_t size() const;

 private:
  const std::size_t max_frames_;
  mutable std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::string> frames_;
  bool closed_ = false;
  bool discarding_ = false;
};

}  // namespace svc
}  // namespace hars
