#include "svc/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace hars {
namespace svc {

// --- Address ---

Address Address::parse(std::string_view text) {
  Address out;
  if (text.rfind("unix:", 0) == 0) {
    out.kind = Kind::kUnix;
    out.path = std::string(text.substr(5));
    if (out.path.empty()) {
      throw std::invalid_argument("svc: empty unix socket path");
    }
    return out;
  }
  if (text.rfind("tcp:", 0) == 0) text.remove_prefix(4);
  if (text.find('/') != std::string_view::npos) {
    out.kind = Kind::kUnix;
    out.path = std::string(text);
    return out;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument(
        "svc: address must be tcp:HOST:PORT, HOST:PORT, :PORT, unix:PATH "
        "or a filesystem path");
  }
  out.kind = Kind::kTcp;
  out.host = colon == 0 ? "127.0.0.1" : std::string(text.substr(0, colon));
  const std::string port_text(text.substr(colon + 1));
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    throw std::invalid_argument("svc: bad port '" + port_text + "'");
  }
  out.port = static_cast<int>(port);
  return out;
}

std::string Address::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// --- Socket ---

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::write_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (wrote == 0) return false;
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool Socket::read_exact(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-message.
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

long Socket::read_some(void* data, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd_, data, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

bool Socket::wait_readable(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    // POLLHUP/POLLERR also count as readable: the next read reports the
    // EOF/error to the caller.
    return rc > 0;
  }
}

void Socket::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- Listener ---

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("svc: " + what + ": " + std::strerror(errno));
}

}  // namespace

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      bound_(std::move(other.bound_)),
      unlink_on_close_(other.unlink_on_close_) {
  other.fd_ = -1;
  other.unlink_on_close_ = false;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    bound_ = std::move(other.bound_);
    unlink_on_close_ = other.unlink_on_close_;
    other.fd_ = -1;
    other.unlink_on_close_ = false;
  }
  return *this;
}

Listener Listener::listen(const Address& address, int backlog) {
  Listener out;
  out.bound_ = address;
  if (address.kind == Address::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("svc: unix socket path too long: " +
                               address.path);
    }
    std::strncpy(addr.sun_path, address.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    out.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (out.fd_ < 0) fail_errno("socket(AF_UNIX)");
    ::unlink(address.path.c_str());  // Stale socket file from a dead daemon.
    if (::bind(out.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      fail_errno("bind " + address.path);
    }
    out.unlink_on_close_ = true;
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(address.port));
    if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("svc: bad listen host '" + address.host +
                               "' (numeric IPv4 only)");
    }
    out.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (out.fd_ < 0) fail_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(out.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(out.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      fail_errno("bind " + address.to_string());
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(out.fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      out.bound_.port = ntohs(addr.sin_port);  // Resolves port 0.
    }
  }
  if (::listen(out.fd_, backlog) < 0) fail_errno("listen");
  return out;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) return std::nullopt;  // Re-check drain flag.
    if (rc <= 0) return std::nullopt;
    break;
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  if (bound_.kind == Address::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket(fd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    ::unlink(bound_.path.c_str());
    unlink_on_close_ = false;
  }
}

Socket connect_to(const Address& address) {
  int fd = -1;
  if (address.kind == Address::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("svc: unix socket path too long: " +
                               address.path);
    }
    std::strncpy(addr.sun_path, address.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      fail_errno("connect " + address.to_string());
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(address.port));
    if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("svc: bad host '" + address.host +
                               "' (numeric IPv4 only)");
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket(AF_INET)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int err = errno;
      ::close(fd);
      errno = err;
      fail_errno("connect " + address.to_string());
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket(fd);
}

}  // namespace svc
}  // namespace hars
