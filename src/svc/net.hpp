// Minimal POSIX socket layer for the hars_simd service: address
// parsing ("tcp:host:port", "host:port", ":port", "unix:/path" or a
// bare filesystem path), RAII stream sockets with full-buffer
// read/write, and a listener with poll-based timed accept so the
// daemon's accept loop can watch its drain flag.
//
// Local-first by design: the daemon binds loopback TCP or a Unix
// domain socket. Blocking I/O everywhere — backpressure is part of the
// protocol contract (see docs/FILE_FORMATS.md, "Wire protocol") — with
// poll timeouts only where the daemon must stay responsive (accept,
// idle request reads).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hars {
namespace svc {

struct Address {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< kTcp
  int port = 0;                    ///< kTcp; 0 = ephemeral (listen only).
  std::string path;                ///< kUnix

  /// Parses "tcp:HOST:PORT", "HOST:PORT", ":PORT", "unix:PATH", or a
  /// bare path (anything containing '/'). Throws std::invalid_argument.
  static Address parse(std::string_view text);

  /// Canonical printable form ("tcp:127.0.0.1:7414" / "unix:/tmp/h.sock").
  std::string to_string() const;
};

/// RAII stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes (retrying short writes/EINTR). False on error
  /// or peer close. SIGPIPE is suppressed (MSG_NOSIGNAL).
  bool write_all(const void* data, std::size_t n);
  bool write_all(std::string_view s) { return write_all(s.data(), s.size()); }

  /// Reads exactly `n` bytes. False on error or EOF before `n`.
  bool read_exact(void* data, std::size_t n);

  /// Reads up to `n` bytes; returns the count, 0 on orderly EOF, -1 on
  /// error.
  long read_some(void* data, std::size_t n);

  /// Waits until the socket is readable; false on timeout. A negative
  /// timeout waits forever.
  bool wait_readable(int timeout_ms);

  /// Disables further sends (wakes a peer blocked in read).
  void shutdown_send();
  /// Disables both directions (wakes peer and our own blocked reads).
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to `address`. For TCP, port 0 binds an
/// ephemeral port — bound_address() reports the real one (tests use
/// this to avoid fixed-port collisions). For Unix sockets, a stale
/// socket file at the path is unlinked first, and the file is removed
/// on close.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; throws std::runtime_error on failure.
  static Listener listen(const Address& address, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  const Address& bound_address() const { return bound_; }

  /// Accepts one connection, waiting at most `timeout_ms` (negative =
  /// forever). nullopt on timeout or transient error.
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  Address bound_;
  bool unlink_on_close_ = false;
};

/// Connects a stream socket to `address`; throws std::runtime_error.
Socket connect_to(const Address& address);

}  // namespace svc
}  // namespace hars
