#include "svc/protocol.hpp"

#include <limits>

namespace hars {
namespace svc {

namespace {

// --- Parse helpers -------------------------------------------------------
//
// json::Value::at/as_* throw std::runtime_error on shape mismatches;
// the public parse_* entry points below translate those into
// ProtocolError so callers can map them to a typed kBadRequest.

double num_at(const json::Value& v, std::string_view key) {
  const json::Value& m = v.at(key);
  // The writer serializes non-finite doubles as null (JSON has no NaN).
  if (m.is_null()) return std::numeric_limits<double>::quiet_NaN();
  return m.as_number();
}

double num_or(const json::Value& v, std::string_view key, double fallback) {
  const json::Value* m = v.find(key);
  if (m == nullptr) return fallback;
  if (m->is_null()) return std::numeric_limits<double>::quiet_NaN();
  return m->as_number();
}

std::uint64_t u64_at(const json::Value& v, std::string_view key) {
  return static_cast<std::uint64_t>(num_at(v, key));
}

std::uint64_t u64_or(const json::Value& v, std::string_view key,
                     std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      num_or(v, key, static_cast<double>(fallback)));
}

std::int64_t i64_or(const json::Value& v, std::string_view key,
                    std::int64_t fallback) {
  return static_cast<std::int64_t>(
      num_or(v, key, static_cast<double>(fallback)));
}

bool bool_or(const json::Value& v, std::string_view key, bool fallback) {
  const json::Value* m = v.find(key);
  return m != nullptr ? m->as_bool() : fallback;
}

std::string string_or(const json::Value& v, std::string_view key,
                      std::string fallback = {}) {
  const json::Value* m = v.find(key);
  return m != nullptr ? m->as_string() : std::move(fallback);
}

std::vector<std::string> strings_or(const json::Value& v,
                                    std::string_view key) {
  std::vector<std::string> out;
  const json::Value* m = v.find(key);
  if (m == nullptr) return out;
  for (const json::Value& item : m->as_array()) out.push_back(item.as_string());
  return out;
}

std::vector<double> doubles_or(const json::Value& v, std::string_view key) {
  std::vector<double> out;
  const json::Value* m = v.find(key);
  if (m == nullptr) return out;
  for (const json::Value& item : m->as_array()) out.push_back(item.as_number());
  return out;
}

std::vector<int> ints_or(const json::Value& v, std::string_view key) {
  std::vector<int> out;
  const json::Value* m = v.find(key);
  if (m == nullptr) return out;
  for (const json::Value& item : m->as_array()) {
    out.push_back(static_cast<int>(item.as_number()));
  }
  return out;
}

// --- Encode helpers ------------------------------------------------------

void write_strings(json::Writer& w, std::string_view key,
                   const std::vector<std::string>& items) {
  w.key(key).begin_array();
  for (const std::string& item : items) w.value(item);
  w.end_array();
}

void write_doubles(json::Writer& w, std::string_view key,
                   const std::vector<double>& items) {
  w.key(key).begin_array();
  for (double item : items) w.value(item);
  w.end_array();
}

void write_ints(json::Writer& w, std::string_view key,
                const std::vector<int>& items) {
  w.key(key).begin_array();
  for (int item : items) w.value(item);
  w.end_array();
}

void write_metrics(json::Writer& w, const RunMetrics& m) {
  w.begin_object()
      .key("norm_perf").value(m.norm_perf)
      .key("avg_rate_hps").value(m.avg_rate_hps)
      .key("avg_power_w").value(m.avg_power_w)
      .key("perf_per_watt").value(m.perf_per_watt)
      .key("manager_cpu_pct").value(m.manager_cpu_pct)
      .key("heartbeats").value(m.heartbeats)
      .key("in_window_fraction").value(m.in_window_fraction)
      .key("energy_j").value(m.energy_j)
      .key("energy_per_beat_j").value(m.energy_per_beat_j)
      .end_object();
}

RunMetrics parse_metrics(const json::Value& v) {
  RunMetrics m;
  m.norm_perf = num_at(v, "norm_perf");
  m.avg_rate_hps = num_at(v, "avg_rate_hps");
  m.avg_power_w = num_at(v, "avg_power_w");
  m.perf_per_watt = num_at(v, "perf_per_watt");
  m.manager_cpu_pct = num_at(v, "manager_cpu_pct");
  m.heartbeats = static_cast<std::int64_t>(num_at(v, "heartbeats"));
  m.in_window_fraction = num_at(v, "in_window_fraction");
  m.energy_j = num_at(v, "energy_j");
  m.energy_per_beat_j = num_at(v, "energy_per_beat_j");
  return m;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownVerb: return "unknown_verb";
    case ErrorCode::kTooManyClients: return "too_many_clients";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

std::optional<ErrorCode> parse_error_code(std::string_view name) {
  for (ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnknownVerb,
        ErrorCode::kTooManyClients, ErrorCode::kQuotaExceeded,
        ErrorCode::kQueueFull, ErrorCode::kDraining, ErrorCode::kNotFound,
        ErrorCode::kInternal}) {
    if (name == error_code_name(code)) return code;
  }
  return std::nullopt;
}

std::string encode_request(const Request& request) {
  json::Writer w;
  w.begin_object()
      .key("id").value(request.id)
      .key("verb").value(request.verb);
  if (request.verb == "submit") {
    const CampaignRequest& c = request.campaign;
    w.key("campaign").begin_object()
        .key("mode").value(c.mode);
    write_strings(w, "benches", c.benches);
    write_strings(w, "variants", c.variants);
    write_strings(w, "platforms", c.platforms);
    write_strings(w, "scenarios", c.scenarios);
    write_doubles(w, "fractions", c.fractions);
    write_ints(w, "distances", c.distances);
    w.key("duration_sec").value(c.duration_sec)
        .key("threads").value(c.threads)
        .key("seed").value(c.seed)
        .key("derive_seeds").value(c.derive_seeds)
        .key("start_case").value(c.start_case)
        .key("want_trace").value(c.want_trace)
        .key("scheduler").value(c.scheduler)
        .key("predictor").value(c.predictor)
        .key("policy").value(c.policy)
        .key("learn_ratio").value(c.learn_ratio)
        .end_object();
  } else if (request.verb == "cancel") {
    w.key("target").value(request.target);
  }
  w.end_object();
  return w.str();
}

Request parse_request(const json::Value& payload) {
  try {
    Request request;
    request.id = u64_or(payload, "id", 0);
    request.verb = payload.at("verb").as_string();
    if (request.verb == "submit") {
      const json::Value& c = payload.at("campaign");
      CampaignRequest& out = request.campaign;
      out.mode = string_or(c, "mode", "sweep");
      if (out.mode != "sweep" && out.mode != "run") {
        throw ProtocolError("unknown campaign mode '" + out.mode + "'");
      }
      out.benches = strings_or(c, "benches");
      out.variants = strings_or(c, "variants");
      out.platforms = strings_or(c, "platforms");
      out.scenarios = strings_or(c, "scenarios");
      out.fractions = doubles_or(c, "fractions");
      out.distances = ints_or(c, "distances");
      out.duration_sec = num_or(c, "duration_sec", 120.0);
      out.threads = static_cast<int>(num_or(c, "threads", 8.0));
      out.seed = u64_or(c, "seed", 1);
      out.derive_seeds = bool_or(c, "derive_seeds", false);
      out.start_case = u64_or(c, "start_case", 0);
      out.want_trace = bool_or(c, "want_trace", false);
      out.scheduler = string_or(c, "scheduler");
      out.predictor = string_or(c, "predictor");
      out.policy = string_or(c, "policy");
      out.learn_ratio = bool_or(c, "learn_ratio", false);
    } else if (request.verb == "cancel") {
      request.target = u64_at(payload, "target");
    }
    return request;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("malformed request: ") + e.what());
  }
}

std::string encode_ack(const AckInfo& ack) {
  json::Writer w;
  w.begin_object()
      .key("type").value("ack")
      .key("id").value(ack.id)
      .key("campaign").value(ack.campaign)
      .key("cases").value(ack.cases)
      .end_object();
  return w.str();
}

std::string encode_stats(const StatsInfo& stats) {
  json::Writer w;
  w.begin_object()
      .key("type").value("stats")
      .key("id").value(stats.id)
      .key("sessions").value(stats.sessions)
      .key("campaigns_active").value(stats.campaigns_active)
      .key("campaigns_total").value(stats.campaigns_total)
      .key("records_streamed").value(stats.records_streamed)
      .key("caches").begin_array();
  for (const CacheStat& c : stats.caches) {
    w.begin_object()
        .key("name").value(c.name)
        .key("hits").value(c.hits)
        .key("misses").value(c.misses)
        .key("entries").value(c.entries)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

StatsInfo parse_stats(const json::Value& payload) {
  StatsInfo stats;
  stats.id = u64_or(payload, "id", 0);
  stats.sessions = u64_or(payload, "sessions", 0);
  stats.campaigns_active = u64_or(payload, "campaigns_active", 0);
  stats.campaigns_total = u64_or(payload, "campaigns_total", 0);
  stats.records_streamed = u64_or(payload, "records_streamed", 0);
  const json::Value* caches = payload.find("caches");
  if (caches != nullptr) {
    for (const json::Value& item : caches->as_array()) {
      CacheStat c;
      c.name = string_or(item, "name");
      c.hits = u64_or(item, "hits", 0);
      c.misses = u64_or(item, "misses", 0);
      c.entries = u64_or(item, "entries", 0);
      stats.caches.push_back(std::move(c));
    }
  }
  return stats;
}

std::string encode_error(const ErrorInfo& error) {
  json::Writer w;
  w.begin_object()
      .key("type").value("error")
      .key("id").value(error.id)
      .key("code").value(error_code_name(error.code))
      .key("message").value(error.message)
      .end_object();
  return w.str();
}

std::string encode_record(std::uint64_t id, const Record& record) {
  json::Writer w;
  w.begin_object()
      .key("type").value("record")
      .key("id").value(id)
      .key("cells").begin_array();
  for (const RecordCell& cell : record.cells()) {
    w.begin_object().key("k").value(cell.key).key("t").value(cell.text);
    if (cell.numeric) w.key("n").value(cell.number);
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

Record parse_record(const json::Value& payload) {
  Record record;
  for (const json::Value& item : payload.at("cells").as_array()) {
    RecordCell cell;
    cell.key = item.at("k").as_string();
    cell.text = item.at("t").as_string();
    const json::Value* n = item.find("n");
    if (n != nullptr) {
      cell.numeric = true;
      cell.number = n->is_null() ? std::numeric_limits<double>::quiet_NaN()
                                 : n->as_number();
    }
    record.set_cell(std::move(cell));
  }
  return record;
}

std::string encode_summary(const SummaryInfo& summary) {
  json::Writer w;
  w.begin_object()
      .key("type").value("summary")
      .key("id").value(summary.id)
      .key("campaign").value(summary.campaign)
      .key("status").value(summary.status)
      .key("cases").value(summary.cases)
      .key("emitted_through").value(summary.emitted_through)
      .key("failed").value(summary.failed)
      .key("wall_ms").value(summary.wall_ms)
      .end_object();
  return w.str();
}

SummaryInfo parse_summary(const json::Value& payload) {
  SummaryInfo summary;
  summary.id = u64_or(payload, "id", 0);
  summary.campaign = u64_or(payload, "campaign", 0);
  summary.status = string_or(payload, "status", "complete");
  summary.cases = u64_or(payload, "cases", 0);
  summary.emitted_through = u64_or(payload, "emitted_through", 0);
  summary.failed = u64_or(payload, "failed", 0);
  summary.wall_ms = num_or(payload, "wall_ms", 0.0);
  return summary;
}

AckInfo parse_ack(const json::Value& payload) {
  AckInfo ack;
  ack.id = u64_or(payload, "id", 0);
  ack.campaign = u64_or(payload, "campaign", 0);
  ack.cases = u64_or(payload, "cases", 0);
  return ack;
}

ErrorInfo parse_error(const json::Value& payload) {
  ErrorInfo error;
  error.id = u64_or(payload, "id", 0);
  error.code = parse_error_code(string_or(payload, "code", "internal"))
                   .value_or(ErrorCode::kInternal);
  error.message = string_or(payload, "message");
  return error;
}

std::string encode_pong(std::uint64_t id) {
  json::Writer w;
  w.begin_object().key("type").value("pong").key("id").value(id).end_object();
  return w.str();
}

std::string encode_metrics_text(std::uint64_t id, std::string_view text) {
  json::Writer w;
  w.begin_object()
      .key("type").value("metrics")
      .key("id").value(id)
      .key("text").value(text)
      .end_object();
  return w.str();
}

std::string encode_status(std::uint64_t id,
                          const std::vector<CampaignStatus>& campaigns) {
  json::Writer w;
  w.begin_object()
      .key("type").value("status")
      .key("id").value(id)
      .key("campaigns").begin_array();
  for (const CampaignStatus& c : campaigns) {
    w.begin_object()
        .key("campaign").value(c.campaign)
        .key("state").value(c.state)
        .key("cases").value(c.cases)
        .key("emitted").value(c.emitted)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::vector<CampaignStatus> parse_status(const json::Value& payload) {
  std::vector<CampaignStatus> out;
  for (const json::Value& item : payload.at("campaigns").as_array()) {
    CampaignStatus status;
    status.campaign = u64_or(item, "campaign", 0);
    status.state = string_or(item, "state", "running");
    status.cases = u64_or(item, "cases", 0);
    status.emitted = u64_or(item, "emitted", 0);
    out.push_back(std::move(status));
  }
  return out;
}

RunResultPayload run_payload_of(const ExperimentResult& result,
                                bool include_traces) {
  RunResultPayload payload;
  payload.avg_power_w = result.avg_power_w;
  payload.adaptations = result.adaptations;
  if (result.static_state.has_value()) {
    payload.has_static_state = true;
    payload.static_state_text = result.static_state->to_string();
  }
  payload.apps.reserve(result.apps.size());
  for (const AppRunResult& app : result.apps) {
    RunAppPayload out;
    out.label = app.label;
    out.target = app.target;
    out.metrics = app.metrics;
    if (include_traces) out.trace = app.trace;
    out.spawn_time_us = app.spawn_time_us;
    out.depart_time_us = app.depart_time_us;
    payload.apps.push_back(std::move(out));
  }
  return payload;
}

std::string encode_run_result(std::uint64_t id,
                              const RunResultPayload& payload) {
  json::Writer w;
  w.begin_object()
      .key("type").value("result")
      .key("id").value(id)
      .key("avg_power_w").value(payload.avg_power_w)
      .key("adaptations").value(payload.adaptations);
  if (payload.has_static_state) {
    w.key("static_state").value(payload.static_state_text);
  }
  w.key("apps").begin_array();
  for (const RunAppPayload& app : payload.apps) {
    w.begin_object()
        .key("label").value(app.label)
        .key("target_min").value(app.target.min)
        .key("target_max").value(app.target.max)
        .key("spawn_us").value(app.spawn_time_us)
        .key("depart_us").value(app.depart_time_us)
        .key("metrics");
    write_metrics(w, app.metrics);
    if (!app.trace.empty()) {
      // Compact row form: [hb_index, hps, big, little, big_ghz, little_ghz].
      w.key("trace").begin_array();
      for (const TracePoint& p : app.trace) {
        w.begin_array()
            .value(p.hb_index)
            .value(p.hps)
            .value(p.big_cores)
            .value(p.little_cores)
            .value(p.big_freq_ghz)
            .value(p.little_freq_ghz)
            .end_array();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

RunResultPayload parse_run_result(const json::Value& payload) {
  RunResultPayload out;
  out.avg_power_w = num_or(payload, "avg_power_w", 0.0);
  out.adaptations = i64_or(payload, "adaptations", 0);
  const json::Value* state = payload.find("static_state");
  if (state != nullptr) {
    out.has_static_state = true;
    out.static_state_text = state->as_string();
  }
  for (const json::Value& item : payload.at("apps").as_array()) {
    RunAppPayload app;
    app.label = string_or(item, "label");
    app.target.min = num_or(item, "target_min", 0.0);
    app.target.max = num_or(item, "target_max", 0.0);
    app.spawn_time_us = i64_or(item, "spawn_us", 0);
    app.depart_time_us = i64_or(item, "depart_us", -1);
    app.metrics = parse_metrics(item.at("metrics"));
    const json::Value* trace = item.find("trace");
    if (trace != nullptr) {
      for (const json::Value& row : trace->as_array()) {
        const std::vector<json::Value>& cols = row.as_array();
        if (cols.size() != 6) throw ProtocolError("malformed trace row");
        TracePoint p;
        p.hb_index = static_cast<std::int64_t>(cols[0].as_number());
        p.hps = cols[1].as_number();
        p.big_cores = static_cast<int>(cols[2].as_number());
        p.little_cores = static_cast<int>(cols[3].as_number());
        p.big_freq_ghz = cols[4].as_number();
        p.little_freq_ghz = cols[5].as_number();
        app.trace.push_back(p);
      }
    }
    out.apps.push_back(std::move(app));
  }
  return out;
}

std::string response_type(const json::Value& payload) {
  return string_or(payload, "type");
}

}  // namespace svc
}  // namespace hars
