// Typed request/response layer of the hars_simd wire protocol.
//
// Every frame payload is one JSON object. Requests carry a client-chosen
// `id` echoed on every response frame they produce, a `verb`, and
// verb-specific fields; responses carry a `type` discriminator:
//
//   verb submit  -> ack, then (sweep) a stream of `record` frames and a
//                   terminal `summary`, or (run) a terminal `result`.
//   verb status  -> `status` (active campaign table)
//   verb cancel  -> ack (the cancelled campaign's own stream terminates
//                   with a `summary` of status "cancelled")
//   verb drain   -> ack; daemon-wide drain begins (idempotent)
//   verb metrics -> `metrics` (Prometheus text exposition in `text`)
//   verb stats   -> `stats` (sessions, campaigns, service cache tier)
//   verb ping    -> `pong`
//   any error    -> `error` with a typed `code` (see ErrorCode)
//
// Campaign submissions are *declarative* — named benchmarks, variants,
// platforms, scenarios and numeric axes, exactly the surface hars_sim
// exposes — because builder mutators (arbitrary closures) cannot cross
// a process boundary. The daemon expands them through the same
// SweepSpec/ExperimentBuilder code paths as an in-process run, which is
// what makes streamed records byte-identical to local execution.
//
// Determinism: record frames serialize each cell verbatim (key, exact
// formatted text, numeric flag, numeric value), so the client-side
// reconstruction feeds CsvSink/JsonlSink the same cells the in-process
// engine would have.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sweep/result_sink.hpp"
#include "util/json.hpp"

namespace hars {
namespace svc {

/// Typed error codes; `code` on every error frame.
enum class ErrorCode {
  kBadRequest,      ///< Malformed JSON / missing fields / unknown names.
  kUnknownVerb,
  kTooManyClients,  ///< Connection admission failed.
  kQuotaExceeded,   ///< Per-client concurrent-campaign quota hit.
  kQueueFull,       ///< Global queued-case budget exhausted.
  kDraining,        ///< Daemon is draining; no new submissions.
  kNotFound,        ///< cancel/status target does not exist.
  kInternal,
};

const char* error_code_name(ErrorCode code);
std::optional<ErrorCode> parse_error_code(std::string_view name);

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative campaign description (verb submit). Vector fields are
/// sweep axes; run mode requires at most one value per axis. Field
/// names mirror the hars_sim CLI flags they are filled from.
struct CampaignRequest {
  std::string mode = "sweep";  ///< "sweep" | "run"
  std::vector<std::string> benches;  ///< PARSEC codes ("SW", "BO", ...).
  std::vector<std::string> variants;
  std::vector<std::string> platforms;
  std::vector<std::string> scenarios;
  std::vector<double> fractions;
  std::vector<int> distances;
  double duration_sec = 120.0;
  int threads = 8;
  std::uint64_t seed = 1;
  bool derive_seeds = false;
  /// Resume: skip cases below this index (their records were already
  /// emitted by a drained predecessor; see SweepOptions::start_case).
  std::uint64_t start_case = 0;
  /// Run mode: include per-app behaviour traces in the result payload.
  bool want_trace = false;
  // Run-mode tuning (empty string = builder default).
  std::string scheduler;
  std::string predictor;
  std::string policy;
  bool learn_ratio = false;
};

struct Request {
  std::uint64_t id = 0;
  std::string verb;
  CampaignRequest campaign;   ///< verb == submit
  std::uint64_t target = 0;   ///< verb == cancel: campaign id
};

std::string encode_request(const Request& request);
/// Throws ProtocolError on malformed input.
Request parse_request(const json::Value& payload);

// --- Response frames ---

struct AckInfo {
  std::uint64_t id = 0;        ///< Echoed request id.
  std::uint64_t campaign = 0;  ///< Assigned campaign id (submit only).
  std::uint64_t cases = 0;     ///< Expanded case count (submit only).
};

struct ErrorInfo {
  std::uint64_t id = 0;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct SummaryInfo {
  std::uint64_t id = 0;
  std::uint64_t campaign = 0;
  std::string status;  ///< "complete" | "drained" | "cancelled"
  std::uint64_t cases = 0;
  std::uint64_t emitted_through = 0;
  std::uint64_t failed = 0;
  double wall_ms = 0.0;
};

/// One active campaign row of a `status` response.
struct CampaignStatus {
  std::uint64_t campaign = 0;
  std::string state;  ///< "running" | "draining"
  std::uint64_t cases = 0;
  std::uint64_t emitted = 0;
};

/// One shared-cache tier row of a `stats` response (hit/miss counters
/// and entry-count gauge of a named OnceCache, read from the metrics
/// registry; see svc/service_cache.hpp).
struct CacheStat {
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};

struct StatsInfo {
  std::uint64_t id = 0;
  std::uint64_t sessions = 0;
  std::uint64_t campaigns_active = 0;
  std::uint64_t campaigns_total = 0;   ///< Since daemon start.
  std::uint64_t records_streamed = 0;  ///< Since daemon start.
  std::vector<CacheStat> caches;
};

std::string encode_ack(const AckInfo& ack);
std::string encode_stats(const StatsInfo& stats);
StatsInfo parse_stats(const json::Value& payload);
std::string encode_error(const ErrorInfo& error);
std::string encode_record(std::uint64_t id, const Record& record);
std::string encode_summary(const SummaryInfo& summary);
std::string encode_pong(std::uint64_t id);
std::string encode_metrics_text(std::uint64_t id, std::string_view text);
std::string encode_status(std::uint64_t id,
                          const std::vector<CampaignStatus>& campaigns);

/// Run-mode result payload: everything hars_sim's human-readable report
/// prints (per-app metrics, targets, spawn/depart, optional traces, the
/// SO static-state string), so `--remote` output is byte-identical to
/// in-process. Carried as data rather than ExperimentResult because a
/// SystemState cannot be reconstructed client-side from its printout.
struct RunAppPayload {
  std::string label;
  PerfTarget target;
  RunMetrics metrics;
  std::vector<TracePoint> trace;  ///< Only when traces were requested.
  std::int64_t spawn_time_us = 0;
  std::int64_t depart_time_us = -1;
};

struct RunResultPayload {
  std::vector<RunAppPayload> apps;
  double avg_power_w = 0.0;
  std::int64_t adaptations = 0;
  bool has_static_state = false;
  std::string static_state_text;
};

/// Flattens an ExperimentResult into the wire payload (server side; the
/// hars_sim local path uses it too so both paths print from the same
/// struct).
RunResultPayload run_payload_of(const ExperimentResult& result,
                                bool include_traces);

std::string encode_run_result(std::uint64_t id,
                              const RunResultPayload& payload);

/// The `type` member of a response payload.
std::string response_type(const json::Value& payload);

Record parse_record(const json::Value& payload);
SummaryInfo parse_summary(const json::Value& payload);
AckInfo parse_ack(const json::Value& payload);
ErrorInfo parse_error(const json::Value& payload);
RunResultPayload parse_run_result(const json::Value& payload);
std::vector<CampaignStatus> parse_status(const json::Value& payload);

}  // namespace svc
}  // namespace hars
