#include "svc/service_cache.hpp"

#include <string_view>

#include "exp/calibration.hpp"
#include "hmp/platform_registry.hpp"

namespace hars {
namespace svc {

std::vector<CacheStat> service_cache_stats(
    const obs::MetricsSnapshot& snapshot) {
  std::vector<CacheStat> rows;
  auto row_of = [&rows](std::string_view name) -> CacheStat& {
    for (CacheStat& row : rows) {
      if (row.name == name) return row;
    }
    rows.push_back(CacheStat{std::string(name), 0, 0, 0});
    return rows.back();
  };
  for (const obs::MetricValue& metric : snapshot.metrics) {
    const std::string_view name = metric.name;
    if (name.rfind("cache.", 0) != 0) continue;
    const std::size_t dot = name.rfind('.');
    if (dot <= 6) continue;  // No field suffix after the cache name.
    const std::string_view cache = name.substr(6, dot - 6);
    const std::string_view field = name.substr(dot + 1);
    CacheStat& row = row_of(cache);
    if (field == "hit") {
      row.hits = metric.counter;
    } else if (field == "miss") {
      row.misses = metric.counter;
    } else if (field == "entries") {
      row.entries = static_cast<std::uint64_t>(metric.gauge);
    }
  }
  return rows;
}

std::size_t prewarm_calibration(const std::vector<ParsecBenchmark>& benches,
                                const std::string& platform_name, int threads,
                                std::uint64_t seed) {
  const PlatformSpec platform = PlatformRegistry::instance().get(
      platform_name.empty() ? "exynos5422" : platform_name);
  std::size_t warmed = 0;
  for (ParsecBenchmark bench : benches) {
    (void)calibrate_benchmark(platform, bench, threads, seed);
    ++warmed;
  }
  return warmed;
}

}  // namespace svc
}  // namespace hars
