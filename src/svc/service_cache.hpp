// The daemon's shared cache tier.
//
// The expensive keyed memoizations (calibration runs, static-optimal
// exhaustive searches, concurrent baseline probes) live in named
// process-wide OnceCaches. In a one-shot CLI they amortize within a
// single campaign; inside hars_simd they are *cross-request*: every
// client of the daemon shares one warm tier for the life of the
// process. Each OnceCache publishes `cache.<name>.{hit,miss}` counters
// and a `cache.<name>.entries` gauge to the MetricsRegistry (see
// util/once_cache.hpp); this module aggregates those into the typed
// rows the `stats` protocol verb reports, and can prewarm the
// calibration tier so the first client does not pay the cold cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/parsec.hpp"
#include "obs/metrics.hpp"
#include "svc/protocol.hpp"

namespace hars {
namespace svc {

/// Aggregates every `cache.<name>.*` metric of `snapshot` into one row
/// per cache, in first-appearance order.
std::vector<CacheStat> service_cache_stats(const obs::MetricsSnapshot& snapshot);

/// Runs the default-parameter calibration for each benchmark on the
/// named platform (empty = the exynos5422 preset), populating the
/// shared calibration cache before the first client arrives. Returns
/// the number of calibrations performed. Cost: one short baseline
/// simulation per cold (platform, bench) pair.
std::size_t prewarm_calibration(const std::vector<ParsecBenchmark>& benches,
                                const std::string& platform_name = {},
                                int threads = 8, std::uint64_t seed = 1);

}  // namespace svc
}  // namespace hars
