#include "svc/session.hpp"

namespace hars {
namespace svc {

SessionManager::SessionManager(SessionLimits limits) : limits_(limits) {}

std::optional<std::uint64_t> SessionManager::open_session() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) return std::nullopt;
  if (sessions_.size() >= static_cast<std::size_t>(limits_.max_clients)) {
    return std::nullopt;
  }
  const std::uint64_t id = next_id_++;
  sessions_.emplace(id, Session{});
  return id;
}

void SessionManager::close_session(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(session);
}

std::optional<ErrorCode> SessionManager::admit_campaign(std::uint64_t session,
                                                        std::uint64_t cases) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) return ErrorCode::kDraining;
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return ErrorCode::kInternal;
  if (it->second.campaigns >= limits_.max_campaigns_per_client) {
    return ErrorCode::kQuotaExceeded;
  }
  if (queued_cases_ + cases > limits_.max_queued_cases) {
    return ErrorCode::kQueueFull;
  }
  ++it->second.campaigns;
  ++active_campaigns_;
  queued_cases_ += cases;
  return std::nullopt;
}

void SessionManager::release_campaign(std::uint64_t session,
                                      std::uint64_t cases) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  if (it != sessions_.end() && it->second.campaigns > 0) {
    --it->second.campaigns;
  }
  if (active_campaigns_ > 0) --active_campaigns_;
  queued_cases_ -= cases <= queued_cases_ ? cases : queued_cases_;
}

void SessionManager::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool SessionManager::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::uint64_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::uint64_t SessionManager::active_campaigns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_campaigns_;
}

std::uint64_t SessionManager::queued_cases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_cases_;
}

}  // namespace svc
}  // namespace hars
