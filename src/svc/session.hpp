// SessionManager: admission control for the hars_simd daemon.
//
// One session is one accepted connection. Admission is two-layered:
// connections (max_clients) and campaigns (a per-session concurrency
// quota plus a global queued-case budget, so one client cannot submit a
// million-case sweep and starve everyone else). All checks are typed —
// a rejected admission names the ErrorCode the protocol layer sends —
// and a draining daemon rejects every new submission with kDraining
// while existing sessions run to completion.
//
// Thread safety: every method is safe to call from any connection
// thread; state is one mutex-guarded table (admission is far off the
// simulation hot path).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "svc/protocol.hpp"

namespace hars {
namespace svc {

struct SessionLimits {
  int max_clients = 16;
  int max_campaigns_per_client = 4;
  /// Global budget of expanded-but-unfinished cases across campaigns.
  std::uint64_t max_queued_cases = 1u << 20;
};

class SessionManager {
 public:
  explicit SessionManager(SessionLimits limits);

  /// Admits a new connection: the session id, or nullopt when the
  /// daemon is full or draining (the caller sends kTooManyClients /
  /// kDraining and closes).
  std::optional<std::uint64_t> open_session();
  void close_session(std::uint64_t session);

  /// Admits a campaign of `cases` cases for `session`: nullopt =
  /// admitted (the caller must later release_campaign), otherwise the
  /// ErrorCode to report (kDraining, kQuotaExceeded, kQueueFull).
  std::optional<ErrorCode> admit_campaign(std::uint64_t session,
                                          std::uint64_t cases);
  void release_campaign(std::uint64_t session, std::uint64_t cases);

  /// Idempotent; new sessions and campaigns are rejected from now on.
  void begin_drain();
  bool draining() const;

  std::uint64_t active_sessions() const;
  std::uint64_t active_campaigns() const;
  std::uint64_t queued_cases() const;
  const SessionLimits& limits() const { return limits_; }

 private:
  struct Session {
    int campaigns = 0;
  };

  SessionLimits limits_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_id_ = 1;
  std::uint64_t queued_cases_ = 0;
  std::uint64_t active_campaigns_ = 0;
  bool draining_ = false;
};

}  // namespace svc
}  // namespace hars
