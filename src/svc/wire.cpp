#include "svc/wire.hpp"

namespace hars {
namespace svc {

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  out += std::to_string(payload.size());
  out.push_back('\n');
  out.append(payload.data(), payload.size());
  out.push_back('\n');
  return out;
}

FrameResult read_frame(Socket& socket, std::string* payload,
                       std::string* error) {
  // Length line: decimal digits then LF, read byte-wise (the line is
  // tiny; the payload read below is the bulk transfer).
  std::string length_line;
  for (;;) {
    char c;
    const long got = socket.read_some(&c, 1);
    if (got <= 0) {
      if (got == 0 && length_line.empty()) return FrameResult::kClosed;
      if (error != nullptr) {
        *error = length_line.empty() ? "read error at frame start"
                                     : "EOF inside frame length";
      }
      return FrameResult::kError;
    }
    if (c == '\n') break;
    if (c < '0' || c > '9' || length_line.size() > 12) {
      if (error != nullptr) *error = "malformed frame length";
      return FrameResult::kError;
    }
    length_line.push_back(c);
  }
  if (length_line.empty()) {
    if (error != nullptr) *error = "empty frame length";
    return FrameResult::kError;
  }
  const std::size_t length = std::stoull(length_line);
  if (length > kMaxFrameBytes) {
    if (error != nullptr) {
      *error = "frame of " + length_line + " bytes exceeds limit";
    }
    return FrameResult::kOversize;
  }
  payload->resize(length);
  if (length > 0 && !socket.read_exact(payload->data(), length)) {
    if (error != nullptr) *error = "EOF inside frame payload";
    return FrameResult::kError;
  }
  char trailer;
  if (!socket.read_exact(&trailer, 1) || trailer != '\n') {
    if (error != nullptr) *error = "missing frame trailer";
    return FrameResult::kError;
  }
  return FrameResult::kOk;
}

bool write_frame(Socket& socket, std::string_view payload) {
  return socket.write_all(encode_frame(payload));
}

}  // namespace svc
}  // namespace hars
