// Length-prefixed JSONL framing for the hars_simd wire protocol.
//
// One frame is one JSON document on the wire:
//
//   <decimal payload byte length> LF <payload JSON, no raw newlines> LF
//
// e.g. `17\n{"verb":"ping"}\n` — netcat-debuggable, self-delimiting,
// and cheap to parse. The length covers the payload only (neither LF).
// The JSON writer escapes control characters, so a well-formed payload
// never contains a raw newline; the trailing LF is a frame-integrity
// check, not a delimiter the reader depends on.
//
// Limits: a frame larger than kMaxFrameBytes is a protocol error (the
// reader refuses to allocate for it), as is a malformed length line.
// See docs/FILE_FORMATS.md, "Wire protocol".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "svc/net.hpp"

namespace hars {
namespace svc {

/// Upper bound on one frame's payload (a streamed record is ~1 KiB; a
/// run result with traces can reach megabytes).
constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

/// `payload` wrapped in the frame envelope.
std::string encode_frame(std::string_view payload);

enum class FrameResult {
  kOk,
  kClosed,    ///< Orderly EOF between frames (peer finished).
  kError,     ///< I/O error, truncated frame, or malformed envelope.
  kOversize,  ///< Declared length exceeds kMaxFrameBytes.
};

/// Reads one frame into `payload`. Blocking; kClosed only when EOF
/// lands exactly on a frame boundary. `error` (optional) receives a
/// diagnostic for kError/kOversize.
FrameResult read_frame(Socket& socket, std::string* payload,
                       std::string* error = nullptr);

/// Writes one frame; false on I/O error (peer gone).
bool write_frame(Socket& socket, std::string_view payload);

}  // namespace svc
}  // namespace hars
