#include "sweep/aggregator.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "util/stats.hpp"

namespace hars {

Aggregator& Aggregator::group_by(std::vector<std::string> keys) {
  keys_ = std::move(keys);
  return *this;
}

Aggregator& Aggregator::geomean(std::string column) {
  reductions_.push_back(Reduction{Op::kGeomean, std::move(column)});
  return *this;
}

Aggregator& Aggregator::mean(std::string column) {
  reductions_.push_back(Reduction{Op::kMean, std::move(column)});
  return *this;
}

std::vector<Record> Aggregator::apply(std::span<const Record> rows) const {
  struct Group {
    std::vector<std::string> key_values;
    std::vector<std::vector<double>> series;  ///< One per reduction.
    std::size_t n = 0;
  };
  std::vector<Group> groups;  // First-appearance order.

  for (const Record& row : rows) {
    std::vector<std::string> key_values;
    key_values.reserve(keys_.size());
    for (const std::string& key : keys_) {
      key_values.emplace_back(row.text(key));
    }
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.key_values == key_values) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{std::move(key_values),
                             std::vector<std::vector<double>>(
                                 reductions_.size()),
                             0});
      group = &groups.back();
    }
    ++group->n;
    for (std::size_t r = 0; r < reductions_.size(); ++r) {
      const double v = row.number(reductions_[r].column);
      if (!std::isnan(v)) group->series[r].push_back(v);
    }
  }

  std::vector<Record> out;
  out.reserve(groups.size());
  for (const Group& group : groups) {
    Record record;
    for (std::size_t k = 0; k < keys_.size(); ++k) {
      record.set(keys_[k], group.key_values[k]);
    }
    for (std::size_t r = 0; r < reductions_.size(); ++r) {
      const Reduction& red = reductions_[r];
      const char* prefix = red.op == Op::kGeomean ? "geomean_" : "mean_";
      // A group whose column was entirely absent/non-numeric reduces to
      // NaN without tripping the empty-input assert in stats.
      double value = std::numeric_limits<double>::quiet_NaN();
      if (!group.series[r].empty()) {
        value = red.op == Op::kGeomean ? hars::geomean(group.series[r])
                                       : hars::mean(group.series[r]);
      }
      record.set(prefix + red.column, value);
    }
    record.set("rows", static_cast<std::int64_t>(group.n));
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace hars
