// Grouped reductions over sweep records — the geomean/mean pivots every
// figure computes (per-benchmark rows collapsed to a GM per variant, CPU
// utilization averaged per distance, ...).
//
//   Aggregator agg;
//   agg.group_by({"fraction", "distance"})
//      .geomean("perf_per_watt")
//      .mean("manager_cpu_pct");
//   std::vector<Record> rows = agg.apply(sink.rows());
//
// Output rows keep the group keys and add one column per reduction, named
// "<op>_<column>", plus "rows" — the number of records in the group, NOT
// the per-statistic sample size (a record whose column is absent or
// non-numeric still counts toward "rows" but not toward the reduction).
// Group order is first appearance in the input, so aggregation is
// deterministic.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sweep/result_sink.hpp"

namespace hars {

class Aggregator {
 public:
  Aggregator& group_by(std::vector<std::string> keys);
  Aggregator& geomean(std::string column);
  Aggregator& mean(std::string column);

  std::vector<Record> apply(std::span<const Record> rows) const;

 private:
  enum class Op { kGeomean, kMean };
  struct Reduction {
    Op op;
    std::string column;
  };

  std::vector<std::string> keys_;
  std::vector<Reduction> reductions_;
};

}  // namespace hars
