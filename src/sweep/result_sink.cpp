#include "sweep/result_sink.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "util/csv.hpp"

namespace hars {

std::string format_number(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, end);
}

namespace {

// Existing cell for `key` (keeping its column position), or a fresh one
// appended at the end — Record keys are unique by construction.
RecordCell& upsert_cell(std::vector<RecordCell>& cells, std::string key) {
  for (RecordCell& cell : cells) {
    if (cell.key == key) return cell;
  }
  cells.push_back(RecordCell{std::move(key), {}, false, 0.0});
  return cells.back();
}

}  // namespace

Record& Record::set(std::string key, std::string value) {
  RecordCell& cell = upsert_cell(cells_, std::move(key));
  cell.text = std::move(value);
  cell.numeric = false;
  cell.number = 0.0;
  return *this;
}

Record& Record::set(std::string key, const char* value) {
  return set(std::move(key), std::string(value));
}

Record& Record::set(std::string key, double value) {
  RecordCell& cell = upsert_cell(cells_, std::move(key));
  cell.text = format_number(value);
  cell.numeric = true;
  cell.number = value;
  return *this;
}

Record& Record::set_cell(RecordCell cell) {
  RecordCell& slot = upsert_cell(cells_, std::move(cell.key));
  slot.text = std::move(cell.text);
  slot.numeric = cell.numeric;
  slot.number = cell.number;
  return *this;
}

Record& Record::set(std::string key, std::int64_t value) {
  RecordCell& cell = upsert_cell(cells_, std::move(key));
  cell.text = std::to_string(value);
  cell.numeric = true;
  cell.number = static_cast<double>(value);
  return *this;
}

const RecordCell* Record::find(std::string_view key) const {
  for (const RecordCell& cell : cells_) {
    if (cell.key == key) return &cell;
  }
  return nullptr;
}

double Record::number(std::string_view key) const {
  const RecordCell* cell = find(key);
  if (cell == nullptr || !cell->numeric) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return cell->number;
}

std::string_view Record::text(std::string_view key) const {
  const RecordCell* cell = find(key);
  return cell != nullptr ? std::string_view(cell->text) : std::string_view();
}

const Record* find_record(
    std::span<const Record> rows,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        where) {
  for (const Record& row : rows) {
    bool all = true;
    for (const auto& [key, value] : where) {
      if (row.text(key) != value) {
        all = false;
        break;
      }
    }
    if (all) return &row;
  }
  return nullptr;
}

double record_number(
    std::span<const Record> rows,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        where,
    std::string_view column) {
  const Record* row = find_record(rows, where);
  if (row == nullptr) return std::numeric_limits<double>::quiet_NaN();
  return row->number(column);
}

CsvSink::CsvSink(const std::string& path) : file_(path), out_(&file_) {}

bool CsvSink::ok() const { return out_ != nullptr && out_->good(); }

void CsvSink::write(const Record& record) {
  if (columns_.empty()) {
    std::string header;
    for (const RecordCell& cell : record.cells()) {
      columns_.push_back(cell.key);
      if (!header.empty()) header += ',';
      header += csv_escape(cell.key);
    }
    *out_ << header << '\n';
  }
  std::string line;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) line += ',';
    const RecordCell* cell = record.find(columns_[i]);
    if (cell != nullptr) line += csv_escape(cell->text);
  }
  *out_ << line << '\n';
}

void CsvSink::flush() { out_->flush(); }

JsonlSink::JsonlSink(const std::string& path) : file_(path), out_(&file_) {}

bool JsonlSink::ok() const { return out_ != nullptr && out_->good(); }

void JsonlSink::write(const Record& record) {
  std::string line = "{";
  bool first = true;
  for (const RecordCell& cell : record.cells()) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += json_escape(cell.key);
    line += "\":";
    if (cell.numeric) {
      line += std::isfinite(cell.number) ? cell.text : "null";
    } else {
      line += '"';
      line += json_escape(cell.text);
      line += '"';
    }
  }
  line += '}';
  *out_ << line << '\n';
}

void JsonlSink::flush() { out_->flush(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hars
