// Structured results for sweep campaigns.
//
// A Record is one flat, ordered row of named cells (text or numeric); the
// SweepEngine emits one per (case, app). ResultSinks consume records in
// case order — the engine serializes emission, so a campaign writes the
// same bytes for any worker count and sinks need no locking of their own.
//
//  * TableSink  — in-memory rows for the bench binaries to pivot/normalize;
//  * CsvSink    — header derived from the first record, RFC-4180 escaping;
//  * JsonlSink  — one JSON object per line (numbers unquoted, non-finite
//                 values serialized as null).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <fstream>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hars {

/// Shortest round-trip decimal form of `v` (std::to_chars), so formatted
/// output is deterministic and parses back to the same double.
std::string format_number(double v);

struct RecordCell {
  std::string key;
  std::string text;      ///< Formatted value (format_number for numerics).
  bool numeric = false;
  double number = 0.0;   ///< Valid only when `numeric`.
};

class Record {
 public:
  /// Sets `key` to `value`. Keys are unique: setting an existing key
  /// replaces its value in place (original column position kept), so a
  /// CaseRunner column that collides with an axis name overrides the
  /// coordinate instead of producing duplicate CSV/JSON keys.
  Record& set(std::string key, std::string value);
  Record& set(std::string key, const char* value);
  Record& set(std::string key, double value);
  Record& set(std::string key, std::int64_t value);
  Record& set(std::string key, int value) {
    return set(std::move(key), static_cast<std::int64_t>(value));
  }
  /// Sets a cell verbatim — text, numeric flag and numeric value all
  /// supplied by the caller, no reformatting. The svc wire layer uses
  /// this to reconstruct a streamed record byte-identically (int64 and
  /// double cells format differently, so re-deriving the text from the
  /// number alone would not round-trip).
  Record& set_cell(RecordCell cell);

  const std::vector<RecordCell>& cells() const { return cells_; }
  const RecordCell* find(std::string_view key) const;
  /// Numeric value of `key`; NaN when absent or non-numeric.
  double number(std::string_view key) const;
  /// Text of `key`; empty when absent.
  std::string_view text(std::string_view key) const;

 private:
  std::vector<RecordCell> cells_;
};

/// First record matching every (key, text) pair; null when none does.
const Record* find_record(
    std::span<const Record> rows,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        where);

/// number(column) of the matching record; NaN when no record matches.
double record_number(
    std::span<const Record> rows,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        where,
    std::string_view column);

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const Record& record) = 0;
  virtual void flush() {}
};

/// Collects records in memory.
class TableSink final : public ResultSink {
 public:
  void write(const Record& record) override { rows_.push_back(record); }
  const std::vector<Record>& rows() const { return rows_; }

 private:
  std::vector<Record> rows_;
};

/// CSV with a header row taken from the first record's keys. Later records
/// are emitted under that header: matching keys land in their column,
/// missing keys leave the cell empty.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(&out) {}
  explicit CsvSink(const std::string& path);

  bool ok() const;
  void write(const Record& record) override;
  void flush() override;

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::vector<std::string> columns_;
};

/// JSON-lines: one object per record, keys in cell order.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  explicit JsonlSink(const std::string& path);

  bool ok() const;
  void write(const Record& record) override;
  void flush() override;

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes added).
std::string json_escape(std::string_view s);

}  // namespace hars
