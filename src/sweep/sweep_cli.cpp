#include "sweep/sweep_cli.hpp"

#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>

namespace hars {

SweepOptions sweep_options_from_cli(int argc, char** argv) {
  SweepOptions options;
  if (const char* env = std::getenv("HARS_JOBS")) {
    options.jobs = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.jobs = std::atoi(argv[i + 1]);
      ++i;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      options.jobs = std::atoi(argv[i] + 7);
    }
  }
  if (options.jobs < 0) options.jobs = 1;
  return options;
}

void print_sweep_summary(std::ostream& out, const SweepReport& report) {
  out << "campaign '" << report.campaign << "': " << report.outcomes.size()
      << " cases, " << report.jobs << " job" << (report.jobs == 1 ? "" : "s")
      << ", " << format_number(report.wall_ms) << " ms ("
      << format_number(report.cases_per_sec()) << " cases/s), "
      << report.failed << " failed\n";
}

std::size_t report_sweep_failures(std::ostream& out,
                                  const SweepReport& report) {
  for (const CaseOutcome& outcome : report.outcomes) {
    if (outcome.ok()) continue;
    std::string where;
    for (const CaseCoord& coord : outcome.sweep_case.coords) {
      if (!where.empty()) where += ' ';
      where += coord.axis + '=' + coord.label;
    }
    out << "case " << outcome.sweep_case.index << " (" << where
        << ") failed: " << outcome.error << '\n';
  }
  return report.failed;
}

}  // namespace hars
