// Shared command-line plumbing for sweep-driven binaries: every figure /
// ablation bench accepts `--jobs N` (0 = hardware concurrency; also
// honoured via the HARS_JOBS environment variable, flag wins) and prints
// a one-line campaign summary.
#pragma once

#include <iosfwd>

#include "sweep/sweep_engine.hpp"

namespace hars {

/// Parses `--jobs N` / `--jobs=N` out of argv (and HARS_JOBS from the
/// environment). Unrecognized arguments are ignored so binaries can layer
/// their own flags. Defaults to 1 (serial, the reproducible reference).
SweepOptions sweep_options_from_cli(int argc, char** argv);

/// "campaign 'fig5_3': 60 cases, 4 jobs, 1234.5 ms (48.6 cases/s), 0 failed"
void print_sweep_summary(std::ostream& out, const SweepReport& report);

/// Prints every failed case's coordinates and error to `out`; returns the
/// number of failures (bench binaries exit non-zero on any).
std::size_t report_sweep_failures(std::ostream& out,
                                  const SweepReport& report);

}  // namespace hars
