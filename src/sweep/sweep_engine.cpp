#include "sweep/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "sweep/work_stealing_pool.hpp"

namespace hars {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Case coordinates as the leading columns of every sink record.
Record coord_prefix(const SweepCase& sweep_case, SeedMode mode) {
  Record prefix;
  prefix.set("case", static_cast<std::int64_t>(sweep_case.index));
  for (const CaseCoord& coord : sweep_case.coords) {
    if (!std::isnan(coord.number)) {
      prefix.set(coord.axis, coord.number);
    } else {
      prefix.set(coord.axis, coord.label);
    }
  }
  if (mode == SeedMode::kDerived) {
    // Text cell: a 64-bit seed does not survive the numeric cells' double
    // representation.
    prefix.set("seed", std::to_string(sweep_case.seed));
  }
  return prefix;
}

Record merge(const Record& prefix, const Record& columns) {
  Record out = prefix;
  for (const RecordCell& cell : columns.cells()) {
    if (cell.numeric) {
      out.set(cell.key, cell.number);
    } else {
      out.set(cell.key, cell.text);
    }
  }
  return out;
}

}  // namespace

std::vector<Record> run_experiment_case(const SweepSpec& spec,
                                        const SweepCase& sweep_case,
                                        ExperimentResult* result_out) {
  ExperimentBuilder builder;
  if (spec.base_mutator()) spec.base_mutator()(builder);
  for (const BuilderMutator& mutate : sweep_case.mutators) mutate(builder);
  if (spec.seeding() == SeedMode::kDerived) builder.seed(sweep_case.seed);

  const ExperimentResult result = builder.build().run();

  std::vector<Record> records;
  records.reserve(result.apps.size());
  for (std::size_t i = 0; i < result.apps.size(); ++i) {
    const AppRunResult& app = result.apps[i];
    Record r;
    r.set("app", app.label);
    r.set("app_index", static_cast<std::int64_t>(i));
    r.set("target_min", app.target.min);
    r.set("target_max", app.target.max);
    r.set("norm_perf", app.metrics.norm_perf);
    r.set("avg_rate_hps", app.metrics.avg_rate_hps);
    r.set("avg_power_w", app.metrics.avg_power_w);
    r.set("perf_per_watt", app.metrics.perf_per_watt);
    r.set("manager_cpu_pct", app.metrics.manager_cpu_pct);
    r.set("heartbeats", app.metrics.heartbeats);
    r.set("in_window_fraction", app.metrics.in_window_fraction);
    r.set("energy_j", app.metrics.energy_j);
    r.set("energy_per_beat_j", app.metrics.energy_per_beat_j);
    r.set("adaptations", result.adaptations);
    records.push_back(std::move(r));
  }
  if (result_out != nullptr) *result_out = result;
  return records;
}

SweepEngine::SweepEngine(SweepOptions options) : options_(options) {
  if (options_.jobs == 0) {
    options_.jobs =
        static_cast<int>(std::thread::hardware_concurrency());
  }
  if (options_.jobs < 1) options_.jobs = 1;
}

SweepEngine& SweepEngine::add_sink(ResultSink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

SweepReport SweepEngine::run(const SweepSpec& spec) {
  const auto campaign_start = std::chrono::steady_clock::now();
  std::vector<SweepCase> cases = spec.expand();

  const int jobs = options_.shared_pool != nullptr
                       ? options_.shared_pool->worker_count()
                       : options_.jobs;
  obs::gauge_set(obs::catalog().sweep_jobs, static_cast<double>(jobs));

  SweepReport report;
  report.campaign = spec.campaign();
  report.jobs = jobs;
  report.outcomes.resize(cases.size());

  // Emission state machine per case. kReady cases release through the
  // cursor in order; a kBlocked case (drained/cancelled before it ran)
  // stalls the cursor permanently, so sink output is always a clean
  // contiguous prefix of the full campaign — the resume contract.
  enum : char { kPending = 0, kReady = 1, kBlocked = 2 };
  std::vector<char> state(cases.size(), kPending);
  /// Completion instant of each case, for the emit-wait histogram.
  std::vector<std::chrono::steady_clock::time_point> finished(cases.size());
  std::mutex emit_mutex;      // Guards state[], emit cursor, and the sinks.
  std::size_t emit_cursor = 0;
  std::atomic<int> observed_stop{0};  ///< Last control word that dropped a case.

  const auto emit_ready_locked = [&] {
    while (emit_cursor < state.size() && state[emit_cursor] == kReady) {
      CaseOutcome& ready = report.outcomes[emit_cursor];
      obs::hist_observe(obs::catalog().sweep_case_emit_ms,
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() -
                            finished[emit_cursor])
                            .count());
      // A throwing sink is captured as that case's error — it must not
      // escape the pool task (std::terminate) or stall the cursor.
      try {
        for (const Record& record : ready.records) {
          for (ResultSink* sink : sinks_) sink->write(record);
        }
      } catch (const std::exception& e) {
        if (ready.error.empty()) {
          ready.error = std::string("sink write failed: ") + e.what();
        }
      } catch (...) {
        if (ready.error.empty()) ready.error = "sink write failed";
      }
      ++emit_cursor;
    }
  };

  // Resume: the [0, start_case) prefix was emitted by a previous run of
  // the same spec (indices are a pure function of the spec), so it is
  // marked ready with no records and the cursor swallows it.
  const std::size_t first_case = std::min(options_.start_case, cases.size());
  {
    std::lock_guard<std::mutex> lock(emit_mutex);
    for (std::size_t i = 0; i < first_case; ++i) {
      report.outcomes[i].sweep_case = cases[i];
      report.outcomes[i].error = "skipped";
      finished[i] = campaign_start;
      state[i] = kReady;
    }
    emit_ready_locked();
  }

  const auto run_case = [&](std::size_t i) {
    // Pool workers attach here (cold, before any guarded experiment
    // code); when telemetry is off this keeps them detached.
    obs::ensure_thread_registered();
    CaseOutcome outcome;
    outcome.sweep_case = cases[i];
    char outcome_state = kReady;
    const int control =
        options_.control != nullptr
            ? options_.control->load(std::memory_order_acquire)
            : static_cast<int>(SweepControl::kRun);
    if (control != static_cast<int>(SweepControl::kRun)) {
      // Not run: in-flight cases finish, this one never starts.
      outcome.error = control == static_cast<int>(SweepControl::kCancel)
                          ? "cancelled"
                          : "drained";
      outcome_state = kBlocked;
      observed_stop.store(control, std::memory_order_relaxed);
    } else {
      const auto case_start = std::chrono::steady_clock::now();
      obs::hist_observe(obs::catalog().sweep_case_queue_ms,
                        std::chrono::duration<double, std::milli>(
                            case_start - campaign_start)
                            .count());
      try {
        std::vector<Record> columns;
        if (spec.runner()) {
          columns = spec.runner()(cases[i]);
        } else {
          columns = run_experiment_case(
              spec, cases[i],
              options_.keep_results ? &outcome.result : nullptr);
        }
        const Record prefix = coord_prefix(cases[i], spec.seeding());
        outcome.records.reserve(columns.size());
        for (const Record& c : columns) {
          outcome.records.push_back(merge(prefix, c));
        }
      } catch (const std::exception& e) {
        outcome.error = e.what();
      } catch (...) {
        outcome.error = "unknown error";
      }
      outcome.wall_ms = elapsed_ms(case_start);
      obs::counter_add(obs::catalog().sweep_cases);
      obs::hist_observe(obs::catalog().sweep_case_run_ms, outcome.wall_ms);
      if (options_.record_timing) {
        // Opt-in timing columns, appended after the deterministic metric
        // columns so the default column set stays byte-identical.
        const auto worker = static_cast<std::int64_t>(
            WorkStealingPool::current_worker());
        for (Record& r : outcome.records) {
          r.set("case_wall_ms", outcome.wall_ms);
          r.set("worker", worker);
        }
      }
    }

    // Publish, then release the completed prefix to the sinks in order.
    std::lock_guard<std::mutex> lock(emit_mutex);
    report.outcomes[i] = std::move(outcome);
    state[i] = outcome_state;
    finished[i] = std::chrono::steady_clock::now();
    emit_ready_locked();
  };

  if (options_.shared_pool != nullptr) {
    // Shared pool: other campaigns' tasks interleave with ours, so wait
    // on a campaign-local latch instead of pool.wait_idle().
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = cases.size() - first_case;
    if (remaining > 0) {
      for (std::size_t i = first_case; i < cases.size(); ++i) {
        options_.shared_pool->submit([&, i] {
          run_case(i);
          std::lock_guard<std::mutex> lock(done_mutex);
          if (--remaining == 0) done_cv.notify_all();
        });
      }
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] { return remaining == 0; });
    }
  } else if (options_.jobs == 1) {
    for (std::size_t i = first_case; i < cases.size(); ++i) run_case(i);
  } else {
    WorkStealingPool pool(options_.jobs);
    for (std::size_t i = first_case; i < cases.size(); ++i) {
      pool.submit([&run_case, i] { run_case(i); });
    }
    pool.wait_idle();
  }

  for (ResultSink* sink : sinks_) sink->flush();
  for (const CaseOutcome& outcome : report.outcomes) {
    // Control-dropped and resume-skipped cases are not failures: they
    // are accounted through status / emitted_through instead.
    if (!outcome.ok() && outcome.error != "skipped" &&
        outcome.error != "drained" && outcome.error != "cancelled") {
      ++report.failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(emit_mutex);
    report.emitted_through = emit_cursor;
  }
  const int stop = observed_stop.load(std::memory_order_relaxed);
  report.status = stop == static_cast<int>(SweepControl::kCancel)
                      ? "cancelled"
                      : stop == static_cast<int>(SweepControl::kDrain)
                            ? "drained"
                            : "complete";
  report.wall_ms = elapsed_ms(campaign_start);
  return report;
}

}  // namespace hars
