// SweepEngine: executes an expanded SweepSpec on a work-stealing pool.
//
// Each case runs as one task: build an ExperimentBuilder (spec base
// mutator, then the case's axis mutators, then — in SeedMode::kDerived —
// the case's coordinate-derived seed), run the experiment, and flatten
// the result into one Record per app. Campaigns with a custom CaseRunner
// substitute their own evaluation; either way the engine prepends the
// case coordinates to every record.
//
// Results are handed to the attached ResultSinks strictly in case order
// (a completion cursor releases the ready prefix), so sink output is
// byte-identical regardless of worker count; per-case metrics are
// bit-identical because cases share no mutable state and seeds derive
// from coordinates, not scheduling. Wall-clock numbers live only on the
// CaseOutcome / SweepReport, never in sink records.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_spec.hpp"

namespace hars {

class WorkStealingPool;

/// Live control word a long-running campaign polls between cases; the
/// hars_simd daemon flips it on SIGTERM (drain) or a client cancel.
enum class SweepControl : int {
  kRun = 0,    ///< Keep scheduling cases.
  kDrain = 1,  ///< Finish in-flight cases; unstarted ones are not run.
  kCancel = 2, ///< Same scheduling behaviour, reported as cancelled.
};

struct SweepOptions {
  /// Worker threads; 1 runs inline on the calling thread, 0 means
  /// hardware concurrency.
  int jobs = 1;
  /// Keep each case's full ExperimentResult (traces can be large; turn
  /// off for huge campaigns that only need the sink records).
  bool keep_results = true;
  /// Opt-in timing columns on every sink record: `case_wall_ms` (the
  /// case's wall clock) and `worker` (the pool worker index, -1 when the
  /// case ran inline). Off by default because the values vary run to run
  /// — the byte-identity guarantees above only cover the default
  /// column set.
  bool record_timing = false;
  /// Run on this externally owned pool instead of creating one (the
  /// daemon shares one pool across concurrent campaigns). The engine
  /// then tracks its own cases with a campaign-local latch rather than
  /// pool.wait_idle(), so campaigns never wait on each other's work.
  /// `jobs` is ignored when set.
  WorkStealingPool* shared_pool = nullptr;
  /// Optional external control word (values of SweepControl), polled
  /// before each case starts. nullptr = run to completion. A case that
  /// observes kDrain/kCancel before starting is *not run*: its outcome
  /// carries error "drained"/"cancelled", it emits no records, and it
  /// permanently stalls the emission cursor so the sink output stays a
  /// clean contiguous prefix of the full campaign (the resume contract).
  const std::atomic<int>* control = nullptr;
  /// Skip cases with index < start_case (resume of a drained campaign:
  /// expansion is a pure function of the spec, so indices — and the
  /// skipped cases' would-be records — are stable across processes).
  /// Skipped cases emit nothing and report error "skipped".
  std::size_t start_case = 0;
};

struct CaseOutcome {
  SweepCase sweep_case;
  ExperimentResult result;     ///< Default runner + keep_results only.
  std::vector<Record> records; ///< What the sinks received.
  double wall_ms = 0.0;
  std::string error;           ///< Non-empty when the case threw.

  bool ok() const { return error.empty(); }
};

struct SweepReport {
  std::string campaign;
  std::vector<CaseOutcome> outcomes;  ///< In case order.
  int jobs = 1;
  double wall_ms = 0.0;  ///< Whole-campaign wall clock.
  std::size_t failed = 0;
  /// "complete", "drained" or "cancelled" (see SweepOptions::control).
  std::string status = "complete";
  /// Cases whose records reached the sinks: the contiguous prefix
  /// [start_case, emitted_through). Equals outcomes.size() on a complete
  /// run; a drained campaign resumes with start_case = emitted_through.
  std::size_t emitted_through = 0;

  double cases_per_sec() const {
    return wall_ms > 0.0 ? 1e3 * static_cast<double>(outcomes.size()) / wall_ms
                         : 0.0;
  }
  const CaseOutcome& outcome(std::size_t i) const { return outcomes.at(i); }
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  /// Attaches a non-owning sink; records stream to it in case order.
  SweepEngine& add_sink(ResultSink& sink);

  SweepReport run(const SweepSpec& spec);

  int jobs() const { return options_.jobs; }

 private:
  SweepOptions options_;
  std::vector<ResultSink*> sinks_;
};

/// The engine's default evaluation of one case, exposed for reuse (the
/// hars_sim CLI and tests): applies base + axis mutators (+ derived seed),
/// runs the experiment, returns one metric Record per app. Coordinates
/// are NOT included — the engine prepends them.
std::vector<Record> run_experiment_case(const SweepSpec& spec,
                                        const SweepCase& sweep_case,
                                        ExperimentResult* result_out);

}  // namespace hars
