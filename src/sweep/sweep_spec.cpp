#include "sweep/sweep_spec.hpp"

#include <limits>
#include <utility>

#include "util/rng.hpp"

namespace hars {

namespace {
constexpr double kNoNumber = std::numeric_limits<double>::quiet_NaN();
}  // namespace

AxisPoint::AxisPoint(std::string label_, BuilderMutator mutate_)
    : label(std::move(label_)), number(kNoNumber), mutate(std::move(mutate_)) {}

AxisPoint::AxisPoint(std::string label_, double number_,
                     BuilderMutator mutate_)
    : label(std::move(label_)), number(number_), mutate(std::move(mutate_)) {}

const CaseCoord* SweepCase::find(std::string_view axis) const {
  for (const CaseCoord& coord : coords) {
    if (coord.axis == axis) return &coord;
  }
  return nullptr;
}

std::string_view SweepCase::label(std::string_view axis) const {
  const CaseCoord* coord = find(axis);
  return coord != nullptr ? std::string_view(coord->label)
                          : std::string_view();
}

double SweepCase::number(std::string_view axis) const {
  const CaseCoord* coord = find(axis);
  return coord != nullptr ? coord->number : kNoNumber;
}

SweepSpec& SweepSpec::name(std::string campaign) {
  name_ = std::move(campaign);
  return *this;
}

SweepSpec& SweepSpec::base(BuilderMutator mutate) {
  base_ = std::move(mutate);
  return *this;
}

SweepSpec& SweepSpec::seed_mode(SeedMode mode) {
  seed_mode_ = mode;
  return *this;
}

SweepSpec& SweepSpec::base_seed(std::uint64_t seed) {
  base_seed_ = seed;
  return *this;
}

SweepSpec& SweepSpec::case_runner(CaseRunner runner) {
  runner_ = std::move(runner);
  return *this;
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<AxisPoint> points) {
  axes_.push_back(SweepAxis{std::move(name), std::move(points)});
  return *this;
}

SweepSpec& SweepSpec::benchmarks(const std::vector<ParsecBenchmark>& benches) {
  std::vector<AxisPoint> points;
  points.reserve(benches.size());
  for (ParsecBenchmark bench : benches) {
    points.emplace_back(parsec_code(bench),
                        [bench](ExperimentBuilder& b) { b.app(bench); });
  }
  return axis("bench", std::move(points));
}

SweepSpec& SweepSpec::variants(const std::vector<std::string>& names) {
  std::vector<AxisPoint> points;
  points.reserve(names.size());
  for (const std::string& name : names) {
    points.emplace_back(name,
                        [name](ExperimentBuilder& b) { b.variant(name); });
  }
  return axis("variant", std::move(points));
}

SweepSpec& SweepSpec::platforms(const std::vector<std::string>& names) {
  std::vector<AxisPoint> points;
  points.reserve(names.size());
  for (const std::string& name : names) {
    points.emplace_back(name,
                        [name](ExperimentBuilder& b) { b.platform(name); });
  }
  return axis("platform", std::move(points));
}

SweepSpec& SweepSpec::scenarios(const std::vector<std::string>& names) {
  std::vector<AxisPoint> points;
  points.reserve(names.size());
  for (const std::string& name : names) {
    points.emplace_back(name,
                        [name](ExperimentBuilder& b) { b.scenario(name); });
  }
  return axis("scenario", std::move(points));
}

SweepSpec& SweepSpec::target_fractions(const std::vector<double>& fractions) {
  std::vector<AxisPoint> points;
  points.reserve(fractions.size());
  for (double f : fractions) {
    points.emplace_back(format_number(f), f, [f](ExperimentBuilder& b) {
      b.target_fraction(f);
    });
  }
  return axis("fraction", std::move(points));
}

SweepSpec& SweepSpec::search_distances(const std::vector<int>& distances) {
  std::vector<AxisPoint> points;
  points.reserve(distances.size());
  for (int d : distances) {
    points.emplace_back(std::to_string(d), static_cast<double>(d),
                        [d](ExperimentBuilder& b) { b.search_distance(d); });
  }
  return axis("distance", std::move(points));
}

SweepSpec& SweepSpec::durations_sec(const std::vector<double>& seconds) {
  std::vector<AxisPoint> points;
  points.reserve(seconds.size());
  for (double s : seconds) {
    points.emplace_back(format_number(s), s, [s](ExperimentBuilder& b) {
      b.duration_sec(s);
    });
  }
  return axis("duration_s", std::move(points));
}

SweepSpec& SweepSpec::values(
    std::string name, const std::vector<double>& numbers,
    std::function<void(ExperimentBuilder&, double)> apply) {
  std::vector<AxisPoint> points;
  points.reserve(numbers.size());
  for (double v : numbers) {
    BuilderMutator mutate;
    if (apply) {
      mutate = [apply, v](ExperimentBuilder& b) { apply(b, v); };
    }
    points.emplace_back(format_number(v), v, std::move(mutate));
  }
  return axis(std::move(name), std::move(points));
}

SweepSpec& SweepSpec::add_case(std::vector<CaseCoord> coords,
                               std::vector<BuilderMutator> mutators) {
  SweepCase c;
  c.coords = std::move(coords);
  c.mutators = std::move(mutators);
  explicit_cases_.push_back(std::move(c));
  return *this;
}

std::uint64_t derive_case_seed(std::uint64_t base_seed,
                               const std::vector<CaseCoord>& coords) {
  // FNV-1a over the coordinate identity, finalized through splitmix64 so
  // structurally similar cases still get well-mixed seeds.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ base_seed;
  const auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const CaseCoord& coord : coords) {
    for (char c : coord.axis) mix_byte(static_cast<unsigned char>(c));
    mix_byte('=');
    for (char c : coord.label) mix_byte(static_cast<unsigned char>(c));
    mix_byte(';');
  }
  std::uint64_t state = h;
  std::uint64_t seed = splitmix64(state);
  // Seed 0 is reserved as "unset" by convention; remap deterministically.
  return seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
}

std::vector<SweepCase> SweepSpec::expand() const {
  std::vector<SweepCase> cases;
  if (!axes_.empty()) {
    std::size_t total = 1;
    for (const SweepAxis& ax : axes_) {
      total *= ax.points.empty() ? 0 : ax.points.size();
    }
    std::vector<std::size_t> cursor(axes_.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
      SweepCase c;
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        const AxisPoint& point = axes_[a].points[cursor[a]];
        c.coords.push_back(CaseCoord{axes_[a].name, point.label, point.number});
        if (point.mutate) c.mutators.push_back(point.mutate);
      }
      cases.push_back(std::move(c));
      // Row-major advance: last axis varies fastest.
      for (std::size_t a = axes_.size(); a-- > 0;) {
        if (++cursor[a] < axes_[a].points.size()) break;
        cursor[a] = 0;
      }
    }
  }
  for (const SweepCase& c : explicit_cases_) cases.push_back(c);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    cases[i].index = i;
    cases[i].seed = derive_case_seed(base_seed_, cases[i].coords);
  }
  return cases;
}

}  // namespace hars
