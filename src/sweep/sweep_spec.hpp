// Declarative experiment campaigns.
//
// A SweepSpec names parameter axes — benchmarks, runtime variants, target
// fractions, search distances, durations, or arbitrary ExperimentBuilder
// mutators — and expands them into the cartesian grid of SweepCases the
// SweepEngine executes. An explicit case list can be appended instead of
// (or alongside) the grid for the irregular corners a product of axes
// cannot express.
//
//   SweepSpec spec;
//   spec.name("fig5_3")
//       .base([](ExperimentBuilder& b) { b.duration(90 * kUsPerSec); })
//       .benchmarks(all_parsec_benchmarks())
//       .variants({"HARS-EI"})
//       .search_distances({1, 3, 5, 7, 9});
//
// Determinism: expansion is a pure function of the spec, and every case
// carries a seed derived only from the campaign's base seed and the
// case's coordinates — never from execution order — so serial and
// parallel engine runs produce bit-identical metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/parsec.hpp"
#include "exp/experiment.hpp"
#include "sweep/result_sink.hpp"

namespace hars {

using BuilderMutator = std::function<void(ExperimentBuilder&)>;

/// One value of an axis: a display label, an optional numeric coordinate
/// (NaN when the axis is not numeric) and an optional builder mutation.
struct AxisPoint {
  std::string label;
  double number;
  BuilderMutator mutate;

  AxisPoint(std::string label_, BuilderMutator mutate_ = nullptr);
  AxisPoint(std::string label_, double number_,
            BuilderMutator mutate_ = nullptr);
};

struct SweepAxis {
  std::string name;
  std::vector<AxisPoint> points;
};

/// A case's position along one axis.
struct CaseCoord {
  std::string axis;
  std::string label;
  double number;  ///< NaN for non-numeric axes.
};

/// One fully resolved point of the campaign.
struct SweepCase {
  std::size_t index = 0;  ///< Position in the expanded list (emission order).
  std::vector<CaseCoord> coords;            ///< In axis order.
  std::vector<BuilderMutator> mutators;     ///< In axis order.
  std::uint64_t seed = 0;                   ///< Coordinate-derived seed.

  const CaseCoord* find(std::string_view axis) const;
  /// Label along `axis`; empty when the case has no such coordinate.
  std::string_view label(std::string_view axis) const;
  /// Numeric coordinate along `axis`; NaN when absent or non-numeric.
  double number(std::string_view axis) const;
};

/// How the engine seeds each case's ExperimentBuilder.
enum class SeedMode {
  kFixed,    ///< Leave the builder's seed alone (base/mutators decide).
  kDerived,  ///< Install the case's coordinate-derived seed.
};

/// Custom per-case evaluation for campaigns that are not a single
/// Experiment (offline tables, probe-then-run protocols). Returns the
/// metric columns of one or more result rows; the engine prepends the
/// case coordinates ("case", the axis names, "seed" in derived mode) to
/// each — a runner column with the same key overrides the coordinate
/// value in place rather than duplicating the key.
using CaseRunner = std::function<std::vector<Record>(const SweepCase&)>;

class SweepSpec {
 public:
  // --- Identity / defaults ---
  SweepSpec& name(std::string campaign);
  /// Applied to every case's builder before the axis mutators.
  SweepSpec& base(BuilderMutator mutate);
  SweepSpec& seed_mode(SeedMode mode);
  SweepSpec& base_seed(std::uint64_t seed);
  /// Replaces the default build-and-run evaluation.
  SweepSpec& case_runner(CaseRunner runner);

  // --- Axes (cartesian product, in declaration order) ---
  SweepSpec& axis(std::string name, std::vector<AxisPoint> points);
  SweepSpec& benchmarks(const std::vector<ParsecBenchmark>& benches);
  SweepSpec& variants(const std::vector<std::string>& names);
  /// PlatformRegistry names; each case runs on the named platform.
  SweepSpec& platforms(const std::vector<std::string>& names);
  /// ScenarioRegistry names; each case runs the named dynamic scenario
  /// (exclusive with a `benchmarks` axis — scenario spawns define the
  /// apps).
  SweepSpec& scenarios(const std::vector<std::string>& names);
  SweepSpec& target_fractions(const std::vector<double>& fractions);
  SweepSpec& search_distances(const std::vector<int>& distances);
  SweepSpec& durations_sec(const std::vector<double>& seconds);
  /// Numeric axis with a custom application function (pass nullptr for a
  /// pure-parameter axis read back via SweepCase::number).
  SweepSpec& values(std::string name, const std::vector<double>& numbers,
                    std::function<void(ExperimentBuilder&, double)> apply);

  // --- Explicit case list (appended after the grid) ---
  SweepSpec& add_case(std::vector<CaseCoord> coords,
                      std::vector<BuilderMutator> mutators);

  /// Expands grid + explicit cases, stamping indices and derived seeds.
  std::vector<SweepCase> expand() const;

  const std::string& campaign() const { return name_; }
  const BuilderMutator& base_mutator() const { return base_; }
  SeedMode seeding() const { return seed_mode_; }
  std::uint64_t campaign_seed() const { return base_seed_; }
  const CaseRunner& runner() const { return runner_; }
  const std::vector<SweepAxis>& axes() const { return axes_; }

 private:
  std::string name_ = "sweep";
  BuilderMutator base_;
  SeedMode seed_mode_ = SeedMode::kFixed;
  std::uint64_t base_seed_ = 1;
  CaseRunner runner_;
  std::vector<SweepAxis> axes_;
  std::vector<SweepCase> explicit_cases_;
};

/// The seed SweepSpec::expand() stamps on a case: a splitmix64-style hash
/// of the campaign seed and the case's (axis, label) coordinates —
/// independent of case index and execution order.
std::uint64_t derive_case_seed(std::uint64_t base_seed,
                               const std::vector<CaseCoord>& coords);

}  // namespace hars
