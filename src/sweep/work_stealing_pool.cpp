#include "sweep/work_stealing_pool.hpp"

#include <algorithm>
#include <utility>

namespace hars {

namespace {
// Which worker the current thread is, or npos for external threads.
thread_local std::size_t tls_worker_index = static_cast<std::size_t>(-1);
}  // namespace

WorkStealingPool::WorkStealingPool(int workers) {
  const std::size_t n = static_cast<std::size_t>(std::max(1, workers));
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  std::size_t target = tls_worker_index;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
    if (target >= queues_.size()) {
      target = next_victim_;
      next_victim_ = (next_victim_ + 1) % queues_.size();
    }
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t WorkStealingPool::steal_count() const {
  std::lock_guard<std::mutex> lock(
      const_cast<WorkStealingPool*>(this)->state_mutex_);
  return steals_;
}

int WorkStealingPool::current_worker() {
  const std::size_t index = tls_worker_index;
  return index == static_cast<std::size_t>(-1) ? -1 : static_cast<int>(index);
}

bool WorkStealingPool::try_pop(std::size_t self, std::function<void()>& task) {
  Worker& w = *queues_[self];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.tasks.empty()) return false;
  task = std::move(w.tasks.front());
  w.tasks.pop_front();
  return true;
}

bool WorkStealingPool::try_steal(std::size_t self,
                                 std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    {
      std::lock_guard<std::mutex> state(state_mutex_);
      ++steals_;
    }
    return true;
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  tls_worker_index = self;
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task) || try_steal(self, task)) {
      task();
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stopping_) return;
    // Re-check under the lock: a task may have been submitted between the
    // failed pop/steal and acquiring state_mutex_.
    work_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

}  // namespace hars
