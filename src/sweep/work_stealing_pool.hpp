// A small work-stealing thread pool for sweep campaigns.
//
// Each worker owns a deque: it pops its own tasks FIFO and, when empty,
// steals FIFO from a victim. FIFO own-pop (instead of the classic
// cache-warm LIFO) is deliberate: sweep tasks are whole simulations
// (milliseconds to seconds each) with no locality between them, and
// running them in roughly submission order keeps the SweepEngine's
// ordered emission cursor advancing continuously — which is what gives
// hars_simd clients low submit-to-first-record latency and makes a
// drained campaign's resume cursor land near the true progress point
// instead of at the oldest unfinished straggler. Per-deque mutexes
// rather than a lock-free Chase-Lev deque because queue overhead is
// noise at this task granularity and the mutexes keep the pool
// trivially ThreadSanitizer-clean.
//
// Determinism contract: the pool makes no ordering promises — callers that
// need reproducible results must make tasks independent (the SweepEngine
// derives per-case RNG seeds and emits results in case order, so a
// campaign's output is bit-identical for any worker count).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hars {

class WorkStealingPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit WorkStealingPool(int workers);

  /// Drains outstanding tasks, then joins every worker.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task. From a worker thread the task lands on that
  /// worker's own deque; external submissions are dealt round-robin.
  /// Tasks must not throw — wrap fallible work and capture the error.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.
  void wait_idle();

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Number of successful steals since construction (observability; the
  /// pool test uses it to prove the stealing path runs).
  std::size_t steal_count() const;

  /// Worker index (0-based) of the calling thread within the pool it
  /// belongs to, or -1 when called off-pool (e.g. the submitting thread
  /// running cases inline). Thread-local, so valid even while several
  /// pools exist.
  static int current_worker();

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_cv_;   ///< Wakes idle workers.
  std::condition_variable idle_cv_;   ///< Wakes wait_idle().
  std::size_t pending_ = 0;           ///< Queued + running tasks.
  std::size_t next_victim_ = 0;       ///< Round-robin external submit cursor.
  std::size_t steals_ = 0;
  bool stopping_ = false;
};

}  // namespace hars
