#include "util/alloc_guard.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(HARS_ALLOC_GUARD)
#include <new>
#endif

namespace hars {
namespace allocg {

namespace {
FailureHandler g_handler = nullptr;  ///< nullptr = default (print + abort).
}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) {
  FailureHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

namespace {
void report_failure(const char* what, std::uint64_t violations) {
  if (g_handler != nullptr) {
    g_handler(what, violations);
    return;
  }
  std::fprintf(stderr,
               "AllocGuard: %llu disallowed allocation(s) in '%s' — the hot "
               "path must stay allocation-free (declare legitimate amortized "
               "allocators with allocg::AllowScope)\n",
               static_cast<unsigned long long>(violations),
               what != nullptr ? what : "?");
  std::abort();
}
}  // namespace

#if defined(HARS_ALLOC_GUARD)

bool counting_compiled_in() { return true; }

namespace detail {
ThreadState& state() {
  // Trivially-constructible, so safe to touch from the very first
  // operator new of the thread.
  static thread_local ThreadState s;
  return s;
}

std::uint64_t* scope_slot(ThreadState& s, const char* why) {
  if (why == nullptr) return nullptr;
  for (int i = 0; i < s.num_scopes; ++i) {
    if (s.scopes[i].name == why || std::strcmp(s.scopes[i].name, why) == 0) {
      return &s.scopes[i].allocs;
    }
  }
  if (s.num_scopes >= ThreadState::kMaxScopes) return nullptr;
  s.scopes[s.num_scopes].name = why;
  s.scopes[s.num_scopes].allocs = 0;
  return &s.scopes[s.num_scopes++].allocs;
}
}  // namespace detail

std::uint64_t thread_allocs() { return detail::state().allocs; }
std::uint64_t thread_violations() { return detail::state().violations; }

std::vector<ScopeCount> thread_scope_counts() {
  const detail::ThreadState& s = detail::state();
  return std::vector<ScopeCount>(s.scopes, s.scopes + s.num_scopes);
}

#else  // !HARS_ALLOC_GUARD

bool counting_compiled_in() { return false; }
std::uint64_t thread_allocs() { return 0; }
std::uint64_t thread_violations() { return 0; }
std::vector<ScopeCount> thread_scope_counts() { return {}; }

#endif  // HARS_ALLOC_GUARD

}  // namespace allocg

#if defined(HARS_ALLOC_GUARD)

AllocGuard::~AllocGuard() {
  allocg::detail::ThreadState& s = allocg::detail::state();
  --s.strict_depth;
  s.allow_depth = saved_allow_depth_;
  s.scope_counter = saved_scope_counter_;
  if (armed_ && violations() > 0) {
    allocg::report_failure(what_, violations());
  }
}

#endif  // HARS_ALLOC_GUARD

}  // namespace hars

#if defined(HARS_ALLOC_GUARD)

// Counting replacements for the global allocation functions. Only the
// plain/nothrow (array) forms are replaced; the rare over-aligned forms
// keep the library implementation (uncounted, but internally consistent).
namespace {

inline void* counted_alloc(std::size_t size) noexcept {
  hars::allocg::detail::ThreadState& s = hars::allocg::detail::state();
  ++s.allocs;
  if (s.strict_depth > 0 && s.allow_depth == 0) ++s.violations;
  if (s.allow_depth > 0 && s.scope_counter != nullptr) ++*s.scope_counter;
  return std::malloc(size != 0 ? size : 1);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // HARS_ALLOC_GUARD
