#include "util/alloc_guard.hpp"

#include <cstdio>
#include <cstdlib>

#if defined(HARS_ALLOC_GUARD)
#include <new>
#endif

namespace hars {
namespace allocg {

namespace {
FailureHandler g_handler = nullptr;  ///< nullptr = default (print + abort).
}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) {
  FailureHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

namespace {
void report_failure(const char* what, std::uint64_t violations) {
  if (g_handler != nullptr) {
    g_handler(what, violations);
    return;
  }
  std::fprintf(stderr,
               "AllocGuard: %llu disallowed allocation(s) in '%s' — the hot "
               "path must stay allocation-free (declare legitimate amortized "
               "allocators with allocg::AllowScope)\n",
               static_cast<unsigned long long>(violations),
               what != nullptr ? what : "?");
  std::abort();
}
}  // namespace

#if defined(HARS_ALLOC_GUARD)

bool counting_compiled_in() { return true; }

namespace detail {
ThreadState& state() {
  // Trivially-constructible, so safe to touch from the very first
  // operator new of the thread.
  static thread_local ThreadState s;
  return s;
}
}  // namespace detail

std::uint64_t thread_allocs() { return detail::state().allocs; }
std::uint64_t thread_violations() { return detail::state().violations; }

#else  // !HARS_ALLOC_GUARD

bool counting_compiled_in() { return false; }
std::uint64_t thread_allocs() { return 0; }
std::uint64_t thread_violations() { return 0; }

#endif  // HARS_ALLOC_GUARD

}  // namespace allocg

#if defined(HARS_ALLOC_GUARD)

AllocGuard::~AllocGuard() {
  allocg::detail::ThreadState& s = allocg::detail::state();
  --s.strict_depth;
  s.allow_depth = saved_allow_depth_;
  if (armed_ && violations() > 0) {
    allocg::report_failure(what_, violations());
  }
}

#endif  // HARS_ALLOC_GUARD

}  // namespace hars

#if defined(HARS_ALLOC_GUARD)

// Counting replacements for the global allocation functions. Only the
// plain/nothrow (array) forms are replaced; the rare over-aligned forms
// keep the library implementation (uncounted, but internally consistent).
namespace {

inline void* counted_alloc(std::size_t size) noexcept {
  hars::allocg::detail::ThreadState& s = hars::allocg::detail::state();
  ++s.allocs;
  if (s.strict_depth > 0 && s.allow_depth == 0) ++s.violations;
  return std::malloc(size != 0 ? size : 1);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // HARS_ALLOC_GUARD
