// Runtime enforcement of the allocation-free hot tick path.
//
// When the build defines HARS_ALLOC_GUARD (CMake option of the same name,
// on by default), util/alloc_guard.cpp replaces the global operator
// new/delete family with thread-local counting wrappers. An AllocGuard
// then turns "this region performs no allocation" from a benchmark-era
// claim into a hard assertion: every allocation made on the guard's
// thread while the guard is alive — and not inside an AllowScope — is a
// violation, reported through the failure handler (abort by default)
// when the guard is destroyed.
//
// AllowScope marks the few *declared* amortized allocators that live
// inside guarded regions: heartbeat history growth, power-sensor sample
// capture, runtime-manager bookkeeping (trace points, state application),
// and first-use scratch growth. Entering an AllocGuard re-tightens a
// surrounding AllowScope, so the candidate-search sweep stays strict even
// though the manager tick around it is marked as a declared allocator.
//
// Without HARS_ALLOC_GUARD everything here compiles to no-ops and the
// default operator new is untouched.
#pragma once

#include <cstdint>
#include <vector>

namespace hars {
namespace allocg {

/// True when the counting operator new/delete replacements are compiled
/// in (HARS_ALLOC_GUARD); all counters read 0 otherwise.
bool counting_compiled_in();

/// Allocations ever made on the calling thread.
std::uint64_t thread_allocs();

/// Disallowed allocations (inside a live AllocGuard, outside every
/// AllowScope) ever made on the calling thread.
std::uint64_t thread_violations();

/// Per-AllowScope attribution: allocations made on the calling thread
/// while an AllowScope with this `why` string was innermost.
struct ScopeCount {
  const char* name = nullptr;
  std::uint64_t allocs = 0;
};

/// Snapshot of the calling thread's per-scope allocation totals, in
/// first-use order. Empty when the guard is not compiled in. Allocates
/// (cold; telemetry flush / test assertions only).
std::vector<ScopeCount> thread_scope_counts();

/// Called when a destroyed AllocGuard saw violations. The default handler
/// prints the region and count to stderr and aborts; tests install a
/// recording handler instead. Returns the previous handler.
using FailureHandler = void (*)(const char* what, std::uint64_t violations);
FailureHandler set_failure_handler(FailureHandler handler);

#if defined(HARS_ALLOC_GUARD)

namespace detail {
// Thread-local counting state, bumped by the operator new replacements.
struct ThreadState {
  std::uint64_t allocs = 0;      ///< All allocations on this thread.
  std::uint64_t violations = 0;  ///< Allocations under a guard, unallowed.
  int strict_depth = 0;          ///< Live AllocGuards on this thread.
  int allow_depth = 0;           ///< Live AllowScopes on this thread.
  /// Per-scope attribution slot of the innermost live AllowScope (its
  /// `allocs` field); null outside every scope and inside an AllocGuard
  /// that re-tightened.
  std::uint64_t* scope_counter = nullptr;
  /// Fixed attribution table: one slot per distinct AllowScope `why`
  /// string ever used on this thread (first-use order). Fixed capacity
  /// keeps scope entry allocation-free; overflow scopes count into
  /// allocs/violations but get no attribution slot.
  static constexpr int kMaxScopes = 64;
  ScopeCount scopes[kMaxScopes];
  int num_scopes = 0;
};
ThreadState& state();
/// The attribution slot for `why` (created on first use), or nullptr
/// when the table is full. Allocation-free.
std::uint64_t* scope_slot(ThreadState& s, const char* why);
}  // namespace detail

/// Declares the enclosed code a legitimate amortized allocator; see the
/// file comment. The `why` string doubles as the attribution key for
/// thread_scope_counts() (use string literals).
class AllowScope {
 public:
  explicit AllowScope(const char* why) {
    detail::ThreadState& s = detail::state();
    saved_counter_ = s.scope_counter;
    s.scope_counter = detail::scope_slot(s, why);
    ++s.allow_depth;
  }
  ~AllowScope() {
    detail::ThreadState& s = detail::state();
    --s.allow_depth;
    s.scope_counter = saved_counter_;
  }
  AllowScope(const AllowScope&) = delete;
  AllowScope& operator=(const AllowScope&) = delete;

 private:
  std::uint64_t* saved_counter_ = nullptr;
};

#else  // !HARS_ALLOC_GUARD

class AllowScope {
 public:
  explicit AllowScope(const char* why) { (void)why; }
};

#endif  // HARS_ALLOC_GUARD

}  // namespace allocg

/// RAII allocation sentinel over a hot region. While alive, allocations
/// on this thread outside any AllowScope count as violations; the
/// destructor reports them through the failure handler. allocations()
/// and violations() expose the running deltas for tests and benchmarks.
class AllocGuard {
 public:
#if defined(HARS_ALLOC_GUARD)
  explicit AllocGuard(const char* what = "AllocGuard") : what_(what) {
    allocg::detail::ThreadState& s = allocg::detail::state();
    start_allocs_ = s.allocs;
    start_violations_ = s.violations;
    // Re-tighten: an AllowScope opened by a caller (e.g. a manager tick
    // marked as a declared allocator) must not leak permission into this
    // stricter region.
    saved_allow_depth_ = s.allow_depth;
    saved_scope_counter_ = s.scope_counter;
    s.allow_depth = 0;
    s.scope_counter = nullptr;
    ++s.strict_depth;
  }
  ~AllocGuard();
  std::uint64_t allocations() const {
    return allocg::detail::state().allocs - start_allocs_;
  }
  std::uint64_t violations() const {
    return allocg::detail::state().violations - start_violations_;
  }
  /// Disarms failure reporting (the deltas remain readable).
  void dismiss() { armed_ = false; }
#else
  explicit AllocGuard(const char* what = "AllocGuard") { (void)what; }
  std::uint64_t allocations() const { return 0; }
  std::uint64_t violations() const { return 0; }
  void dismiss() {}
#endif

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

#if defined(HARS_ALLOC_GUARD)
 private:
  const char* what_;
  std::uint64_t start_allocs_ = 0;
  std::uint64_t start_violations_ = 0;
  int saved_allow_depth_ = 0;
  std::uint64_t* saved_scope_counter_ = nullptr;
  bool armed_ = true;
#endif
};

}  // namespace hars
