// HARS_AUDIT debug invariant audits.
//
// The audits are always compiled; they are *enabled* per engine through
// SimConfig::audit, whose default is `true` when the build defines
// HARS_AUDIT (CMake option of the same name; the CI sanitizer matrix
// turns it on so the whole suite runs audited) and `false` otherwise.
// A failed audit throws AuditError with a description of the violated
// invariant — audits guard simulator self-consistency (thread-table
// conservation, snapshot coherence, busy-sum conservation, search-state
// bounds), so an exception, not a silent misresult, is the right failure
// mode.
#pragma once

#include <stdexcept>
#include <string>

namespace hars {

/// A machine-checked invariant did not hold. The message names the
/// invariant and the observed values.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

namespace audit {

/// Whether SimConfig::audit defaults to enabled in this build.
constexpr bool default_enabled() {
#if defined(HARS_AUDIT)
  return true;
#else
  return false;
#endif
}

}  // namespace audit
}  // namespace hars
