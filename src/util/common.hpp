// Common scalar types and small helpers shared by every module.
#pragma once

#include <cstdint>
#include <string>

namespace hars {

/// Simulated time in microseconds since simulation start.
using TimeUs = std::int64_t;

/// Abstract units of application work. One "work unit" at speed 1.0
/// takes one second of CPU time; speeds are in work-units per second.
using WorkUnits = double;

/// Identifier of a hardware core within the machine (dense, 0-based).
using CoreId = int;

/// Identifier of a cluster within the machine (dense, 0-based).
using ClusterId = int;

/// Identifier of a simulated software thread (dense per SimEngine).
using ThreadId = int;

/// Identifier of an application registered with the runtime.
using AppId = int;

constexpr TimeUs kUsPerSec = 1'000'000;
constexpr TimeUs kUsPerMs = 1'000;

inline double us_to_sec(TimeUs us) { return static_cast<double>(us) / kUsPerSec; }
inline TimeUs sec_to_us(double sec) { return static_cast<TimeUs>(sec * kUsPerSec); }

}  // namespace hars
