#include "util/csv.hpp"

#include <sstream>

namespace hars {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  bool first = true;
  for (auto n : names) {
    if (!first) out_ << ',';
    out_ << csv_escape(n);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> cells) {
  bool first = true;
  for (double c : cells) {
    if (!first) out_ << ',';
    out_ << c;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::raw_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace hars
