// Minimal CSV writer used to dump behaviour traces (Figures 5.5-5.7) and
// bench series so they can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace hars {

class CsvWriter {
 public:
  /// Opens `path` for writing; `ok()` reports whether the stream is usable.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  /// Writes a header row; fields are escaped as needed.
  void header(std::initializer_list<std::string_view> names);

  /// Appends one row of numeric cells.
  void row(std::initializer_list<double> cells);

  /// Appends one row of already-formatted cells.
  void raw_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
};

/// Escapes a single CSV field (quotes fields containing separators).
std::string csv_escape(std::string_view field);

}  // namespace hars
