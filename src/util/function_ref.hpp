// FunctionRef: a lightweight non-owning callable reference (two words, no
// heap, trivially copyable) for hot-path callback parameters where
// std::function's ownership — and its possible allocation — buys nothing.
//
// Lifetime contract: a FunctionRef borrows the callable it was built
// from. Bind it to an lvalue (or pass a lambda directly in the call
// expression, which outlives the full expression) and never store one
// beyond the borrowed callable's lifetime:
//
//   const auto pred = [&](const X& x) { return ok(x); };
//   run(items, pred);              // fine: pred outlives the call
//   run(items, [&](const X& x) { return ok(x); });  // fine: temporary
//                                  // lives to the end of the expression
//   FunctionRef<bool(const X&)> f = [&](const X& x) { ... };  // DANGLING:
//                                  // the lambda dies at the semicolon
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace hars {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; operator bool() is false and calling is undefined.
  constexpr FunctionRef() = default;
  constexpr FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                    std::is_invocable_r_v<R, F&, Args...>,
                int> = 0>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace hars
