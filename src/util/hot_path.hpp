// Hot-path annotation, enforced by tools/hars_lint.
//
// HARS_HOT marks a function *definition* as part of the simulator's hot
// path: the per-tick engine loop (SimEngine::step and its helpers), the
// scheduler's assign pass, the performance/power estimators, and the
// candidate-search sweeps. tools/hars_lint scans src/ and rejects, inside
// every HARS_HOT body:
//
//   no-alloc            new/malloc/make_unique/push_back-style growth
//   no-container-local  owning container locals (std::vector<T> v; ...)
//   no-wallclock-rand   rand()/time()/clocks/std::random_device
//   no-unordered        unordered_map/unordered_set (iteration order is
//                       not deterministic across libraries)
//
// A line that is deliberately exempt (guarded one-time growth, retained
// capacity) carries `// hars-lint: allow(<rule>): <reason>`; a block uses
// `// hars-lint: allow-begin(<rule>): <reason>` ... `// hars-lint:
// allow-end`. The exemption doubles as documentation and is itself
// checked: runtime enforcement (util/alloc_guard.hpp) still counts every
// allocation the exempted lines perform.
//
// Annotate definitions only — `HARS_HOT void f() { ... }` — never
// declarations; the linter skips an annotation whose next token ends in
// `;` before any `{`, but keeping the marker on the body keeps the
// diagnostics adjacent to the code they police.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define HARS_HOT [[gnu::hot]]
#else
#define HARS_HOT
#endif
