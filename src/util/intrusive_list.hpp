// Intrusive singly-linked list.
//
// MP-HARS (thesis §4.1.2) manages per-application data in a linked list that
// the runtime manager walks each iteration (Algorithm 3). We mirror that
// structure: nodes embed the link, the list never owns its nodes.
#pragma once

#include <cassert>
#include <cstddef>

namespace hars {

template <typename T>
struct IntrusiveListNode {
  T* next = nullptr;
};

/// Singly-linked list over nodes deriving from IntrusiveListNode<T>.
/// Non-owning: callers control node lifetime and must unlink before
/// destroying a linked node.
template <typename T>
class IntrusiveList {
 public:
  bool empty() const { return head_ == nullptr; }

  std::size_t size() const {
    std::size_t n = 0;
    for (T* p = head_; p != nullptr; p = p->next) ++n;
    return n;
  }

  T* head() const { return head_; }

  /// Appends at the tail (applications adapt in registration order).
  void push_back(T* node) {
    assert(node != nullptr && node->next == nullptr);
    if (head_ == nullptr) {
      head_ = tail_ = node;
      return;
    }
    tail_->next = node;
    tail_ = node;
  }

  /// Removes `node` if present; returns whether it was found.
  bool remove(T* node) {
    T* prev = nullptr;
    for (T* p = head_; p != nullptr; prev = p, p = p->next) {
      if (p != node) continue;
      if (prev == nullptr) {
        head_ = p->next;
      } else {
        prev->next = p->next;
      }
      if (tail_ == p) tail_ = prev;
      p->next = nullptr;
      return true;
    }
    return false;
  }

  /// Walks the list invoking `fn(T&)` on each node; `fn` must not unlink.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (T* p = head_; p != nullptr;) {
      T* next = p->next;  // Tolerate fn mutating the node's payload.
      fn(*p);
      p = next;
    }
  }

 private:
  T* head_ = nullptr;
  T* tail_ = nullptr;
};

}  // namespace hars
